"""Setuptools entry point.

Kept alongside pyproject.toml so editable installs work in fully offline
environments (no `wheel` package available for PEP 660 editable wheels).
"""

from setuptools import setup

setup()
