#!/usr/bin/env python3
"""The compile-bind-execute lifecycle: reusable executables and batch sweeps.

A parameterized circuit family is compiled ONCE into an Executable
(`method.compile(template)`), which on the memdb backend also prepares the
generated query's plan in the engine's plan cache.  Each sweep point is then
just `bind(params)` + `execute()` — or one `execute_batch(grid)` call — so
the whole sweep re-binds cached plans instead of re-translating and
re-planning.  A JobService runs the same pipeline asynchronously for
service-style workloads.

Run with:  python examples/executable_sweep.py
"""

from repro import JobService, MemDBBackend
from repro.bench import grid
from repro.circuits import maxcut_expected_value, qaoa_maxcut_circuit, ring_graph
from repro.output import comparison_table


def main() -> None:
    num_nodes = 6
    edges = ring_graph(num_nodes)
    template = qaoa_maxcut_circuit(num_nodes, edges=edges, p=1)
    print(f"QAOA MaxCut template on a {num_nodes}-node ring, depth p=1")
    print(f"Free parameters: {sorted(p.name for p in template.parameters)}\n")

    # ---------------------------------------------------------- compile once
    backend = MemDBBackend()
    executable = backend.compile(template)
    print(f"Compiled: {executable}")
    print(f"Plan cache at compile: {executable.provenance['plan_cache']}\n")

    # ------------------------------------------------- bind + execute a grid
    points = grid(
        {
            "gamma[0]": [round(0.2 * k, 3) for k in range(1, 6)],
            "beta[0]": [round(0.3 * k, 3) for k in range(1, 6)],
        }
    )
    print(f"execute_batch over {len(points)} parameter points...\n")
    results = executable.execute_batch(points)

    rows = [
        {
            "gamma": result.metadata["parameter_binding"]["gamma[0]"],
            "beta": result.metadata["parameter_binding"]["beta[0]"],
            "expected_cut": round(maxcut_expected_value(edges, result.state.probabilities()), 4),
            "time_s": round(result.wall_time_s, 4),
        }
        for result in results
    ]
    rows.sort(key=lambda row: -row["expected_cut"])
    print(comparison_table(rows[:5], columns=["gamma", "beta", "expected_cut", "time_s"]))
    print(f"\nOne executable, {executable.executions} executions; "
          f"plan-cache hits so far: {executable.provenance['last_execution']['plan_cache']['hits']}\n")

    # ------------------------------------------------ the same pipeline async
    with JobService(max_workers=2) as service:
        handle = service.submit(circuit=template, method="memdb", param_grid=points[:6], tag="qaoa")
        print(f"Submitted job {handle.job_id}; streaming results as they land:")
        for index, result in enumerate(handle.stream(timeout=60)):
            binding = result.metadata["parameter_binding"]
            print(f"  point {index}: gamma={binding['gamma[0]']}, beta={binding['beta[0]']}, "
                  f"nonzero={result.state.num_nonzero}")
        print(f"Job finished: {handle.poll()['status']}; service stats: {service.stats()['pool']}")


if __name__ == "__main__":
    main()
