#!/usr/bin/env python3
"""Demo scenario 3 — Educational Exploration of Quantum Computing Concepts.

Uses the GHZ state as a case study for superposition and entanglement:
watch the relational state evolve gate by gate (through SQL), inspect
single-qubit Bloch vectors, quantify entanglement, and look at measurement
outcomes — the interactive walk-through of the paper's third scenario, in
terminal form.

Run with:  python examples/education_ghz.py [num_qubits]
"""

import sys

from repro import SQLiteBackend
from repro.circuits import ghz_circuit
from repro.output import (
    SparseState,
    bloch_text,
    bloch_vector,
    entanglement_entropy,
    format_amplitude_table,
    histogram,
    sample_counts,
)
from repro.simulators import StatevectorSimulator


def main(num_qubits: int = 3) -> None:
    circuit = ghz_circuit(num_qubits)
    print(f"GHZ preparation on {num_qubits} qubits:")
    print(circuit.draw())
    print()

    # Step-by-step evolution: run prefixes of the circuit through the RDBMS.
    print("State evolution, one SQL pipeline stage at a time:")
    backend = SQLiteBackend()
    for step in range(len(circuit.gates) + 1):
        prefix = ghz_circuit(num_qubits)
        prefix._instructions = prefix.instructions[:step]  # noqa: SLF001 - demo-only truncation
        state = backend.run(prefix).state if step else SparseState.zero_state(num_qubits)
        gate = "initial |0...0>" if step == 0 else f"after gate {step} ({circuit.gates[step - 1].name})"
        rows = ", ".join(f"|{format(s, f'0{num_qubits}b')}>: {r:+.3f}" for s, r, _i in state.to_rows())
        print(f"  {gate:<28} {rows}")
    print()

    final_state = backend.run(circuit).state
    print("Final state table:")
    print(format_amplitude_table(final_state))
    print()

    # Superposition: the first Hadamard creates it; entanglement: the CX chain spreads it.
    print("Single-qubit Bloch views (the educational visualization):")
    plus_state = StatevectorSimulator().run(ghz_circuit(1)).state
    print(f"  qubit 0 right after H     : {bloch_text(bloch_vector(plus_state, 0))}")
    for qubit in range(num_qubits):
        print(f"  qubit {qubit} in the GHZ state  : {bloch_text(bloch_vector(final_state, qubit))}")
    print()

    print("Entanglement entropy across cuts (1.0 bit = maximally entangled):")
    for cut in range(1, num_qubits):
        entropy = entanglement_entropy(final_state, list(range(cut)))
        print(f"  qubits [0..{cut - 1}] vs rest : {entropy:.3f} bits")
    print()

    print("Measurement outcomes (2048 shots) — only the two correlated bitstrings appear:")
    print(histogram(sample_counts(final_state, shots=2048, seed=5)))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
