#!/usr/bin/env python3
"""Parameterized circuit families and automated parameter-space sweeps.

The paper's Circuit Layer supports "parameterized circuit families via
Qiskit- or PyQuil-like syntax" and the Simulation Layer "automates simulation
across the parameter space".  This example defines a depth-1 QAOA MaxCut
family on a ring graph, sweeps the (gamma, beta) grid on the RDBMS backend,
and reports the best cut found.

Run with:  python examples/parameterized_sweep.py
"""

import math

from repro import MemDBBackend
from repro.bench import ParameterSweep, grid
from repro.circuits import maxcut_cut_value, maxcut_expected_value, qaoa_maxcut_circuit, ring_graph
from repro.output import comparison_table


def main() -> None:
    num_nodes = 6
    edges = ring_graph(num_nodes)
    print(f"QAOA MaxCut on a {num_nodes}-node ring graph ({len(edges)} edges), depth p=1")
    family_template = qaoa_maxcut_circuit(num_nodes, edges=edges, p=1)
    print(f"Free parameters: {sorted(p.name for p in family_template.parameters)}\n")

    def family(point):
        return qaoa_maxcut_circuit(
            num_nodes, edges=edges, p=1, gammas=[point["gamma"]], betas=[point["beta"]]
        )

    def observable(result):
        return maxcut_expected_value(edges, result.state.probabilities())

    sweep = ParameterSweep(family, method_factory=MemDBBackend, observable=observable)
    points = grid(
        {
            "gamma": [round(0.2 * k, 3) for k in range(1, 6)],
            "beta": [round(0.3 * k, 3) for k in range(1, 6)],
        }
    )
    print(f"Sweeping {len(points)} parameter points on the embedded columnar engine...\n")
    results = sweep.run(points)

    rows = [
        {
            "gamma": result.point["gamma"],
            "beta": result.point["beta"],
            "expected_cut": round(result.observable, 4),
            "nonzero_amplitudes": result.nonzero_amplitudes,
            "time_s": round(result.wall_time_s, 4),
        }
        for result in results
        if result.status == "ok"
    ]
    rows.sort(key=lambda row: -row["expected_cut"])
    print(comparison_table(rows[:10], columns=["gamma", "beta", "expected_cut", "nonzero_amplitudes", "time_s"]))
    print()

    best = sweep.best_point(results)
    optimum = max(maxcut_cut_value(edges, assignment) for assignment in range(1 << num_nodes))
    print(f"Best grid point: gamma={best.point['gamma']}, beta={best.point['beta']}")
    print(f"Expected cut value {best.observable:.3f} vs classical optimum {optimum}")
    print(f"Approximation ratio: {best.observable / optimum:.3f}")


if __name__ == "__main__":
    main()
