#!/usr/bin/env python3
"""Serving tier walkthrough: boot the multi-tenant HTTP server and drive it.

Boots the full serving stack (`build_server`: fair scheduler + admission
control + sharded engine pools + durable job journal) on an ephemeral
port, then exercises every endpoint through the stdlib HTTP client —
first programmatically, then printing the equivalent `curl` transcript so
the wire format is visible.

Run with:  python examples/serve.py

The same server from the command line (`python -m` style):

    $ python -c "
    from repro.service.server import build_server, ServerThread
    import time
    with ServerThread(build_server(journal_path='jobs.journal', port=8123)):
        time.sleep(3600)"

    # Submit a 3-qubit GHZ circuit as tenant "alice":
    $ curl -s -X POST localhost:8123/v1/jobs -d '{
        "tenant": "alice",
        "method": "memdb",
        "circuit": {"num_qubits": 3, "name": "ghz_3",
                    "instructions": [{"gate": "h",  "qubits": [0]},
                                     {"gate": "cx", "qubits": [0, 1]},
                                     {"gate": "cx", "qubits": [1, 2]}]}}'
    {"job_id": 1, "status": "queued", "tenant": "alice"}

    # Poll it (add ?rows=1 for the full amplitude rows):
    $ curl -s localhost:8123/v1/jobs/1
    {"job_id": 1, "status": "done", "completed_points": 1, ...}

    # Stream a parameter sweep point-by-point (chunked ndjson):
    $ curl -sN localhost:8123/v1/jobs/2/stream

    # Cancel, and inspect the scheduler/admission/journal stats:
    $ curl -s -X DELETE localhost:8123/v1/jobs/2
    $ curl -s localhost:8123/v1/stats
"""

import json
import tempfile
from pathlib import Path

from repro.bench.loadgen import ServingClient
from repro.bench.report import tenant_table
from repro.circuits import ghz_circuit, hardware_efficient_ansatz
from repro.service.server import ServerThread, build_server


def main() -> None:
    journal_path = Path(tempfile.mkdtemp(prefix="qymera-serve-")) / "jobs.journal"
    server = build_server(journal_path=journal_path, max_workers=2, shards=2)
    with ServerThread(server) as (host, port):
        client = ServingClient(host, port)
        print(f"Serving on http://{host}:{port}  (journal: {journal_path})\n")

        # ------------------------------------------------------------------
        # Tenant "alice": one interactive GHZ job, polled to completion.
        # ------------------------------------------------------------------
        status, body = client.submit(ghz_circuit(3), method="memdb", tenant="alice")
        print(f"POST /v1/jobs                 -> {status} {json.dumps(body)}")
        final = client.wait(body["job_id"])
        print(f"GET  /v1/jobs/{body['job_id']}               -> done: "
              f"{final['completed_points']}/{final['total_points']} points\n")

        # ------------------------------------------------------------------
        # Tenant "bob": a 4-point sweep, streamed point-by-point.
        # ------------------------------------------------------------------
        names = [f"theta[{i}]" for i in range(6)]
        grid = [{name: round(0.2 * k, 3) for name in names} for k in range(1, 5)]
        status, sweep = client.submit(
            hardware_efficient_ansatz(3, rotation_gates=("ry",)),
            method="memdb",
            tenant="bob",
            param_grid=grid,
        )
        print(f"POST /v1/jobs (4-point sweep) -> {status} {json.dumps(sweep)}")
        records = client.stream(sweep["job_id"])
        for record in records[:-1]:
            binding = record["metadata"]["parameter_binding"]
            print(f"  streamed point theta[0]={binding['theta[0]']} "
                  f"({record['num_qubits']} qubits, {record['wall_time_s'] * 1e3:.1f} ms)")
        print(f"GET  /v1/jobs/{sweep['job_id']}/stream        -> {records[-1]['status']}\n")

        # ------------------------------------------------------------------
        # The versioned stats document: scheduler, admission, journal.
        # ------------------------------------------------------------------
        stats = client.stats()
        service_stats = stats["service"]
        print("GET  /v1/stats:")
        print(f"  scheduler : {service_stats['scheduler']['policy']}, "
              f"tenants {sorted(service_stats['scheduler']['tenants'])}")
        print(f"  admission : {service_stats['admission']['admitted']} admitted, "
              f"{service_stats['admission']['rejected']} rejected")
        print(f"  journal   : {service_stats['journal']['records_written']} records, "
              f"{service_stats['journal']['incomplete']} incomplete\n")

        print("Per-tenant serving metrics:")
        print(tenant_table(server.service.metrics.snapshot()))

    server.service.shutdown(wait=True)
    print("\nShut down cleanly; the journal has a terminal record for every job.")


if __name__ == "__main__":
    main()
