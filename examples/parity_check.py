#!/usr/bin/env python3
"""Demo scenario 1 — Quantum Algorithm Design and Testing (parity check).

Builds the quantum parity-check algorithm for a classical bitstring,
translates it to SQL, runs it inside an RDBMS, inspects intermediate states,
and compares against the dense state-vector simulator — the workflow the
paper demonstrates for rapid algorithm iteration.

Run with:  python examples/parity_check.py [bitstring]
"""

import sys

from repro import SQLiteBackend, StatevectorSimulator
from repro.circuits import expected_parity, parity_check_circuit, superposed_parity_circuit
from repro.output import format_amplitude_table


def main(bits: str = "10110") -> None:
    print(f"Parity check of the classical bitstring {bits!r}")
    print(f"Classical answer: {'odd' if expected_parity(bits) else 'even'} parity\n")

    circuit = parity_check_circuit(bits, measure=False)
    print(circuit.draw())
    print()

    # Run inside the RDBMS, keeping every intermediate state table so the
    # "inspect intermediate quantum states" part of the scenario works.
    backend = SQLiteBackend(mode="materialized", keep_intermediate=True)
    result = backend.run(circuit)
    ancilla = circuit.num_qubits - 1

    print("Relational execution (SQLite, materialized mode):")
    print(f"  pipeline stages        : {result.metadata['sql']['num_steps']}")
    print(f"  rows per intermediate  : {result.metadata['step_rows']}")
    print(f"  wall time              : {result.wall_time_s * 1000:.2f} ms")
    print()
    print("Final state table:")
    print(format_amplitude_table(result.state))
    measured = (next(iter(result.state)) >> ancilla) & 1
    print(f"\nAncilla qubit reads {measured} -> {'odd' if measured else 'even'} parity "
          f"({'matches' if measured == expected_parity(bits) else 'DOES NOT match'} the classical answer)\n")

    # Compare with a conventional simulation method.
    sv_result = StatevectorSimulator().run(circuit)
    print("Comparison with the dense state-vector simulator:")
    print(f"  states agree           : {result.state.equiv(sv_result.state)}")
    print(f"  RDBMS peak rows        : {result.peak_state_rows}")
    print(f"  state-vector amplitudes: {sv_result.peak_state_rows}")
    print(f"  RDBMS time             : {result.wall_time_s * 1000:.2f} ms")
    print(f"  state-vector time      : {sv_result.wall_time_s * 1000:.2f} ms")
    print()

    # The quantum version of the predicate: evaluate parity of *all* inputs at once.
    superposed = superposed_parity_circuit(len(bits))
    super_result = SQLiteBackend().run(superposed)
    print(f"Parity oracle over all {2 ** len(bits)} bitstrings in superposition "
          f"({super_result.state.num_nonzero} entangled basis states):")
    print(format_amplitude_table(super_result.state, max_rows=8))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "10110")
