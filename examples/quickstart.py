#!/usr/bin/env python3
"""Quickstart: build a circuit, look at its SQL, run it on an RDBMS.

This walks the four layers of the Qymera architecture (Fig. 1 of the paper)
on the running example of Fig. 2: a 3-qubit GHZ circuit.

Run with:  python examples/quickstart.py
"""

from repro import QuantumCircuit, QymeraSession, SQLiteBackend, translate_circuit
from repro.output import format_amplitude_table, probability_histogram, sample_counts


def main() -> None:
    # ------------------------------------------------------------------
    # Circuit Layer: build the circuit with the Qiskit-like code API.
    # ------------------------------------------------------------------
    circuit = QuantumCircuit(3, name="ghz_3")
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.cx(1, 2)
    print("Circuit:")
    print(circuit.draw())
    print()

    # ------------------------------------------------------------------
    # Translation Layer: the circuit as a SQL program (Fig. 2c).
    # ------------------------------------------------------------------
    translation = translate_circuit(circuit, dialect="sqlite")
    print("Generated SQL (one CTE per gate):")
    print(translation.cte_query())
    print()

    # ------------------------------------------------------------------
    # Simulation Layer: execute the SQL on SQLite.
    # ------------------------------------------------------------------
    backend = SQLiteBackend()
    result = backend.run(circuit)
    print(f"Executed on {result.method!r} in {result.wall_time_s * 1000:.2f} ms")
    print()

    # ------------------------------------------------------------------
    # Output Layer: final state, probabilities, sampled shots.
    # ------------------------------------------------------------------
    print("Final state table (s, r, i):")
    print(format_amplitude_table(result.state))
    print()
    print("Measurement probabilities:")
    print(probability_histogram(result.state))
    print()
    print("1024 sampled shots:", sample_counts(result.state, shots=1024, seed=7))
    print()

    # The same workflow is available through the session facade that mirrors
    # the web UI's three panels.
    session = QymeraSession()
    session.circuits.add_circuit(circuit, "ghz")
    session.simulations.run("ghz", "memdb")
    print("Same circuit on the embedded columnar engine (memdb):")
    print(session.output.state_table("ghz", "memdb"))


if __name__ == "__main__":
    main()
