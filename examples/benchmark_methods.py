#!/usr/bin/env python3
"""Demo scenario 2 — Simulation Method Benchmarking.

Runs the GHZ-preparation and equal-superposition workloads across every
simulation method (SQLite, the embedded columnar engine, state vector,
sparse map, MPS, decision diagrams), verifying that all methods agree and
reporting execution time and memory, as the paper's benchmarking scenario
does.

Run with:  python examples/benchmark_methods.py
"""

from repro.bench import (
    BenchmarkRunner,
    capacity_ratio,
    memory_table,
    scaling_plot,
    timing_table,
    win_counts,
)
from repro.bench.memory import PAPER_MEMORY_LIMIT_BYTES


def main() -> None:
    runner = BenchmarkRunner()
    sizes = [4, 6, 8, 10]
    print(f"Running GHZ and equal-superposition workloads at sizes {sizes} "
          f"across {len(runner.methods)} methods...\n")
    records = runner.run_suite(["ghz", "superposition"], sizes=sizes)

    mismatches = [record for record in records if record.extra.get("matches_reference") is False]
    print(f"Correctness: {len(records)} runs, {len(mismatches)} disagreements with the reference\n")

    for workload in ("ghz", "superposition"):
        print(f"=== {workload}: wall time (seconds) ===")
        print(timing_table(records, workload))
        print()
        print(f"=== {workload}: peak state memory (bytes) ===")
        print(memory_table(records, workload))
        print()
        print(scaling_plot(records, workload))
        print()

    print("Fastest method per (workload, size):", win_counts(records))
    print()

    # The capacity arithmetic behind the paper's headline claim: under a fixed
    # 2 GB budget, how many qubits can each representation hold for a GHZ state?
    ratio = capacity_ratio(PAPER_MEMORY_LIMIT_BYTES, rows_for_circuit=lambda n: 2)
    print("Capacity under the paper's 2.0 GB memory limit (GHZ workload):")
    print(f"  dense state vector : {ratio['statevector_max_qubits']} qubits")
    print(f"  relational (RDBMS) : {ratio['relational_max_qubits']} qubits "
          "(capped by the 64-bit state-index encoding)")
    print(f"  extra qubits       : {ratio['extra_qubits']}")


if __name__ == "__main__":
    main()
