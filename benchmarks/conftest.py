"""Shared helpers for the benchmark harness.

Every module in this directory regenerates one experiment from DESIGN.md
(the per-experiment index maps experiment ids to modules).  Benchmarks are
written against ``pytest-benchmark``: run them with

    pytest benchmarks/ --benchmark-only

Comparison tables in the paper's format are printed to stdout (pass ``-s`` to
see them live) and the raw records are written to ``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

#: Where bench harnesses drop their CSV/JSON outputs.
RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(title: str, body: str) -> None:
    """Print a paper-style table (visible with ``pytest -s`` and in captured logs)."""
    print(f"\n===== {title} =====\n{body}\n")
