"""E3 — sparse-circuit capacity under a fixed memory budget.

The paper's headline observation (intro, citing appendix B4 / Fig. 10 of the
extended report): under a 2.0 GB memory limit the RDBMS approach simulated up
to 3,118x more qubits than a conventional simulation method for sparse
circuits.  This harness reproduces the *shape* of that result:

* analytically, from the representation sizes (dense 16 * 2^n bytes vs
  relational 24 * rows bytes) under the paper's 2 GB budget;
* empirically, by sweeping GHZ widths under a small laptop-scale budget and
  recording the largest width each method completes.

Expected shape: the RDBMS backends (and the sparse baseline) reach far larger
qubit counts than the dense state vector; the dense representation caps out
as soon as 16 * 2^n exceeds the budget.
"""

import pytest

from repro.backends import MemDBBackend, SQLiteBackend
from repro.bench import BenchmarkRunner, capacity_ratio, capacity_table
from repro.bench.memory import PAPER_MEMORY_LIMIT_BYTES
from repro.circuits import ghz_circuit
from repro.simulators import SparseSimulator, StatevectorSimulator

from conftest import emit

#: Laptop-scale budget used for the empirical sweep (dense vector caps at 10 qubits).
_BUDGET_BYTES = 16 * (1 << 10)
_CANDIDATE_SIZES = [4, 8, 10, 12, 16, 20, 24, 32, 40, 50, 62]


def test_capacity_analytic_report(benchmark):
    """The 2 GB-budget arithmetic behind the paper's 'x more qubits' claim."""
    ratio = benchmark(lambda: capacity_ratio(PAPER_MEMORY_LIMIT_BYTES, rows_for_circuit=lambda n: 2))
    emit(
        "E3 — analytic capacity under the paper's 2.0 GB limit (GHZ: 2 nonzero rows)",
        f"dense state vector : {ratio['statevector_max_qubits']} qubits\n"
        f"relational (RDBMS) : {ratio['relational_max_qubits']} qubits "
        f"(capped by the 64-bit integer state encoding)\n"
        f"extra qubits       : {ratio['extra_qubits']}\n"
        "note: with unbounded integer width the relational representation is "
        "bounded by rows, not qubits — the paper reports a 3,118x larger "
        "simulable qubit count for sparse circuits in the same spirit.",
    )
    assert ratio["statevector_max_qubits"] == 27
    assert ratio["relational_max_qubits"] == 62


def test_capacity_empirical_sweep(benchmark, results_dir):
    """Sweep GHZ widths under a fixed byte budget; record each method's maximum."""
    runner = BenchmarkRunner(
        methods={
            "sqlite": lambda: SQLiteBackend(mode="materialized", max_state_bytes=_BUDGET_BYTES),
            "memdb": lambda: MemDBBackend(mode="materialized", max_state_bytes=_BUDGET_BYTES),
            "sparse": lambda: SparseSimulator(max_state_bytes=_BUDGET_BYTES),
            "statevector": lambda: StatevectorSimulator(max_state_bytes=_BUDGET_BYTES, max_qubits=62),
        },
        verify=False,
    )

    best = benchmark.pedantic(
        lambda: runner.max_simulable_qubits("ghz", _BUDGET_BYTES, _CANDIDATE_SIZES),
        rounds=1,
        iterations=1,
    )

    emit(
        f"E3 — max GHZ qubits completed under a {_BUDGET_BYTES}-byte budget",
        capacity_table(best, _BUDGET_BYTES),
    )
    (results_dir / "e3_capacity.txt").write_text(capacity_table(best, _BUDGET_BYTES))

    # Shape check: every relational/sparse method reaches the 62-qubit encoding
    # limit while the dense vector stops at 10 qubits (16 * 2^10 = budget).
    assert best["statevector"] == 10
    assert best["sqlite"] == 62
    assert best["memdb"] == 62
    assert best["sqlite"] - best["statevector"] >= 50


@pytest.mark.parametrize("num_qubits", [16, 32, 62])
def test_ghz_scaling_on_rdbms(benchmark, num_qubits):
    """RDBMS wall time on sparse circuits grows with gate count, not with 2^n."""
    circuit = ghz_circuit(num_qubits)
    backend = SQLiteBackend(mode="materialized")
    result = benchmark(lambda: backend.run(circuit))
    assert result.peak_state_rows == 2
