"""E6 — demo scenario 2: simulation-method benchmarking.

Runs the two benchmark circuits of the demo (GHZ preparation and the equal
superposition of all states) across every simulation approach in the
Simulation Layer — SQLite, the embedded columnar engine, dense state vector,
sparse hash map, MPS and decision diagrams — and reports execution time and
memory, verifying all methods agree.

Expected shape: on GHZ (sparse) the relational/sparse/DD/MPS methods keep
tiny states and scale past the dense simulator; on the equal superposition
(dense) the dense state vector is the fastest and every sparse-aware
representation degenerates to 2^n entries (except MPS, which stays small
because the state is a product state).
"""

import pytest

from repro.bench import BenchmarkRunner, default_method_factories, memory_table, timing_table
from repro.circuits import ghz_circuit, superposition_circuit

from conftest import emit

_FACTORIES = default_method_factories()
_WORKLOADS = {"ghz": ghz_circuit, "superposition": superposition_circuit}


@pytest.mark.parametrize("method", sorted(_FACTORIES), ids=str)
@pytest.mark.parametrize("workload", sorted(_WORKLOADS), ids=str)
def test_method_timing(benchmark, method, workload):
    """Wall time of every method on the two demo workloads (10 qubits)."""
    circuit = _WORKLOADS[workload](10)
    factory = _FACTORIES[method]
    benchmark.group = f"{workload}-10q"

    result = benchmark(lambda: factory().run(circuit))

    expected_nonzero = 2 if workload == "ghz" else 1 << 10
    assert result.state.num_nonzero == expected_nonzero


def test_method_comparison_report(benchmark, results_dir):
    """The full cross-method comparison table (time and memory) with verification."""
    runner = BenchmarkRunner()  # all six methods, verified against the state vector
    records = benchmark.pedantic(
        lambda: runner.run_suite(["ghz", "superposition"], sizes=[6, 8, 10]),
        rounds=1,
        iterations=1,
    )

    body = []
    for workload in ("ghz", "superposition"):
        body.append(f"--- {workload}: wall time (s) ---\n" + timing_table(records, workload))
        body.append(f"--- {workload}: peak state bytes ---\n" + memory_table(records, workload))
    report = "\n\n".join(body)
    emit("E6 — simulation method comparison", report)
    (results_dir / "e6_method_comparison.txt").write_text(report)

    assert all(record.status == "ok" for record in records)
    assert all(record.extra.get("matches_reference", True) for record in records)

    # Shape checks: sparse-aware methods keep GHZ tiny; dense methods pay 2^n.
    ghz10 = {r.method: r for r in records if r.workload == "ghz" and r.num_qubits == 10}
    assert ghz10["sqlite"].peak_state_rows == 2
    assert ghz10["statevector"].peak_state_rows == 1 << 10
    sup10 = {r.method: r for r in records if r.workload == "superposition" and r.num_qubits == 10}
    assert sup10["sqlite"].peak_state_rows == 1 << 10
