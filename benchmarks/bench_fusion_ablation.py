"""E8 — ablation of the gate-fusion query optimization (Sec. 3.2).

The Translation Layer can fuse runs of consecutive gates that act on a small
common qubit set into a single SQL stage.  This harness times the same
workloads with fusion off and on, and reports the number of pipeline stages
and intermediate tuples saved.

Expected shape: fusion reduces the number of CTE/materialized stages
(and therefore joins); the benefit is largest for gate-dense circuits with
long single/two-qubit runs (QFT, dense-phase), and the final states are
bit-for-bit identical.
"""

import pytest

from repro.backends import SQLiteBackend
from repro.circuits import dense_phase_circuit, ghz_circuit, qft_on_basis_state
from repro.output import comparison_table, states_agree
from repro.sql import fusion_savings

from conftest import emit

_WORKLOADS = {
    "ghz_12": lambda: ghz_circuit(12),
    "qft_8": lambda: qft_on_basis_state(8, 255),
    "dense_phase_8": lambda: dense_phase_circuit(8, rounds=2),
}


@pytest.mark.parametrize("fuse", [False, True], ids=["fusion-off", "fusion-on"])
@pytest.mark.parametrize("workload", sorted(_WORKLOADS), ids=str)
def test_fusion_timing(benchmark, workload, fuse):
    """Wall time with and without gate fusion on SQLite (materialized mode)."""
    circuit = _WORKLOADS[workload]()
    backend = SQLiteBackend(mode="materialized", fuse=fuse, max_fused_qubits=2)
    benchmark.group = f"fusion-{workload}"

    result = benchmark(lambda: backend.run(circuit))

    assert result.state.num_nonzero >= 1


def test_fusion_ablation_report(benchmark, results_dir):
    """Stages saved, intermediate tuples and correctness of the fused pipeline."""

    def collect():
        rows = []
        for name, factory in _WORKLOADS.items():
            circuit = factory()
            plain = SQLiteBackend(mode="materialized").run(circuit)
            fused = SQLiteBackend(mode="materialized", fuse=True).run(circuit)
            savings = fusion_savings(circuit, max_qubits=2)
            rows.append(
                {
                    "workload": name,
                    "stages_plain": len(plain.metadata["step_rows"]),
                    "stages_fused": len(fused.metadata["step_rows"]),
                    "stages_saved": savings["stages_saved"],
                    "tuples_plain": sum(plain.metadata["step_rows"]),
                    "tuples_fused": sum(fused.metadata["step_rows"]),
                    "time_plain_s": plain.wall_time_s,
                    "time_fused_s": fused.wall_time_s,
                    "states_agree": states_agree(plain.state, fused.state, up_to_global_phase=False),
                }
            )
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    table = comparison_table(rows)
    emit("E8 — gate fusion ablation (SQLite, materialized)", table)
    (results_dir / "e8_fusion.txt").write_text(table)

    assert all(row["states_agree"] for row in rows)
    assert all(row["stages_fused"] < row["stages_plain"] for row in rows)
    assert all(row["tuples_fused"] <= row["tuples_plain"] for row in rows)
