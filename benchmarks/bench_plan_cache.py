"""Plan-cache micro-benchmark: cold parse/plan vs cached-plan execution.

The memdb engine memoizes compiled physical plans in an LRU cache keyed by
SQL text.  This harness isolates that effect on the paper's hot query — the
full per-circuit CTE chain of join-aggregate gate steps:

* **cold** — the plan cache is disabled (``PlanCache(0)``), so every
  execution pays tokenize → parse → plan before running;
* **cached** — the same query text hits a warm cache and only re-binds the
  compiled operators against the current tables.

A second experiment times the end-to-end parameter sweep with and without
plan reuse; the paper's repeated-structure sweeps must gain at least 2x.
"""

import time

from repro.backends import MemDBBackend, SQLiteBackend
from repro.backends.memdb.engine import MemDatabase, PlanCache
from repro.bench import ParameterSweep, grid, qaoa_sweep_family
from repro.circuits import qaoa_maxcut_circuit, ring_graph
from repro.output.analysis import states_agree
from repro.sql.translator import translate_circuit

from conftest import emit

_NUM_NODES = 6


def _translation():
    circuit = qaoa_maxcut_circuit(
        _NUM_NODES, edges=ring_graph(_NUM_NODES), p=1, gammas=[0.45], betas=[0.6]
    )
    return translate_circuit(circuit, dialect="memdb")


def _database_with_state(plan_cache: PlanCache) -> tuple[MemDatabase, str]:
    database = MemDatabase(plan_cache=plan_cache)
    translation = _translation()
    for statement in translation.setup_statements():
        database.execute(statement)
    return database, translation.cte_query(pretty=False)


def test_cold_parse_latency(benchmark):
    """Every iteration re-parses and re-plans the whole CTE chain."""
    database, query = _database_with_state(PlanCache(0))
    benchmark.group = "plan-cache-cte-query"
    rows = benchmark(lambda: database.execute(query).rows)
    assert len(rows) > 1


def test_cached_plan_latency(benchmark):
    """Warm cache: execution re-binds the compiled plan, no parsing."""
    cache = PlanCache()
    database, query = _database_with_state(cache)
    database.execute(query)  # compile once
    benchmark.group = "plan-cache-cte-query"
    rows = benchmark(lambda: database.execute(query).rows)
    assert len(rows) > 1
    assert cache.stats()["hits"] > 0


def test_sweep_plan_reuse_speedup(results_dir):
    """Repeated-structure sweep: cached plans must give >= 2x end to end."""
    family = qaoa_sweep_family(_NUM_NODES)
    points = grid({"gamma": [0.2, 0.4, 0.6, 0.8], "beta": [0.4, 0.8, 1.2, 1.5]})

    cold_sweep = ParameterSweep(family, method_factory=lambda: MemDBBackend(plan_cache=PlanCache(0)))
    warm_cache = PlanCache()  # shared across factory calls, unlike a per-backend PlanCache()
    warm_sweep = ParameterSweep(family, method_factory=lambda: MemDBBackend(plan_cache=warm_cache))
    warm_sweep.run(points[:1])  # compile the family's plans once

    started = time.perf_counter()
    cold_results = cold_sweep.run(points)
    cold_seconds = time.perf_counter() - started

    started = time.perf_counter()
    warm_results = warm_sweep.run(points)
    warm_seconds = time.perf_counter() - started

    assert all(result.status == "ok" for result in cold_results + warm_results)
    speedup = cold_seconds / warm_seconds

    # Amplitude parity against SQLite at one representative point.
    circuit = family(points[0])
    memdb_state = MemDBBackend().run(circuit).state
    sqlite_state = SQLiteBackend().run(circuit).state
    assert states_agree(memdb_state, sqlite_state, atol=1e-9, up_to_global_phase=False)

    body = (
        f"16-point QAOA ring sweep ({_NUM_NODES} nodes, memdb backend)\n"
        f"  cold (plan cache disabled): {cold_seconds * 1000:8.1f} ms\n"
        f"  warm (cached plans):        {warm_seconds * 1000:8.1f} ms\n"
        f"  speedup:                    {speedup:8.1f}x"
    )
    emit("Plan-cache ablation — cold parse vs cached plans", body)
    (results_dir / "plan_cache_ablation.txt").write_text(body)

    assert speedup >= 2.0, f"expected >= 2x from plan caching, got {speedup:.2f}x"
