"""Adaptive optimizer benchmark: top-k pushdown and re-planning wins.

Two experiments over the PR's optimizer additions:

* **top-k pushdown** — ``ORDER BY ... LIMIT k`` over a large skewed table,
  executed with the costed top-k operator versus the engine with top-k
  disabled (full sort-then-slice).  The bounded partition pass must win
  >= 3x on warm (plan-cached) executions, with identical rows.
* **adaptive re-plan on a distribution shift** — a query planned while the
  table holds a handful of rows (the cost model correctly picks a full
  sort), after which a bulk INSERT grows the table ~4 orders of magnitude.
  The adaptive engine notices the estimated-vs-actual blow-up on the first
  post-shift execution, flags the cached plan, and every later execution
  runs the re-planned top-k operator; the engine with feedback disabled
  keeps re-binding the stale full-sort plan.  Total post-shift time must
  favour the adaptive engine.
"""

import time

import numpy as np

from repro.backends.memdb.engine import MemDatabase, PlanCache

from conftest import emit


def _timeit(callable_, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


# ---------------------------------------------------------------------------
# Experiment 1: top-k operator vs sort-then-slice
# ---------------------------------------------------------------------------

_TOPK_ROWS = 400_000
_TOPK_QUERY = "SELECT t.id, t.v FROM t ORDER BY t.v LIMIT 10"


def _topk_database(enable_topk: bool) -> MemDatabase:
    """A large table with a skewed (zipf-ish) sort column."""
    db = MemDatabase(plan_cache=PlanCache(), enable_topk=enable_topk)
    db.execute("CREATE TABLE t (id BIGINT NOT NULL, v DOUBLE NOT NULL)")
    rng = np.random.default_rng(42)
    # Heavy skew: most mass near zero, a long tail, plenty of exact ties.
    values = np.round(rng.zipf(1.3, size=_TOPK_ROWS).astype(np.float64) / 4.0, 2)
    chunk = 20_000
    for start in range(0, _TOPK_ROWS, chunk):
        rows = ", ".join(
            f"({index}, {float(values[index])!r})" for index in range(start, start + chunk)
        )
        db.execute(f"INSERT INTO t (id, v) VALUES {rows}")
    return db


def test_topk_speedup_over_sort_then_slice(results_dir):
    """The acceptance gate: >= 3x on ORDER BY ... LIMIT, identical rows."""
    with_topk = _topk_database(enable_topk=True)
    without = _topk_database(enable_topk=False)

    expected = without.execute(_TOPK_QUERY).rows
    actual = with_topk.execute(_TOPK_QUERY).rows
    assert actual == expected and len(actual) == 10

    explain = "\n".join(row[0] for row in with_topk.execute(f"EXPLAIN {_TOPK_QUERY}").rows)
    assert "top-k (k=10)" in explain

    topk_time = _timeit(lambda: with_topk.execute(_TOPK_QUERY), repeats=5)
    sort_time = _timeit(lambda: without.execute(_TOPK_QUERY), repeats=5)
    speedup = sort_time / topk_time

    emit(
        "top-k pushdown (ORDER BY ... LIMIT 10, 400k skewed rows)",
        f"sort-then-slice: {sort_time * 1000:8.2f} ms\n"
        f"top-k operator:  {topk_time * 1000:8.2f} ms\n"
        f"speedup:         {speedup:8.2f}x",
    )
    (results_dir / "adaptive_topk.txt").write_text(
        f"sort_ms={sort_time * 1000:.3f}\ntopk_ms={topk_time * 1000:.3f}\nspeedup={speedup:.2f}\n"
    )
    assert speedup >= 3.0, f"expected >= 3x from top-k pushdown, got {speedup:.2f}x"


# ---------------------------------------------------------------------------
# Experiment 2: adaptive re-plan vs stale plan on a distribution shift
# ---------------------------------------------------------------------------

_SHIFT_SEED_ROWS = 20
_SHIFT_BULK_ROWS = 250_000
_SHIFT_EXECUTIONS = 8
_SHIFT_QUERY = "SELECT f.x, f.y FROM f ORDER BY f.y LIMIT 10"


def _shift_database(enable_adaptive: bool) -> MemDatabase:
    db = MemDatabase(plan_cache=PlanCache(), enable_adaptive=enable_adaptive)
    db.execute("CREATE TABLE f (x BIGINT NOT NULL, y DOUBLE NOT NULL)")
    rows = ", ".join(f"({i % 5}, {i}.0)" for i in range(_SHIFT_SEED_ROWS))
    db.execute(f"INSERT INTO f (x, y) VALUES {rows}")
    # Plan (and cache) the query against the tiny table: sort wins at n=20.
    db.execute(_SHIFT_QUERY)
    # The shift: the table grows by four orders of magnitude.
    chunk = 25_000
    for start in range(0, _SHIFT_BULK_ROWS, chunk):
        rows = ", ".join(
            f"({i % 7}, {i % 9973}.5)" for i in range(start, start + chunk)
        )
        db.execute(f"INSERT INTO f (x, y) VALUES {rows}")
    return db


def _post_shift_seconds(db: MemDatabase) -> tuple[float, list]:
    rows = None
    started = time.perf_counter()
    for _ in range(_SHIFT_EXECUTIONS):
        rows = db.execute(_SHIFT_QUERY).rows
    return time.perf_counter() - started, rows


def test_adaptive_replan_beats_stale_plan(results_dir):
    """Post-shift executions: adaptive re-plan must beat the pinned stale plan."""
    adaptive = _shift_database(enable_adaptive=True)
    pinned = _shift_database(enable_adaptive=False)

    adaptive_seconds, adaptive_rows = _post_shift_seconds(adaptive)
    pinned_seconds, pinned_rows = _post_shift_seconds(pinned)
    assert adaptive_rows == pinned_rows and len(adaptive_rows) == 10

    stats = adaptive.adaptive_stats()
    assert stats["replans"] >= 1, "adaptive engine never re-planned"
    assert adaptive.plan_cache.stats()["replans"] >= 1
    assert pinned.adaptive_stats()["replans"] == 0

    ratio = pinned_seconds / adaptive_seconds
    emit(
        f"adaptive re-plan on a distribution shift ({_SHIFT_EXECUTIONS} post-shift executions)",
        f"stale plan (feedback off): {pinned_seconds * 1000:8.2f} ms\n"
        f"adaptive re-plan:          {adaptive_seconds * 1000:8.2f} ms\n"
        f"speedup:                   {ratio:8.2f}x\n"
        f"replans: {stats['replans']}, corrections: {stats['corrections']}",
    )
    (results_dir / "adaptive_replan.txt").write_text(
        f"stale_ms={pinned_seconds * 1000:.3f}\nadaptive_ms={adaptive_seconds * 1000:.3f}\n"
        f"speedup={ratio:.2f}\nreplans={stats['replans']}\n"
    )
    assert ratio >= 1.5, f"adaptive re-plan should beat the stale plan, got {ratio:.2f}x"
