"""Optimizer benchmark: rewrite + join-ordering wins, and non-regression.

Three experiments over the cost-based optimizer subsystem:

* **multi-join ordering + pushdown** — a three-table star query whose
  written join order materializes a huge intermediate; the optimizer's
  UES-guided greedy order plus predicate pushdown must win >= 1.3x on warm
  (plan-cached) executions.  This is the acceptance gate for the subsystem.
* **multi-gate CTE chains / dense random circuits** — the paper's hot
  workloads (from ``bench/workloads.py``) run end to end with the optimizer
  on vs off; constant folding trims per-execution numpy broadcasts, and the
  assertion is a non-regression bound (the chain is join-dominated, so the
  win is small but must never become a loss).
* **plan-cache interaction** — the optimizer runs on the *cold* path only;
  a warm cached execution must still beat a cache-disabled execution by
  >= 2x on the gate CTE chain, preserving the PR 1 plan-cache result.
"""

import time

from repro.backends.memdb.engine import MemDatabase, PlanCache
from repro.bench import get_workload
from repro.sql.translator import translate_circuit

from conftest import emit


def _timeit(callable_, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


# ---------------------------------------------------------------------------
# Experiment 1: multi-join ordering + predicate pushdown
# ---------------------------------------------------------------------------

_FACT_ROWS = 20000
_DIM_ROWS = 2000
_FILTER_ROWS = 1000

_STAR_QUERY = (
    "SELECT c.k AS k, SUM(a.payload * b.scale) AS total "
    "FROM a JOIN b ON b.j = a.j JOIN c ON c.k = a.k "
    "WHERE c.sel = 1 "
    "GROUP BY c.k ORDER BY k"
)


def _star_database(enable_optimizer: bool) -> MemDatabase:
    """a (fact) fans out hugely onto b; c selects a handful of a's rows.

    Written order joins a><b first (~200k intermediate rows); the optimizer
    should join the filtered c first (10 surviving rows), then b.
    """
    db = MemDatabase(plan_cache=PlanCache(), enable_optimizer=enable_optimizer)
    db.execute("CREATE TABLE a (k BIGINT NOT NULL, j BIGINT NOT NULL, payload DOUBLE NOT NULL)")
    db.execute("CREATE TABLE b (j BIGINT NOT NULL, scale DOUBLE NOT NULL)")
    db.execute("CREATE TABLE c (k BIGINT NOT NULL, sel BIGINT NOT NULL)")
    chunk = 2000
    for start in range(0, _FACT_ROWS, chunk):
        rows = ", ".join(
            f"({index}, {index % 200}, {(index % 97) * 0.5:.1f})"
            for index in range(start, min(start + chunk, _FACT_ROWS))
        )
        db.execute(f"INSERT INTO a (k, j, payload) VALUES {rows}")
    rows = ", ".join(f"({index % 200}, {1.0 + (index % 5) * 0.25})" for index in range(_DIM_ROWS))
    db.execute(f"INSERT INTO b (j, scale) VALUES {rows}")
    rows = ", ".join(f"({index * 7}, {1 if index < 10 else 0})" for index in range(_FILTER_ROWS))
    db.execute(f"INSERT INTO c (k, sel) VALUES {rows}")
    db.execute("ANALYZE")
    return db


def test_join_order_and_pushdown_speedup(results_dir):
    """The acceptance gate: >= 1.3x on a multi-join workload, same results."""
    baseline = _star_database(enable_optimizer=False)
    optimized = _star_database(enable_optimizer=True)

    expected = baseline.execute(_STAR_QUERY).rows  # also warms the plan cache
    actual = optimized.execute(_STAR_QUERY).rows
    assert len(expected) == len(actual) > 0
    for left, right in zip(expected, actual):
        assert left[0] == right[0]
        assert abs(left[1] - right[1]) <= 1e-6 * max(1.0, abs(left[1]))

    baseline_seconds = _timeit(lambda: baseline.execute(_STAR_QUERY), repeats=5)
    optimized_seconds = _timeit(lambda: optimized.execute(_STAR_QUERY), repeats=5)
    speedup = baseline_seconds / optimized_seconds

    explain = "\n".join(
        row[0] for row in optimized.execute(f"EXPLAIN {_STAR_QUERY}").rows
    )
    body = (
        f"3-table star join ({_FACT_ROWS} x {_DIM_ROWS} x {_FILTER_ROWS} rows, warm plans)\n"
        f"  written order (optimizer off): {baseline_seconds * 1000:8.2f} ms\n"
        f"  cost-based order + pushdown:   {optimized_seconds * 1000:8.2f} ms\n"
        f"  speedup:                       {speedup:8.2f}x\n\n{explain}"
    )
    emit("Optimizer — multi-join ordering + predicate pushdown", body)
    (results_dir / "optimizer_join_order.txt").write_text(body)

    assert "reordered from" in explain
    assert speedup >= 1.3, f"expected >= 1.3x from join ordering, got {speedup:.2f}x"


# ---------------------------------------------------------------------------
# Experiment 2: multi-gate CTE chains and dense random circuits
# ---------------------------------------------------------------------------


def _chain_query_times(workload_name: str, num_qubits: int) -> tuple[float, float]:
    """Warm CTE-chain execution times (optimizer on, optimizer off).

    Times only the repeated execution of the compiled per-gate chain — the
    part the rewrites change — not translation or table setup, so the
    comparison is stable under load.
    """
    circuit = get_workload(workload_name).build(num_qubits)
    translation = translate_circuit(circuit, dialect="memdb")
    query = translation.cte_query(pretty=False)
    times = []
    for enabled in (True, False):
        database = MemDatabase(plan_cache=PlanCache(), enable_optimizer=enabled)
        for statement in translation.setup_statements():
            database.execute(statement)
        database.execute(query)  # compile + cache the chain once
        times.append(_timeit(lambda: database.execute(query), repeats=7))
    return times[0], times[1]


def test_cte_chain_and_dense_circuit_non_regression(results_dir):
    """Optimized CTE chains must not lose to as-written compilation."""
    lines = []
    ratios = []
    for workload_name, num_qubits in (("qaoa_ring", 6), ("random_dense", 8)):
        on_seconds, off_seconds = _chain_query_times(workload_name, num_qubits)
        ratio = off_seconds / on_seconds
        ratios.append(ratio)
        lines.append(
            f"  {workload_name:13s} ({num_qubits} qubits): optimizer on {on_seconds * 1000:7.2f} ms, "
            f"off {off_seconds * 1000:7.2f} ms ({ratio:5.2f}x)"
        )
    body = "Multi-gate CTE chains, warm plans (chain query execution)\n" + "\n".join(lines)
    emit("Optimizer — gate-chain workloads (constant folding)", body)
    (results_dir / "optimizer_gate_chains.txt").write_text(body)
    # Join-dominated chains: require no meaningful regression (noise margin).
    for ratio in ratios:
        assert ratio >= 0.8, f"optimizer made a gate chain {1 / ratio:.2f}x slower"


# ---------------------------------------------------------------------------
# Experiment 3: the PR 1 plan-cache result still holds with the optimizer
# ---------------------------------------------------------------------------


def test_plan_cache_speedup_preserved(results_dir):
    """Warm cached plans must still beat cache-disabled execution >= 2x."""
    circuit = get_workload("qaoa_ring").build(6)
    translation = translate_circuit(circuit, dialect="memdb")
    query = translation.cte_query(pretty=False)

    cold = MemDatabase(plan_cache=PlanCache(0))
    warm = MemDatabase(plan_cache=PlanCache())
    for database in (cold, warm):
        for statement in translation.setup_statements():
            database.execute(statement)
    warm.execute(query)  # compile once

    cold_seconds = _timeit(lambda: cold.execute(query), repeats=5)
    warm_seconds = _timeit(lambda: warm.execute(query), repeats=5)
    speedup = cold_seconds / warm_seconds

    body = (
        "Gate CTE chain (qaoa_ring, 6 qubits), optimizer enabled\n"
        f"  cold (parse+optimize+plan each run): {cold_seconds * 1000:8.2f} ms\n"
        f"  warm (cached plan, re-bound):        {warm_seconds * 1000:8.2f} ms\n"
        f"  speedup:                             {speedup:8.2f}x"
    )
    emit("Optimizer — plan-cache non-regression", body)
    (results_dir / "optimizer_plan_cache.txt").write_text(body)
    assert speedup >= 2.0, f"plan caching degraded below 2x: {speedup:.2f}x"
