"""Window-kernel benchmark: vectorized sort-once kernels vs a Python loop.

Two experiments over the hierarchical XPath-style tree workload
(`repro.bench.workloads.dblp_tree_columns` — a DBLP-shaped document tree
with pre/post-order node encodings):

* **window kernel speedup** — the sibling-position / venue-rank / running-
  score query (`tree_sibling_window_sql`) run by the engine's vectorized
  segment-boundary kernels vs a faithful per-partition Python loop baseline
  that receives the rows pre-extracted (so the baseline pays for none of the
  engine's scan or materialization work).  Rows must match exactly; the
  vectorized engine must win >= 2x at full scale.
* **recursive descendant parity** — the XPath descendant axis computed two
  ways: a recursive CTE over the parent edge and the pre/post interval
  containment join.  Both must return the identical node set, and the
  EXPLAIN ANALYZE plan must surface the recursive fixpoint operator.

``REPRO_BENCH_WINDOW_ROWS`` scales the tree (default 120,000 nodes; CI smoke
jobs set it smaller — the 2x gate is only enforced at full scale, row
equality always is).
"""

import os
import time
from collections import defaultdict

import pytest

from repro.backends.memdb.engine import MemDatabase, PlanCache
from repro.bench.workloads import (
    dblp_tree_columns,
    tree_descendants_interval_sql,
    tree_descendants_recursive_sql,
    tree_sibling_window_sql,
)

from conftest import emit

_FULL_TREE_ROWS = 120_000
_TREE_ROWS = int(os.environ.get("REPRO_BENCH_WINDOW_ROWS", _FULL_TREE_ROWS))
_RECURSION_ROWS = min(_TREE_ROWS, 30_000)


def _load_tree(num_nodes: int) -> MemDatabase:
    db = MemDatabase(plan_cache=PlanCache(maxsize=8))
    db.create_table_from_columns("tree", dblp_tree_columns(num_nodes))
    db.execute("ANALYZE")
    return db


def _python_window_baseline(rows):
    """Per-partition Python loop computing the same three window columns.

    ``rows`` are pre-extracted ``(parent, pre, id, venue, score)`` tuples;
    the baseline groups/sorts per partition and walks each partition with a
    plain loop — the implementation the vectorized kernels replace.
    """
    by_parent = defaultdict(list)
    by_venue = defaultdict(list)
    for row in rows:
        by_parent[row[0]].append(row)
        by_venue[row[3]].append(row)

    sibling_pos = {}
    running_score = {}
    for members in by_parent.values():
        members.sort(key=lambda row: row[1])
        running = 0.0
        for position, row in enumerate(members, start=1):
            sibling_pos[row[2]] = position
            running += row[4]
            running_score[row[2]] = running

    venue_rank = {}
    for members in by_venue.values():
        members.sort(key=lambda row: (-row[4], row[2]))
        previous_key = None
        rank = 0
        for position, row in enumerate(members, start=1):
            key = (-row[4], row[2])
            if key != previous_key:
                rank = position
                previous_key = key
            venue_rank[row[2]] = rank

    out = [
        (row[0], row[1], row[2], sibling_pos[row[2]], venue_rank[row[2]], running_score[row[2]])
        for row in rows
    ]
    out.sort(key=lambda row: (row[0], row[1]))
    return out


def _normalize(rows):
    return [
        tuple(round(value, 7) if isinstance(value, float) else value for value in row)
        for row in rows
    ]


def _timeit(callable_, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def test_window_kernels_beat_python_loop(results_dir):
    """Identical rows always; >= 2x vectorized vs Python loop at full scale."""
    db = _load_tree(_TREE_ROWS)
    query = tree_sibling_window_sql()
    base_rows = db.execute("SELECT parent, pre, id, venue, score FROM tree").rows

    expected = _normalize(_python_window_baseline(base_rows))
    actual = _normalize(db.execute(query).rows)
    assert actual == expected, "vectorized window kernels diverged from the Python loop"

    engine_time = _timeit(lambda: db.execute(query), repeats=3)
    python_time = _timeit(lambda: _python_window_baseline(base_rows), repeats=3)
    speedup = python_time / engine_time

    emit(
        f"window kernels vs per-partition Python loop ({_TREE_ROWS:,} tree nodes)",
        f"python loop:    {python_time * 1000:8.2f} ms (rows pre-extracted)\n"
        f"vectorized:     {engine_time * 1000:8.2f} ms (full query incl. scan)\n"
        f"speedup:        {speedup:8.2f}x (gate >= 2x at {_FULL_TREE_ROWS:,} rows)",
    )
    (results_dir / "window_kernels.txt").write_text(
        f"python_ms={python_time * 1000:.3f}\nengine_ms={engine_time * 1000:.3f}\n"
        f"speedup={speedup:.2f}\nrows={_TREE_ROWS}\n"
    )

    if _TREE_ROWS < _FULL_TREE_ROWS:
        pytest.skip(
            f"speedup gate needs the full {_FULL_TREE_ROWS:,}-node tree "
            f"(REPRO_BENCH_WINDOW_ROWS={_TREE_ROWS}); rows verified identical, "
            f"measured {speedup:.2f}x"
        )
    assert speedup >= 2.0, f"expected >= 2x from vectorized kernels, got {speedup:.2f}x"


def test_recursive_descendants_match_interval_encoding(results_dir):
    """Recursive-CTE reachability equals the pre/post interval predicate."""
    db = _load_tree(_RECURSION_ROWS)
    recursive_sql = tree_descendants_recursive_sql(0)
    interval_sql = tree_descendants_interval_sql(0)

    recursive_rows = db.execute(recursive_sql).rows
    interval_rows = db.execute(interval_sql).rows
    assert recursive_rows == interval_rows, "descendant axis encodings disagree"
    assert len(recursive_rows) == _RECURSION_ROWS  # the whole tree hangs off node 0

    plan = "\n".join(row[0] for row in db.execute(f"EXPLAIN ANALYZE {recursive_sql}").rows)
    assert "recursive-fixpoint" in plan and "iterations=" in plan

    recursive_time = _timeit(lambda: db.execute(recursive_sql), repeats=3)
    interval_time = _timeit(lambda: db.execute(interval_sql), repeats=3)
    emit(
        f"descendant axis: recursion vs pre/post intervals ({_RECURSION_ROWS:,} nodes)",
        f"recursive CTE:  {recursive_time * 1000:8.2f} ms\n"
        f"interval join:  {interval_time * 1000:8.2f} ms\n"
        f"(same {len(recursive_rows):,} descendants either way)",
    )
    (results_dir / "window_recursive_parity.txt").write_text(
        f"recursive_ms={recursive_time * 1000:.3f}\ninterval_ms={interval_time * 1000:.3f}\n"
        f"nodes={_RECURSION_ROWS}\n"
    )
