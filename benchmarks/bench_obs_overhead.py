"""Tracing overhead gates: observability must be (near) free when off.

The tracer's design contract (see ``repro/obs/tracing.py``) is priced here
on the plan-cache benchmark workload — the paper's hot query, a warm-cache
CTE chain of join-aggregate gate steps:

* **baseline** — the untraced execution body called directly, bypassing
  even the ``tracer is None`` branch in ``MemDatabase.execute``;
* **disabled** — the public ``execute`` with tracing off: the branch is the
  only addition, so this must stay within **2%** of baseline (plus a small
  absolute slack: at microsecond scale a ratio alone is all noise);
* **enabled** — a full tracer with ring buffer, metrics registry and slow
  log: span trees for every stage/block/operator must cost at most **10%**
  over the disabled path on this workload.

Timings are best-of-N round minima: the minimum over many identical rounds
estimates the noise floor, which is the right statistic for a ratio gate
(means smear scheduler hiccups into false failures).
"""

import gc
import time

from repro.backends.memdb.engine import MemDatabase, PlanCache
from repro.circuits import qaoa_maxcut_circuit, ring_graph
from repro.obs import MetricsRegistry, SlowQueryLog, TraceRingBuffer, Tracer
from repro.sql.translator import translate_circuit

from conftest import emit

_NUM_NODES = 6
_QUERIES_PER_ROUND = 5
_ROUNDS = 40
#: Absolute per-round noise floor subtracted before the ratio gates.  Two
#: paths doing *identical* work still differ by a run-level percent or two:
#: each interpreter start lays code and dicts out differently (ASLR, hash
#: seeds), and that bias survives medians and minima alike because it is
#: constant within a run.  300us on a ~15ms round (~2%) covers the layout
#: bias plus timer resolution; a real regression of one extra millisecond
#: per round still trips either gate unambiguously.
_ABS_SLACK_S = 3e-4
_DISABLED_OVERHEAD_LIMIT = 0.02
_ENABLED_OVERHEAD_LIMIT = 0.10


def _warm_database(tracer: Tracer | None) -> tuple[MemDatabase, str]:
    database = MemDatabase(plan_cache=PlanCache(maxsize=64), tracer=tracer)
    circuit = qaoa_maxcut_circuit(
        _NUM_NODES, edges=ring_graph(_NUM_NODES), p=1, gammas=[0.45], betas=[0.6]
    )
    translation = translate_circuit(circuit, dialect="memdb")
    for statement in translation.setup_statements():
        database.execute(statement)
    query = translation.cte_query(pretty=False)
    database.execute(query)  # compile once: every timed run is a cache hit
    return database, query


def _paired_rounds(runs: list, rounds_count: int = _ROUNDS, per_round: int = _QUERIES_PER_ROUND) -> list[list[float]]:
    """Per-round times for every configuration, rounds interleaved.

    Interleaving matters: host speed drifts over seconds (frequency
    scaling, noisy neighbours), so timing each configuration in its own
    contiguous block hands whichever ran during the fast phase an unearned
    win.  Round-robin rounds give each round one measurement per
    configuration under (nearly) the same machine conditions, so the
    *paired ratio* within a round cancels the drift that absolute times
    cannot.

    The in-round order also rotates every round: each configuration leaves the
    caches in its own state, and with a fixed order that pollution is
    always billed to the same successor — measured at 2-3 points of pure
    position bias on this workload.  Rotation spreads it evenly, so the
    paired ratios compare like with like.
    """
    rounds: list[list[float]] = []
    # The cyclic collector is paused while timing (standard ratio-benchmark
    # hygiene): a gen-2 collection is a multi-millisecond pause billed to
    # whichever configuration happens to trip the allocation threshold,
    # which at a 2% gate is pure noise.  Span trees are refcount-freed
    # (spans drop their parent backref on exit), so no trace garbage
    # accumulates while the collector is off.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for round_index in range(rounds_count):
            times = [0.0] * len(runs)
            offset = round_index % len(runs)
            for position in range(len(runs)):
                index = (position + offset) % len(runs)
                run = runs[index]
                started = time.perf_counter()
                for _ in range(per_round):
                    run()
                times[index] = time.perf_counter() - started
            rounds.append(times)
    finally:
        if gc_was_enabled:
            gc.enable()
    return rounds


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def test_observability_overhead_gates(results_dir):
    baseline_db, query = _warm_database(tracer=None)
    disabled_db, _ = _warm_database(tracer=None)
    tracer = Tracer(
        registry=MetricsRegistry(),
        ring=TraceRingBuffer(64),
        slow_log=SlowQueryLog(threshold_s=10.0),
    )
    enabled_db, _ = _warm_database(tracer=tracer)

    rounds = _paired_rounds(
        [
            lambda: baseline_db._execute_script(query),
            lambda: disabled_db.execute(query),
            lambda: enabled_db.execute(query),
        ]
    )
    baseline_s = min(times[0] for times in rounds)
    disabled_s = min(times[1] for times in rounds)
    enabled_s = min(times[2] for times in rounds)
    # The gated statistic: the median of within-round ratios.  A round's
    # three measurements run back to back under the same machine conditions,
    # so the ratio cancels drift; the median ignores outlier rounds.  An
    # absolute slack floor keeps timer resolution out of the ratio.
    disabled_overhead = _median(
        [(times[1] - _ABS_SLACK_S) / times[0] for times in rounds]
    ) - 1.0
    enabled_overhead = _median(
        [(times[2] - _ABS_SLACK_S) / times[1] for times in rounds]
    ) - 1.0
    emit(
        "observability overhead (median of %d paired rounds x %d queries)"
        % (_ROUNDS, _QUERIES_PER_ROUND),
        "\n".join(
            [
                f"baseline (no branch):  {baseline_s * 1e3:9.3f} ms/round best",
                f"tracing disabled:      {disabled_s * 1e3:9.3f} ms/round best  "
                f"({disabled_overhead:+.2%} vs baseline, gate {_DISABLED_OVERHEAD_LIMIT:.0%})",
                f"tracing enabled:       {enabled_s * 1e3:9.3f} ms/round best  "
                f"({enabled_overhead:+.2%} vs disabled, gate {_ENABLED_OVERHEAD_LIMIT:.0%})",
            ]
        ),
    )

    assert tracer.traces >= _ROUNDS * _QUERIES_PER_ROUND, "the enabled engine never traced"
    assert disabled_overhead <= _DISABLED_OVERHEAD_LIMIT, (
        f"disabled-mode tracing costs {disabled_overhead:+.2%} over baseline "
        f"(gate: {_DISABLED_OVERHEAD_LIMIT:.0%})"
    )
    assert enabled_overhead <= _ENABLED_OVERHEAD_LIMIT, (
        f"enabled-mode tracing costs {enabled_overhead:+.2%} over the disabled path "
        f"(gate: {_ENABLED_OVERHEAD_LIMIT:.0%})"
    )


#: Serving-path gate: end-to-end HTTP submit+wait with full request tracing
#: (sample_rate=1.0, every span recorded and sealed) must cost at most 5%
#: over the identical stack with tracing off.  Fewer rounds than the engine
#: gate — each round is several full HTTP round trips, so the per-round
#: time is milliseconds and the paired ratio is already stable.
_SERVING_ROUNDS = 10
_SERVING_JOBS_PER_ROUND = 3
_SERVING_OVERHEAD_LIMIT = 0.05


def test_serving_tracing_overhead_gate(results_dir):
    """Sampled request tracing adds <= 5% p50 to HTTP submit+wait latency."""
    from repro.bench.loadgen import ServingClient
    from repro.circuits import ghz_circuit
    from repro.service.server import ServerThread, TenantQuota, build_server

    circuit = ghz_circuit(3)
    untraced = build_server(max_workers=2, tracing=False)
    traced = build_server(
        max_workers=2,
        tracing=True,
        default_quota=TenantQuota(sample_rate=1.0),
        slow_threshold_s=60.0,
    )
    try:
        with ServerThread(untraced) as (host_u, port_u), ServerThread(traced) as (host_t, port_t):
            clients = [ServingClient(host_u, port_u), ServingClient(host_t, port_t)]

            def make_run(client: ServingClient):
                def run() -> None:
                    status, body = client.submit(circuit, method="memdb", tenant="bench")
                    assert status == 202, body
                    final = client.wait(body["job_id"], timeout=60.0, interval=0.002)
                    assert final.get("status") == "done", final
                return run

            runs = [make_run(client) for client in clients]
            for run in runs:  # warm engines, plan caches, HTTP path
                for _ in range(3):
                    run()
            rounds = _paired_rounds(
                runs, rounds_count=_SERVING_ROUNDS, per_round=_SERVING_JOBS_PER_ROUND
            )
        untraced_s = _median([times[0] for times in rounds])
        traced_s = _median([times[1] for times in rounds])
        overhead = _median(
            [(times[1] - _ABS_SLACK_S) / times[0] for times in rounds]
        ) - 1.0
        store = traced.service.tracer.request_store
        store_stats = store.stats()
        emit(
            "serving-path tracing overhead (median of %d paired rounds x %d jobs)"
            % (_SERVING_ROUNDS, _SERVING_JOBS_PER_ROUND),
            "\n".join(
                [
                    f"untraced submit+wait:  {untraced_s * 1e3:9.3f} ms/round median",
                    f"traced submit+wait:    {traced_s * 1e3:9.3f} ms/round median  "
                    f"({overhead:+.2%} vs untraced, gate {_SERVING_OVERHEAD_LIMIT:.0%})",
                    f"traces retained:       {store_stats['retained']}",
                ]
            ),
        )
        expected = 3 + _SERVING_ROUNDS * _SERVING_JOBS_PER_ROUND
        assert store_stats["retained"] >= expected, (
            f"traced server retained {store_stats['retained']} traces, "
            f"expected at least {expected} — the traced side never actually traced"
        )
        assert overhead <= _SERVING_OVERHEAD_LIMIT, (
            f"request tracing costs {overhead:+.2%} on HTTP submit+wait "
            f"(gate: {_SERVING_OVERHEAD_LIMIT:.0%})"
        )
    finally:
        traced.service.shutdown(wait=False)
        untraced.service.shutdown(wait=False)


def test_annotate_current_is_cheap_when_off():
    """The hot-path morsel hook must be nanoseconds when no span is active."""
    from repro.obs.tracing import annotate_current

    iterations = 100_000
    started = time.perf_counter()
    for _ in range(iterations):
        annotate_current("never_recorded")
    per_call = (time.perf_counter() - started) / iterations
    # Generous bound: one thread-local lookup plus a truthiness check.
    assert per_call < 5e-6, f"annotate_current costs {per_call * 1e9:.0f}ns per call"
