"""Columnar storage v2 benchmark: dictionary encoding speed and footprint gates.

Two experiments over the encoded storage layer (`backends/memdb/column.py`):

* **string-heavy join+aggregate speedup** — a text-keyed join feeding a
  text-keyed GROUP BY over a multi-million-row fact table, run by two
  otherwise identical 4-worker parallel engines: one storing TEXT as
  dictionary codes (int32 + sorted dictionary), one storing numpy ``object``
  arrays (the ``enable_dict_encoding=False`` ablation).  Rows must be
  byte-identical; the encoded engine must win >= 2x, because grouping,
  joining and partitioning operate on integer codes instead of re-encoding
  millions of Python strings per query.  The storage split (codes +
  dictionary + validity bitmap vs object references) is reported alongside.
* **small numeric parity** — a numeric-only query at a size where encoding
  cannot help: the encoded engine may not lose more than 10% (>= 0.9x),
  proving the representation change is free when no TEXT is involved.

``REPRO_BENCH_COLUMNAR_ROWS`` scales the fact table (default 10,000,000;
CI smoke jobs set it smaller — the speedup gate is only enforced at full
scale, parity and byte-equality always are).
"""

import os
import time

import numpy as np
import pytest

from repro.backends.memdb.engine import MemDatabase, PlanCache
from repro.backends.memdb.parallel import WorkerPool
from repro.bench.memory import encoded_storage_report

from conftest import emit

#: Workers both engines plan for (the acceptance-gate setting).
WORKERS = 4

_FULL_FACT_ROWS = 10_000_000
_FACT_ROWS = int(os.environ.get("REPRO_BENCH_COLUMNAR_ROWS", _FULL_FACT_ROWS))
_DIM_ROWS = 4_096
_GROUPS = 64
_SMALL_FACT_ROWS = 2_000

_TEXT_JOIN_AGG_QUERY = (
    "SELECT f.g AS g, SUM(f.v * d.w) AS s, COUNT(*) AS n "
    "FROM f JOIN d ON f.k = d.id GROUP BY f.g"
)
_NUMERIC_QUERY = (
    "SELECT f.g AS g, SUM(f.v) AS s, COUNT(*) AS n FROM f GROUP BY f.g"
)


def _effective_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _load_text(db: MemDatabase, fact_rows: int, seed: int = 42) -> None:
    rng = np.random.default_rng(seed)
    dim_keys = np.array([f"sku-{i:05d}" for i in range(_DIM_ROWS)], dtype=object)
    group_names = np.array([f"region-{i:03d}" for i in range(_GROUPS)], dtype=object)
    db.create_table_from_columns(
        "f",
        {
            "id": np.arange(fact_rows, dtype=np.int64),
            "k": dim_keys[rng.integers(0, _DIM_ROWS, fact_rows)],
            "g": group_names[rng.integers(0, _GROUPS, fact_rows)],
            "v": np.round(rng.normal(size=fact_rows), 4),
        },
    )
    db.create_table_from_columns(
        "d",
        {
            "id": dim_keys.copy(),
            "w": np.round(np.linspace(-1.0, 1.0, _DIM_ROWS), 4),
        },
    )
    db.execute("ANALYZE")


def _load_numeric(db: MemDatabase, fact_rows: int, seed: int = 42) -> None:
    rng = np.random.default_rng(seed)
    db.create_table_from_columns(
        "f",
        {
            "id": np.arange(fact_rows, dtype=np.int64),
            "g": rng.integers(0, _GROUPS, fact_rows),
            "v": np.round(rng.normal(size=fact_rows), 4),
        },
    )
    db.execute("ANALYZE")


def _engine(dict_encoding: bool, pool: WorkerPool) -> MemDatabase:
    return MemDatabase(
        plan_cache=PlanCache(maxsize=8),
        enable_parallel=True,
        parallel_workers=WORKERS,
        worker_pool=pool,
        enable_dict_encoding=dict_encoding,
    )


def _timeit(callable_, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def _timeit_paired(first, second, repeats: int) -> tuple[float, float]:
    """Interleaved best-of timing so clock drift hits both candidates alike."""
    best_first = best_second = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        first()
        best_first = min(best_first, time.perf_counter() - started)
        started = time.perf_counter()
        second()
        best_second = min(best_second, time.perf_counter() - started)
    return best_first, best_second


def _storage_lines(report: dict) -> str:
    text_cols = {
        f"{table}.{column}": stats
        for table, table_stats in report["tables"].items()
        for column, stats in table_stats["columns"].items()
        if stats["kind"] in ("dict", "object")
    }
    lines = [
        f"total stored:       {report['total_bytes'] / 1e6:10.2f} MB "
        f"(data {report['data_bytes'] / 1e6:.2f} / dict {report['dictionary_bytes'] / 1e6:.2f}"
        f" / validity {report['validity_bytes'] / 1e6:.2f})"
    ]
    for name, stats in sorted(text_cols.items()):
        total = stats["data_bytes"] + stats["dictionary_bytes"] + stats["validity_bytes"]
        lines.append(
            f"{name:<8s} [{stats['kind']}] {total / 1e6:10.2f} MB "
            f"(ndv {stats['dictionary_size']}, nulls {stats['null_count']})"
        )
    return "\n".join(lines)


def test_dictionary_encoding_join_aggregate_speedup(results_dir):
    """Byte-identical results always; >= 2x dict-on vs dict-off at full scale."""
    pool = WorkerPool(WORKERS)
    encoded = _engine(True, pool)
    ablated = _engine(False, pool)
    try:
        _load_text(encoded, _FACT_ROWS)
        _load_text(ablated, _FACT_ROWS)

        expected = ablated.execute(_TEXT_JOIN_AGG_QUERY).rows
        actual = encoded.execute(_TEXT_JOIN_AGG_QUERY).rows
        assert actual == expected, "dictionary-encoded engine diverged from object arrays"

        encoded_time = _timeit(lambda: encoded.execute(_TEXT_JOIN_AGG_QUERY), repeats=3)
        ablated_time = _timeit(lambda: ablated.execute(_TEXT_JOIN_AGG_QUERY), repeats=3)
        speedup = ablated_time / encoded_time
        cpus = _effective_cpus()

        encoded_report = encoded_storage_report(encoded.storage_stats())
        ablated_report = encoded_storage_report(ablated.storage_stats())
        emit(
            f"dictionary-encoded join+aggregate ({_FACT_ROWS:,} x {_DIM_ROWS:,} rows, {WORKERS} workers)",
            f"object arrays:  {ablated_time * 1000:8.2f} ms\n"
            f"dict codes:     {encoded_time * 1000:8.2f} ms\n"
            f"speedup:        {speedup:8.2f}x on {cpus} CPU core(s)\n"
            f"--- dict-encoded storage ---\n{_storage_lines(encoded_report)}\n"
            f"--- object-array storage (per-row str objects not counted) ---\n"
            f"{_storage_lines(ablated_report)}",
        )
        (results_dir / "columnar_join_aggregate.txt").write_text(
            f"object_ms={ablated_time * 1000:.3f}\nencoded_ms={encoded_time * 1000:.3f}\n"
            f"speedup={speedup:.2f}\nrows={_FACT_ROWS}\ncpus={cpus}\nworkers={WORKERS}\n"
            f"encoded_bytes={encoded_report['total_bytes']}\n"
            f"object_bytes={ablated_report['total_bytes']}\n"
        )

        if _FACT_ROWS < _FULL_FACT_ROWS:
            pytest.skip(
                f"speedup gate needs the full {_FULL_FACT_ROWS:,}-row table "
                f"(REPRO_BENCH_COLUMNAR_ROWS={_FACT_ROWS}); results verified "
                f"byte-identical, measured {speedup:.2f}x"
            )
        assert speedup >= 2.0, (
            f"expected >= 2x from dictionary codes, got {speedup:.2f}x"
        )
    finally:
        pool.shutdown()


def test_encoding_parity_on_small_numeric_tables(results_dir):
    """Without TEXT the representation change must be free: >= 0.9x parity."""
    pool = WorkerPool(WORKERS)
    encoded = _engine(True, pool)
    ablated = _engine(False, pool)
    try:
        _load_numeric(encoded, _SMALL_FACT_ROWS)
        _load_numeric(ablated, _SMALL_FACT_ROWS)

        expected = ablated.execute(_NUMERIC_QUERY).rows
        assert encoded.execute(_NUMERIC_QUERY).rows == expected

        encoded_time, ablated_time = _timeit_paired(
            lambda: encoded.execute(_NUMERIC_QUERY),
            lambda: ablated.execute(_NUMERIC_QUERY),
            repeats=40,
        )
        ratio = ablated_time / encoded_time

        emit(
            f"small numeric parity ({_SMALL_FACT_ROWS:,} rows: encoding must be free)",
            f"object arrays:  {ablated_time * 1000:8.3f} ms\n"
            f"dict codes:     {encoded_time * 1000:8.3f} ms\n"
            f"ratio:          {ratio:8.2f}x (gate >= 0.9x)",
        )
        (results_dir / "columnar_parity.txt").write_text(
            f"object_ms={ablated_time * 1000:.3f}\nencoded_ms={encoded_time * 1000:.3f}\n"
            f"ratio={ratio:.2f}\n"
        )
        assert ratio >= 0.9, (
            f"encoded engine lost more than 10% on numeric-only input: {ratio:.2f}x"
        )
    finally:
        pool.shutdown()
