"""Executable-reuse benchmark: compile once, bind/execute per sweep point.

The compile-bind-execute API makes parameter-sweep throughput a first-class
path: ``method.compile(template)`` prepares the translation and (on memdb)
the engine's query plans once, and ``executable.execute_batch(grid)``
re-binds them at every point.  This harness pits three ways of running the
same 16-point QAOA sweep against each other:

* **fresh** — a new backend with a cold, disabled plan cache per point
  (compile + parse + plan every time; the pre-PR-1 behaviour);
* **pooled** — today's ``ParameterSweep(reuse_method=True)`` path: one
  backend instance, per-point ``compile().bind().execute()``, plan reuse
  via the engine's cache;
* **batch** — one ``compile`` then ``execute_batch`` over the grid.

The batch path must beat fresh by >= 2x and stay within tolerance of the
pooled path (same plan-cache mechanics, less per-point overhead).
"""

import time

from repro.backends import MemDBBackend, SQLiteBackend
from repro.backends.memdb.engine import PlanCache
from repro.bench import ParameterSweep, grid
from repro.circuits import qaoa_maxcut_circuit, ring_graph
from repro.output.analysis import states_agree

from conftest import emit

_NUM_NODES = 6

#: The batch path may not be slower than pooled reuse_method by more than
#: this factor (both re-bind cached plans; timing noise only).
_PARITY_TOLERANCE = 1.25


def _template():
    return qaoa_maxcut_circuit(_NUM_NODES, edges=ring_graph(_NUM_NODES), p=1)


def _points():
    return grid(
        {
            "gamma[0]": [0.2, 0.4, 0.6, 0.8],
            "beta[0]": [0.4, 0.8, 1.2, 1.5],
        }
    )


def test_execute_batch_beats_fresh_and_matches_pooled(results_dir):
    template = _template()
    points = _points()

    # Fresh backend per point, caching disabled: every point pays
    # translate + tokenize + parse + optimize + plan.
    started = time.perf_counter()
    fresh_results = [
        MemDBBackend(plan_cache=PlanCache(0)).compile(template).bind(point).execute()
        for point in points
    ]
    fresh_seconds = time.perf_counter() - started

    # Today's pooled path: one shared instance via ParameterSweep.
    pooled_cache = PlanCache()
    pooled_sweep = ParameterSweep(
        template, method_factory=lambda: MemDBBackend(plan_cache=pooled_cache)
    )
    pooled_sweep.run(points[:1])  # warm the cache, mirroring bench_plan_cache
    started = time.perf_counter()
    pooled_results = pooled_sweep.run(points)
    pooled_seconds = time.perf_counter() - started

    # First-class batch path: compile once, execute_batch the grid.  Compile
    # (translation + eager plan preparation) is timed separately: the 2x
    # gate against the fresh path charges it (honest end-to-end cost), the
    # parity check against pooled compares warm against warm (the pooled
    # sweep's compile-equivalent was excluded by its warm-up point).
    batch_backend = MemDBBackend(plan_cache=PlanCache())
    started = time.perf_counter()
    executable = batch_backend.compile(template)
    compile_seconds = time.perf_counter() - started
    started = time.perf_counter()
    batch_results = executable.execute_batch(points)
    batch_exec_seconds = time.perf_counter() - started
    batch_seconds = compile_seconds + batch_exec_seconds

    assert all(result.status == "ok" for result in pooled_results)
    assert len(fresh_results) == len(batch_results) == len(points)

    # Correctness: the batch path agrees with SQLite at a representative point.
    sqlite_state = SQLiteBackend().compile(template).bind(points[0]).execute().state
    assert states_agree(batch_results[0].state, sqlite_state, atol=1e-9, up_to_global_phase=False)
    # ... and with the fresh path at every point.
    for fresh, batch in zip(fresh_results, batch_results):
        assert states_agree(fresh.state, batch.state, atol=1e-9, up_to_global_phase=False)

    speedup_vs_fresh = fresh_seconds / batch_seconds
    ratio_vs_pooled = batch_exec_seconds / pooled_seconds
    provenance = executable.provenance
    body = (
        f"16-point QAOA ring sweep ({_NUM_NODES} nodes, memdb backend)\n"
        f"  fresh backend per point (cold):   {fresh_seconds * 1000:8.1f} ms\n"
        f"  pooled reuse_method sweep:        {pooled_seconds * 1000:8.1f} ms\n"
        f"  compile + execute_batch:          {batch_seconds * 1000:8.1f} ms"
        f" (compile {compile_seconds * 1000:.1f} ms)\n"
        f"  batch speedup vs fresh:           {speedup_vs_fresh:8.1f}x\n"
        f"  execute_batch / pooled (warm):    {ratio_vs_pooled:8.2f}\n"
        f"  plan prepared at compile:         {provenance['plan_cache']['state_at_compile']}\n"
        f"  executions on one executable:     {executable.executions}"
    )
    emit("Executable reuse — fresh vs pooled vs execute_batch", body)
    (results_dir / "executable_reuse.txt").write_text(body)

    assert speedup_vs_fresh >= 2.0, (
        f"expected execute_batch >= 2x over fresh-backend-per-run, got {speedup_vs_fresh:.2f}x"
    )
    assert ratio_vs_pooled <= _PARITY_TOLERANCE, (
        f"execute_batch must match the pooled reuse_method path "
        f"(<= {_PARITY_TOLERANCE}x), got {ratio_vs_pooled:.2f}x"
    )


def test_compile_prepares_before_first_execution(results_dir):
    """The executable's first execution already re-binds a prepared plan."""
    cache = PlanCache()
    backend = MemDBBackend(plan_cache=cache)
    executable = backend.compile(_template())
    assert executable.provenance["plan_cache"]["prepared"] is True
    planned_at_compile = cache.stats()["planned"]
    assert planned_at_compile >= 1

    executable.bind(_points()[0]).execute()
    stats = cache.stats()
    assert stats["planned"] == planned_at_compile, "first execution should not re-plan"
    assert stats["hits"] > 0
