"""Morsel-driven parallel execution benchmark: speedup and parity gates.

Two experiments over the parallel subsystem (`backends/memdb/parallel/`):

* **large join+aggregate speedup** — the paper's hot shape (probe-heavy
  equi-join feeding grouped SUMs) over a multi-million-row fact table,
  executed by a 4-worker parallel engine versus a serial engine.  Rows must
  be *byte-identical*; with at least 4 CPU cores the parallel engine must
  win >= 2x (the executor's numpy kernels release the GIL, so threads scale
  across cores).  On smaller hosts the timing is still reported but the
  speedup gate is skipped — threads cannot beat physics.
* **small-table parity** — the same query shape at a size where the costed
  :class:`~repro.backends.memdb.optimizer.cost.ParallelDecision` must choose
  serial execution: the parallel-enabled engine may not lose more than 10%
  (>= 0.9x) against the plain serial engine, proving the cost gate keeps
  scheduling overhead away from small inputs.
"""

import os
import time

import numpy as np
import pytest

from repro.backends.memdb.engine import MemDatabase, PlanCache
from repro.backends.memdb.parallel import WorkerPool

from conftest import emit

#: Workers the speedup experiment plans for (the acceptance-gate setting).
WORKERS = 4

_FACT_ROWS = 2_000_000
_DIM_ROWS = 4_096
_SMALL_FACT_ROWS = 2_000

_JOIN_AGG_QUERY = (
    "SELECT f.g AS g, SUM(f.v * d.w) AS s, COUNT(*) AS n "
    "FROM f JOIN d ON f.k = d.id GROUP BY f.g"
)


def _effective_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _load(db: MemDatabase, fact_rows: int, seed: int = 42) -> None:
    rng = np.random.default_rng(seed)
    db.create_table_from_columns(
        "f",
        {
            "id": np.arange(fact_rows, dtype=np.int64),
            "k": rng.integers(0, _DIM_ROWS, fact_rows),
            "g": rng.integers(0, 64, fact_rows),
            "v": np.round(rng.normal(size=fact_rows), 4),
        },
    )
    db.create_table_from_columns(
        "d",
        {
            "id": np.arange(_DIM_ROWS, dtype=np.int64),
            "w": np.round(np.linspace(-1.0, 1.0, _DIM_ROWS), 4),
        },
    )
    # NDV statistics make the UES join bound tight (unique dim keys), so the
    # parallel decision reflects the real probe size, not a loose bound.
    db.execute("ANALYZE")


def _engines(fact_rows: int):
    pool = WorkerPool(WORKERS)
    parallel = MemDatabase(
        plan_cache=PlanCache(maxsize=8),
        enable_parallel=True,
        parallel_workers=WORKERS,
        worker_pool=pool,
    )
    serial = MemDatabase(plan_cache=PlanCache(maxsize=8), enable_parallel=False)
    _load(parallel, fact_rows)
    _load(serial, fact_rows)
    return parallel, serial, pool


def _timeit(callable_, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def test_parallel_join_aggregate_speedup(results_dir):
    """Byte-identical results always; >= 2x with 4 workers on >= 4 cores."""
    parallel, serial, pool = _engines(_FACT_ROWS)
    try:
        expected = serial.execute(_JOIN_AGG_QUERY).rows
        actual = parallel.execute(_JOIN_AGG_QUERY).rows
        assert actual == expected, "parallel join+aggregate diverged from serial"

        plan = "\n".join(
            row[0] for row in parallel.execute(f"EXPLAIN {_JOIN_AGG_QUERY}").rows
        )
        assert f"morsel-parallel ({WORKERS} workers)" in plan

        parallel_time = _timeit(lambda: parallel.execute(_JOIN_AGG_QUERY), repeats=3)
        serial_time = _timeit(lambda: serial.execute(_JOIN_AGG_QUERY), repeats=3)
        speedup = serial_time / parallel_time
        cpus = _effective_cpus()

        emit(
            f"morsel-parallel join+aggregate ({_FACT_ROWS:,} x {_DIM_ROWS:,} rows, {WORKERS} workers)",
            f"serial:   {serial_time * 1000:8.2f} ms\n"
            f"parallel: {parallel_time * 1000:8.2f} ms\n"
            f"speedup:  {speedup:8.2f}x on {cpus} CPU core(s)",
        )
        (results_dir / "parallel_join_aggregate.txt").write_text(
            f"serial_ms={serial_time * 1000:.3f}\nparallel_ms={parallel_time * 1000:.3f}\n"
            f"speedup={speedup:.2f}\ncpus={cpus}\nworkers={WORKERS}\n"
        )

        if cpus < WORKERS:
            pytest.skip(
                f"speedup gate needs >= {WORKERS} CPU cores (host has {cpus}); "
                f"results verified byte-identical, measured {speedup:.2f}x"
            )
        assert speedup >= 2.0, f"expected >= 2x with {WORKERS} workers, got {speedup:.2f}x"
    finally:
        pool.shutdown()


def test_parallel_parity_on_small_tables(results_dir):
    """The cost gate must keep small inputs serial: >= 0.9x parity."""
    parallel, serial, pool = _engines(_SMALL_FACT_ROWS)
    try:
        expected = serial.execute(_JOIN_AGG_QUERY).rows
        assert parallel.execute(_JOIN_AGG_QUERY).rows == expected

        plan = "\n".join(
            row[0] for row in parallel.execute(f"EXPLAIN {_JOIN_AGG_QUERY}").rows
        )
        assert "serial [cost" in plan, f"cost gate failed to choose serial:\n{plan}"

        parallel_time = _timeit(lambda: parallel.execute(_JOIN_AGG_QUERY), repeats=20)
        serial_time = _timeit(lambda: serial.execute(_JOIN_AGG_QUERY), repeats=20)
        ratio = serial_time / parallel_time

        emit(
            f"small-table parity ({_SMALL_FACT_ROWS:,} rows: cost model must stay serial)",
            f"serial engine:           {serial_time * 1000:8.3f} ms\n"
            f"parallel-enabled engine: {parallel_time * 1000:8.3f} ms\n"
            f"ratio:                   {ratio:8.2f}x (gate >= 0.9x)",
        )
        (results_dir / "parallel_parity.txt").write_text(
            f"serial_ms={serial_time * 1000:.3f}\nparallel_ms={parallel_time * 1000:.3f}\n"
            f"ratio={ratio:.2f}\n"
        )
        assert ratio >= 0.9, f"parallel-enabled engine lost more than 10% on small inputs: {ratio:.2f}x"
    finally:
        pool.shutdown()
