"""E9 — out-of-core simulation (Sec. 3.3).

The paper's Simulation Layer "leverages database features to efficiently
manage intermediate states and I/O, enabling simulations at scales beyond
traditional in-memory methods".  This harness runs the same dense workload on
SQLite with (a) the default in-memory database and (b) an on-disk database
whose page cache is capped far below the state size, and checks that the
on-disk run still completes with the correct result while the dense
state-vector simulator under the same byte budget fails.

Expected shape: the on-disk backend is slower than the in-memory one (it
pays I/O) but succeeds under a budget where the in-memory dense
representation does not fit.
"""

import pytest

from repro.backends import SQLiteBackend
from repro.circuits import superposition_circuit
from repro.errors import ResourceLimitExceeded
from repro.output import comparison_table, states_agree
from repro.simulators import StatevectorSimulator

from conftest import emit

_NUM_QUBITS = 12
#: Budget smaller than the 16 * 2^12 = 64 KiB dense state vector.
_BUDGET_BYTES = 32 * 1024


@pytest.mark.parametrize("storage", ["memory", "disk"], ids=str)
def test_out_of_core_timing(benchmark, storage):
    """In-memory vs on-disk SQLite on a dense 12-qubit workload."""
    circuit = superposition_circuit(_NUM_QUBITS)

    def run():
        backend = SQLiteBackend(
            mode="materialized",
            out_of_core=(storage == "disk"),
            cache_size_kib=64 if storage == "disk" else None,
        )
        return backend.run(circuit)

    benchmark.group = f"out-of-core-{_NUM_QUBITS}q"
    result = benchmark(run)
    assert result.state.num_nonzero == 1 << _NUM_QUBITS


def test_out_of_core_report(benchmark, results_dir):
    """Out-of-core completes where the budgeted dense simulator cannot."""
    circuit = superposition_circuit(_NUM_QUBITS)

    def collect():
        in_memory = SQLiteBackend(mode="materialized").run(circuit)
        on_disk = SQLiteBackend(mode="materialized", out_of_core=True, cache_size_kib=64).run(circuit)
        try:
            StatevectorSimulator(max_state_bytes=_BUDGET_BYTES).run(circuit)
            dense_status = "ok"
        except ResourceLimitExceeded:
            dense_status = "out_of_memory"
        return in_memory, on_disk, dense_status

    in_memory, on_disk, dense_status = benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = [
        {"method": "sqlite (in-memory)", "status": "ok", "time_s": in_memory.wall_time_s,
         "peak_rows": in_memory.peak_state_rows},
        {"method": "sqlite (on-disk, 64 KiB cache)", "status": "ok", "time_s": on_disk.wall_time_s,
         "peak_rows": on_disk.peak_state_rows},
        {"method": f"statevector ({_BUDGET_BYTES} B budget)", "status": dense_status, "time_s": "-",
         "peak_rows": "-"},
    ]
    table = comparison_table(rows)
    emit(f"E9 — out-of-core simulation of superposition({_NUM_QUBITS})", table)
    (results_dir / "e9_out_of_core.txt").write_text(table)

    assert states_agree(in_memory.state, on_disk.state, up_to_global_phase=False)
    assert dense_status == "out_of_memory"
