"""E10 — parameterized simulations across a parameter space (Sec. 3.3).

Defines a depth-1 QAOA MaxCut family on a ring graph and sweeps its
(gamma, beta) grid on the RDBMS backend, timing the automated sweep and
reporting the best expected cut value — the "parameterized simulations"
feature of the Simulation Layer.

Expected shape: every grid point simulates successfully, sweep cost grows
linearly with the number of points, and the best point's approximation ratio
beats the uniform-random baseline (0.5 for ring MaxCut).
"""

import pytest

from repro.backends import MemDBBackend, SQLiteBackend
from repro.bench import ParameterSweep, grid
from repro.circuits import maxcut_cut_value, maxcut_expected_value, qaoa_maxcut_circuit, ring_graph
from repro.output import comparison_table

from conftest import emit

_NUM_NODES = 6
_EDGES = ring_graph(_NUM_NODES)


def _family(point):
    return qaoa_maxcut_circuit(
        _NUM_NODES, edges=_EDGES, p=1, gammas=[point["gamma"]], betas=[point["beta"]]
    )


def _observable(result):
    return maxcut_expected_value(_EDGES, result.state.probabilities())


@pytest.mark.parametrize("backend_cls", [SQLiteBackend, MemDBBackend], ids=["sqlite", "memdb"])
def test_single_qaoa_point(benchmark, backend_cls):
    """Cost of one bound QAOA instance on each RDBMS backend."""
    circuit = _family({"gamma": 0.45, "beta": 0.6})
    backend = backend_cls()
    benchmark.group = "qaoa-single-point"
    result = benchmark(lambda: backend.run(circuit))
    assert result.state.num_nonzero > 1


def test_parameter_sweep_report(benchmark, results_dir):
    """Automated sweep of a 4x4 (gamma, beta) grid on the embedded columnar engine."""
    points = grid(
        {
            "gamma": [0.2, 0.4, 0.6, 0.8],
            "beta": [0.4, 0.8, 1.2, 1.5],
        }
    )
    sweep = ParameterSweep(_family, method_factory=MemDBBackend, observable=_observable)

    results = benchmark.pedantic(lambda: sweep.run(points), rounds=1, iterations=1)

    assert len(results) == 16
    assert all(result.status == "ok" for result in results)

    best = sweep.best_point(results)
    optimum = max(maxcut_cut_value(_EDGES, assignment) for assignment in range(1 << _NUM_NODES))
    rows = sorted((r.to_dict() for r in results), key=lambda row: -(row["observable"] or 0))[:8]
    table = comparison_table(rows, columns=["param_gamma", "param_beta", "observable", "nonzero_amplitudes", "wall_time_s"])
    emit(
        "E10 — QAOA parameter sweep on the RDBMS backend (top 8 of 16 points)",
        table + f"\n\nbest expected cut {best.observable:.3f} / optimum {optimum} "
        f"(ratio {best.observable / optimum:.3f})",
    )
    (results_dir / "e10_sweep.txt").write_text(table)

    assert best.observable / optimum > 0.5
