"""Serving-tier benchmark: fair-scheduling isolation and journal replay.

Two acceptance gates over `service/server/`:

* **fair-scheduling isolation** — a light interactive tenant's p99 latency
  under saturated mixed traffic (a batch tenant flooding grid sweeps) must
  stay within 2x of its unloaded p99 when the weighted-fair scheduler with
  an in-flight quota isolates the tenants; the FIFO baseline (the plain
  JobService thread-pool queue) under the same flood must show >= 5x
  degradation — proving the scheduler is what buys the isolation, not slack
  in the workload.
* **journal replay** — a server killed (SIGKILL) mid-sweep and restarted
  over the same journal re-enqueues only the grid points that have no
  ``point`` record: zero already-completed points are recomputed, and after
  the resumed run every journaled job has a terminal record (zero dropped
  records).

Both run over the real HTTP front end / real process boundary — the load
generator speaks ``http.client``, the kill is a real ``SIGKILL``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

from repro.bench.loadgen import BatchFlood, InteractiveLoad, ServingClient, percentile, run_mixed_load
from repro.bench.report import tenant_table
from repro.circuits import ghz_circuit, hardware_efficient_ansatz
from repro.obs import MetricsRegistry, RequestTraceStore, Tracer
from repro.service import JobService
from repro.service.server import FairScheduler, JobJournal, JobServer, ServerThread, TenantQuota

from conftest import emit

_REPO_SRC = Path(__file__).resolve().parents[1] / "src"

#: Mixed-load shape: the light tenant's probe circuit and the batch sweep.
#: The sweep template is a 4-qubit ry ansatz — its parameters are plain
#: ``Parameter`` objects, so the request survives the JSON wire/journal
#: round trip (QAOA's 2*gamma expressions would not).
_LIGHT_JOBS = 12
_FLOOD_JOBS = 12
_PARAMS = [f"theta[{i}]" for i in range(8)]
_GRID = [{name: round(0.15 * k, 3) for name in _PARAMS} for k in range(1, 5)]

#: Acceptance thresholds from the issue.
FAIR_P99_MAX_RATIO = 2.0
FIFO_P99_MIN_RATIO = 5.0

#: p99 over a 12-job closed loop is effectively the max of the batch, so a
#: single OS-scheduling blip can double it. Each phase is therefore measured
#: as the median p99 of independent rounds (each on a fresh server).
_ROUNDS = 3


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def _sweep_circuit():
    return hardware_efficient_ansatz(4, reps=1, rotation_gates=("ry",))


def _interactive(client: ServingClient, jobs: int = _LIGHT_JOBS) -> InteractiveLoad:
    return InteractiveLoad(client, ghz_circuit(3), tenant="interactive", jobs=jobs)


def _flood(client: ServingClient) -> BatchFlood:
    return BatchFlood(client, _sweep_circuit(), tenant="batch", param_grid=_GRID, jobs=_FLOOD_JOBS)


def _warmup(client: ServingClient) -> None:
    """Absorb engine construction / plan-compile cold starts before timing."""
    _interactive(client, jobs=2).run()


def _measure_unloaded() -> list[float]:
    """The light tenant alone on a fair-scheduled server: the baseline p99."""
    service = JobService(max_workers=2, scheduler=FairScheduler())
    try:
        with ServerThread(JobServer(service)) as (host, port):
            client = ServingClient(host, port)
            _warmup(client)
            return _interactive(client).run()
    finally:
        service.shutdown(wait=True, drain_timeout=30.0)


def _traced_service(**service_kwargs) -> tuple[JobService, RequestTraceStore]:
    """A JobService with full request tracing (every submit sampled)."""
    metrics = MetricsRegistry()
    store = RequestTraceStore(capacity=512, slow_threshold_s=3600.0)
    tracer = Tracer(registry=metrics, request_store=store)
    return JobService(metrics=metrics, tracer=tracer, **service_kwargs), store


def _queue_wait_attribution(store: RequestTraceStore, tenant: str) -> dict:
    """Per-tenant queue-wait seconds read off the sealed trace breakdowns."""
    waits = [
        summary["breakdown"]["queue_wait_s"]
        for summary in store.query(tenant=tenant, limit=500)
        if "breakdown" in summary
    ]
    if not waits:
        return {"requests": 0}
    return {
        "requests": len(waits),
        "mean_s": sum(waits) / len(waits),
        "p99_s": percentile(waits, 0.99),
    }


def _measure_fair_loaded() -> dict:
    """Mixed traffic with the weighted-fair scheduler isolating the tenants."""
    scheduler = FairScheduler()
    scheduler.configure("batch", TenantQuota(max_in_flight=1))
    service, store = _traced_service(max_workers=2, scheduler=scheduler)
    try:
        with ServerThread(JobServer(service)) as (host, port):
            client = ServingClient(host, port)
            _warmup(client)
            interactive = _interactive(client)
            summary = run_mixed_load(client, interactive, [_flood(client)])
            return {
                "latencies": list(interactive.latencies),
                "summary": summary,
                "table": tenant_table(service.metrics.snapshot()),
                "queue_wait": {
                    tenant: _queue_wait_attribution(store, tenant)
                    for tenant in ("interactive", "batch")
                },
                "metrics_text": client.metrics_text(),
            }
    finally:
        service.shutdown(wait=True, drain_timeout=120.0)


def _measure_fifo_loaded() -> dict:
    """The same mixed traffic against the plain FIFO thread-pool queue."""
    service, store = _traced_service(max_workers=2)
    try:
        with ServerThread(JobServer(service)) as (host, port):
            client = ServingClient(host, port)
            _warmup(client)
            interactive = _interactive(client)
            flood = _flood(client)
            # Pre-flood so the FIFO backlog exists before the first probe
            # (open-loop submission is near-instant; no race on "saturated").
            flood.run()
            started = time.monotonic()
            interactive.run()
            return {
                "latencies": interactive.latencies,
                "flood_submitted": len(flood.submitted_ids),
                "wall_s": time.monotonic() - started,
                "queue_wait": {
                    tenant: _queue_wait_attribution(store, tenant)
                    for tenant in ("interactive", "batch")
                },
            }
    finally:
        service.shutdown(wait=True, drain_timeout=120.0)


def test_fair_scheduling_protects_light_tenant(results_dir):
    unloaded_runs = [_measure_unloaded() for _ in range(_ROUNDS)]
    for run in unloaded_runs:
        assert len(run) == _LIGHT_JOBS, "unloaded probe jobs failed"
    unloaded_p99 = _median([percentile(run, 0.99) for run in unloaded_runs])

    fair_runs = [_measure_fair_loaded() for _ in range(_ROUNDS)]
    for run in fair_runs:
        assert run["latencies"], "no interactive jobs completed under fair scheduling"
    fair_p99 = _median([percentile(run["latencies"], 0.99) for run in fair_runs])
    fair_table = fair_runs[-1]["table"]
    summary = fair_runs[-1]["summary"]

    fifo_runs = [_measure_fifo_loaded() for _ in range(_ROUNDS)]
    for run in fifo_runs:
        assert run["latencies"], "no interactive jobs completed under FIFO"
    fifo_p99 = _median([percentile(run["latencies"], 0.99) for run in fifo_runs])

    fair_ratio = fair_p99 / unloaded_p99
    fifo_ratio = fifo_p99 / unloaded_p99

    # Queue-wait attribution from the sealed request traces: the isolation
    # the latency ratios show should be visible *as queue time* — under
    # FIFO the probe's requests sit behind the flood's backlog, under fair
    # scheduling they do not.
    fair_wait = fair_runs[-1]["queue_wait"]
    fifo_wait = fifo_runs[-1]["queue_wait"]
    assert fair_wait["interactive"]["requests"] > 0, "no traced interactive requests (fair)"
    assert fifo_wait["interactive"]["requests"] > 0, "no traced interactive requests (fifo)"
    assert (
        fifo_wait["interactive"]["mean_s"] > fair_wait["interactive"]["mean_s"]
    ), (
        f"trace queue-wait attribution contradicts the latency gate: FIFO mean "
        f"{fifo_wait['interactive']['mean_s']:.4f}s <= fair "
        f"{fair_wait['interactive']['mean_s']:.4f}s"
    )

    # One /v1/metrics scrape from the loaded fair run: the exposition must
    # be structurally valid Prometheus text with per-tenant series.
    metrics_text = fair_runs[-1]["metrics_text"]
    assert metrics_text.endswith("\n")
    for line in metrics_text.splitlines():
        assert line.startswith("#") or " " in line, f"malformed exposition line: {line!r}"
    for tenant in ("interactive", "batch"):
        assert f'repro_tenant_latency_seconds{{tenant="{tenant}"' in metrics_text, (
            f"/v1/metrics is missing the per-tenant latency series for {tenant!r}"
        )
    assert "repro_http_route_latency_seconds" in metrics_text

    report = {
        "rounds": _ROUNDS,
        "unloaded_p99_s": round(unloaded_p99, 4),
        "fair_p99_s": round(fair_p99, 4),
        "fifo_p99_s": round(fifo_p99, 4),
        "fair_ratio": round(fair_ratio, 2),
        "fifo_ratio": round(fifo_ratio, 2),
        "flood_jobs": summary["flood_submitted"],
        "flood_points_each": len(_GRID),
        "queue_wait_fair": fair_wait,
        "queue_wait_fifo": fifo_wait,
    }
    (results_dir / "serving_fairness.json").write_text(json.dumps(report, indent=2))
    emit(
        "serving: light-tenant p99 under batch flood",
        fair_table
        + f"\nunloaded p99 {unloaded_p99 * 1e3:.1f}ms | "
        f"fair {fair_p99 * 1e3:.1f}ms ({fair_ratio:.2f}x) | "
        f"fifo {fifo_p99 * 1e3:.1f}ms ({fifo_ratio:.2f}x)"
        + "\nqueue-wait (interactive): fair mean "
        f"{fair_wait['interactive'].get('mean_s', 0.0) * 1e3:.1f}ms | fifo mean "
        f"{fifo_wait['interactive'].get('mean_s', 0.0) * 1e3:.1f}ms",
    )

    assert fair_ratio <= FAIR_P99_MAX_RATIO, (
        f"fair scheduling did not protect the light tenant: p99 {fair_p99:.3f}s is "
        f"{fair_ratio:.2f}x the unloaded {unloaded_p99:.3f}s (gate: <= {FAIR_P99_MAX_RATIO}x)"
    )
    assert fifo_ratio >= FIFO_P99_MIN_RATIO, (
        f"the FIFO baseline shows only {fifo_ratio:.2f}x degradation — the flood is "
        f"not saturating the queue, so the fairness comparison proves nothing"
    )


_CHILD_SCRIPT = textwrap.dedent(
    """
    import os, signal, sys, time
    from repro.circuits import hardware_efficient_ansatz
    from repro.service import JobService
    from repro.service.server import JobJournal

    journal_path, kill_after = sys.argv[1], int(sys.argv[2])
    names = [f"theta[{i}]" for i in range(8)]
    grid = [{name: round(0.15 * k, 3) for name in names} for k in range(1, 7)]
    service = JobService(max_workers=1, journal=JobJournal(journal_path))
    handle = service.submit(
        circuit=hardware_efficient_ansatz(4, reps=1, rotation_gates=("ry",)),
        method="memdb",
        param_grid=grid,
        tenant="sweeper",
    )
    deadline = time.monotonic() + 120.0
    while handle.poll()["completed_points"] < kill_after:
        if time.monotonic() > deadline:
            sys.exit(3)
        time.sleep(0.005)
    os.kill(os.getpid(), signal.SIGKILL)
    """
)

_KILL_AFTER_POINTS = 2
_REPLAY_GRID_POINTS = 6


def _journal_point_counts(path: Path) -> dict[int, int]:
    counts: dict[int, int] = {}
    for line in path.read_text().splitlines():
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if record.get("event") == "point":
            counts[record["job_id"]] = counts.get(record["job_id"], 0) + 1
    return counts


def test_journal_replay_recomputes_no_completed_points(tmp_path, results_dir):
    journal_path = tmp_path / "jobs.journal"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    child = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT, str(journal_path), str(_KILL_AFTER_POINTS)],
        env=env,
        timeout=180,
    )
    assert child.returncode == -signal.SIGKILL, (
        f"the sweep child was supposed to die by SIGKILL mid-sweep, exited {child.returncode}"
    )

    completed_before = _journal_point_counts(journal_path)
    assert completed_before, "the killed sweep journaled no completed points"
    (original_id, prefix), = completed_before.items()
    assert prefix >= _KILL_AFTER_POINTS

    journal = JobJournal(journal_path)
    plans = journal.replay_plan()
    assert len(plans) == 1 and plans[0]["job_id"] == original_id
    assert plans[0]["skip_points"] == prefix
    assert len(plans[0]["request"].param_grid) == _REPLAY_GRID_POINTS - prefix

    service = JobService(max_workers=1, journal=journal)
    try:
        resumed = service.replay_journal()
        assert len(resumed) == 1
        results = resumed[0].result(timeout=120)
    finally:
        service.shutdown(wait=True, drain_timeout=60.0)

    # Zero recomputation: the resumed job ran exactly the missing suffix.
    recomputed = _journal_point_counts(journal_path)[resumed[0].job_id]
    assert recomputed == len(results) == _REPLAY_GRID_POINTS - prefix
    assert _journal_point_counts(journal_path)[original_id] == prefix

    # Zero dropped records: every journaled job now has a terminal record.
    reread = JobJournal(journal_path)
    assert reread.incomplete() == []
    original = reread.final_status(original_id)
    assert original["status"] == "cancelled" and "superseded" in original["error"]
    assert reread.final_status(resumed[0].job_id)["status"] == "done"

    report = {
        "grid_points": _REPLAY_GRID_POINTS,
        "completed_before_kill": prefix,
        "recomputed_after_replay": recomputed,
        "original_job": original,
    }
    (results_dir / "serving_replay.json").write_text(json.dumps(report, indent=2))
    emit(
        "serving: journal replay after SIGKILL",
        json.dumps(report, indent=2),
    )
