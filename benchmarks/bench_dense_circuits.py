"""E4 — dense circuits: where the RDBMS loses.

The paper reports the flip side of the capacity result: on *dense* circuits
the RDBMS approach performed ~14% worse than the conventional method.  This
harness times the equal-superposition and QFT workloads (states with all 2^n
amplitudes nonzero) on the RDBMS backends and the dense state-vector
simulator.

Expected shape: the state-vector simulator is the fastest method on these
workloads and the relational backends are slower (by a modest factor on
SQLite/memdb at laptop scale — the paper's 14% figure is engine- and
scale-specific); peak memory is comparable because the relational table also
holds all 2^n rows.
"""

import pytest

from repro.backends import MemDBBackend, SQLiteBackend
from repro.bench import BenchmarkRunner, timing_table, win_counts
from repro.circuits import qft_on_basis_state, superposition_circuit
from repro.simulators import StatevectorSimulator

from conftest import emit

_METHODS = {
    "sqlite": lambda: SQLiteBackend(),
    "memdb": lambda: MemDBBackend(),
    "statevector": lambda: StatevectorSimulator(),
}
_WORKLOADS = {
    "superposition": lambda n: superposition_circuit(n),
    "qft": lambda n: qft_on_basis_state(n, (1 << n) - 1),
}


@pytest.mark.parametrize("method", sorted(_METHODS), ids=str)
@pytest.mark.parametrize("workload", sorted(_WORKLOADS), ids=str)
@pytest.mark.parametrize("num_qubits", [8, 10])
def test_dense_workload_timing(benchmark, method, workload, num_qubits):
    """Per-method wall time on dense workloads (the paper's dense comparison)."""
    circuit = _WORKLOADS[workload](num_qubits)
    factory = _METHODS[method]
    benchmark.group = f"dense-{workload}-{num_qubits}q"

    result = benchmark(lambda: factory().run(circuit))

    assert result.state.num_nonzero == 1 << num_qubits


def test_dense_winner_report(benchmark, results_dir):
    """Summarize who wins on dense circuits (expected: the dense state vector)."""
    runner = BenchmarkRunner(methods=_METHODS)
    records = benchmark.pedantic(
        lambda: runner.run_suite(["superposition", "qft"], sizes=[8, 10]),
        rounds=1,
        iterations=1,
    )
    wins = win_counts(records)
    table = timing_table(records, "superposition") + "\n\n" + timing_table(records, "qft")
    emit("E4 — dense circuits: wall time per method (seconds)", table)
    emit("E4 — fastest method counts", str(wins))
    (results_dir / "e4_dense.txt").write_text(table + f"\n\nwins: {wins}\n")

    assert all(record.status == "ok" for record in records)
    # Shape check: the dense state-vector simulator wins the majority of dense points.
    assert wins.get("statevector", 0) >= max(wins.get("sqlite", 0), wins.get("memdb", 0))
