"""E1 — Fig. 2 running example: the 3-qubit GHZ circuit as SQL.

Regenerates the tables of Fig. 2 (initial state T0, gate tables H and CX,
intermediate states T1/T2 and final state T3) and times the end-to-end SQL
execution of the running example on both RDBMS backends in both execution
modes.
"""

import math

import pytest

from repro.backends import MemDBBackend, SQLiteBackend
from repro.circuits import ghz_circuit
from repro.core import standard_gate
from repro.output import format_amplitude_table
from repro.sql import translate_circuit
from repro.sql.gate_tables import GateTableRegistry

from conftest import emit

_SQRT2 = 1 / math.sqrt(2)
_EXPECTED_FINAL = [(0, pytest.approx(_SQRT2), 0.0), (7, pytest.approx(_SQRT2), 0.0)]


@pytest.mark.parametrize("backend_cls", [SQLiteBackend, MemDBBackend], ids=["sqlite", "memdb"])
@pytest.mark.parametrize("mode", ["cte", "materialized"])
def test_fig2_ghz3_execution(benchmark, backend_cls, mode):
    """Time the full Fig. 2 pipeline (translate + execute) and pin its output."""
    circuit = ghz_circuit(3)
    backend = backend_cls(mode=mode)

    result = benchmark(lambda: backend.run(circuit))

    assert result.state.to_rows() == _EXPECTED_FINAL


def test_fig2_tables_report(benchmark):
    """Reproduce the figure's tables (T0, H, CX, generated SQL, final T3)."""
    circuit = ghz_circuit(3)
    translation = translate_circuit(circuit, dialect="sqlite")

    result = benchmark(lambda: SQLiteBackend().run(circuit))

    registry = GateTableRegistry()
    h_rows = registry.register(standard_gate("h")).rows
    cx_rows = registry.register(standard_gate("cx")).rows
    emit(
        "Fig. 2b — relational tables",
        "T0 (initial state |000>):\n  (s, r, i) = "
        + str(translation.initial_rows)
        + "\nH gate table (in_s, out_s, r, i):\n  "
        + "\n  ".join(str(row) for row in h_rows)
        + "\nCX gate table (in_s, out_s, r, i):\n  "
        + "\n  ".join(str(row) for row in cx_rows),
    )
    emit("Fig. 2c — generated SQL", translation.cte_query())
    emit("Fig. 2c — final output state T3", format_amplitude_table(result.state))

    assert cx_rows == [(0, 0, 1.0, 0.0), (1, 3, 1.0, 0.0), (2, 2, 1.0, 0.0), (3, 1, 1.0, 0.0)]
    assert result.state.to_rows() == _EXPECTED_FINAL
