"""E5 — demo scenario 1: the parity-check algorithm.

Times the quantum parity check (load bitstring, CX-accumulate onto an
ancilla) across backends for growing bitstring lengths, and verifies the
answer against the classical parity.  Because every gate is a permutation,
the relational state is a single row at every step — the extreme sparse case.

Expected shape: RDBMS cost grows linearly with the bitstring length (one
pipeline stage per gate, one row per state), while the dense state vector
pays 2^n amplitudes regardless.
"""

import pytest

from repro.backends import MemDBBackend, SQLiteBackend
from repro.bench import BenchmarkRunner, timing_table
from repro.circuits import expected_parity, parity_check_circuit
from repro.simulators import SparseSimulator, StatevectorSimulator

from conftest import emit

_METHODS = {
    "sqlite": lambda: SQLiteBackend(mode="materialized"),
    "memdb": lambda: MemDBBackend(mode="materialized"),
    "sparse": lambda: SparseSimulator(),
    "statevector": lambda: StatevectorSimulator(),
}
_BITSTRINGS = {6: "101101", 10: "1011010011", 14: "10110100111010"}


@pytest.mark.parametrize("method", sorted(_METHODS), ids=str)
@pytest.mark.parametrize("length", sorted(_BITSTRINGS), ids=lambda n: f"{n}bits")
def test_parity_check_timing(benchmark, method, length):
    """Wall time of the parity-check circuit per method and input length."""
    bits = _BITSTRINGS[length]
    circuit = parity_check_circuit(bits, measure=False)
    factory = _METHODS[method]
    benchmark.group = f"parity-{length}bits"

    result = benchmark(lambda: factory().run(circuit))

    ancilla = circuit.num_qubits - 1
    index = next(iter(result.state))
    assert (index >> ancilla) & 1 == expected_parity(bits)


def test_parity_report(benchmark, results_dir):
    """Comparison table across methods and lengths, plus row-count evidence of sparsity."""
    runner = BenchmarkRunner(methods=_METHODS, reference="statevector")
    records = benchmark.pedantic(
        lambda: runner.run_workload("parity", sizes=[7, 11, 15]),
        rounds=1,
        iterations=1,
    )
    table = timing_table(records, "parity")
    emit("E5 — parity check: wall time per method (seconds)", table)
    (results_dir / "e5_parity.txt").write_text(table)

    assert all(record.status == "ok" for record in records)
    rdbms_rows = [r.peak_state_rows for r in records if r.method in ("sqlite", "memdb")]
    dense_rows = [r.peak_state_rows for r in records if r.method == "statevector"]
    assert max(rdbms_rows) == 1
    assert min(dense_rows) >= 2 ** 7
