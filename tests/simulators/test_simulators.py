"""Tests for the baseline simulators (statevector, sparse, MPS, decision diagram)."""

import numpy as np
import pytest

from repro.circuits import (
    dense_phase_circuit,
    ghz_circuit,
    qft_on_basis_state,
    random_circuit,
    superposition_circuit,
    w_state_circuit,
)
from repro.core import QuantumCircuit, standard_gate
from repro.core.parameters import Parameter
from repro.errors import ResourceLimitExceeded, SimulationError
from repro.output import SparseState, states_agree
from repro.simulators import (
    DecisionDiagramSimulator,
    MPSSimulator,
    SparseSimulator,
    StatevectorSimulator,
    available_simulators,
)
from repro.simulators.sparse import apply_gate_to_mapping
from repro.simulators.statevector import apply_gate_to_vector


class TestStatevectorSimulator:
    def test_ghz_amplitudes(self, ghz3, statevector_simulator):
        state = statevector_simulator.run(ghz3).state
        assert state.amplitude(0) == pytest.approx(2 ** -0.5)
        assert state.amplitude(7) == pytest.approx(2 ** -0.5)

    def test_initial_state_override(self, statevector_simulator):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        initial = SparseState(2, {1: 1.0})
        state = statevector_simulator.run(circuit, initial_state=initial).state
        assert state.probability_of(3) == pytest.approx(1.0)

    def test_qubit_limit(self):
        simulator = StatevectorSimulator(max_qubits=4)
        with pytest.raises(SimulationError):
            simulator.run(ghz_circuit(5))

    def test_memory_budget(self):
        simulator = StatevectorSimulator(max_state_bytes=100)
        with pytest.raises(ResourceLimitExceeded):
            simulator.run(ghz_circuit(4))

    def test_required_bytes(self):
        assert StatevectorSimulator().required_bytes(10) == 16 * 1024

    def test_reset_instruction(self):
        circuit = QuantumCircuit(1)
        circuit.x(0)
        circuit.reset(0)
        state = StatevectorSimulator().run(circuit).state
        assert state.probability_of(0) == pytest.approx(1.0)

    def test_measurements_do_not_alter_state(self, statevector_simulator):
        circuit = ghz_circuit(3)
        circuit.measure_all()
        state = statevector_simulator.run(circuit).state
        assert state.num_nonzero == 2

    def test_unbound_parameters_rejected(self, statevector_simulator):
        circuit = QuantumCircuit(1)
        circuit.rz(Parameter("t"), 0)
        with pytest.raises(SimulationError):
            statevector_simulator.run(circuit)

    def test_apply_gate_to_vector_helper(self):
        vector = np.zeros(4, dtype=np.complex128)
        vector[0] = 1.0
        h = standard_gate("h").matrix()
        result = apply_gate_to_vector(vector, h, [1], 2)
        assert result[0] == pytest.approx(2 ** -0.5)
        assert result[2] == pytest.approx(2 ** -0.5)


class TestSparseSimulator:
    def test_only_nonzero_amplitudes_stored(self, sparse_simulator):
        result = sparse_simulator.run(ghz_circuit(10))
        assert result.state.num_nonzero == 2
        assert result.peak_state_rows == 2

    def test_matches_statevector_on_random_circuits(self, sparse_simulator, statevector_simulator):
        for seed in range(3):
            circuit = random_circuit(4, 6, seed=seed)
            assert states_agree(
                statevector_simulator.run(circuit).state,
                sparse_simulator.run(circuit).state,
                up_to_global_phase=False,
            )

    def test_max_nonzero_limit(self):
        simulator = SparseSimulator(max_nonzero=4)
        with pytest.raises(SimulationError):
            simulator.run(superposition_circuit(4))

    def test_peak_rows_estimate(self, sparse_simulator):
        assert sparse_simulator.peak_rows_estimate(ghz_circuit(8)) == 2
        assert sparse_simulator.peak_rows_estimate(superposition_circuit(3)) == 8

    def test_reset(self):
        circuit = QuantumCircuit(2)
        circuit.x(0)
        circuit.reset(0)
        state = SparseSimulator().run(circuit).state
        assert state.probability_of(0) == pytest.approx(1.0)

    def test_apply_gate_to_mapping_matches_sql_semantics(self):
        rows = standard_gate("h").nonzero_entries()
        amplitudes = apply_gate_to_mapping({0: 1.0 + 0j}, rows, [2])
        assert amplitudes[0] == pytest.approx(2 ** -0.5)
        assert amplitudes[4] == pytest.approx(2 ** -0.5)


class TestMPSSimulator:
    @pytest.mark.parametrize(
        "circuit_factory",
        [
            lambda: ghz_circuit(6),
            lambda: w_state_circuit(5),
            lambda: qft_on_basis_state(4, 11),
            lambda: dense_phase_circuit(4, 2),
            lambda: random_circuit(5, 5, seed=13),
        ],
        ids=["ghz", "w", "qft", "dense", "random"],
    )
    def test_matches_statevector(self, circuit_factory):
        circuit = circuit_factory()
        reference = StatevectorSimulator().run(circuit).state
        result = MPSSimulator().run(circuit).state
        assert states_agree(reference, result, atol=1e-7, up_to_global_phase=False)

    def test_ghz_bond_dimension_stays_two(self):
        result = MPSSimulator().run(ghz_circuit(12))
        assert result.metadata["max_bond_dimension"] == 2

    def test_truncation_error_reported_when_bond_capped(self):
        circuit = random_circuit(6, 8, seed=3, two_qubit_probability=0.8)
        result = MPSSimulator(max_bond_dimension=2).run(circuit)
        assert result.metadata["truncation_error"] >= 0.0

    def test_non_adjacent_gates_supported(self):
        circuit = QuantumCircuit(4)
        circuit.h(0)
        circuit.cx(0, 3)
        reference = StatevectorSimulator().run(circuit).state
        assert states_agree(reference, MPSSimulator().run(circuit).state, up_to_global_phase=False)

    def test_initial_state_unsupported(self):
        with pytest.raises(SimulationError):
            MPSSimulator().run(ghz_circuit(2), initial_state=SparseState(2, {0: 1.0}))

    def test_invalid_bond_dimension(self):
        with pytest.raises(SimulationError):
            MPSSimulator(max_bond_dimension=0)

    def test_bond_profile(self):
        profile = MPSSimulator().bond_profile(ghz_circuit(5))
        assert len(profile) == 4
        assert max(profile) == 2


class TestDecisionDiagramSimulator:
    @pytest.mark.parametrize(
        "circuit_factory",
        [
            lambda: ghz_circuit(6),
            lambda: w_state_circuit(4),
            lambda: qft_on_basis_state(4, 5),
            lambda: superposition_circuit(5),
            lambda: random_circuit(4, 5, seed=21),
        ],
        ids=["ghz", "w", "qft", "superposition", "random"],
    )
    def test_matches_statevector(self, circuit_factory):
        circuit = circuit_factory()
        reference = StatevectorSimulator().run(circuit).state
        result = DecisionDiagramSimulator().run(circuit).state
        assert states_agree(reference, result, atol=1e-7, up_to_global_phase=False)

    def test_structured_states_have_small_diagrams(self):
        ghz_nodes = DecisionDiagramSimulator().run(ghz_circuit(14)).metadata["unique_nodes"]
        assert ghz_nodes < 600  # far below the 2^14 amplitudes of a dense representation

    def test_node_budget_enforced(self):
        simulator = DecisionDiagramSimulator(max_nodes=16)
        with pytest.raises(SimulationError):
            simulator.run(random_circuit(6, 6, seed=2))

    def test_initial_state_unsupported(self):
        with pytest.raises(SimulationError):
            DecisionDiagramSimulator().run(ghz_circuit(2), initial_state=SparseState(2, {0: 1.0}))

    def test_cx_with_control_below_target(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.cx(0, 2)
        reference = StatevectorSimulator().run(circuit).state
        assert states_agree(reference, DecisionDiagramSimulator().run(circuit).state, up_to_global_phase=False)

    def test_node_count_helper(self):
        assert DecisionDiagramSimulator().node_count(ghz_circuit(6)) > 0


class TestRegistryAndResultMetadata:
    def test_available_simulators(self):
        registry = available_simulators()
        assert set(registry) == {"statevector", "sparse", "mps", "dd"}

    def test_every_method_reports_timing(self, any_method, ghz3):
        result = any_method.run(ghz3)
        assert result.wall_time_s > 0
        assert result.num_gates == 3
        assert result.circuit_name == "ghz_3"
