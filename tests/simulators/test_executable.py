"""Tests for the compile-bind-execute lifecycle shared by every method.

Every simulation method — the three RDBMS backends and the four baseline
simulators — must expose the same `compile(circuit) -> Executable`,
`bind(params) -> BoundExecutable`, `execute()` / `execute_batch(grid)`
protocol, and bound sweep points must agree across methods to 1e-9.
"""

import pytest

from repro import Parameter, QuantumCircuit
from repro.backends import DuckDBBackend, MemDBBackend, SQLiteBackend, duckdb_available
from repro.backends.memdb.engine import PlanCache
from repro.errors import ParameterError, SimulationError
from repro.output.analysis import states_agree
from repro.output.result import SparseState
from repro.simulators import (
    BoundExecutable,
    DecisionDiagramSimulator,
    Executable,
    MPSSimulator,
    SparseSimulator,
    StatevectorSimulator,
)

_ATOL = 1e-9


def _method_factories() -> dict:
    factories = {
        "sqlite": SQLiteBackend,
        "memdb": MemDBBackend,
        "statevector": StatevectorSimulator,
        "sparse": SparseSimulator,
        "mps": MPSSimulator,
        "dd": DecisionDiagramSimulator,
    }
    if duckdb_available():
        factories["duckdb"] = DuckDBBackend
    return factories


_METHODS = _method_factories()


def _parameterized_template() -> QuantumCircuit:
    theta = Parameter("theta")
    phi = Parameter("phi")
    circuit = QuantumCircuit(3, name="lifecycle_family")
    circuit.h(0)
    circuit.rx(theta, 0)
    circuit.cx(0, 1)
    circuit.ry(phi, 1)
    circuit.cx(1, 2)
    circuit.rz(theta * 2.0, 2)
    return circuit


_SWEEP_POINTS = [
    {"theta": 0.3, "phi": 1.1},
    {"theta": 0.9, "phi": 0.2},
    {"theta": 2.2, "phi": 2.8},
]


def _ghz() -> QuantumCircuit:
    circuit = QuantumCircuit(3, name="ghz3")
    circuit.h(0).cx(0, 1).cx(1, 2)
    return circuit


class TestLifecycleProtocol:
    """Every method exposes the same three-stage protocol."""

    @pytest.mark.parametrize("name", sorted(_METHODS), ids=sorted(_METHODS))
    def test_compile_bind_execute(self, name):
        method = _METHODS[name]()
        executable = method.compile(_parameterized_template())
        assert isinstance(executable, Executable)
        assert executable.is_parameterized
        assert executable.parameter_names == ["phi", "theta"]
        assert executable.executions == 0

        bound = executable.bind(_SWEEP_POINTS[0])
        assert isinstance(bound, BoundExecutable)
        assert not bound.circuit.is_parameterized
        assert bound.point == _SWEEP_POINTS[0]

        result = bound.execute()
        assert result.method == method.name
        assert result.metadata["parameter_binding"] == _SWEEP_POINTS[0]
        assert executable.executions == 1

    @pytest.mark.parametrize("name", sorted(_METHODS), ids=sorted(_METHODS))
    def test_execute_batch_counts_and_matches_single_binds(self, name):
        method = _METHODS[name]()
        executable = method.compile(_parameterized_template())
        batch = executable.execute_batch(_SWEEP_POINTS)
        assert len(batch) == len(_SWEEP_POINTS)
        assert executable.executions == len(_SWEEP_POINTS)
        for point, result in zip(_SWEEP_POINTS, batch):
            again = _METHODS[name]().compile(_parameterized_template()).bind(point).execute()
            assert states_agree(result.state, again.state, atol=_ATOL, up_to_global_phase=False)

    @pytest.mark.parametrize("name", sorted(_METHODS), ids=sorted(_METHODS))
    def test_run_is_the_pipeline(self, name):
        """run() stays as a back-compat wrapper over compile().bind().execute()."""
        method = _METHODS[name]()
        circuit = _ghz()
        via_run = method.run(circuit)
        via_pipeline = method.compile(circuit).bind().execute()
        assert states_agree(via_run.state, via_pipeline.state, atol=_ATOL, up_to_global_phase=False)

    def test_bind_requires_all_parameters(self):
        executable = StatevectorSimulator().compile(_parameterized_template())
        with pytest.raises(SimulationError, match="unbound parameters"):
            executable.bind({"theta": 0.3})
        with pytest.raises(SimulationError, match="unbound parameters"):
            executable.bind()

    def test_bind_rejects_unknown_parameters(self):
        executable = StatevectorSimulator().compile(_ghz())
        with pytest.raises(ParameterError):
            executable.bind({"does_not_exist": 1.0})

    def test_bind_kwargs_merge(self):
        executable = StatevectorSimulator().compile(_parameterized_template())
        result = executable.bind({"theta": 0.3}, phi=1.1).execute()
        reference = executable.bind(_SWEEP_POINTS[0]).execute()
        assert states_agree(result.state, reference.state, atol=_ATOL, up_to_global_phase=False)

    def test_unparameterized_bind_is_reusable(self):
        executable = SparseSimulator().compile(_ghz())
        first = executable.bind().execute()
        second = executable.bind().execute()
        assert executable.executions == 2
        assert states_agree(first.state, second.state, atol=_ATOL, up_to_global_phase=False)

    def test_compile_time_is_reported_separately(self):
        executable = MemDBBackend().compile(_ghz())
        assert executable.compile_time_s > 0
        result = executable.bind().execute()
        assert result.metadata["compile_time_s"] == executable.compile_time_s
        # wall_time_s covers the execute stage only.
        assert result.wall_time_s >= 0

    def test_initial_state_still_supported(self):
        circuit = QuantumCircuit(2, name="x0")
        circuit.x(0)
        start = SparseState(2, {2: 1.0 + 0.0j})
        result = StatevectorSimulator().compile(circuit).bind().execute(initial_state=start)
        assert result.state.amplitude(3) == pytest.approx(1.0)


class TestCrossMethodDifferential:
    """Amplitudes agree across every method on every bound sweep point."""

    def test_sweep_points_agree_to_1e_9(self):
        executables = {name: factory().compile(_parameterized_template()) for name, factory in _METHODS.items()}
        batches = {name: executable.execute_batch(_SWEEP_POINTS) for name, executable in executables.items()}
        reference = batches.pop("statevector")
        for name, batch in batches.items():
            for index, result in enumerate(batch):
                assert states_agree(
                    reference[index].state, result.state, atol=_ATOL, up_to_global_phase=False
                ), f"{name} disagrees with statevector at sweep point {index}"


class TestCompiledArtifacts:
    def test_statevector_artifact_prepares_bound_gates(self):
        executable = StatevectorSimulator().compile(_parameterized_template())
        plans = executable.artifact["gate_plans"]
        assert len(plans) == 6
        # h, cx, cx have precomputed matrices; the parameterized rotations do not.
        matrices = [plan[0] is not None for plan in plans if plan is not None]
        assert matrices.count(True) == 3
        assert matrices.count(False) == 3

    def test_statevector_scatter_prep_is_budget_bounded(self):
        """Precomputed gather arrays are capped at one state vector's worth."""
        circuit = QuantumCircuit(3, name="many_tuples")
        circuit.h(0).h(1).h(2)          # 3 distinct 1q tuples: 32 bytes each
        circuit.cx(0, 1).cx(1, 2)       # 2 distinct 2q tuples: 16 bytes each
        circuit.cx(0, 2)                # would exceed the 128-byte budget
        executable = StatevectorSimulator().compile(circuit)
        plans = executable.artifact["gate_plans"]
        assert [plan is not None for plan in plans] == [True] * 5 + [False]
        # The uncompiled tail still executes correctly.
        reference = StatevectorSimulator().run(circuit)
        assert states_agree(
            executable.bind().execute().state, reference.state, atol=_ATOL, up_to_global_phase=False
        )

    def test_statevector_skips_prep_beyond_limits(self):
        simulator = StatevectorSimulator(max_qubits=2)
        executable = simulator.compile(_ghz())
        assert executable.artifact == {}
        with pytest.raises(SimulationError, match="limited to 2 qubits"):
            executable.bind().execute()

    def test_sparse_artifact_holds_transition_tables(self):
        executable = SparseSimulator().compile(_ghz())
        plans = executable.artifact["gate_plans"]
        assert len(plans) == 3
        transitions, qubits = plans[0]
        assert qubits == (0,)
        assert set(transitions) == {0, 1}

    def test_relational_artifact_caches_translation(self):
        backend = SQLiteBackend()
        circuit = _ghz()
        executable = backend.compile(circuit)
        assert executable.artifact["translation"].circuit_name == "ghz3"
        assert executable.provenance["translation"]["num_steps"] == 3

    def test_oom_budget_still_raises_at_execute(self):
        from repro.errors import ResourceLimitExceeded

        simulator = StatevectorSimulator(max_state_bytes=8)
        executable = simulator.compile(_ghz())
        with pytest.raises(ResourceLimitExceeded):
            executable.bind().execute()


class TestMemdbPlanProvenance:
    def test_compile_prepares_the_plan(self):
        cache = PlanCache()
        backend = MemDBBackend(plan_cache=cache)
        executable = backend.compile(_ghz())
        assert executable.provenance["plan_cache"] == {
            "prepared": True,
            "state_at_compile": "prepared",
        }
        # The first execution re-binds the prepared plan: no new planned-tier
        # entries appear, and the hot query is a hit.
        planned_before = cache.stats()["planned"]
        executable.bind().execute()
        assert cache.stats()["planned"] == planned_before
        assert executable.provenance["last_execution"]["plan_cache"]["hits"] > 0

    def test_second_compile_hits_the_cache(self):
        cache = PlanCache()
        backend = MemDBBackend(plan_cache=cache)
        backend.compile(_ghz())
        again = backend.compile(_ghz())
        assert again.provenance["plan_cache"]["state_at_compile"] == "hit"

    def test_parameterized_template_prepares_for_every_bind(self):
        cache = PlanCache()
        backend = MemDBBackend(plan_cache=cache)
        executable = backend.compile(_parameterized_template())
        assert executable.provenance["plan_cache"]["prepared"] is True
        planned_before = cache.stats()["planned"]
        executable.execute_batch(_SWEEP_POINTS)
        # Every sweep point re-binds the plan prepared at compile time.
        assert cache.stats()["planned"] == planned_before

    def test_materialized_mode_compiles_lazily(self):
        backend = MemDBBackend(mode="materialized", plan_cache=PlanCache())
        executable = backend.compile(_ghz())
        assert executable.provenance["plan_cache"]["prepared"] is False
        executable.bind().execute()  # still runs fine

    def test_disabled_cache_skips_eager_preparation(self):
        backend = MemDBBackend(plan_cache=PlanCache(0))
        executable = backend.compile(_ghz())
        assert executable.provenance["plan_cache"] == {
            "prepared": False,
            "reason": "plan cache disabled",
        }
        assert executable.bind().execute().state.num_nonzero == 2

    def test_cached_compile_skips_table_setup(self):
        """Recompiling a cached structure must not rerun the setup statements."""
        cache = PlanCache()
        backend = MemDBBackend(plan_cache=cache)
        backend.compile(_ghz())
        parse_only_after_first = cache.stats()["parse_only"]
        misses_after_first = cache.stats()["misses"]
        again = backend.compile(_ghz())
        assert again.provenance["plan_cache"]["state_at_compile"] == "hit"
        stats = cache.stats()
        # No setup statements executed: no new parse-only entries, no misses.
        assert stats["parse_only"] == parse_only_after_first
        assert stats["misses"] == misses_after_first
