"""Tests for text visualization and export/reporting."""

import json

import pytest

from repro.circuits import ghz_circuit
from repro.errors import AnalysisError
from repro.output import (
    SimulationResult,
    SparseState,
    bloch_text,
    comparison_table,
    format_amplitude_table,
    histogram,
    line_plot,
    probability_histogram,
    read_state_csv,
    result_to_json,
    state_from_json,
    state_to_json,
    write_records_csv,
    write_records_json,
    write_state_csv,
)
from repro.simulators import StatevectorSimulator


@pytest.fixture
def ghz_state():
    return StatevectorSimulator().run(ghz_circuit(3)).state


class TestVisualization:
    def test_amplitude_table_contains_rows(self, ghz_state):
        table = format_amplitude_table(ghz_state)
        assert "000" in table and "111" in table
        assert "0.707107" in table

    def test_amplitude_table_truncation(self):
        state = SparseState(5, {i: 32 ** -0.5 for i in range(32)})
        table = format_amplitude_table(state, max_rows=4)
        assert "more rows" in table

    def test_histogram_bars_scale(self):
        art = histogram({"00": 75, "11": 25})
        lines = art.splitlines()
        assert lines[0].count("#") > lines[1].count("#")

    def test_histogram_empty_rejected(self):
        with pytest.raises(AnalysisError):
            histogram({})

    def test_probability_histogram(self, ghz_state):
        art = probability_histogram(ghz_state)
        assert "000" in art and "111" in art

    def test_bloch_text(self):
        assert "theta" in bloch_text((0.0, 0.0, 1.0))
        assert "mixed" in bloch_text((0.0, 0.0, 0.0))

    def test_comparison_table(self):
        table = comparison_table([{"method": "sqlite", "time": 0.5}, {"method": "memdb", "time": 0.25}])
        assert "sqlite" in table and "memdb" in table
        assert table.splitlines()[0].startswith("method")

    def test_comparison_table_empty_rejected(self):
        with pytest.raises(AnalysisError):
            comparison_table([])

    def test_line_plot(self):
        art = line_plot({"a": [(1, 1.0), (2, 2.0)], "b": [(1, 2.0), (2, 4.0)]}, title="demo")
        assert "demo" in art
        assert "a" in art.splitlines()[-1]

    def test_line_plot_log_scale(self):
        art = line_plot({"a": [(1, 1e-3), (2, 1e2)]}, logy=True)
        assert "log10" in art


class TestExport:
    def test_state_json_roundtrip(self, ghz_state):
        text = state_to_json(ghz_state)
        rebuilt = state_from_json(text)
        assert rebuilt.equiv(ghz_state, up_to_global_phase=False)

    def test_invalid_state_json(self):
        with pytest.raises(AnalysisError):
            state_from_json("{not json")
        with pytest.raises(AnalysisError):
            state_from_json(json.dumps({"rows": []}))

    def test_result_json_contains_metadata(self, ghz_state):
        result = SimulationResult(ghz_state, method="sqlite", circuit_name="ghz_3", wall_time_s=0.1)
        payload = json.loads(result_to_json(result))
        assert payload["method"] == "sqlite"
        assert payload["nonzero_amplitudes"] == 2

    def test_state_csv_roundtrip(self, tmp_path, ghz_state):
        path = write_state_csv(ghz_state, tmp_path / "state.csv")
        rebuilt = read_state_csv(path, num_qubits=3)
        assert rebuilt.equiv(ghz_state, up_to_global_phase=False)

    def test_state_csv_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x,y\n1,2\n")
        with pytest.raises(AnalysisError):
            read_state_csv(path, 2)

    def test_records_csv_and_json(self, tmp_path):
        records = [{"method": "sqlite", "time": 0.5}, {"method": "memdb", "time": 0.2}]
        csv_path = write_records_csv(records, tmp_path / "records.csv")
        json_path = write_records_json(records, tmp_path / "records.json")
        assert "sqlite" in csv_path.read_text()
        assert json.loads(json_path.read_text())[1]["method"] == "memdb"

    def test_records_csv_empty_rejected(self, tmp_path):
        with pytest.raises(AnalysisError):
            write_records_csv([], tmp_path / "never.csv")
