"""Tests for SparseState and SimulationResult."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.output.result import SimulationResult, SparseState


class TestSparseStateConstruction:
    def test_zero_state(self):
        state = SparseState.zero_state(3)
        assert state.num_nonzero == 1
        assert state.amplitude(0) == 1.0
        assert state.dimension == 8

    def test_from_dense_prunes_zeros(self):
        vector = np.zeros(8, dtype=np.complex128)
        vector[0] = 0.6
        vector[5] = 0.8
        state = SparseState.from_dense(vector)
        assert state.num_nonzero == 2
        assert state.amplitude(5) == pytest.approx(0.8)

    def test_from_dense_requires_power_of_two(self):
        with pytest.raises(AnalysisError):
            SparseState.from_dense(np.ones(6))

    def test_from_rows_roundtrip(self):
        rows = [(0, 0.5, 0.0), (3, 0.0, -0.5)]
        state = SparseState.from_rows(2, rows)
        assert state.to_rows() == [(0, 0.5, 0.0), (3, 0.0, -0.5)]

    def test_out_of_range_index_rejected(self):
        with pytest.raises(AnalysisError):
            SparseState(2, {4: 1.0})

    def test_explicit_zero_amplitudes_dropped(self):
        state = SparseState(2, {0: 1.0, 1: 0.0})
        assert state.num_nonzero == 1


class TestSparseStateQueries:
    def test_probabilities_and_density(self):
        state = SparseState(2, {0: 2 ** -0.5, 3: 2 ** -0.5})
        assert state.probabilities() == {0: pytest.approx(0.5), 3: pytest.approx(0.5)}
        assert state.density == pytest.approx(0.5)

    def test_marginal_probability(self):
        state = SparseState(2, {0: 2 ** -0.5, 3: 2 ** -0.5})
        assert state.marginal_probability(0, 1) == pytest.approx(0.5)
        assert state.marginal_probability(1, 0) == pytest.approx(0.5)
        with pytest.raises(AnalysisError):
            state.marginal_probability(5, 0)

    def test_bitstring_probabilities(self):
        state = SparseState(3, {5: 1.0})
        assert state.bitstring_probabilities() == {"101": pytest.approx(1.0)}

    def test_norm_and_normalized(self):
        state = SparseState(1, {0: 3.0, 1: 4.0})
        assert state.norm() == pytest.approx(5.0)
        assert state.normalized().norm() == pytest.approx(1.0)
        with pytest.raises(AnalysisError):
            SparseState(1, {}).normalized()

    def test_pruned(self):
        state = SparseState(1, {0: 1.0, 1: 1e-15})
        assert state.pruned(1e-12).num_nonzero == 1

    def test_inner_product_and_equiv(self):
        plus = SparseState(1, {0: 2 ** -0.5, 1: 2 ** -0.5})
        minus = SparseState(1, {0: 2 ** -0.5, 1: -(2 ** -0.5)})
        assert plus.inner(minus) == pytest.approx(0.0)
        assert plus.equiv(plus)
        assert not plus.equiv(minus)
        phase_flipped = SparseState(1, {0: -(2 ** -0.5), 1: -(2 ** -0.5)})
        assert plus.equiv(phase_flipped, up_to_global_phase=True)
        assert not plus.equiv(phase_flipped, up_to_global_phase=False)

    def test_inner_width_mismatch(self):
        with pytest.raises(AnalysisError):
            SparseState(1, {0: 1.0}).inner(SparseState(2, {0: 1.0}))

    def test_to_dense_roundtrip(self):
        state = SparseState(2, {1: 0.5j, 2: 0.5})
        dense = state.to_dense()
        assert dense[1] == 0.5j
        assert SparseState.from_dense(dense).equiv(state, up_to_global_phase=False)

    def test_estimated_bytes(self):
        assert SparseState(4, {0: 1.0, 5: 0.5}).estimated_bytes() == 48

    def test_iteration_and_contains(self):
        state = SparseState(2, {2: 1.0})
        assert list(state) == [2]
        assert 2 in state and 1 not in state
        assert len(state) == 1


class TestSimulationResult:
    def test_defaults_derive_from_state(self):
        state = SparseState(2, {0: 1.0})
        result = SimulationResult(state, method="sqlite", circuit_name="test")
        assert result.num_qubits == 2
        assert result.peak_state_rows == 1
        assert result.peak_state_bytes == 24

    def test_to_dict_contains_rows(self):
        state = SparseState(1, {1: 1.0})
        result = SimulationResult(state, method="memdb", wall_time_s=0.5)
        payload = result.to_dict()
        assert payload["rows"] == [[1, 1.0, 0.0]]
        assert payload["wall_time_s"] == 0.5
        assert payload["method"] == "memdb"

    def test_probabilities_passthrough(self):
        state = SparseState(1, {0: 1.0})
        assert SimulationResult(state, "x").probabilities() == {0: pytest.approx(1.0)}
