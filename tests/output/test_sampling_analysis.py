"""Tests for measurement sampling and result analysis."""

import math

import pytest

from repro.circuits import ghz_circuit, superposition_circuit
from repro.errors import AnalysisError
from repro.output import (
    SparseState,
    bloch_vector,
    collapse,
    entanglement_entropy,
    expectation_of_parity,
    global_phase_between,
    marginal_counts,
    measure_sequentially,
    purity,
    reduced_density_matrix,
    sample_counts,
    sample_indices,
    shannon_entropy,
    state_fidelity,
    states_agree,
    total_variation_distance,
)
from repro.simulators import StatevectorSimulator

_SV = StatevectorSimulator()


def _ghz_state(n=3):
    return _SV.run(ghz_circuit(n)).state


class TestSampling:
    def test_counts_sum_to_shots(self):
        counts = sample_counts(_ghz_state(), shots=500, seed=1)
        assert sum(counts.values()) == 500
        assert set(counts) <= {"000", "111"}

    def test_sample_indices_zero_total_probability(self):
        # A stored amplitude so small its squared probability underflows to
        # 0.0: must raise AnalysisError, not ZeroDivisionError.
        state = SparseState(2, {0: 1e-200})
        with pytest.raises(AnalysisError):
            sample_indices(state, 10, seed=0)

    def test_sample_counts_zero_total_probability(self):
        state = SparseState(2, {0: 1e-200})
        with pytest.raises(AnalysisError):
            sample_counts(state, 10, seed=0)

    def test_sampling_is_reproducible_with_seed(self):
        state = _ghz_state()
        assert sample_counts(state, 100, seed=42) == sample_counts(state, 100, seed=42)

    def test_sample_indices(self):
        indices = sample_indices(_ghz_state(), 50, seed=3)
        assert set(indices) <= {0, 7}

    def test_deterministic_state_sampling(self):
        state = SparseState(2, {2: 1.0})
        assert sample_counts(state, 10, seed=0) == {"10": 10}

    def test_negative_shots_rejected(self):
        with pytest.raises(AnalysisError):
            sample_counts(_ghz_state(), -1)

    def test_marginal_counts(self):
        counts = {"110": 30, "000": 70}
        assert marginal_counts(counts, [0]) == {"0": 100}
        assert marginal_counts(counts, [2]) == {"1": 30, "0": 70}

    def test_expectation_of_parity(self):
        assert expectation_of_parity(_ghz_state(2)) == pytest.approx(1.0)
        assert expectation_of_parity(_ghz_state(3)) == pytest.approx(0.0)

    def test_collapse(self):
        probability, collapsed = collapse(_ghz_state(), 0, 1)
        assert probability == pytest.approx(0.5)
        assert collapsed.probability_of(7) == pytest.approx(1.0)
        with pytest.raises(AnalysisError):
            collapse(SparseState(1, {0: 1.0}), 0, 1)

    def test_measure_sequentially_consistency(self):
        bitstring, collapsed = measure_sequentially(_ghz_state(), [0, 1, 2], seed=5)
        assert bitstring in ("000", "111")
        assert collapsed.num_nonzero == 1


class TestAnalysis:
    def test_fidelity_of_identical_states(self):
        state = _ghz_state()
        assert state_fidelity(state, state) == pytest.approx(1.0)

    def test_fidelity_of_orthogonal_states(self):
        assert state_fidelity(SparseState(1, {0: 1.0}), SparseState(1, {1: 1.0})) == pytest.approx(0.0)

    def test_total_variation_distance(self):
        assert total_variation_distance({0: 1.0}, {1: 1.0}) == pytest.approx(1.0)
        assert total_variation_distance({0: 0.5, 1: 0.5}, {0: 0.5, 1: 0.5}) == pytest.approx(0.0)

    def test_shannon_entropy(self):
        assert shannon_entropy({0: 0.5, 7: 0.5}) == pytest.approx(1.0)
        assert shannon_entropy({0: 1.0}) == pytest.approx(0.0)

    def test_reduced_density_matrix_and_purity(self):
        rho = reduced_density_matrix(_ghz_state(), [0])
        assert rho.shape == (2, 2)
        assert purity(rho) == pytest.approx(0.5)

    def test_entanglement_entropy_ghz_vs_product(self):
        assert entanglement_entropy(_ghz_state(), [0]) == pytest.approx(1.0)
        product = _SV.run(superposition_circuit(3)).state
        assert entanglement_entropy(product, [0]) == pytest.approx(0.0, abs=1e-9)

    def test_bloch_vector(self):
        plus = SparseState(1, {0: 2 ** -0.5, 1: 2 ** -0.5})
        x, y, z = bloch_vector(plus, 0)
        assert (x, y, z) == (pytest.approx(1.0), pytest.approx(0.0), pytest.approx(0.0))
        zero = SparseState(1, {0: 1.0})
        assert bloch_vector(zero, 0)[2] == pytest.approx(1.0)

    def test_global_phase_between(self):
        state = _ghz_state(2)
        rotated = SparseState(2, {k: v * complex(math.cos(0.3), math.sin(0.3)) for k, v in state.items()})
        assert global_phase_between(state, rotated) == pytest.approx(0.3)
        with pytest.raises(AnalysisError):
            global_phase_between(SparseState(1, {0: 1.0}), SparseState(1, {1: 1.0}))

    def test_states_agree_width_mismatch(self):
        assert not states_agree(SparseState(1, {0: 1.0}), SparseState(2, {0: 1.0}))
