"""Grammar-based differential SQL fuzzing: memdb vs SQLite (vs DuckDB).

Hypothesis generates random typed tables plus random SELECT / WITH queries
(joins, group-by, order-by / limit / offset, scalar expressions, CTE
chains) at the AST level — shrinking therefore simplifies the *query
structure*, not characters of a string — and asserts that the embedded
engine returns exactly the rows SQLite returns, with the optimizer on and
off, cold and plan-cache-warm, and across a mid-test data shift (which
exercises statistics invalidation and the adaptive re-plan hook).

The grammar also produces window functions (``row_number``/``rank``/
``dense_rank``/``lag``/``lead`` and running aggregates, with PARTITION BY /
ORDER BY / ROWS frames) and ``WITH RECURSIVE`` CTEs (bounded counters,
accumulators, UNION reachability over finite value domains).  Productions
whose value depends on the order *within* ORDER-BY peer groups
(``row_number``, ``lag``/``lead``, explicit ROWS frames) always end the
OVER ORDER BY in the table's unique ``id``; tie-invariant functions ride
tie-heavy keys on purpose.  These shapes also run a third engine with
dictionary encoding disabled, and a mutation test verifies the oracle
catches deliberately broken rank tie handling.

Two table families drive the grammar: the original NOT NULL numeric
tables, and a NULL-heavy family with nullable DOUBLE and TEXT columns
(empty strings, unicode, and NULL literals in the INSERTed data) whose
query shapes add ``IS [NOT] NULL`` predicates, text comparisons and IN
lists, text equality joins (NULL keys never match), and grouped queries
with NULL-skipping aggregates and text MIN/MAX — exercising the
dictionary-encoded storage, validity bitmaps, and three-valued comparison
kernels against SQLite's reference semantics.

The generated subset deliberately stays inside the semantics both engines
share (documented divergences are excluded by construction):

* no NOT in predicates — with negation excluded, collapsing NULL
  comparisons to FALSE is equivalent to SQL's top-level three-valued
  filter semantics, so the engines agree on every WHERE;
* ``/`` may yield NULL (zero divisor) in *projections* only — inside WHERE,
  three-valued logic and numpy booleans disagree under NOT;
* ``%`` only between integer operands (SQLite casts floats to INTEGER,
  memdb keeps fmod semantics, and the engines disagree with each other);
* whenever LIMIT / OFFSET is generated, the ORDER BY ends in a key that is
  unique per output row, because the *content* of a limited result under
  ties is implementation-defined in every engine.

Queries without LIMIT are compared as row multisets; limited queries are
compared in exact order.  The deep profile (``-m slow``) runs the same
grammar with a much larger example budget.
"""

from __future__ import annotations

import sqlite3

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.backends import duckdb_available
from repro.backends.memdb import MemDatabase
from repro.backends.memdb.engine import PlanCache

# ---------------------------------------------------------------------------
# Profiles
# ---------------------------------------------------------------------------

#: Bounded tier-1 profile: deterministic (fixed derivation), small budget.
#: The four fuzz tests below sum to >= 200 generated queries per run.
_FAST = settings(
    max_examples=60,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

#: Deep profile, opt-in via ``-m slow``.
_DEEP = settings(
    max_examples=500,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# ---------------------------------------------------------------------------
# Schema / data generation
# ---------------------------------------------------------------------------

_INT, _FLOAT, _TEXT = "int", "float", "text"

#: Text literal pool: empty string, unicode beyond ASCII, a digit-string
#: (must NOT coerce into numeric columns), near-collisions for collation.
_TEXT_VALUES = ["", "a", "b", "ab", "ba", "zz", "é", "Ω", "näive", "0", " "]


@st.composite
def _tables(draw, count: int = 1):
    """Random typed tables: a unique ``id`` plus 1-3 value columns each."""
    tables = []
    for index in range(count):
        name = f"t{index}"
        n_values = draw(st.integers(min_value=1, max_value=3))
        columns = [("id", _INT)]
        for c in range(n_values):
            kind = draw(st.sampled_from([_INT, _FLOAT]))
            columns.append((f"c{c}", kind))
        rows = draw(st.integers(min_value=0, max_value=20))
        data = []
        for row_id in range(rows):
            row = [row_id]
            for _name, kind in columns[1:]:
                if kind == _INT:
                    row.append(draw(st.integers(min_value=-8, max_value=8)))
                else:
                    # Quarter-steps: exact in binary, tie-heavy by design.
                    row.append(draw(st.integers(min_value=-24, max_value=24)) / 4.0)
            data.append(row)
        tables.append({"name": name, "columns": columns, "rows": data})
    return tables


_SQL_TYPES = {_INT: "BIGINT", _FLOAT: "DOUBLE", _TEXT: "TEXT"}


def _sql_literal(value) -> str:
    return "NULL" if value is None else repr(value)


def _ddl(table) -> list[str]:
    nullable = table.get("nullable", set())
    decls = ", ".join(
        f"{name} {_SQL_TYPES[kind]}{'' if name in nullable else ' NOT NULL'}"
        for name, kind in table["columns"]
    )
    statements = [f"CREATE TABLE {table['name']} ({decls})"]
    if table["rows"]:
        names = ", ".join(name for name, _ in table["columns"])
        values = ", ".join(
            "(" + ", ".join(_sql_literal(value) for value in row) + ")"
            for row in table["rows"]
        )
        statements.append(f"INSERT INTO {table['name']} ({names}) VALUES {values}")
    return statements


def _columns_of(table, kind=None):
    return [
        (f"{table['name']}.{name}", k)
        for name, k in table["columns"]
        if kind is None or k == kind
    ]


@st.composite
def _null_tables(draw, count: int = 1):
    """NULL-heavy tables: NOT NULL ``id`` plus nullable DOUBLE/TEXT columns."""
    tables = []
    for index in range(count):
        name = f"t{index}"
        columns = [("id", _INT)]
        for c in range(draw(st.integers(min_value=0, max_value=2))):
            columns.append((f"f{c}", _FLOAT))
        for c in range(draw(st.integers(min_value=1, max_value=2))):
            columns.append((f"s{c}", _TEXT))
        rows = draw(st.integers(min_value=0, max_value=20))
        data = []
        for row_id in range(rows):
            row = [row_id]
            for _name, kind in columns[1:]:
                if draw(st.integers(min_value=0, max_value=3)) == 0:
                    row.append(None)
                elif kind == _FLOAT:
                    row.append(draw(st.integers(min_value=-24, max_value=24)) / 4.0)
                else:
                    row.append(draw(st.sampled_from(_TEXT_VALUES)))
            data.append(row)
        tables.append(
            {
                "name": name,
                "columns": columns,
                "rows": data,
                "nullable": {column for column, _kind in columns[1:]},
            }
        )
    return tables


# ---------------------------------------------------------------------------
# Expression grammar
# ---------------------------------------------------------------------------


@st.composite
def _expr(draw, columns, depth: int = 2, division: bool = False):
    """A scalar expression over ``columns``; returns (sql, kind).

    ``division`` additionally allows ``/`` (and integer ``%``) — safe in
    projections, excluded from predicates and ORDER BY keys (NULL vs NaN
    ordering / three-valued logic divergences).
    """
    if depth <= 0 or draw(st.booleans()):
        if columns and draw(st.integers(min_value=0, max_value=3)) > 0:
            return draw(st.sampled_from(columns))
        if draw(st.booleans()):
            return str(draw(st.integers(min_value=-9, max_value=9))), _INT
        return repr(draw(st.integers(min_value=-12, max_value=12)) / 4.0), _FLOAT
    choice = draw(st.integers(min_value=0, max_value=5 if division else 3))
    if choice == 3:
        inner, kind = draw(_expr(columns, depth - 1, division))
        return f"abs({inner})", kind
    left, left_kind = draw(_expr(columns, depth - 1, division))
    right, right_kind = draw(_expr(columns, depth - 1, division))
    kind = _INT if (left_kind, right_kind) == (_INT, _INT) else _FLOAT
    if choice <= 2:
        operator = ["+", "-", "*"][choice]
        return f"({left} {operator} {right})", kind
    if choice == 4:
        return f"({left} / {right})", kind
    # Integer-only modulo; regenerate integer operands when needed.
    if left_kind != _INT:
        left = str(draw(st.integers(min_value=-9, max_value=9)))
    if right_kind != _INT:
        right = str(draw(st.integers(min_value=-9, max_value=9)))
    return f"({left} % {right})", _INT


@st.composite
def _predicate(draw, columns, depth: int = 2):
    """A WHERE/HAVING-safe boolean expression (no division, no NOT)."""
    if depth <= 0 or draw(st.booleans()):
        kind = draw(st.integers(min_value=0, max_value=3))
        if kind == 3 and columns:
            column, column_kind = draw(st.sampled_from(columns))
            if column_kind == _INT:
                values = draw(
                    st.lists(st.integers(min_value=-8, max_value=8), min_size=1, max_size=4)
                )
                negated = draw(st.booleans())
                rendered = ", ".join(str(v) for v in values)
                return f"{column} {'NOT IN' if negated else 'IN'} ({rendered})"
        left, _ = draw(_expr(columns, depth=1))
        right, _ = draw(_expr(columns, depth=1))
        operator = draw(st.sampled_from(["<", "<=", ">", ">=", "=", "!="]))
        return f"{left} {operator} {right}"
    connective = draw(st.sampled_from(["AND", "OR"]))
    left = draw(_predicate(columns, depth - 1))
    right = draw(_predicate(columns, depth - 1))
    return f"({left} {connective} {right})"


@st.composite
def _case_expr(draw, columns):
    condition = draw(_predicate(columns, depth=1))
    then, then_kind = draw(_expr(columns, depth=1))
    otherwise, other_kind = draw(_expr(columns, depth=1))
    kind = _INT if (then_kind, other_kind) == (_INT, _INT) else _FLOAT
    return f"CASE WHEN {condition} THEN {then} ELSE {otherwise} END", kind


@st.composite
def _projection_expr(draw, columns):
    if draw(st.integers(min_value=0, max_value=4)) == 0:
        return draw(_case_expr(columns))
    return draw(_expr(columns, depth=2, division=True))


@st.composite
def _limit_tail(draw, unique_keys, extra_order_columns):
    """ORDER BY ... [LIMIT n [OFFSET m]] ending in a total order.

    ``unique_keys`` identify an output row uniquely; optional tie-heavy
    leading keys exercise the top-k operator's tie handling.
    """
    order: list[str] = []
    if extra_order_columns and draw(st.booleans()):
        column, _kind = draw(st.sampled_from(extra_order_columns))
        order.append(f"{column} {draw(st.sampled_from(['ASC', 'DESC']))}")
    for key in unique_keys:
        order.append(f"{key} {draw(st.sampled_from(['ASC', 'DESC']))}")
    tail = f" ORDER BY {', '.join(order)}"
    limited = draw(st.booleans())
    if limited:
        limit = draw(st.sampled_from([0, 1, 2, 3, 5, 10, 25, -1]))
        tail += f" LIMIT {limit}"
        if draw(st.booleans()):
            offset = draw(st.sampled_from([0, 1, 2, 5, 40, -3]))
            tail += f" OFFSET {offset}"
    return tail, limited


# ---------------------------------------------------------------------------
# Query shapes
# ---------------------------------------------------------------------------


@st.composite
def _simple_query(draw, tables):
    table = tables[0]
    columns = _columns_of(table)
    distinct = draw(st.booleans())
    if distinct:
        # Real deduplication (no unique id in the projection), division-free
        # expressions (NaN-vs-NULL dedup diverges), multiset comparison.
        items = []
        for position in range(draw(st.integers(min_value=1, max_value=3))):
            expression, _ = draw(_expr(columns, depth=2, division=False))
            items.append(f"{expression} AS e{position}")
        sql = f"SELECT DISTINCT {', '.join(items)} FROM {table['name']}"
        if draw(st.booleans()):
            sql += f" WHERE {draw(_predicate(columns))}"
        return sql, False
    items = [f"{table['name']}.id AS id0"]
    for position in range(draw(st.integers(min_value=1, max_value=3))):
        expression, _ = draw(_projection_expr(columns))
        items.append(f"{expression} AS e{position}")
    sql = f"SELECT {', '.join(items)} FROM {table['name']}"
    if draw(st.booleans()):
        sql += f" WHERE {draw(_predicate(columns))}"
    tail, _limited = draw(_limit_tail(["id0"], columns))
    if draw(st.booleans()):
        sql += tail
        return sql, True
    return sql, False


@st.composite
def _join_query(draw, tables):
    left, right = tables[0], tables[1]
    left_ints = _columns_of(left, _INT)
    right_ints = _columns_of(right, _INT)
    left_key, _ = draw(st.sampled_from(left_ints))
    right_key, _ = draw(st.sampled_from(right_ints))
    all_columns = _columns_of(left) + _columns_of(right)
    items = [f"{left['name']}.id AS id0", f"{right['name']}.id AS id1"]
    for position in range(draw(st.integers(min_value=1, max_value=2))):
        expression, _ = draw(_projection_expr(all_columns))
        items.append(f"{expression} AS e{position}")
    sql = (
        f"SELECT {', '.join(items)} FROM {left['name']} "
        f"JOIN {right['name']} ON {left_key} = {right_key}"
    )
    if draw(st.booleans()):
        sql += f" WHERE {draw(_predicate(all_columns))}"
    tail, _limited = draw(_limit_tail(["id0", "id1"], all_columns))
    if draw(st.booleans()):
        sql += tail
        return sql, True
    return sql, False


@st.composite
def _grouped_query(draw, tables):
    table = tables[0]
    columns = _columns_of(table)
    value_columns = [c for c in columns if not c[0].endswith(".id")]
    keys = draw(
        st.lists(st.sampled_from(value_columns), min_size=1, max_size=2, unique_by=lambda c: c[0])
    )
    items = [f"{column} AS k{i}" for i, (column, _) in enumerate(keys)]
    aggregates = ["COUNT(*) AS n"]
    for position in range(draw(st.integers(min_value=1, max_value=2))):
        function = draw(st.sampled_from(["SUM", "MIN", "MAX", "AVG", "COUNT"]))
        argument, _ = draw(_expr(columns, depth=1, division=False))
        aggregates.append(f"{function}({argument}) AS a{position}")
    sql = (
        f"SELECT {', '.join(items + aggregates)} FROM {table['name']}"
    )
    if draw(st.booleans()):
        sql += f" WHERE {draw(_predicate(columns))}"
    sql += f" GROUP BY {', '.join(column for column, _ in keys)}"
    if draw(st.booleans()):
        sql += f" HAVING COUNT(*) >= {draw(st.integers(min_value=1, max_value=3))}"
    key_aliases = [f"k{i}" for i in range(len(keys))]
    tail, _limited = draw(_limit_tail(key_aliases, []))
    if draw(st.booleans()):
        sql += tail
        return sql, True
    return sql, False


@st.composite
def _cte_query(draw, tables):
    """A 1-2 level CTE chain over t0, optionally joined with t1."""
    base = tables[0]
    base_columns = _columns_of(base)
    int_columns = _columns_of(base, _INT)
    body_items = [f"{base['name']}.id AS id"]
    exported = [("c0.id", _INT)]
    for position, (column, kind) in enumerate(base_columns[1:]):
        body_items.append(f"{column} AS v{position}")
        exported.append((f"c0.v{position}", kind))
    expression, kind = draw(_expr(base_columns, depth=2, division=False))
    body_items.append(f"{expression} AS ex")
    exported.append(("c0.ex", kind))
    body = f"SELECT {', '.join(body_items)} FROM {base['name']}"
    if draw(st.booleans()):
        body += f" WHERE {draw(_predicate(base_columns))}"
    ctes = [f"c0 AS ({body})"]

    chain = draw(st.booleans())
    if chain:
        inner_items = [f"c0.id AS id"] + [
            f"{column} AS w{i}" for i, (column, _kind) in enumerate(exported[1:])
        ]
        inner = f"SELECT {', '.join(inner_items)} FROM c0"
        if draw(st.booleans()):
            inner += f" WHERE {draw(_predicate(exported))}"
        ctes.append(f"c1 AS ({inner})")
        consumer_name = "c1"
        consumer_columns = [("c1.id", _INT)] + [
            (f"c1.w{i}", kind) for i, (_c, kind) in enumerate(exported[1:])
        ]
    else:
        consumer_name = "c0"
        consumer_columns = exported

    join = len(tables) > 1 and draw(st.booleans())
    items = [f"{consumer_name}.id AS id0"]
    unique = ["id0"]
    all_columns = list(consumer_columns)
    from_clause = f"FROM {consumer_name}"
    if join:
        other = tables[1]
        other_ints = _columns_of(other, _INT)
        left_key = draw(st.sampled_from([c for c, k in consumer_columns if k == _INT]))
        right_key, _ = draw(st.sampled_from(other_ints))
        from_clause += f" JOIN {other['name']} ON {left_key} = {right_key}"
        items.append(f"{other['name']}.id AS id1")
        unique.append("id1")
        all_columns += _columns_of(other)
    for position in range(draw(st.integers(min_value=1, max_value=2))):
        expression, _ = draw(_projection_expr(all_columns))
        items.append(f"{expression} AS e{position}")
    sql = f"WITH {', '.join(ctes)} SELECT {', '.join(items)} {from_clause}"
    if draw(st.booleans()):
        sql += f" WHERE {draw(_predicate(all_columns))}"
    tail, _limited = draw(_limit_tail(unique, all_columns))
    if draw(st.booleans()):
        sql += tail
        return sql, True
    return sql, False


# ---------------------------------------------------------------------------
# NULL-heavy query shapes (nullable DOUBLE / TEXT tables)
# ---------------------------------------------------------------------------


def _split_null_columns(table):
    """(numeric columns incl. id, text column names, nullable column names)."""
    name = table["name"]
    numeric = [(f"{name}.id", _INT)] + [
        (f"{name}.{column}", kind)
        for column, kind in table["columns"][1:]
        if kind == _FLOAT
    ]
    texts = [f"{name}.{column}" for column, kind in table["columns"][1:] if kind == _TEXT]
    nullable = [f"{name}.{column}" for column in sorted(table.get("nullable", ()))]
    return numeric, texts, nullable


@st.composite
def _null_predicate(draw, numeric_columns, nullable_columns, text_columns, depth: int = 2):
    """WHERE-safe predicate over NULL-able data: IS [NOT] NULL, text
    comparisons / IN lists (no NULL elements), numeric comparisons.  NOT is
    excluded, so NULL-collapses-to-FALSE matches SQL filter semantics."""
    if depth <= 0 or draw(st.booleans()):
        kind = draw(st.integers(min_value=0, max_value=3))
        if kind == 0 and nullable_columns:
            column = draw(st.sampled_from(nullable_columns))
            negated = "NOT " if draw(st.booleans()) else ""
            return f"{column} IS {negated}NULL"
        if kind == 1 and text_columns:
            column = draw(st.sampled_from(text_columns))
            if draw(st.booleans()):
                operator = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
                return f"{column} {operator} {draw(st.sampled_from(_TEXT_VALUES))!r}"
            values = draw(
                st.lists(st.sampled_from(_TEXT_VALUES), min_size=1, max_size=3, unique=True)
            )
            rendered = ", ".join(repr(value) for value in values)
            return f"{column} {'NOT IN' if draw(st.booleans()) else 'IN'} ({rendered})"
        if kind == 2 and len(text_columns) >= 2:
            left, right = draw(st.permutations(text_columns))[:2]
            return f"{left} {draw(st.sampled_from(['=', '!=', '<', '>']))} {right}"
        left, _ = draw(_expr(numeric_columns, depth=1))
        right, _ = draw(_expr(numeric_columns, depth=1))
        operator = draw(st.sampled_from(["<", "<=", ">", ">=", "=", "!="]))
        return f"{left} {operator} {right}"
    connective = draw(st.sampled_from(["AND", "OR"]))
    left = draw(_null_predicate(numeric_columns, nullable_columns, text_columns, depth - 1))
    right = draw(_null_predicate(numeric_columns, nullable_columns, text_columns, depth - 1))
    return f"({left} {connective} {right})"


@st.composite
def _null_simple_query(draw, tables):
    """Projections / filters / order-limit tails over one NULL-heavy table."""
    table = tables[0]
    numeric, texts, nullable = _split_null_columns(table)
    items = [f"{table['name']}.id AS id0"]
    for position in range(draw(st.integers(min_value=1, max_value=3))):
        choice = draw(st.integers(min_value=0, max_value=3))
        if choice == 0 and texts:
            items.append(f"{draw(st.sampled_from(texts))} AS e{position}")
        elif choice == 1 and texts:
            # || propagates NULL in both engines.
            suffix = draw(st.sampled_from(["!", "x", ""]))
            items.append(f"({draw(st.sampled_from(texts))} || {suffix!r}) AS e{position}")
        else:
            expression, _ = draw(_projection_expr(numeric))
            items.append(f"{expression} AS e{position}")
    sql = f"SELECT {', '.join(items)} FROM {table['name']}"
    if draw(st.booleans()):
        sql += f" WHERE {draw(_null_predicate(numeric, nullable, texts))}"
    tail, _limited = draw(_limit_tail(["id0"], [(column, _TEXT) for column in texts]))
    if draw(st.booleans()):
        sql += tail
        return sql, True
    return sql, False


@st.composite
def _null_text_join_query(draw, tables):
    """Equality join on nullable TEXT keys (NULL keys never match)."""
    left, right = tables[0], tables[1]
    left_numeric, left_texts, left_nullable = _split_null_columns(left)
    right_numeric, right_texts, right_nullable = _split_null_columns(right)
    left_key = draw(st.sampled_from(left_texts))
    right_key = draw(st.sampled_from(right_texts))
    numeric = left_numeric + right_numeric
    texts = left_texts + right_texts
    nullable = left_nullable + right_nullable
    items = [f"{left['name']}.id AS id0", f"{right['name']}.id AS id1"]
    for position in range(draw(st.integers(min_value=1, max_value=2))):
        if texts and draw(st.booleans()):
            items.append(f"{draw(st.sampled_from(texts))} AS e{position}")
        else:
            expression, _ = draw(_projection_expr(numeric))
            items.append(f"{expression} AS e{position}")
    sql = (
        f"SELECT {', '.join(items)} FROM {left['name']} "
        f"JOIN {right['name']} ON {left_key} = {right_key}"
    )
    if draw(st.booleans()):
        sql += f" WHERE {draw(_null_predicate(numeric, nullable, texts))}"
    tail, _limited = draw(_limit_tail(["id0", "id1"], [(column, _TEXT) for column in texts]))
    if draw(st.booleans()):
        sql += tail
        return sql, True
    return sql, False


@st.composite
def _null_grouped_query(draw, tables):
    """GROUP BY over nullable text/float keys (multi-key included) with
    NULL-skipping aggregates and text MIN/MAX."""
    table = tables[0]
    numeric, texts, nullable = _split_null_columns(table)
    value_columns = [
        (f"{table['name']}.{column}", kind) for column, kind in table["columns"][1:]
    ]
    keys = draw(
        st.lists(
            st.sampled_from(value_columns), min_size=1, max_size=2, unique_by=lambda c: c[0]
        )
    )
    items = [f"{column} AS k{i}" for i, (column, _kind) in enumerate(keys)]
    aggregates = ["COUNT(*) AS n"]
    for position in range(draw(st.integers(min_value=1, max_value=2))):
        target, target_kind = draw(st.sampled_from(value_columns))
        if target_kind == _TEXT:
            function = draw(st.sampled_from(["COUNT", "MIN", "MAX"]))
        else:
            function = draw(st.sampled_from(["COUNT", "SUM", "MIN", "MAX", "AVG"]))
        aggregates.append(f"{function}({target}) AS a{position}")
    sql = f"SELECT {', '.join(items + aggregates)} FROM {table['name']}"
    if draw(st.booleans()):
        sql += f" WHERE {draw(_null_predicate(numeric, nullable, texts))}"
    sql += f" GROUP BY {', '.join(column for column, _kind in keys)}"
    if draw(st.booleans()):
        sql += f" HAVING COUNT(*) >= {draw(st.integers(min_value=1, max_value=3))}"
    key_aliases = [f"k{i}" for i in range(len(keys))]
    tail, _limited = draw(_limit_tail(key_aliases, []))
    if draw(st.booleans()):
        sql += tail
        return sql, True
    return sql, False


#: NULL-heavy shapes: shape -> (table count, strategy).
_NULL_SHAPES = {
    "simple": (1, _null_simple_query),
    "join": (2, _null_text_join_query),
    "grouped": (1, _null_grouped_query),
}


# ---------------------------------------------------------------------------
# Window-function and recursive-CTE query shapes
# ---------------------------------------------------------------------------
#
# Tie discipline: ``row_number``, ``lag``/``lead`` and explicit ROWS frames
# depend on the order *within* ORDER-BY peer groups, which is
# implementation-defined — those productions always end the OVER ORDER BY
# in the table's unique ``id``.  ``rank``/``dense_rank`` and default-frame
# aggregates (peer-inclusive RANGE semantics) are tie-invariant, so they may
# ride on tie-heavy keys alone, which is exactly where broken peer handling
# would diverge from SQLite.

#: Valid ROWS frames (start never after end; both engines accept these).
_ROWS_FRAMES = [
    "ROWS BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW",
    "ROWS BETWEEN UNBOUNDED PRECEDING AND 1 FOLLOWING",
    "ROWS BETWEEN UNBOUNDED PRECEDING AND UNBOUNDED FOLLOWING",
    "ROWS BETWEEN 2 PRECEDING AND CURRENT ROW",
    "ROWS BETWEEN 3 PRECEDING AND 1 PRECEDING",
    "ROWS BETWEEN 1 PRECEDING AND 2 FOLLOWING",
    "ROWS BETWEEN CURRENT ROW AND UNBOUNDED FOLLOWING",
    "ROWS BETWEEN CURRENT ROW AND 2 FOLLOWING",
    "ROWS BETWEEN 1 FOLLOWING AND 3 FOLLOWING",
]


@st.composite
def _over_clause(draw, partition_columns, order_columns, unique_key, tie_dependent, with_frame):
    """An ``OVER (...)`` clause; tie-dependent callers get a unique ORDER BY tail."""
    parts = []
    if partition_columns:
        keys = draw(st.lists(st.sampled_from(partition_columns), min_size=0, max_size=2, unique=True))
        if keys:
            parts.append("PARTITION BY " + ", ".join(keys))
    order = []
    if order_columns:
        for column in draw(st.lists(st.sampled_from(order_columns), min_size=0, max_size=2, unique=True)):
            order.append(f"{column} {draw(st.sampled_from(['ASC', 'DESC']))}")
    if tie_dependent:
        order.append(f"{unique_key} {draw(st.sampled_from(['ASC', 'DESC']))}")
    if order:
        parts.append("ORDER BY " + ", ".join(order))
    if with_frame:
        parts.append(draw(st.sampled_from(_ROWS_FRAMES)))
    return "(" + " ".join(parts) + ")"


@st.composite
def _window_items(draw, numeric_columns, partition_columns, order_columns, unique_key, text_columns=()):
    """1-3 window projection items, each aliased ``w{i}``."""
    items = []
    for position in range(draw(st.integers(min_value=1, max_value=3))):
        choice = draw(st.integers(min_value=0, max_value=3))
        if choice == 0:
            function = draw(st.sampled_from(["row_number", "rank", "dense_rank"]))
            over = draw(
                _over_clause(
                    partition_columns,
                    order_columns,
                    unique_key,
                    tie_dependent=function == "row_number",
                    with_frame=False,
                )
            )
            items.append(f"{function}() OVER {over} AS w{position}")
        elif choice == 1:
            function = draw(st.sampled_from(["lag", "lead"]))
            if text_columns and draw(st.booleans()):
                argument = draw(st.sampled_from(text_columns))
                default = repr(draw(st.sampled_from(_TEXT_VALUES)))
            else:
                argument, _kind = draw(st.sampled_from(numeric_columns))
                default = str(draw(st.integers(min_value=-9, max_value=9)))
            pieces = [argument]
            form = draw(st.integers(min_value=0, max_value=2))
            if form >= 1:
                pieces.append(str(draw(st.integers(min_value=0, max_value=3))))
            if form == 2:
                pieces.append(default)
            over = draw(
                _over_clause(
                    partition_columns, order_columns, unique_key, tie_dependent=True, with_frame=False
                )
            )
            items.append(f"{function}({', '.join(pieces)}) OVER {over} AS w{position}")
        else:
            function = draw(st.sampled_from(["sum", "count", "avg", "min", "max"]))
            if function == "count" and draw(st.booleans()):
                argument = "*"
            else:
                argument, _kind = draw(st.sampled_from(numeric_columns))
            # Explicit ROWS frames slice inside peer groups: tie-dependent.
            framed = draw(st.booleans())
            over = draw(
                _over_clause(
                    partition_columns,
                    order_columns,
                    unique_key,
                    tie_dependent=framed,
                    with_frame=framed,
                )
            )
            items.append(f"{function}({argument}) OVER {over} AS w{position}")
    return items


@st.composite
def _window_query(draw, tables):
    """Window functions over one NOT NULL numeric table (tie-heavy keys)."""
    table = tables[0]
    columns = _columns_of(table)
    unique_key = f"{table['name']}.id"
    value_columns = [column for column, _kind in columns if not column.endswith(".id")]
    items = [f"{unique_key} AS id0"]
    items += draw(_window_items(columns, value_columns, value_columns, unique_key))
    sql = f"SELECT {', '.join(items)} FROM {table['name']}"
    if draw(st.booleans()):
        sql += f" WHERE {draw(_predicate(columns))}"
    tail, _limited = draw(_limit_tail(["id0"], []))
    if draw(st.booleans()):
        sql += tail
        return sql, True
    return sql, False


@st.composite
def _null_window_query(draw, tables):
    """Window functions over a NULL-heavy table: text partition keys (unicode
    and NULL included), NULL-skipping window aggregates, lag/lead over text."""
    table = tables[0]
    numeric, texts, _nullable = _split_null_columns(table)
    unique_key = f"{table['name']}.id"
    value_numeric = [column for column, _kind in numeric if not column.endswith(".id")]
    items = [f"{unique_key} AS id0"]
    items += draw(
        _window_items(
            numeric,
            texts + value_numeric,
            value_numeric + texts,
            unique_key,
            text_columns=texts,
        )
    )
    sql = f"SELECT {', '.join(items)} FROM {table['name']}"
    if draw(st.booleans()):
        sql += f" WHERE {draw(_null_predicate(numeric, _nullable, texts))}"
    tail, _limited = draw(_limit_tail(["id0"], []))
    if draw(st.booleans()):
        sql += tail
        return sql, True
    return sql, False


@st.composite
def _recursive_query(draw, tables):
    """WITH RECURSIVE shapes: counters (UNION ALL with a bound), accumulator
    recursion consumed by a window function, and UNION reachability over the
    table's finite value domain (dedup is the only terminator)."""
    table = tables[0]
    shape = draw(st.integers(min_value=0, max_value=2))
    int_value_columns = [
        column for column, _kind in _columns_of(table, _INT) if not column.endswith(".id")
    ]
    if shape == 2 and not int_value_columns:
        shape = 0
    if shape == 0:
        start = draw(st.integers(min_value=-3, max_value=3))
        step = draw(st.integers(min_value=1, max_value=3))
        bound = start + step * draw(st.integers(min_value=0, max_value=40))
        union = "UNION ALL" if draw(st.booleans()) else "UNION"
        sql = (
            f"WITH RECURSIVE r(n) AS (SELECT {start} {union} "
            f"SELECT n + {step} FROM r WHERE n < {bound}) SELECT n FROM r ORDER BY n"
        )
        return sql, True
    if shape == 1:
        seed = draw(st.integers(min_value=-4, max_value=4))
        depth = draw(st.integers(min_value=0, max_value=30))
        items = ["n", "acc"]
        if draw(st.booleans()):
            direction = draw(st.sampled_from(["ASC", "DESC"]))
            items.append(f"row_number() OVER (ORDER BY n {direction}) AS w0")
        sql = (
            f"WITH RECURSIVE r(n, acc) AS (SELECT 0, {seed} UNION ALL "
            f"SELECT n + 1, acc + n FROM r WHERE n < {depth}) "
            f"SELECT {', '.join(items)} FROM r ORDER BY n"
        )
        return sql, True
    column = draw(st.sampled_from(int_value_columns)).split(".", 1)[1]
    seed = draw(st.integers(min_value=0, max_value=20))
    name = table["name"]
    if draw(st.booleans()):
        consumer = "SELECT x FROM r ORDER BY x"
    else:
        consumer = (
            f"SELECT r.x AS x, {name}.id AS id0 FROM r "
            f"JOIN {name} ON {name}.id = r.x ORDER BY x, id0"
        )
    sql = (
        f"WITH RECURSIVE r(x) AS (SELECT {seed} UNION "
        f"SELECT {name}.{column} FROM {name} JOIN r ON {name}.id = r.x) {consumer}"
    )
    return sql, True


# ---------------------------------------------------------------------------
# Differential harness
# ---------------------------------------------------------------------------


def _normalize(value):
    if value is None:
        return None
    if isinstance(value, bool):
        return round(float(value), 7)
    if isinstance(value, (int, float)):
        number = float(value)
        if number != number:  # NaN encodes NULL in memdb
            return None
        return round(number, 7)
    return value


def _normalize_rows(rows):
    return [tuple(_normalize(value) for value in row) for row in rows]


def _sort_key(row):
    return tuple((value is None, value if value is not None else 0.0) for value in row)


def _run_sqlite(connection, sql: str):
    return connection.execute(sql).fetchall()


def _run_duckdb(statements, queries):
    import duckdb

    connection = duckdb.connect()
    for statement in statements:
        connection.execute(statement)
    return [connection.execute(query).fetchall() for query in queries]


def _assert_rows_match(expected, actual, ordered: bool, label: str, sql: str) -> None:
    expected = _normalize_rows(expected)
    actual = _normalize_rows(actual)
    if not ordered:
        expected = sorted(expected, key=_sort_key)
        actual = sorted(actual, key=_sort_key)
    assert actual == expected, f"{label} diverged on:\n{sql}\nexpected {expected}\nactual   {actual}"


def _shift_statements(tables, draw_rows):
    """Extra INSERTs that change every table's distribution mid-test."""
    statements = []
    for table in tables:
        start = len(table["rows"])
        values = []
        for offset, extra in enumerate(draw_rows):
            row = [start + offset]
            for _name, kind in table["columns"][1:]:
                if kind == _INT:
                    row.append(int(extra))
                elif kind == _FLOAT:
                    row.append(extra / 2.0)
                else:
                    # Deterministic text/NULL from the drawn integer: grows
                    # the dictionary (and the NULL population) mid-test.
                    row.append(
                        None if extra % 5 == 0 else _TEXT_VALUES[int(extra) % len(_TEXT_VALUES)]
                    )
            values.append("(" + ", ".join(_sql_literal(v) for v in row) + ")")
        if values:
            names = ", ".join(name for name, _ in table["columns"])
            statements.append(f"INSERT INTO {table['name']} ({names}) VALUES {', '.join(values)}")
    return statements


def _differential_check(tables, query, draw_analyze: bool, shift_rows, dict_ablation: bool = False) -> None:
    sql, ordered = query
    setup = [statement for table in tables for statement in _ddl(table)]

    sqlite_connection = sqlite3.connect(":memory:")
    for statement in setup:
        sqlite_connection.execute(statement)

    engines = [
        ("memdb[optimizer]", MemDatabase(plan_cache=PlanCache(maxsize=32))),
        ("memdb[plain]", MemDatabase(plan_cache=PlanCache(maxsize=32), enable_optimizer=False)),
    ]
    if dict_ablation:
        # Same grammar with TEXT stored as object arrays instead of
        # dictionary codes: collation and NULL semantics may not depend on
        # the storage representation.
        engines.append(
            ("memdb[no-dict]", MemDatabase(plan_cache=PlanCache(maxsize=32), enable_dict_encoding=False))
        )
    for _label, engine in engines:
        for statement in setup:
            engine.execute(statement)
    if draw_analyze:
        engines[0][1].execute("ANALYZE")

    expected = _run_sqlite(sqlite_connection, sql)
    for label, engine in engines:
        _assert_rows_match(expected, engine.execute(sql).rows, ordered, label, sql)
        # Second execution re-binds the cached plan (and may re-plan via
        # adaptive feedback): must be byte-identical to the cold run.
        _assert_rows_match(expected, engine.execute(sql).rows, ordered, label + "[warm]", sql)

    if duckdb_available():
        (duck_rows,) = _run_duckdb(setup, [sql])
        _assert_rows_match(expected, duck_rows, ordered, "duckdb", sql)

    if shift_rows:
        shift = _shift_statements(tables, shift_rows)
        for statement in shift:
            sqlite_connection.execute(statement)
            for _label, engine in engines:
                engine.execute(statement)
        expected = _run_sqlite(sqlite_connection, sql)
        for label, engine in engines:
            _assert_rows_match(expected, engine.execute(sql).rows, ordered, label + "[shift]", sql)
            _assert_rows_match(expected, engine.execute(sql).rows, ordered, label + "[shift+warm]", sql)

    sqlite_connection.close()


_shift_strategy = st.lists(st.integers(min_value=-30, max_value=30), min_size=0, max_size=12)


def _parallel_check(tables, query) -> None:
    """Morsel-parallel execution must be byte-identical to serial (and SQLite).

    The parallel engine forces the costed decision onto every non-empty
    block (``parallel_threshold_rows=0``), so even the fuzzer's small tables
    exercise the morsel merges, the partitioned aggregation and the
    parallel join probes.  Rows are compared against the serial engine with
    *exact* equality (no normalization): parallelism is a physical choice
    and may not perturb a single bit.
    """
    from repro.backends.memdb.parallel import shared_worker_pool

    sql, ordered = query
    setup = [statement for table in tables for statement in _ddl(table)]

    parallel = MemDatabase(
        plan_cache=PlanCache(maxsize=32),
        enable_parallel=True,
        parallel_threshold_rows=0,
        worker_pool=shared_worker_pool(),
    )
    serial = MemDatabase(plan_cache=PlanCache(maxsize=32), enable_parallel=False)
    sqlite_connection = sqlite3.connect(":memory:")
    for statement in setup:
        parallel.execute(statement)
        serial.execute(statement)
        sqlite_connection.execute(statement)

    def identical(left, right) -> bool:
        # Exact, NaN-aware row equality (NaN == NaN positionally, no rounding).
        if len(left) != len(right):
            return False
        for row_a, row_b in zip(left, right):
            for a, b in zip(row_a, row_b):
                both_nan = (
                    isinstance(a, float) and isinstance(b, float) and a != a and b != b
                )
                if not both_nan and (a != b or type(a) is not type(b)):
                    return False
        return True

    expected = serial.execute(sql).rows
    for attempt in ("cold", "warm"):
        actual = parallel.execute(sql).rows
        assert identical(actual, expected), (
            f"parallel[{attempt}] diverged from serial on:\n{sql}\n"
            f"expected {expected}\nactual   {actual}"
        )
    _assert_rows_match(
        _run_sqlite(sqlite_connection, sql), expected, ordered, "memdb[parallel-vs-sqlite]", sql
    )
    sqlite_connection.close()


# ---------------------------------------------------------------------------
# Bounded tier-1 profile (>= 200 generated queries per run)
# ---------------------------------------------------------------------------


@given(data=st.data())
@_FAST
def test_fuzz_single_table_matches_sqlite(data):
    tables = data.draw(_tables(count=1))
    query = data.draw(_simple_query(tables))
    _differential_check(tables, query, data.draw(st.booleans()), data.draw(_shift_strategy))


@given(data=st.data())
@_FAST
def test_fuzz_joins_match_sqlite(data):
    tables = data.draw(_tables(count=2))
    query = data.draw(_join_query(tables))
    _differential_check(tables, query, data.draw(st.booleans()), data.draw(_shift_strategy))


@given(data=st.data())
@_FAST
def test_fuzz_group_by_matches_sqlite(data):
    tables = data.draw(_tables(count=1))
    query = data.draw(_grouped_query(tables))
    _differential_check(tables, query, data.draw(st.booleans()), data.draw(_shift_strategy))


@given(data=st.data())
@_FAST
def test_fuzz_cte_chains_match_sqlite(data):
    tables = data.draw(_tables(count=2))
    query = data.draw(_cte_query(tables))
    _differential_check(tables, query, data.draw(st.booleans()), data.draw(_shift_strategy))


@given(data=st.data())
@_FAST
def test_fuzz_parallel_execution_matches_serial(data):
    """Grammar queries with ``enable_parallel`` on: byte-identical to serial.

    Rotates through every query shape so the morsel-parallel filters, join
    probes and partitioned aggregation all see the same adversarial grammar
    as the serial engine.
    """
    shape = data.draw(st.sampled_from(["simple", "join", "grouped", "cte", "window", "recursive"]))
    strategies = {
        "simple": (1, _simple_query),
        "join": (2, _join_query),
        "grouped": (1, _grouped_query),
        "cte": (2, _cte_query),
        # Window and recursive blocks *decline* parallelism via the costed
        # path — this asserts the decline itself is bit-transparent.
        "window": (1, _window_query),
        "recursive": (1, _recursive_query),
    }
    count, shape_strategy = strategies[shape]
    tables = data.draw(_tables(count=count))
    query = data.draw(shape_strategy(tables))
    _parallel_check(tables, query)


@given(data=st.data())
@_FAST
def test_fuzz_window_functions_match_sqlite(data):
    """Ranking / lag-lead / framed aggregates over tie-heavy numeric tables."""
    tables = data.draw(_tables(count=1))
    query = data.draw(_window_query(tables))
    _differential_check(
        tables, query, data.draw(st.booleans()), data.draw(_shift_strategy), dict_ablation=True
    )


@given(data=st.data())
@_FAST
def test_fuzz_null_window_functions_match_sqlite(data):
    """Windows over NULL-heavy tables: text/NULL partition keys, NULL-skipping
    aggregates, lag/lead defaults — in both dict-encoding modes."""
    tables = data.draw(_null_tables(count=1))
    query = data.draw(_null_window_query(tables))
    _differential_check(
        tables, query, data.draw(st.booleans()), data.draw(_shift_strategy), dict_ablation=True
    )


@given(data=st.data())
@_FAST
def test_fuzz_recursive_ctes_match_sqlite(data):
    """WITH RECURSIVE counters, accumulators and UNION reachability."""
    tables = data.draw(_tables(count=1))
    query = data.draw(_recursive_query(tables))
    _differential_check(
        tables, query, data.draw(st.booleans()), data.draw(_shift_strategy), dict_ablation=True
    )


def test_fuzz_oracle_catches_rank_tie_mutation(monkeypatch):
    """Mutation test: breaking rank's peer handling must trip the oracle.

    Collapses every ORDER-BY peer group to a single row (rank degenerates to
    row_number) and asserts the differential check catches the divergence on
    a tie-heavy table — evidence the harness actually guards tie semantics
    rather than vacuously passing.
    """
    from repro.backends.memdb import executor as executor_module

    original = executor_module._sorted_partitions

    def broken(evaluator, partition_by, order_by, length):
        win = original(evaluator, partition_by, order_by, length)
        win.peer_start = win.part_start + win.pos  # every row its own peer
        return win

    monkeypatch.setattr(executor_module, "_sorted_partitions", broken)
    tables = [
        {
            "name": "t0",
            "columns": [("id", _INT), ("c0", _INT)],
            "rows": [[0, 1], [1, 1], [2, 1], [3, 2]],
        }
    ]
    query = ("SELECT t0.id AS id0, rank() OVER (ORDER BY t0.c0) AS w0 FROM t0", False)
    with pytest.raises(AssertionError, match="diverged"):
        _differential_check(tables, query, False, [])


@given(data=st.data())
@_FAST
def test_fuzz_nulls_single_table_matches_sqlite(data):
    """NULL-heavy projections/filters: IS [NOT] NULL, text compares, ||."""
    tables = data.draw(_null_tables(count=1))
    query = data.draw(_null_simple_query(tables))
    _differential_check(tables, query, data.draw(st.booleans()), data.draw(_shift_strategy))


@given(data=st.data())
@_FAST
def test_fuzz_null_text_joins_match_sqlite(data):
    """Equality joins on nullable TEXT keys: NULL keys never match."""
    tables = data.draw(_null_tables(count=2))
    query = data.draw(_null_text_join_query(tables))
    _differential_check(tables, query, data.draw(st.booleans()), data.draw(_shift_strategy))


@given(data=st.data())
@_FAST
def test_fuzz_null_group_by_matches_sqlite(data):
    """GROUP BY nullable text/float keys; NULL-skipping and text MIN/MAX."""
    tables = data.draw(_null_tables(count=1))
    query = data.draw(_null_grouped_query(tables))
    _differential_check(tables, query, data.draw(st.booleans()), data.draw(_shift_strategy))


@given(data=st.data())
@_FAST
def test_fuzz_parallel_null_and_text_matches_serial(data):
    """NULL-heavy shapes under morsel-parallel execution: bit-identical.

    Exercises the exact-code partitioned aggregation over NULL and text
    keys (including multi-key GROUP BY) and the code-space parallel join.
    """
    shape = data.draw(st.sampled_from(sorted(_NULL_SHAPES)))
    count, shape_strategy = _NULL_SHAPES[shape]
    tables = data.draw(_null_tables(count=count))
    query = data.draw(shape_strategy(tables))
    _parallel_check(tables, query)


# ---------------------------------------------------------------------------
# Deep profile (-m slow)
# ---------------------------------------------------------------------------


@pytest.mark.slow
@pytest.mark.parametrize(
    "shape", ["simple", "join", "grouped", "cte"], ids=["simple", "join", "grouped", "cte"]
)
def test_fuzz_deep_profile(shape):
    strategies = {
        "simple": (1, _simple_query),
        "join": (2, _join_query),
        "grouped": (1, _grouped_query),
        "cte": (2, _cte_query),
    }
    count, shape_strategy = strategies[shape]

    @given(data=st.data())
    @_DEEP
    def run(data):
        tables = data.draw(_tables(count=count))
        query = data.draw(shape_strategy(tables))
        _differential_check(tables, query, data.draw(st.booleans()), data.draw(_shift_strategy))

    run()


@pytest.mark.slow
@pytest.mark.parametrize(
    "shape", ["simple", "join", "grouped", "cte"], ids=["simple", "join", "grouped", "cte"]
)
def test_fuzz_deep_parallel_profile(shape):
    strategies = {
        "simple": (1, _simple_query),
        "join": (2, _join_query),
        "grouped": (1, _grouped_query),
        "cte": (2, _cte_query),
    }
    count, shape_strategy = strategies[shape]

    @given(data=st.data())
    @_DEEP
    def run(data):
        tables = data.draw(_tables(count=count))
        query = data.draw(shape_strategy(tables))
        _parallel_check(tables, query)

    run()


@pytest.mark.slow
@pytest.mark.parametrize("shape", sorted(_NULL_SHAPES), ids=sorted(_NULL_SHAPES))
def test_fuzz_deep_null_profile(shape):
    count, shape_strategy = _NULL_SHAPES[shape]

    @given(data=st.data())
    @_DEEP
    def run(data):
        tables = data.draw(_null_tables(count=count))
        query = data.draw(shape_strategy(tables))
        _differential_check(tables, query, data.draw(st.booleans()), data.draw(_shift_strategy))

    run()


#: Window/recursion shapes: shape -> (table family, strategy).
_WINDOW_RECURSION_SHAPES = {
    "window": (_tables, _window_query),
    "null_window": (_null_tables, _null_window_query),
    "recursive": (_tables, _recursive_query),
}


@pytest.mark.slow
@pytest.mark.parametrize(
    "shape", sorted(_WINDOW_RECURSION_SHAPES), ids=sorted(_WINDOW_RECURSION_SHAPES)
)
def test_fuzz_deep_window_recursion_profile(shape):
    family, shape_strategy = _WINDOW_RECURSION_SHAPES[shape]

    @given(data=st.data())
    @_DEEP
    def run(data):
        tables = data.draw(family(count=1))
        query = data.draw(shape_strategy(tables))
        _differential_check(
            tables, query, data.draw(st.booleans()), data.draw(_shift_strategy), dict_ablation=True
        )

    run()
