"""Property-based tests (hypothesis) for encodings, states and cross-method agreement."""

import math

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.backends import MemDBBackend, SQLiteBackend
from repro.circuits import random_circuit
from repro.core import QuantumCircuit
from repro.output import SparseState, states_agree
from repro.simulators import DecisionDiagramSimulator, MPSSimulator, SparseSimulator, StatevectorSimulator
from repro.sql.encoding import (
    deposit_local,
    extract_expression,
    extract_local,
    output_index_expression,
    qubit_mask,
    replace_bits,
)

# --------------------------------------------------------------------------
# Encoding properties
# --------------------------------------------------------------------------

_qubit_lists = st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=4, unique=True)


@given(index=st.integers(min_value=0, max_value=(1 << 11) - 1), qubits=_qubit_lists)
def test_extract_deposit_roundtrip(index, qubits):
    """Depositing an extracted local index over cleared bits reconstructs the original."""
    local = extract_local(index, qubits)
    rebuilt = (index & ~qubit_mask(qubits)) | deposit_local(local, qubits)
    assert rebuilt == index


@given(
    index=st.integers(min_value=0, max_value=(1 << 11) - 1),
    qubits=_qubit_lists,
    local_out=st.integers(min_value=0, max_value=15),
)
def test_replace_bits_only_touches_gate_qubits(index, qubits, local_out):
    local_out %= 1 << len(qubits)
    result = replace_bits(index, local_out, qubits)
    assert extract_local(result, qubits) == local_out
    assert result & ~qubit_mask(qubits) == index & ~qubit_mask(qubits)


@given(index=st.integers(min_value=0, max_value=(1 << 11) - 1), qubits=_qubit_lists)
def test_sql_extract_expression_matches_python(index, qubits):
    """The generated SQL expression and the Python reference compute the same value."""
    import sqlite3

    expression = extract_expression(str(index), qubits)
    value = sqlite3.connect(":memory:").execute(f"SELECT {expression}").fetchone()[0]
    assert value == extract_local(index, qubits)


@given(
    index=st.integers(min_value=0, max_value=(1 << 10) - 1),
    qubits=_qubit_lists,
    local_out=st.integers(min_value=0, max_value=15),
)
def test_sql_output_index_expression_matches_python(index, qubits, local_out):
    import sqlite3

    local_out %= 1 << len(qubits)
    expression = output_index_expression(str(index), str(local_out), qubits)
    value = sqlite3.connect(":memory:").execute(f"SELECT {expression}").fetchone()[0]
    assert value == replace_bits(index, local_out, qubits)


# --------------------------------------------------------------------------
# SparseState properties
# --------------------------------------------------------------------------

_amplitudes = st.dictionaries(
    keys=st.integers(min_value=0, max_value=15),
    values=st.complex_numbers(min_magnitude=1e-3, max_magnitude=10, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=16,
)


@given(amplitudes=_amplitudes)
def test_normalized_state_has_unit_norm(amplitudes):
    state = SparseState(4, amplitudes).normalized()
    assert math.isclose(state.norm(), 1.0, abs_tol=1e-9)
    assert math.isclose(sum(state.probabilities().values()), 1.0, abs_tol=1e-9)


@given(amplitudes=_amplitudes)
def test_dense_roundtrip_preserves_state(amplitudes):
    state = SparseState(4, amplitudes)
    assert SparseState.from_dense(state.to_dense()).equiv(state, up_to_global_phase=False)


@given(amplitudes=_amplitudes)
def test_marginals_sum_to_total_probability(amplitudes):
    state = SparseState(4, amplitudes).normalized()
    for qubit in range(4):
        total = state.marginal_probability(qubit, 0) + state.marginal_probability(qubit, 1)
        assert math.isclose(total, 1.0, abs_tol=1e-9)


# --------------------------------------------------------------------------
# Cross-method agreement on random circuits
# --------------------------------------------------------------------------

_circuit_params = st.tuples(
    st.integers(min_value=2, max_value=4),   # qubits
    st.integers(min_value=1, max_value=5),   # depth
    st.integers(min_value=0, max_value=10_000),  # seed
)

_slow = settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])


@given(params=_circuit_params)
@_slow
def test_sql_backends_match_statevector_on_random_circuits(params):
    """The headline correctness property: SQL execution == dense simulation."""
    num_qubits, depth, seed = params
    circuit = random_circuit(num_qubits, depth, seed=seed)
    reference = StatevectorSimulator().run(circuit).state
    for backend in (SQLiteBackend(), MemDBBackend(mode="materialized")):
        assert states_agree(reference, backend.run(circuit).state, atol=1e-7, up_to_global_phase=False)


@given(params=_circuit_params)
@_slow
def test_all_simulators_agree_on_random_circuits(params):
    num_qubits, depth, seed = params
    circuit = random_circuit(num_qubits, depth, seed=seed)
    reference = StatevectorSimulator().run(circuit).state
    for simulator in (SparseSimulator(), MPSSimulator(), DecisionDiagramSimulator()):
        assert states_agree(reference, simulator.run(circuit).state, atol=1e-6, up_to_global_phase=False)


@given(params=_circuit_params)
@_slow
def test_norm_preserved_by_sql_execution(params):
    num_qubits, depth, seed = params
    circuit = random_circuit(num_qubits, depth, seed=seed)
    state = MemDBBackend().run(circuit).state
    assert math.isclose(sum(state.probabilities().values()), 1.0, abs_tol=1e-8)


@given(
    num_qubits=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=1000),
)
@_slow
def test_fusion_is_semantics_preserving(num_qubits, seed):
    circuit = random_circuit(num_qubits, 4, seed=seed)
    plain = SQLiteBackend().run(circuit).state
    fused = SQLiteBackend(fuse=True).run(circuit).state
    assert states_agree(plain, fused, atol=1e-7, up_to_global_phase=False)
