"""Tests for QASM, JSON and Quil circuit formats."""

import math

import pytest

from repro.circuits import ghz_circuit, qft_circuit
from repro.core import QuantumCircuit
from repro.core.parameters import Parameter
from repro.errors import CircuitFormatError
from repro.io import (
    circuit_from_dict,
    circuit_to_dict,
    dump_qasm,
    dumps_circuit,
    dumps_qasm,
    dumps_quil,
    load_circuit,
    load_qasm,
    loads_circuit,
    loads_qasm,
    loads_quil,
    save_circuit,
)
from repro.output import states_agree
from repro.simulators import StatevectorSimulator

_SV = StatevectorSimulator()

_GHZ_QASM = """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0], q[1];
cx q[1], q[2];
measure q[0] -> c[0];
"""


class TestQASM:
    def test_parse_ghz(self):
        circuit = loads_qasm(_GHZ_QASM)
        assert circuit.num_qubits == 3
        assert circuit.count_ops() == {"h": 1, "cx": 2, "measure": 1}

    def test_roundtrip_preserves_state(self):
        for original in (ghz_circuit(3), qft_circuit(3)):
            text = dumps_qasm(original)
            rebuilt = loads_qasm(text)
            assert states_agree(_SV.run(original).state, _SV.run(rebuilt).state, up_to_global_phase=False)

    def test_parameter_expressions_with_pi(self):
        circuit = loads_qasm("OPENQASM 2.0; qreg q[1]; rz(pi/4) q[0]; u2(0, pi) q[0];")
        assert circuit.gates[0].gate.params[0] == pytest.approx(math.pi / 4)
        assert circuit.gates[1].gate.name == "u"

    def test_multiple_registers_are_flattened(self):
        text = "OPENQASM 2.0; qreg a[2]; qreg b[2]; cx a[1], b[0];"
        circuit = loads_qasm(text)
        assert circuit.num_qubits == 4
        assert circuit.gates[0].qubits == (1, 2)

    def test_barrier_and_reset(self):
        circuit = loads_qasm("OPENQASM 2.0; qreg q[2]; barrier q[0], q[1]; reset q[0];")
        assert [ins.kind for ins in circuit.instructions] == ["barrier", "reset"]

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "ghz.qasm"
        dump_qasm(ghz_circuit(3), path)
        assert load_qasm(path).count_ops() == {"h": 1, "cx": 2}

    def test_unsupported_gate(self):
        with pytest.raises(CircuitFormatError):
            loads_qasm("OPENQASM 2.0; qreg q[1]; warpdrive q[0];")

    def test_unknown_version(self):
        with pytest.raises(CircuitFormatError):
            loads_qasm("OPENQASM 3.0; qreg q[1];")

    def test_missing_qreg(self):
        with pytest.raises(CircuitFormatError):
            loads_qasm("OPENQASM 2.0; h q[0];")

    def test_export_parameterized_rejected(self):
        circuit = QuantumCircuit(1)
        circuit.rx(Parameter("theta"), 0)
        with pytest.raises(CircuitFormatError):
            dumps_qasm(circuit)

    def test_bad_parameter_expression(self):
        with pytest.raises(CircuitFormatError):
            loads_qasm("OPENQASM 2.0; qreg q[1]; rz(__import__) q[0];")


class TestJSON:
    def test_dict_roundtrip(self):
        circuit = ghz_circuit(3)
        circuit.measure_all()
        rebuilt = circuit_from_dict(circuit_to_dict(circuit))
        assert rebuilt == circuit

    def test_string_roundtrip_with_parameters(self):
        theta = Parameter("theta")
        circuit = QuantumCircuit(2, name="family")
        circuit.rx(theta, 0)
        circuit.cx(0, 1)
        rebuilt = loads_circuit(dumps_circuit(circuit))
        assert sorted(p.name for p in rebuilt.parameters) == ["theta"]
        bound = rebuilt.bind_parameters({"theta": 0.5})
        assert not bound.is_parameterized

    def test_file_roundtrip(self, tmp_path):
        path = save_circuit(ghz_circuit(4), tmp_path / "ghz.json")
        assert load_circuit(path) == ghz_circuit(4)

    def test_invalid_json(self):
        with pytest.raises(CircuitFormatError):
            loads_circuit("{broken")

    def test_missing_fields(self):
        with pytest.raises(CircuitFormatError):
            circuit_from_dict({"instructions": []})

    def test_unknown_gate(self):
        with pytest.raises(CircuitFormatError):
            circuit_from_dict({"num_qubits": 1, "instructions": [{"gate": "warp", "qubits": [0]}]})

    def test_compound_expression_rejected(self):
        theta = Parameter("theta")
        circuit = QuantumCircuit(1)
        circuit.rx(2 * theta, 0)
        with pytest.raises(CircuitFormatError):
            circuit_to_dict(circuit)


class TestQuil:
    def test_parse_basic_program(self):
        circuit = loads_quil("H 0\nCNOT 0 1\nCNOT 1 2\nMEASURE 2 [2]\n")
        assert circuit.num_qubits == 3
        assert circuit.count_ops() == {"h": 1, "cx": 2, "measure": 1}

    def test_parameterized_gate(self):
        circuit = loads_quil("RZ(pi/2) 0")
        assert circuit.gates[0].gate.params[0] == pytest.approx(math.pi / 2)

    def test_comments_and_blank_lines(self):
        circuit = loads_quil("# prepare plus state\nH 0\n\n# entangle\nCNOT 0 1\n")
        assert circuit.size() == 2

    def test_roundtrip_preserves_state(self):
        original = ghz_circuit(3)
        rebuilt = loads_quil(dumps_quil(original))
        assert states_agree(_SV.run(original).state, _SV.run(rebuilt).state, up_to_global_phase=False)

    def test_unsupported_gate(self):
        with pytest.raises(CircuitFormatError):
            loads_quil("WARP 0")

    def test_empty_program(self):
        with pytest.raises(CircuitFormatError):
            loads_quil("   \n  ")

    def test_export_skips_barrier(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.barrier()
        circuit.cx(0, 1)
        text = dumps_quil(circuit)
        assert "BARRIER" not in text
        assert "CNOT 0 1" in text
