"""Tests for the RDBMS execution backends (SQLite, memdb, optional DuckDB)."""

from pathlib import Path

import pytest

from repro.backends import (
    MODE_CTE,
    MODE_MATERIALIZED,
    DuckDBBackend,
    MemDBBackend,
    SQLiteBackend,
    available_backends,
    duckdb_available,
)
from repro.circuits import ghz_circuit, superposition_circuit, w_state_circuit
from repro.core import QuantumCircuit
from repro.core.parameters import Parameter
from repro.errors import BackendError, BackendUnavailableError, ResourceLimitExceeded, SimulationError
from repro.output import states_agree
from repro.simulators import StatevectorSimulator


class TestSQLiteBackend:
    def test_ghz_cte(self, ghz3, sqlite_backend):
        result = sqlite_backend.run(ghz3)
        assert result.method == "sqlite"
        assert result.state.to_rows() == [
            (0, pytest.approx(2 ** -0.5), 0.0),
            (7, pytest.approx(2 ** -0.5), 0.0),
        ]

    def test_materialized_records_step_rows(self, ghz3):
        backend = SQLiteBackend(mode=MODE_MATERIALIZED)
        result = backend.run(ghz3)
        assert result.metadata["step_rows"] == [2, 2, 2]
        assert result.peak_state_rows == 2

    def test_out_of_core_mode_uses_disk(self, ghz3):
        backend = SQLiteBackend(mode=MODE_MATERIALIZED, out_of_core=True)
        result = backend.run(ghz3)
        assert backend.name == "sqlite-disk"
        assert result.state.num_nonzero == 2

    def test_explicit_database_path(self, tmp_path, ghz3):
        path = tmp_path / "state.db"
        backend = SQLiteBackend(mode=MODE_MATERIALIZED, database_path=path, keep_intermediate=True)
        backend.run(ghz3)
        assert Path(path).exists()
        assert Path(path).stat().st_size > 0

    def test_path_and_out_of_core_conflict(self):
        with pytest.raises(BackendError):
            SQLiteBackend(database_path="x.db", out_of_core=True)

    def test_invalid_mode(self):
        with pytest.raises(BackendError):
            SQLiteBackend(mode="streamed")

    def test_memory_budget_enforced(self):
        backend = SQLiteBackend(mode=MODE_MATERIALIZED, max_state_bytes=24 * 4)
        with pytest.raises(ResourceLimitExceeded):
            backend.run(superposition_circuit(4))

    def test_budget_allows_sparse_circuit(self):
        backend = SQLiteBackend(mode=MODE_MATERIALIZED, max_state_bytes=24 * 4)
        result = backend.run(ghz_circuit(12))
        assert result.state.num_nonzero == 2

    def test_unbound_parameters_rejected(self):
        circuit = QuantumCircuit(1)
        circuit.rx(Parameter("theta"), 0)
        with pytest.raises(SimulationError):
            SQLiteBackend().run(circuit)

    def test_capacity_rows_helper(self):
        assert SQLiteBackend(max_state_bytes=240).capacity_rows() == 10
        assert SQLiteBackend().capacity_rows() is None

    def test_sql_metadata_attached(self, ghz3, sqlite_backend):
        result = sqlite_backend.run(ghz3)
        assert result.metadata["sql"]["dialect"] == "sqlite"
        assert result.metadata["sql"]["num_steps"] == 3


class TestMemDBBackend:
    def test_ghz(self, ghz3, memdb_backend):
        result = memdb_backend.run(ghz3)
        assert result.method == "memdb"
        assert result.state.num_nonzero == 2

    def test_materialized_mode(self, ghz3):
        result = MemDBBackend(mode=MODE_MATERIALIZED).run(ghz3)
        assert result.metadata["step_rows"] == [2, 2, 2]

    def test_prune_epsilon(self):
        circuit = superposition_circuit(2, layers=2)
        result = MemDBBackend(mode=MODE_MATERIALIZED, prune_epsilon=1e-12).run(circuit)
        assert result.state.num_nonzero == 1

    def test_fusion_option(self, ghz3):
        result = MemDBBackend(fuse=True).run(ghz3)
        assert result.metadata["sql"]["fusion"]["gates_after"] < 3
        assert result.state.num_nonzero == 2


class TestBackendAgreement:
    @pytest.mark.parametrize(
        "circuit_factory",
        [lambda: ghz_circuit(5), lambda: w_state_circuit(4), lambda: superposition_circuit(4)],
        ids=["ghz", "w_state", "superposition"],
    )
    def test_all_backend_modes_match_statevector(self, circuit_factory, any_rdbms_backend):
        circuit = circuit_factory()
        reference = StatevectorSimulator().run(circuit).state
        result = any_rdbms_backend.run(circuit).state
        assert states_agree(reference, result, up_to_global_phase=False)

    def test_run_script_utility(self, sqlite_backend):
        rows = sqlite_backend.run_script(["CREATE TABLE x (a INTEGER)", "INSERT INTO x VALUES (4)", "SELECT a FROM x"])
        assert rows == [(4,)]


class TestDuckDBBackend:
    def test_unavailable_raises_helpful_error(self):
        if duckdb_available():
            pytest.skip("duckdb is installed in this environment")
        with pytest.raises(BackendUnavailableError):
            DuckDBBackend()

    @pytest.mark.skipif(not duckdb_available(), reason="duckdb not installed")
    def test_duckdb_matches_statevector(self, ghz3):
        result = DuckDBBackend().run(ghz3)
        reference = StatevectorSimulator().run(ghz3).state
        assert states_agree(reference, result.state)

    def test_registry(self):
        backends = available_backends()
        assert "sqlite" in backends and "memdb" in backends
        assert ("duckdb" in backends) == duckdb_available()
