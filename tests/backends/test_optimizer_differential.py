"""Differential tests: every optimizer rewrite preserves results vs SQLite.

Each query below is crafted to trigger exactly one (or a known combination)
of the memdb optimizer's rewrite rules on gate-table-shaped workloads — the
``T0(s, r, i)`` state tables and ``G(in_s, out_s, r, i)`` gate tables the
translation layer generates.  The same script runs on SQLite (and DuckDB
when installed), and every value must agree to 1e-9.  Because SQLite sees
the *original* SQL while memdb optimizes it (constant folding, predicate
pushdown, projection pruning, CTE inlining, join reordering), agreement
proves the rewrites are observationally sound, not just plausible.
"""

import pytest

from repro.backends import DuckDBBackend, MemDBBackend, SQLiteBackend, duckdb_available

_ATOL = 1e-9

#: Gate-table-shaped setup: one state table, two gate tables, one small
#: auxiliary table (distinct row counts so join reordering has a gradient).
_SETUP = [
    "CREATE TABLE T0 (s BIGINT NOT NULL, r DOUBLE NOT NULL, i DOUBLE NOT NULL)",
    "INSERT INTO T0 (s, r, i) VALUES "
    + ", ".join(
        f"({index}, {0.125 * ((index % 8) + 1):.6f}, {0.0625 * ((index % 4) - 2):.6f})"
        for index in range(64)
    ),
    "CREATE TABLE G (in_s BIGINT NOT NULL, out_s BIGINT NOT NULL, r DOUBLE NOT NULL, i DOUBLE NOT NULL)",
    "INSERT INTO G (in_s, out_s, r, i) VALUES "
    "(0, 0, 0.7071067811865476, 0.0), (0, 1, 0.7071067811865476, 0.0), "
    "(1, 0, 0.7071067811865476, 0.0), (1, 1, -0.7071067811865476, 0.0)",
    "CREATE TABLE H (in_s BIGINT NOT NULL, out_s BIGINT NOT NULL, r DOUBLE NOT NULL, i DOUBLE NOT NULL)",
    "INSERT INTO H (in_s, out_s, r, i) VALUES "
    "(0, 0, 1.0, 0.0), (1, 1, 0.0, 1.0), (2, 2, -1.0, 0.0), (3, 3, 0.0, -1.0)",
    "CREATE TABLE marks (s BIGINT NOT NULL, weight DOUBLE NOT NULL)",
    "INSERT INTO marks (s, weight) VALUES (0, 1.0), (1, 2.0), (2, 4.0), (3, 8.0)",
]

#: (rule under test, SQL). Every query carries a total ORDER BY so row
#: order is deterministic on both engines.
_REWRITE_QUERIES = [
    (
        "constant_folding",
        "SELECT ((T0.s & ~1) | G.out_s) AS s, "
        "SUM((T0.r * G.r) - (T0.i * G.i)) AS r, "
        "SUM((T0.r * G.i) + (T0.i * G.r)) AS i "
        "FROM T0 JOIN G ON G.in_s = (T0.s & 1) "
        "GROUP BY ((T0.s & ~1) | G.out_s) ORDER BY s",
    ),
    (
        "constant_folding_scalar",
        "SELECT T0.s AS s, T0.r * (2 + 3 * 4) AS v, T0.s & ~(1 << 2) AS masked "
        "FROM T0 ORDER BY s",
    ),
    (
        "predicate_pushdown_joins",
        "SELECT T0.s AS s, G.out_s AS o, T0.r * G.r AS v "
        "FROM T0 JOIN G ON G.in_s = (T0.s & 1) "
        "WHERE T0.r > 0.3 AND G.out_s = 1 AND T0.s + G.out_s > 2 "
        "ORDER BY s, o",
    ),
    (
        "predicate_pushdown_cte",
        "WITH joined AS (SELECT T0.s AS s, T0.r * G.r AS v FROM T0 JOIN G ON G.in_s = (T0.s & 1)) "
        "SELECT joined.s AS s, SUM(joined.v) AS total FROM joined JOIN marks ON marks.s = (joined.s & 3) "
        "WHERE joined.v > 0.05 GROUP BY joined.s ORDER BY s",
    ),
    (
        "projection_pruning",
        "WITH wide AS (SELECT T0.s AS s, T0.r AS r, T0.i AS i, T0.r * T0.r + T0.i * T0.i AS prob "
        "FROM T0 JOIN H ON H.in_s = (T0.s & 3)) "
        "SELECT wide.s AS s, wide.prob AS prob FROM wide JOIN marks ON marks.s = (wide.s & 3) "
        "ORDER BY s, prob",
    ),
    (
        "cte_inlining",
        "WITH pick AS (SELECT T0.s AS s, T0.r AS r FROM T0 WHERE T0.r > 0.2) "
        "SELECT pick.s AS s, pick.r * 2.0 AS doubled FROM pick ORDER BY s",
    ),
    (
        "join_reordering",
        "SELECT marks.weight AS w, SUM(T0.r * H.r - T0.i * H.i) AS re "
        "FROM T0 JOIN H ON H.in_s = (T0.s & 3) JOIN marks ON marks.s = H.out_s "
        "GROUP BY marks.weight ORDER BY w",
    ),
    (
        "combined_gate_chain",
        "WITH T1 AS (SELECT ((T0.s & ~1) | G.out_s) AS s, "
        "SUM((T0.r * G.r) - (T0.i * G.i)) AS r, SUM((T0.r * G.i) + (T0.i * G.r)) AS i "
        "FROM T0 JOIN G ON G.in_s = (T0.s & 1) GROUP BY ((T0.s & ~1) | G.out_s)), "
        "T2 AS (SELECT T1.s AS s, SUM(T1.r * H.r - T1.i * H.i) AS r, "
        "SUM(T1.r * H.i + T1.i * H.r) AS i "
        "FROM T1 JOIN H ON H.in_s = (T1.s & 3) GROUP BY T1.s) "
        "SELECT s, r, i FROM T2 ORDER BY s",
    ),
]


def _assert_rows_match(expected, actual, label):
    assert len(actual) == len(expected), f"{label}: row count {len(actual)} vs {len(expected)}"
    for row_index, (expected_row, actual_row) in enumerate(zip(expected, actual)):
        assert len(actual_row) == len(expected_row)
        for expected_value, actual_value in zip(expected_row, actual_row):
            assert abs(float(actual_value) - float(expected_value)) <= _ATOL, (
                f"{label}: row {row_index} differs: {expected_row} vs {actual_row}"
            )


class TestRewritesPreserveResults:
    @pytest.mark.parametrize("rule,query", _REWRITE_QUERIES, ids=[r for r, _ in _REWRITE_QUERIES])
    def test_matches_sqlite(self, rule, query):
        statements = _SETUP + [query]
        expected = SQLiteBackend().run_script(statements)
        actual = MemDBBackend().run_script(statements)
        _assert_rows_match(expected, actual, rule)

    @pytest.mark.parametrize("rule,query", _REWRITE_QUERIES, ids=[r for r, _ in _REWRITE_QUERIES])
    def test_optimizer_on_equals_optimizer_off(self, rule, query):
        """memdb with rewrites vs memdb compiled as written (same engine)."""
        statements = _SETUP + [query]
        expected = MemDBBackend(enable_optimizer=False).run_script(statements)
        actual = MemDBBackend().run_script(statements)
        _assert_rows_match(expected, actual, rule)

    @pytest.mark.skipif(not duckdb_available(), reason="duckdb is not installed")
    @pytest.mark.parametrize("rule,query", _REWRITE_QUERIES, ids=[r for r, _ in _REWRITE_QUERIES])
    def test_matches_duckdb(self, rule, query):
        statements = _SETUP + [query]
        expected = DuckDBBackend().run_script(statements)
        actual = MemDBBackend().run_script(statements)
        _assert_rows_match(expected, actual, rule)
