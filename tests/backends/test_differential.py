"""Differential backend-parity tests.

The memdb engine substitutes for DuckDB, so its SQL semantics must be
indistinguishable from the real RDBMS backends on everything the translation
and output layers generate: random circuits must produce identical
amplitudes, and the scalar functions / operators used by analysis queries
must agree value-for-value with SQLite (and DuckDB when installed).
"""

import pytest

from repro.backends import DuckDBBackend, MemDBBackend, SQLiteBackend, duckdb_available
from repro.circuits import (
    ghz_circuit,
    qaoa_maxcut_circuit,
    qft_on_basis_state,
    random_dense_circuit,
    random_sparse_circuit,
    ring_graph,
    w_state_circuit,
)

_ATOL = 1e-9

_CIRCUITS = [
    ("ghz", lambda: ghz_circuit(4)),
    ("wstate", lambda: w_state_circuit(4)),
    ("qft", lambda: qft_on_basis_state(4, 11)),
    ("qaoa", lambda: qaoa_maxcut_circuit(4, edges=ring_graph(4), p=1, gammas=[0.45], betas=[0.6])),
    ("random_dense_1", lambda: random_dense_circuit(4, depth=4, seed=11)),
    ("random_dense_2", lambda: random_dense_circuit(5, depth=3, seed=23)),
    ("random_sparse_1", lambda: random_sparse_circuit(5, depth=10, max_branching=2, seed=5)),
    ("random_sparse_2", lambda: random_sparse_circuit(6, depth=8, max_branching=3, seed=17)),
]


def _assert_amplitudes_match(reference, candidate, label: str) -> None:
    indices = set(reference.probabilities()) | set(candidate.probabilities())
    for index in sorted(indices):
        expected = reference.amplitude(index)
        actual = candidate.amplitude(index)
        assert abs(expected - actual) <= _ATOL, (
            f"{label}: amplitude of basis state {index} differs: {expected} vs {actual}"
        )


class TestMemdbMatchesSQLite:
    @pytest.mark.parametrize("name,factory", _CIRCUITS, ids=[name for name, _ in _CIRCUITS])
    @pytest.mark.parametrize("mode", ["cte", "materialized"])
    def test_amplitudes_agree(self, name, factory, mode):
        circuit = factory()
        reference = SQLiteBackend(mode=mode).run(circuit).state
        candidate = MemDBBackend(mode=mode).run(circuit).state
        _assert_amplitudes_match(reference, candidate, f"{name}/{mode}")

    def test_repeated_runs_on_one_backend_stay_correct(self):
        """Warm plan-cache runs must match the cold first run exactly."""
        backend = MemDBBackend()
        reference = SQLiteBackend()
        for seed in (3, 4, 5):
            circuit = random_dense_circuit(4, depth=3, seed=seed)
            _assert_amplitudes_match(
                reference.run(circuit).state, backend.run(circuit).state, f"seed={seed}"
            )


@pytest.mark.skipif(not duckdb_available(), reason="duckdb is not installed")
class TestMemdbMatchesDuckDB:
    @pytest.mark.parametrize("name,factory", _CIRCUITS[:4], ids=[name for name, _ in _CIRCUITS[:4]])
    def test_amplitudes_agree(self, name, factory):
        circuit = factory()
        reference = DuckDBBackend().run(circuit).state
        candidate = MemDBBackend().run(circuit).state
        _assert_amplitudes_match(reference, candidate, name)


class TestScalarSemanticsParity:
    """memdb must follow SQL scalar semantics, not numpy/Python ones."""

    _SETUP = [
        "CREATE TABLE v (x BIGINT NOT NULL, y DOUBLE NOT NULL)",
        "INSERT INTO v (x, y) VALUES (-7, -2.5), (-5, -1.5), (0, 0.5), (5, 1.5), (7, 2.5)",
    ]

    @pytest.mark.parametrize(
        "expression",
        [
            "round(y)",                 # half away from zero: round(2.5) = 3, round(-2.5) = -3
            "round(y * 1.234, 2)",      # two-argument round
            "log(abs(x) + 3)",          # log is base 10
            "ln(abs(x) + 3)",           # ln is natural
            "x % 3",                    # truncated modulo: -7 % 3 = -1
            "x % -3",
            "x / 2",                    # truncated integer division: -7 / 2 = -3
            "x / -2",
            "abs(x)",
            "power(2, abs(x) % 5)",
        ],
    )
    def test_expression_matches_sqlite(self, expression):
        query = f"SELECT x, {expression} AS value FROM v ORDER BY x"
        statements = self._SETUP + [query]
        expected = SQLiteBackend().run_script(statements)
        actual = MemDBBackend().run_script(statements)
        assert len(actual) == len(expected)
        for expected_row, actual_row in zip(expected, actual):
            assert actual_row[0] == expected_row[0]
            assert actual_row[1] == pytest.approx(expected_row[1], abs=1e-12)

    def test_zero_divisor_yields_null(self):
        statements = [
            "CREATE TABLE z (a BIGINT NOT NULL, b BIGINT NOT NULL)",
            "INSERT INTO z (a, b) VALUES (5, 0), (5, 2)",
            "SELECT a / b, a % b FROM z ORDER BY b",
        ]
        sqlite_rows = SQLiteBackend().run_script(statements)
        memdb_rows = MemDBBackend().run_script(statements)
        assert sqlite_rows[0] == (None, None)
        # memdb encodes NULL as NaN.
        assert all(value != value for value in memdb_rows[0])
        assert memdb_rows[1] == sqlite_rows[1]

    @pytest.mark.skipif(not duckdb_available(), reason="duckdb is not installed")
    @pytest.mark.parametrize("expression", ["round(y)", "log(abs(x) + 3)", "x % 3"])
    def test_expression_matches_duckdb(self, expression):
        query = f"SELECT x, {expression} AS value FROM v ORDER BY x"
        statements = self._SETUP + [query]
        expected = DuckDBBackend().run_script(statements)
        actual = MemDBBackend().run_script(statements)
        for expected_row, actual_row in zip(expected, actual):
            assert float(actual_row[1]) == pytest.approx(float(expected_row[1]), abs=1e-12)


@pytest.mark.slow
class TestThoroughDifferential:
    """Wider random sweep, excluded from the fast tier-1 run (-m slow to include)."""

    @pytest.mark.parametrize("seed", range(20))
    def test_random_circuits(self, seed):
        circuit = random_dense_circuit(5, depth=4, seed=100 + seed)
        reference = SQLiteBackend().run(circuit).state
        candidate = MemDBBackend().run(circuit).state
        _assert_amplitudes_match(reference, candidate, f"seed={seed}")
