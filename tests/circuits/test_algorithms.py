"""Tests for the oracle-based algorithms and quantum phase estimation."""

import pytest

from repro.backends import MemDBBackend, SQLiteBackend
from repro.circuits import (
    bernstein_vazirani_circuit,
    bernstein_vazirani_expected_index,
    deutsch_jozsa_circuit,
    deutsch_jozsa_is_constant,
    expected_phase_index,
    phase_estimation_circuit,
    phase_estimation_success_probability,
)
from repro.errors import CircuitError
from repro.output import states_agree
from repro.simulators import SparseSimulator, StatevectorSimulator

_SV = StatevectorSimulator()


class TestBernsteinVazirani:
    @pytest.mark.parametrize("secret", ["1", "101", "1101", "00110"])
    def test_recovers_secret_with_certainty(self, secret):
        circuit = bernstein_vazirani_circuit(secret, measure=False)
        state = _SV.run(circuit).state
        expected_data = bernstein_vazirani_expected_index(secret)
        # Marginal over the data register: all probability mass on the secret.
        mass = sum(
            probability
            for index, probability in state.probabilities().items()
            if (index & ((1 << len(secret)) - 1)) == expected_data
        )
        assert mass == pytest.approx(1.0)

    def test_single_oracle_query(self):
        circuit = bernstein_vazirani_circuit("1011", measure=False)
        assert circuit.count_ops()["cx"] == 3  # one per set secret bit

    def test_runs_on_rdbms_backends(self):
        circuit = bernstein_vazirani_circuit("1001", measure=False)
        reference = _SV.run(circuit).state
        for backend in (SQLiteBackend(), MemDBBackend()):
            assert states_agree(reference, backend.run(circuit).state, up_to_global_phase=False)

    def test_relational_state_stays_sparse(self):
        result = SparseSimulator().run(bernstein_vazirani_circuit("10101", measure=False))
        # After the final Hadamards the data register is a basis state again.
        assert result.state.num_nonzero <= 2

    def test_invalid_secret(self):
        with pytest.raises(CircuitError):
            bernstein_vazirani_circuit("102")
        with pytest.raises(CircuitError):
            bernstein_vazirani_circuit("")


class TestDeutschJozsa:
    @pytest.mark.parametrize("oracle", ["constant0", "constant1"])
    def test_constant_oracles_measure_all_zeros(self, oracle):
        circuit = deutsch_jozsa_circuit(4, oracle=oracle, measure=False)
        state = _SV.run(circuit).state
        data_mask = (1 << 4) - 1
        mass_at_zero = sum(p for index, p in state.probabilities().items() if index & data_mask == 0)
        assert mass_at_zero == pytest.approx(1.0)
        assert deutsch_jozsa_is_constant(0)

    @pytest.mark.parametrize("pattern", ["1111", "0101", "1000"])
    def test_balanced_oracles_never_measure_zero(self, pattern):
        circuit = deutsch_jozsa_circuit(4, oracle="balanced", pattern=pattern, measure=False)
        state = _SV.run(circuit).state
        data_mask = (1 << 4) - 1
        mass_at_zero = sum(p for index, p in state.probabilities().items() if index & data_mask == 0)
        assert mass_at_zero == pytest.approx(0.0, abs=1e-9)
        assert not deutsch_jozsa_is_constant(int(pattern[::-1], 2))

    def test_backend_agreement(self):
        circuit = deutsch_jozsa_circuit(3, oracle="balanced", pattern="110", measure=False)
        reference = _SV.run(circuit).state
        assert states_agree(reference, SQLiteBackend().run(circuit).state, up_to_global_phase=False)

    def test_validation(self):
        with pytest.raises(CircuitError):
            deutsch_jozsa_circuit(0)
        with pytest.raises(CircuitError):
            deutsch_jozsa_circuit(3, oracle="periodic")
        with pytest.raises(CircuitError):
            deutsch_jozsa_circuit(3, oracle="balanced", pattern="000")
        with pytest.raises(CircuitError):
            deutsch_jozsa_circuit(3, oracle="balanced", pattern="01")


class TestPhaseEstimation:
    @pytest.mark.parametrize("num_counting,phase", [(3, 0.125), (3, 0.625), (4, 0.3125)])
    def test_exact_phases_are_recovered_with_certainty(self, num_counting, phase):
        circuit = phase_estimation_circuit(num_counting, phase)
        state = _SV.run(circuit).state
        expected = expected_phase_index(num_counting, phase)
        counting_mask = (1 << num_counting) - 1
        mass = sum(p for index, p in state.probabilities().items() if index & counting_mask == expected)
        assert mass == pytest.approx(1.0, abs=1e-9)
        assert phase_estimation_success_probability(num_counting, phase) == pytest.approx(1.0)

    def test_inexact_phase_peaks_at_nearest_grid_point(self):
        num_counting, phase = 4, 0.3
        circuit = phase_estimation_circuit(num_counting, phase)
        state = _SV.run(circuit).state
        counting_mask = (1 << num_counting) - 1
        marginal: dict[int, float] = {}
        for index, probability in state.probabilities().items():
            marginal[index & counting_mask] = marginal.get(index & counting_mask, 0.0) + probability
        best = max(marginal, key=marginal.get)
        assert best == expected_phase_index(num_counting, phase)
        assert marginal[best] == pytest.approx(
            phase_estimation_success_probability(num_counting, phase), abs=1e-6
        )

    def test_backend_agreement(self):
        circuit = phase_estimation_circuit(3, 0.375)
        reference = _SV.run(circuit).state
        for backend in (SQLiteBackend(), MemDBBackend()):
            assert states_agree(reference, backend.run(circuit).state, atol=1e-7, up_to_global_phase=False)

    def test_validation(self):
        with pytest.raises(CircuitError):
            phase_estimation_circuit(0, 0.5)
        with pytest.raises(CircuitError):
            phase_estimation_circuit(3, 1.5)
        with pytest.raises(CircuitError):
            expected_phase_index(0, 0.5)
