"""Tests for the standard circuit family library."""

import math

import pytest

from repro.circuits import (
    BELL_LABELS,
    ansatz_parameter_count,
    bell_circuit,
    bell_expected_amplitudes,
    bound_ansatz,
    complete_graph,
    dense_phase_circuit,
    expected_parity,
    ghz_circuit,
    ghz_expected_amplitudes,
    ghz_with_measurement,
    grover_circuit,
    grover_success_probability,
    hardware_efficient_ansatz,
    maxcut_cut_value,
    maxcut_expected_value,
    optimal_grover_iterations,
    parity_check_circuit,
    parity_expected_basis_state,
    qaoa_maxcut_circuit,
    qft_circuit,
    qft_expected_amplitudes,
    qft_on_basis_state,
    random_circuit,
    random_dense_circuit,
    random_sparse_circuit,
    ring_graph,
    superposed_parity_circuit,
    superposition_circuit,
    superposition_expected_amplitudes,
    w_state_circuit,
    w_state_expected_amplitudes,
)
from repro.errors import CircuitError
from repro.output import SparseState, states_agree
from repro.simulators import SparseSimulator, StatevectorSimulator

_SV = StatevectorSimulator()


class TestGHZ:
    def test_structure(self):
        circuit = ghz_circuit(5)
        assert circuit.count_ops() == {"h": 1, "cx": 4}
        assert circuit.depth() == 5

    def test_star_layout_same_state(self):
        ladder = _SV.run(ghz_circuit(4, ladder=True)).state
        star = _SV.run(ghz_circuit(4, ladder=False)).state
        assert states_agree(ladder, star, up_to_global_phase=False)

    def test_expected_amplitudes(self):
        for n in (1, 2, 5):
            state = _SV.run(ghz_circuit(n)).state
            expected = SparseState(n, ghz_expected_amplitudes(n))
            assert states_agree(state, expected, up_to_global_phase=False)

    def test_with_measurement(self):
        circuit = ghz_with_measurement(3)
        assert circuit.measured_qubits() == [0, 1, 2]

    def test_invalid_size(self):
        with pytest.raises(CircuitError):
            ghz_circuit(0)


class TestBell:
    @pytest.mark.parametrize("label", BELL_LABELS)
    def test_all_four_bell_states(self, label):
        state = _SV.run(bell_circuit(label)).state
        expected = SparseState(2, bell_expected_amplitudes(label))
        assert states_agree(state, expected, up_to_global_phase=False)

    def test_unknown_label(self):
        with pytest.raises(CircuitError):
            bell_circuit("omega")


class TestSuperposition:
    def test_uniform_distribution(self):
        state = _SV.run(superposition_circuit(4)).state
        expected = SparseState(4, superposition_expected_amplitudes(4))
        assert states_agree(state, expected, up_to_global_phase=False)

    def test_two_layers_return_to_zero(self):
        state = _SV.run(superposition_circuit(3, layers=2)).state
        assert state.num_nonzero == 1
        assert state.probability_of(0) == pytest.approx(1.0)

    def test_dense_phase_is_fully_dense(self):
        state = _SV.run(dense_phase_circuit(4, rounds=2)).state
        assert state.num_nonzero == 16

    def test_validation(self):
        with pytest.raises(CircuitError):
            superposition_circuit(0)
        with pytest.raises(CircuitError):
            dense_phase_circuit(1)


class TestParity:
    @pytest.mark.parametrize("bits", ["0", "1", "101", "1111", "100110"])
    def test_parity_matches_classical(self, bits):
        circuit = parity_check_circuit(bits, measure=False)
        state = SparseSimulator().run(circuit).state
        assert state.num_nonzero == 1
        index = next(iter(state))
        ancilla = circuit.num_qubits - 1
        assert (index >> ancilla) & 1 == expected_parity(bits)
        assert index == parity_expected_basis_state(bits)

    def test_superposed_parity_entangles_ancilla(self):
        state = _SV.run(superposed_parity_circuit(3)).state
        # Every branch's ancilla equals its data parity.
        for index in state:
            data = index & 0b111
            ancilla = (index >> 3) & 1
            assert ancilla == bin(data).count("1") % 2

    def test_invalid_bits(self):
        with pytest.raises(CircuitError):
            parity_check_circuit([0, 2])
        with pytest.raises(CircuitError):
            parity_check_circuit([])


class TestQFT:
    @pytest.mark.parametrize("basis", [0, 1, 5, 7])
    def test_matches_analytic_formula(self, basis):
        state = _SV.run(qft_on_basis_state(3, basis)).state
        expected = SparseState(3, qft_expected_amplitudes(3, basis))
        assert states_agree(state, expected, up_to_global_phase=False)

    def test_inverse_qft_undoes_qft(self):
        circuit = qft_circuit(4).compose(qft_circuit(4, inverse=True))
        state = _SV.run(circuit).state
        assert state.probability_of(0) == pytest.approx(1.0, abs=1e-9)

    def test_gate_count_scales_quadratically(self):
        assert qft_circuit(5, do_swaps=False).size() == 5 + 10

    def test_invalid_basis_index(self):
        with pytest.raises(CircuitError):
            qft_on_basis_state(3, 8)


class TestGrover:
    def test_marked_state_amplified(self):
        for marked in (0, 3, 6):
            state = _SV.run(grover_circuit(3, marked)).state
            probability = state.probability_of(marked)
            assert probability > 0.9
            assert probability == pytest.approx(grover_success_probability(3, optimal_grover_iterations(3)), abs=1e-6)

    def test_marked_bitstring_convention(self):
        # Character k of the string is qubit k: "011" means qubits 1 and 2 set.
        state = _SV.run(grover_circuit(3, "011")).state
        assert state.probability_of(0b110) > 0.9

    def test_four_qubit_oracle_uses_diagonal(self):
        state = _SV.run(grover_circuit(4, 11)).state
        assert state.probability_of(11) > 0.9

    def test_zero_iterations_is_uniform(self):
        state = _SV.run(grover_circuit(3, 1, iterations=0)).state
        assert state.num_nonzero == 8

    def test_invalid_marked_index(self):
        with pytest.raises(CircuitError):
            grover_circuit(2, 7)


class TestWState:
    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    def test_w_state_amplitudes(self, n):
        state = _SV.run(w_state_circuit(n)).state
        expected = SparseState(n, w_state_expected_amplitudes(n))
        assert states_agree(state, expected, up_to_global_phase=False)

    def test_nonzero_count_is_linear(self):
        assert _SV.run(w_state_circuit(6)).state.num_nonzero == 6


class TestQAOA:
    def test_graph_helpers(self):
        assert len(ring_graph(5)) == 5
        assert len(complete_graph(4)) == 6

    def test_parameter_count(self):
        circuit = qaoa_maxcut_circuit(4, p=2)
        assert len(circuit.parameters) == 4  # gamma[0], gamma[1], beta[0], beta[1]

    def test_bound_circuit_simulates(self):
        circuit = qaoa_maxcut_circuit(4, p=1, gammas=[0.4], betas=[0.3])
        state = _SV.run(circuit).state
        assert abs(sum(state.probabilities().values()) - 1.0) < 1e-9

    def test_cut_value(self):
        edges = ring_graph(4)
        assert maxcut_cut_value(edges, 0b0101) == 4
        assert maxcut_cut_value(edges, 0b0000) == 0

    def test_expected_cut_of_uniform_distribution(self):
        edges = ring_graph(4)
        uniform = {index: 1 / 16 for index in range(16)}
        assert maxcut_expected_value(edges, uniform) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(CircuitError):
            qaoa_maxcut_circuit(3, p=0)
        with pytest.raises(CircuitError):
            qaoa_maxcut_circuit(3, edges=[(0, 0)])
        with pytest.raises(CircuitError):
            qaoa_maxcut_circuit(3, edges=[(0, 5)])


class TestAnsatz:
    def test_parameter_count_formula(self):
        circuit = hardware_efficient_ansatz(3, reps=2)
        assert len(circuit.parameters) == ansatz_parameter_count(3, reps=2) == 18

    def test_bound_ansatz_runs(self):
        values = [0.1] * ansatz_parameter_count(3, reps=1)
        state = _SV.run(bound_ansatz(3, values)).state
        assert abs(sum(state.probabilities().values()) - 1.0) < 1e-9

    def test_wrong_value_count(self):
        with pytest.raises(CircuitError):
            bound_ansatz(3, [0.1, 0.2])

    def test_entanglement_patterns(self):
        for pattern in ("linear", "circular", "full"):
            circuit = hardware_efficient_ansatz(4, reps=1, entanglement=pattern)
            assert circuit.num_nonlocal_gates() > 0
        with pytest.raises(CircuitError):
            hardware_efficient_ansatz(4, entanglement="ring-of-fire")


class TestRandomCircuits:
    def test_reproducible_with_seed(self):
        assert random_circuit(4, 5, seed=3) == random_circuit(4, 5, seed=3)
        assert random_circuit(4, 5, seed=3) != random_circuit(4, 5, seed=4)

    def test_sparse_circuit_bounds_nonzeros(self):
        circuit = random_sparse_circuit(6, depth=10, max_branching=2, seed=5)
        state = SparseSimulator().run(circuit).state
        assert state.num_nonzero <= 4

    def test_dense_circuit_is_dense(self):
        circuit = random_dense_circuit(5, depth=2, seed=5)
        state = _SV.run(circuit).state
        assert state.num_nonzero == 32

    def test_norm_is_preserved(self):
        state = _SV.run(random_circuit(5, 8, seed=2)).state
        assert sum(state.probabilities().values()) == pytest.approx(1.0, abs=1e-9)
