"""Tests for consistent-hash engine-pool sharding and the tenant report table."""

import pytest

from repro.errors import BenchmarkError, QymeraError
from repro.bench import tenant_table
from repro.circuits import ghz_circuit
from repro.service import JobService
from repro.service.server import ConsistentHashRing, ShardedEnginePool


class TestConsistentHashRing:
    def test_routing_is_deterministic(self):
        ring = ConsistentHashRing(4)
        again = ConsistentHashRing(4)
        for key in ("memdb|()", "statevector|()", "sparse|(('threshold', 0.1),)"):
            assert ring.node_for(key) == again.node_for(key)

    def test_keys_spread_across_nodes(self):
        ring = ConsistentHashRing(4, replicas=128)
        owners = {ring.node_for(f"key:{i}") for i in range(200)}
        assert owners == {0, 1, 2, 3}

    def test_resize_moves_a_minority_of_keys(self):
        """The consistent-hashing property: going 4 -> 5 nodes remaps only a
        fraction of keys, not (n-1)/n of them like modulo hashing would."""
        keys = [f"key:{i}" for i in range(1000)]
        before = ConsistentHashRing(4, replicas=128)
        after = ConsistentHashRing(5, replicas=128)
        moved = sum(1 for key in keys if before.node_for(key) != after.node_for(key))
        assert moved < 500  # ~1/5 expected; far below the 4/5 modulo would move

    def test_validates_arguments(self):
        with pytest.raises(QymeraError):
            ConsistentHashRing(0)
        with pytest.raises(QymeraError):
            ConsistentHashRing(2, replicas=0)


class TestShardedEnginePool:
    def test_same_workload_shape_lands_on_the_same_shard(self):
        pool = ShardedEnginePool(shards=4)
        first = pool.shard_for("memdb", {})
        assert all(pool.shard_for("memdb", {}) == first for _ in range(5))
        key_a, engine_a = pool.acquire("memdb", {})
        pool.release(key_a, engine_a)
        key_b, engine_b = pool.acquire("memdb", {})
        assert key_b == key_a  # same shard, same inner key...
        assert engine_b is engine_a  # ...and the warm engine is re-leased
        pool.release(key_b, engine_b)
        pool.close()

    def test_distinct_options_may_route_to_distinct_shards(self):
        pool = ShardedEnginePool(shards=8, replicas=128)
        shards = {
            pool.shard_for("memdb", {"optimize": flag}) for flag in (True, False)
        } | {pool.shard_for(method, {}) for method in ("memdb", "statevector", "sparse")}
        assert len(shards) > 1
        pool.close()

    def test_stats_roll_up_counts_all_shards(self):
        pool = ShardedEnginePool(shards=2)
        key, engine = pool.acquire("statevector", {})
        pool.release(key, engine)
        key, engine = pool.acquire("statevector", {})
        pool.release(key, engine)
        stats = pool.stats()
        assert stats["created"] == 1 and stats["reused"] == 1
        assert len(stats["shards"]) == 2
        pool.close()

    def test_drop_in_for_job_service(self):
        service = JobService(max_workers=2, pool=ShardedEnginePool(shards=2))
        try:
            handle = service.submit(circuit=ghz_circuit(3), method="memdb")
            result = handle.result(timeout=30)
            assert result.state.num_nonzero == 2
            assert service.stats()["pool"]["created"] >= 1
        finally:
            service.shutdown(wait=True)
            service.pool.close()


class TestTenantTable:
    def test_collates_per_tenant_instruments(self):
        service = JobService(max_workers=2)
        try:
            for tenant in ("alice", "bob", "alice"):
                service.submit(
                    circuit=ghz_circuit(2), method="statevector", tenant=tenant
                ).result(timeout=30)
            table = tenant_table(service.metrics.snapshot())
        finally:
            service.shutdown(wait=True)
        assert "alice" in table and "bob" in table
        lines = [line for line in table.splitlines() if line.startswith("alice")]
        (alice_row,) = lines
        cells = [cell.strip() for cell in alice_row.split("|")]
        assert cells[1] == "2"  # submitted
        assert cells[3] == "2"  # done

    def test_rejects_snapshots_without_tenants(self):
        with pytest.raises(BenchmarkError):
            tenant_table({"counters": {"jobs.done": 3}, "gauges": {}, "histograms": {}})
        with pytest.raises(BenchmarkError):
            tenant_table({})
