"""Tests for the durable job journal: folding, replay, and purge interaction."""

import json

import pytest

from repro.circuits import ghz_circuit, hardware_efficient_ansatz
from repro.errors import QymeraError
from repro.service import JobRequest, JobService
from repro.service.server import JobJournal
from repro.service.server.journal import serialize_request

_PARAMS = [f"theta[{i}]" for i in range(6)]
_GRID = [{name: round(0.1 * k, 3) for name in _PARAMS} for k in range(1, 5)]


def _sweep_request(grid=None):
    return JobRequest(
        circuit=hardware_efficient_ansatz(3, rotation_gates=("ry",)),
        method="memdb",
        param_grid=grid if grid is not None else _GRID,
        tenant="sweeper",
    )


class TestJournalFolding:
    def test_lifecycle_folds_to_terminal_entry(self, tmp_path):
        journal = JobJournal(tmp_path / "j.journal")
        fingerprint = journal.record_submitted(1, _sweep_request())
        assert fingerprint  # serializable requests get a content hash
        journal.record_started(1)
        journal.record_point(1, 0)
        journal.record_point(1, 1)
        journal.record_terminal(1, "done")
        (entry,) = journal.entries()
        assert entry.terminal and entry.status == "done"
        assert entry.completed_points == 2
        assert entry.total_points == len(_GRID)
        assert journal.incomplete() == []

    def test_rejects_non_terminal_status(self, tmp_path):
        journal = JobJournal(tmp_path / "j.journal")
        with pytest.raises(QymeraError):
            journal.record_terminal(1, "running")

    def test_restart_rereads_existing_file(self, tmp_path):
        path = tmp_path / "j.journal"
        first = JobJournal(path)
        first.record_submitted(1, _sweep_request())
        first.record_terminal(1, "error", error="boom")
        first.close()
        reborn = JobJournal(path)
        status = reborn.final_status(1)
        assert status["status"] == "error" and status["error"] == "boom"
        assert reborn.final_status(99) is None

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "j.journal"
        journal = JobJournal(path)
        journal.record_submitted(1, _sweep_request())
        journal.record_point(1, 0)
        journal.close()
        # A hard kill can tear the last record mid-write.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "point", "job_id": 1, "ind')
        recovered = JobJournal(path)
        (entry,) = recovered.entries()
        assert entry.completed_points == 1  # the torn record is dropped

    def test_unserializable_payload_still_audits_lifecycle(self, tmp_path):
        request = JobRequest(
            circuit=ghz_circuit(2), method="memdb", options={"engine": object()}
        )
        assert serialize_request(request) is None
        journal = JobJournal(tmp_path / "j.journal")
        assert journal.record_submitted(1, request) == ""
        (plan,) = journal.replay_plan()
        assert plan["request"] is None and "serializable" in plan["reason"]


class TestReplayPlan:
    def test_narrows_grid_to_unfinished_suffix(self, tmp_path):
        journal = JobJournal(tmp_path / "j.journal")
        journal.record_submitted(7, _sweep_request())
        journal.record_started(7)
        journal.record_point(7, 0)
        journal.record_point(7, 1)
        (plan,) = journal.replay_plan()
        assert plan["job_id"] == 7 and plan["skip_points"] == 2
        assert plan["request"].param_grid == _GRID[2:]

    def test_all_points_done_but_terminal_lost_needs_no_replay(self, tmp_path):
        journal = JobJournal(tmp_path / "j.journal")
        journal.record_submitted(1, _sweep_request())
        for index in range(len(_GRID)):
            journal.record_point(1, index)
        # The kill landed between the last point and the terminal record.
        assert journal.replay_plan() == []

    def test_single_point_job_replays_whole(self, tmp_path):
        journal = JobJournal(tmp_path / "j.journal")
        journal.record_submitted(
            1, JobRequest(circuit=ghz_circuit(3), method="statevector")
        )
        journal.record_started(1)
        (plan,) = journal.replay_plan()
        assert plan["skip_points"] == 0
        assert plan["request"].param_grid is None


class TestServiceReplay:
    def test_round_trip_recomputes_only_missing_points(self, tmp_path):
        path = tmp_path / "j.journal"
        journal = JobJournal(path)
        # Synthesize a mid-sweep kill: submitted + 2 points, no terminal.
        journal.record_submitted(1, _sweep_request())
        journal.record_started(1)
        journal.record_point(1, 0)
        journal.record_point(1, 1)
        journal.close()

        restarted = JobJournal(path)
        service = JobService(max_workers=1, journal=restarted)
        try:
            (resumed,) = service.replay_journal()
            results = resumed.result(timeout=60)
        finally:
            service.shutdown(wait=True)
        assert len(results) == len(_GRID) - 2
        # The resumed points are exactly the unfinished suffix, in order.
        for point, result in zip(_GRID[2:], results):
            assert result.metadata["parameter_binding"] == point
        # The original entry is closed so a second restart replays nothing.
        final = JobJournal(path)
        assert final.incomplete() == []
        assert "superseded" in final.final_status(1)["error"]
        assert final.final_status(resumed.job_id)["status"] == "done"
        assert service.metrics.counter("jobs.replayed").value == 1

    def test_second_restart_is_a_no_op(self, tmp_path):
        path = tmp_path / "j.journal"
        journal = JobJournal(path)
        journal.record_submitted(1, _sweep_request())
        journal.record_point(1, 0)
        journal.close()
        service = JobService(max_workers=1, journal=JobJournal(path))
        try:
            (resumed,) = service.replay_journal()
            resumed.result(timeout=60)
        finally:
            service.shutdown(wait=True)
        second = JobService(max_workers=1, journal=JobJournal(path))
        try:
            assert second.replay_journal() == []
        finally:
            second.shutdown(wait=True)

    def test_replay_ids_do_not_collide_with_journaled_ids(self, tmp_path):
        path = tmp_path / "j.journal"
        journal = JobJournal(path)
        journal.record_submitted(5, _sweep_request())
        service = JobService(max_workers=1, journal=journal)
        try:
            (resumed,) = service.replay_journal()
            assert resumed.job_id > 5
            resumed.result(timeout=60)
        finally:
            service.shutdown(wait=True)

    def test_clean_shutdown_leaves_no_incomplete_entries(self, tmp_path):
        path = tmp_path / "j.journal"
        service = JobService(max_workers=2, journal=JobJournal(path))
        try:
            handles = [
                service.submit(circuit=ghz_circuit(3), method="statevector")
                for _ in range(4)
            ]
            for handle in handles:
                handle.result(timeout=30)
        finally:
            service.shutdown(wait=True)
        # Zero dropped records: every submitted id has a terminal record.
        journal = JobJournal(path)
        assert journal.incomplete() == []
        assert len(journal.entries()) == 4


class TestPurgeInteraction:
    def test_purged_jobs_stay_answerable_through_the_journal(self, tmp_path):
        service = JobService(max_workers=1, journal=JobJournal(tmp_path / "j.journal"))
        try:
            handle = service.submit(circuit=ghz_circuit(3), method="statevector")
            handle.result(timeout=30)
            job_id = handle.job_id
            assert service.purge() == 1
            with pytest.raises(QymeraError):
                service.poll(job_id)  # the handle is gone...
            status = service.final_status(job_id)  # ...the journal answers
            assert status["status"] == "done"
            assert status["completed_points"] == 1
        finally:
            service.shutdown(wait=True)

    def test_purge_never_drops_unfinished_jobs(self, tmp_path):
        service = JobService(
            max_workers=1, journal=JobJournal(tmp_path / "j.journal")
        )
        try:
            # A sweep occupies the single worker; the queued job is pending.
            running = service.submit(
                circuit=hardware_efficient_ansatz(3, rotation_gates=("ry",)),
                method="memdb",
                param_grid=_GRID,
            )
            queued = service.submit(circuit=ghz_circuit(2), method="statevector")
            assert service.purge() == 0  # nothing terminal yet: nothing dropped
            assert {handle.job_id for handle in service.jobs()} == {
                running.job_id,
                queued.job_id,
            }
            running.result(timeout=60)
            queued.result(timeout=30)
        finally:
            service.shutdown(wait=True)

    def test_final_status_is_none_without_a_journal(self):
        service = JobService(max_workers=1)
        try:
            assert service.final_status(1) is None
        finally:
            service.shutdown(wait=True)
