"""Tests for the tenant-aware fair scheduler, quotas, and admission control."""

import threading
from types import SimpleNamespace

import pytest

from repro.circuits import ghz_circuit, hardware_efficient_ansatz
from repro.errors import QymeraError
from repro.service import JobRequest, JobService
from repro.service.server import (
    AdmissionController,
    FairScheduler,
    MemdbCostEstimator,
    QuotaExceeded,
    StructuralCostEstimator,
    TenantQuota,
    TokenBucket,
)
from repro.service.server.admission import ADMIT, REJECT


def _handle(tenant: str, cost: float = 1.0):
    """The scheduler only reads ``request.tenant`` and ``_cost_units``."""
    handle = SimpleNamespace(request=SimpleNamespace(tenant=tenant))
    handle._cost_units = cost
    return handle


class _FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestFairness:
    def test_ten_to_one_submit_rate_gets_equal_service(self):
        """The fairness property: DRR serves backlogged tenants ~1:1 in cost
        regardless of a 10:1 submit-rate imbalance."""
        scheduler = FairScheduler()
        for _ in range(100):
            scheduler.submit(_handle("heavy"))
        for _ in range(10):
            scheduler.submit(_handle("light"))
        served = {"heavy": 0, "light": 0}
        # Single-worker service loop over the window where both are backlogged.
        for _ in range(20):
            handle = scheduler.next_job(timeout=0.1)
            served[handle.request.tenant] += 1
            scheduler.on_finish(handle)
        assert served["light"] == served["heavy"] == 10

    def test_weights_scale_service_share(self):
        # Weights differentiate when job cost exceeds the per-pass quantum
        # (cost 3, quantum 1): weight-3 accrues a job's worth every pass,
        # weight-1 every third pass.
        scheduler = FairScheduler()
        scheduler.configure("gold", TenantQuota(weight=3.0))
        for _ in range(60):
            scheduler.submit(_handle("gold", cost=3.0), cost=3.0)
            scheduler.submit(_handle("basic", cost=3.0), cost=3.0)
        served = {"gold": 0, "basic": 0}
        for _ in range(40):
            handle = scheduler.next_job(timeout=0.1)
            served[handle.request.tenant] += 1
            scheduler.on_finish(handle)
        assert served["gold"] == pytest.approx(3 * served["basic"], rel=0.2)

    def test_cost_weighted_service_not_job_counts(self):
        """Equal *cost* service: a tenant of 5x-cost jobs gets ~1/5 the jobs."""
        scheduler = FairScheduler()
        for _ in range(50):
            scheduler.submit(_handle("sweeps", cost=5.0), cost=5.0)
            scheduler.submit(_handle("probes", cost=1.0), cost=1.0)
        served = {"sweeps": 0.0, "probes": 0.0}
        jobs = {"sweeps": 0, "probes": 0}
        for _ in range(30):
            handle = scheduler.next_job(timeout=0.1)
            served[handle.request.tenant] += handle._cost_units
            jobs[handle.request.tenant] += 1
            scheduler.on_finish(handle)
        assert served["sweeps"] == pytest.approx(served["probes"], rel=0.3)
        assert jobs["probes"] > 3 * jobs["sweeps"]

    def test_idle_tenant_does_not_hoard_deficit(self):
        scheduler = FairScheduler()
        scheduler.submit(_handle("a"))
        handle = scheduler.next_job(timeout=0.1)
        scheduler.on_finish(handle)
        # a's queue drained -> its deficit reset; a burst later must not
        # let it monopolize against b.
        for _ in range(10):
            scheduler.submit(_handle("a"))
            scheduler.submit(_handle("b"))
        served = {"a": 0, "b": 0}
        for _ in range(10):
            handle = scheduler.next_job(timeout=0.1)
            served[handle.request.tenant] += 1
            scheduler.on_finish(handle)
        assert served == {"a": 5, "b": 5}


class TestQuotas:
    def test_max_queued_rejects_with_retry_after(self):
        scheduler = FairScheduler()
        scheduler.configure("t", TenantQuota(max_queued=2))
        scheduler.submit(_handle("t"))
        scheduler.submit(_handle("t"))
        with pytest.raises(QuotaExceeded) as excinfo:
            scheduler.submit(_handle("t"))
        assert excinfo.value.reason == "max_queued"
        assert excinfo.value.retry_after > 0
        # Other tenants are unaffected.
        scheduler.submit(_handle("other"))

    def test_max_in_flight_skips_capped_tenant(self):
        scheduler = FairScheduler()
        scheduler.configure("capped", TenantQuota(max_in_flight=1))
        scheduler.submit(_handle("capped"))
        scheduler.submit(_handle("capped"))
        scheduler.submit(_handle("free"))
        first = scheduler.next_job(timeout=0.1)
        assert first.request.tenant == "capped"
        # capped is at its in-flight limit: only "free" is eligible now.
        second = scheduler.next_job(timeout=0.1)
        assert second.request.tenant == "free"
        assert scheduler.next_job(timeout=0.05) is None
        scheduler.on_finish(first)
        third = scheduler.next_job(timeout=0.1)
        assert third.request.tenant == "capped"

    def test_token_bucket_rate_limits_submits(self):
        clock = _FakeClock()
        scheduler = FairScheduler(clock=clock)
        scheduler.configure("t", TenantQuota(rate=1.0, burst=2.0))
        scheduler.submit(_handle("t"))
        scheduler.submit(_handle("t"))  # burst exhausted
        with pytest.raises(QuotaExceeded) as excinfo:
            scheduler.submit(_handle("t"))
        assert excinfo.value.reason == "rate"
        assert excinfo.value.retry_after == pytest.approx(1.0)
        clock.advance(1.0)  # one token refilled
        scheduler.submit(_handle("t"))
        with pytest.raises(QuotaExceeded):
            scheduler.submit(_handle("t"))

    def test_remove_and_drain(self):
        scheduler = FairScheduler()
        queued = _handle("t")
        scheduler.submit(queued, cost=3.0)
        assert scheduler.queued_cost() == 3.0
        assert scheduler.remove(queued) is True
        assert scheduler.remove(queued) is False
        assert scheduler.queued_cost() == 0.0
        scheduler.submit(_handle("t"))
        scheduler.submit(_handle("u"))
        assert len(scheduler.drain()) == 2
        assert scheduler.queued_jobs() == 0

    def test_close_wakes_blocked_dispatcher_and_rejects_submits(self):
        scheduler = FairScheduler()
        picked = []
        thread = threading.Thread(target=lambda: picked.append(scheduler.next_job()))
        thread.start()
        scheduler.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive() and picked == [None]
        with pytest.raises(QymeraError):
            scheduler.submit(_handle("t"))


class TestTokenBucket:
    def test_starts_full_and_refills_to_capacity(self):
        clock = _FakeClock()
        bucket = TokenBucket(rate=2.0, capacity=4.0, clock=clock)
        for _ in range(4):
            assert bucket.try_take() == 0.0
        wait = bucket.try_take()
        assert wait == pytest.approx(0.5)
        clock.advance(100.0)
        assert bucket.tokens == pytest.approx(4.0)  # capped at capacity

    def test_partial_refill_wait_is_exact(self):
        clock = _FakeClock()
        bucket = TokenBucket(rate=4.0, capacity=1.0, clock=clock)
        assert bucket.try_take() == 0.0
        clock.advance(0.125)  # half a token back
        assert bucket.try_take() == pytest.approx(0.125)


class TestAdmission:
    def test_reject_vs_queue_boundary_on_cost(self):
        controller = AdmissionController(
            max_queued_cost=100.0, estimator=StructuralCostEstimator()
        )
        request = JobRequest(circuit=ghz_circuit(3), method="statevector")
        cost = StructuralCostEstimator().estimate(request)
        # Exactly at the ceiling: admitted; one unit past: rejected.
        admitted = controller.assess(request, queued_cost=100.0 - cost, queued_jobs=1)
        assert admitted.action == ADMIT
        rejected = controller.assess(request, queued_cost=100.0 - cost + 1.0, queued_jobs=1)
        assert rejected.action == REJECT
        assert rejected.reason == "cost ceiling"
        assert rejected.retry_after >= controller.min_retry_after

    def test_queue_count_ceiling(self):
        controller = AdmissionController(max_queued_jobs=2)
        request = JobRequest(circuit=ghz_circuit(2), method="statevector")
        assert controller.assess(request, queued_cost=0.0, queued_jobs=1).action == ADMIT
        decision = controller.assess(request, queued_cost=0.0, queued_jobs=2)
        assert decision.action == REJECT and decision.reason == "queue full"

    def test_retry_after_tracks_service_rate(self):
        controller = AdmissionController(max_queued_cost=10.0, min_retry_after=0.0)
        controller.observe_served(1000.0)  # very fast service observed
        request = JobRequest(circuit=ghz_circuit(2), method="statevector")
        decision = controller.assess(request, queued_cost=10.0, queued_jobs=1)
        assert decision.action == REJECT
        # excess / (huge rate) is tiny
        assert decision.retry_after < 1.0

    def test_memdb_estimator_prices_by_circuit_size_and_memoizes(self):
        estimator = MemdbCostEstimator()
        small = JobRequest(circuit=ghz_circuit(3), method="memdb")
        large = JobRequest(circuit=ghz_circuit(6), method="memdb")
        small_cost = estimator.estimate(small)
        assert estimator.estimate(large) > small_cost
        before = estimator.stats()["plan_priced"]
        estimator.estimate(small)  # same structure: cached, not re-priced
        assert estimator.stats()["plan_priced"] == before
        # Grid jobs cost their full fan-out.
        grid = [{"g": 0.1}, {"g": 0.2}, {"g": 0.3}]
        sweep = JobRequest(circuit=ghz_circuit(3), method="memdb", param_grid=grid)
        assert estimator.estimate(sweep) == pytest.approx(3 * small_cost)

    def test_unbound_parameterized_circuit_falls_back_structural(self):
        estimator = MemdbCostEstimator()
        request = JobRequest(
            circuit=hardware_efficient_ansatz(3, rotation_gates=("ry",)), method="memdb"
        )
        cost = estimator.estimate(request)
        assert cost == StructuralCostEstimator().estimate(request)
        assert estimator.stats()["fallbacks"] == 1


class TestServiceIntegration:
    def test_scheduled_service_runs_jobs_and_reports_snapshot(self):
        scheduler = FairScheduler()
        service = JobService(max_workers=2, scheduler=scheduler)
        try:
            handles = [
                service.submit(circuit=ghz_circuit(3), method="statevector", tenant=tenant)
                for tenant in ("a", "b", "a")
            ]
            for handle in handles:
                handle.result(timeout=30)
            snapshot = service.stats()["scheduler"]
            assert snapshot["policy"] == "deficit-round-robin"
            assert set(snapshot["tenants"]) == {"a", "b"}
            assert snapshot["tenants"]["a"]["dispatched"] == 2
        finally:
            service.shutdown(wait=True)

    def test_quota_rejection_surfaces_from_submit(self):
        scheduler = FairScheduler()
        scheduler.configure("t", TenantQuota(rate=0.001, burst=1.0))
        service = JobService(max_workers=1, scheduler=scheduler)
        try:
            service.submit(circuit=ghz_circuit(2), method="statevector", tenant="t")
            with pytest.raises(QuotaExceeded):
                service.submit(circuit=ghz_circuit(2), method="statevector", tenant="t")
            # The rejected submit burned no job id and left no handle behind.
            assert len(service.jobs()) == 1
        finally:
            service.shutdown(wait=True)

    def test_admission_requires_scheduler(self):
        with pytest.raises(QymeraError):
            JobService(admission=AdmissionController(max_queued_cost=1.0))
