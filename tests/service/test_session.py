"""Tests for the end-to-end session facade (E11: Fig. 1 / Fig. 3 walk-through)."""

import json

import pytest

from repro.backends import duckdb_available
from repro.backends.memdb.engine import PlanCache
from repro.circuits import ghz_circuit, qaoa_maxcut_circuit
from repro.errors import QymeraError
from repro.io import dumps_circuit, dumps_qasm
from repro.service import QymeraSession


@pytest.fixture
def session():
    return QymeraSession()


class TestCircuitPanel:
    def test_builder_path(self, session):
        builder = session.circuits.new_builder(3)
        builder.place("h", [0])
        builder.place("cx", [0, 1])
        builder.place("cx", [1, 2])
        name = session.circuits.add_from_builder(builder, "ghz")
        assert name == "ghz"
        assert session.circuits.get("ghz") == ghz_circuit(3)

    def test_code_input_path(self, session):
        session.circuits.add_circuit(ghz_circuit(4), "ghz4")
        assert "ghz4" in session.circuits.names()

    def test_file_input_paths(self, session, tmp_path):
        qasm_path = tmp_path / "ghz.qasm"
        qasm_path.write_text(dumps_qasm(ghz_circuit(3)))
        json_path = tmp_path / "ghz.json"
        json_path.write_text(dumps_circuit(ghz_circuit(3)))
        session.circuits.load_file(qasm_path, "from_qasm")
        session.circuits.load_file(json_path, "from_json")
        assert session.circuits.get("from_qasm").count_ops() == {"h": 1, "cx": 2}
        assert session.circuits.get("from_json").count_ops() == {"h": 1, "cx": 2}
        with pytest.raises(QymeraError):
            session.circuits.load_file(tmp_path / "bogus.txt")

    def test_text_input_paths(self, session):
        session.circuits.load_text("H 0\nCNOT 0 1\n", "quil", "bell_quil")
        session.circuits.load_text(dumps_qasm(ghz_circuit(2)), "qasm", "bell_qasm")
        assert session.circuits.get("bell_quil").size() == 2
        with pytest.raises(QymeraError):
            session.circuits.load_text("H 0", "morse")

    def test_parameterized_family_binding(self, session):
        session.circuits.add_circuit(qaoa_maxcut_circuit(4, p=1), "qaoa")
        described = session.circuits.describe("qaoa")
        assert described["parameters"] == ["beta[0]", "gamma[0]"]
        bound_name = session.circuits.bind("qaoa", {"gamma[0]": 0.4, "beta[0]": 0.3})
        assert not session.circuits.get(bound_name).is_parameterized

    def test_unknown_circuit(self, session):
        with pytest.raises(QymeraError):
            session.circuits.get("missing")


class TestSimulationPanel:
    def test_translate_shows_sql(self, session):
        session.circuits.add_circuit(ghz_circuit(3), "ghz")
        translation = session.simulations.translate("ghz")
        assert "WITH T1 AS" in translation.cte_query()

    def test_run_and_run_all(self, session):
        session.circuits.add_circuit(ghz_circuit(3), "ghz")
        single = session.simulations.run("ghz", "sqlite")
        assert single.state.num_nonzero == 2
        everything = session.simulations.run_all("ghz", methods=["memdb", "statevector", "dd"])
        assert set(everything) == {"memdb", "statevector", "dd"}

    def test_unknown_method(self, session):
        session.circuits.add_circuit(ghz_circuit(2), "ghz")
        with pytest.raises(QymeraError):
            session.simulations.run("ghz", "quantum_annealer")

    def test_benchmark_entry_point(self, session):
        records = session.simulations.benchmark(["ghz"], sizes=[3], methods=["sqlite", "statevector"])
        assert len(records) == 2
        with pytest.raises(QymeraError):
            session.simulations.benchmark(["ghz"], sizes=[3], methods=["fpga"])

    def test_available_methods(self, session):
        methods = session.simulations.available_methods()
        assert {"sqlite", "memdb", "statevector", "sparse", "mps", "dd"} <= set(methods)

    def test_explain_shows_optimizer_plan(self, session):
        session.circuits.add_circuit(ghz_circuit(3), "ghz")
        plan = session.simulations.explain("ghz")
        assert "fused join-aggregate [cost" in plan
        assert "plan cache:" in plan
        analyzed = session.simulations.explain("ghz", analyze=True)
        assert "actual" in analyzed

    def test_engine_stats_exposed(self, session):
        session.circuits.add_circuit(ghz_circuit(3), "ghz")
        session.simulations.run("ghz", "memdb")
        stats = session.simulations.engine_stats()
        assert "plan_cache" in stats and "optimizer" in stats
        assert "hits" in stats["plan_cache"]
        assert stats["optimizer"]["enabled"] is True
        with pytest.raises(QymeraError):
            session.simulations.engine_stats("statevector")


class TestTranslateDialectRouting:
    def test_known_dialects(self, session):
        session.circuits.add_circuit(ghz_circuit(3), "ghz")
        assert session.simulations.translate("ghz", dialect="sqlite").dialect.name == "sqlite"
        assert session.simulations.translate("ghz", dialect="memdb").dialect.name == "memdb"

    def test_duckdb_routes_to_duckdb_backend(self, session):
        session.circuits.add_circuit(ghz_circuit(3), "ghz")
        if duckdb_available():
            assert session.simulations.translate("ghz", dialect="duckdb").dialect.name == "duckdb"
        else:
            with pytest.raises(QymeraError, match="duckdb"):
                session.simulations.translate("ghz", dialect="duckdb")

    def test_unknown_dialect_raises(self, session):
        """Regression: unknown dialects used to fall through to memdb silently."""
        session.circuits.add_circuit(ghz_circuit(3), "ghz")
        with pytest.raises(QymeraError, match="unknown SQL dialect"):
            session.simulations.translate("ghz", dialect="oracle")


class TestResultOptionsFingerprint:
    def test_runs_with_different_options_do_not_overwrite(self, session):
        """Regression: results were keyed by (circuit, method) only."""
        session.circuits.add_circuit(ghz_circuit(3), "ghz")
        plain = session.simulations.run("ghz", "memdb")
        fused = session.simulations.run("ghz", "memdb", fuse=True)
        assert len(session.simulations.results()) == 2
        assert session.simulations.result("ghz", "memdb", fuse=True) is fused
        assert session.simulations.result("ghz", "memdb") is plain

    def test_unambiguous_lookup_without_options(self, session):
        session.circuits.add_circuit(ghz_circuit(3), "ghz")
        result = session.simulations.run("ghz", "sqlite", fuse=True)
        # Only one stored run for (ghz, sqlite): option-less lookup finds it.
        assert session.simulations.result("ghz", "sqlite") is result

    def test_wrong_options_raise(self, session):
        session.circuits.add_circuit(ghz_circuit(3), "ghz")
        session.simulations.run("ghz", "sqlite")
        with pytest.raises(QymeraError, match="no stored result"):
            session.simulations.result("ghz", "sqlite", fuse=True)

    def test_output_views_accept_run_options(self, session):
        session.circuits.add_circuit(ghz_circuit(3), "ghz")
        session.simulations.run("ghz", "memdb")
        session.simulations.run("ghz", "memdb", fuse=True)
        # Views address a specific run by its options...
        assert "111" in session.output.state_table("ghz", "memdb", fuse=True)
        assert "#" in session.output.probability_histogram("ghz", "memdb", fuse=True)
        assert session.output.entanglement("ghz", "memdb", [0], fuse=True) == pytest.approx(1.0)
        # ...an option-less lookup exactly matches the option-less run...
        assert "111" in session.output.state_table("ghz", "memdb")
        # ...and is only ambiguous when several optioned runs exist with no
        # option-less one.
        session.simulations.run("ghz", "sqlite", fuse=True)
        session.simulations.run("ghz", "sqlite", prune_atol=1e-10)
        with pytest.raises(QymeraError, match="disambiguate"):
            session.output.state_table("ghz", "sqlite")

    def test_performance_table_distinguishes_option_sets(self, session):
        session.circuits.add_circuit(ghz_circuit(3), "ghz")
        session.simulations.run("ghz", "memdb")
        session.simulations.run("ghz", "memdb", fuse=True)
        table = session.output.performance_table("ghz")
        assert "options" in table
        assert "fuse=True" in table
        # Option-less sessions keep the original compact table.
        session.simulations.run("ghz", "sqlite")
        assert "options" not in session.output.performance_table("ghz", methods=["sqlite"])


class TestRunAllOptions:
    def test_per_method_options_are_forwarded(self, session):
        session.circuits.add_circuit(ghz_circuit(3), "ghz")
        results = session.simulations.run_all(
            "ghz",
            methods=["memdb", "statevector"],
            options={"memdb": {"fuse": True}},
        )
        assert set(results) == {"memdb", "statevector"}
        assert results["memdb"].metadata["sql"]["fusion"]["enabled"] is True
        # The fused run was stored under its own fingerprint.
        assert session.simulations.result("ghz", "memdb", fuse=True) is results["memdb"]

    def test_options_for_methods_not_run_raise(self, session):
        session.circuits.add_circuit(ghz_circuit(3), "ghz")
        with pytest.raises(QymeraError, match="will not run"):
            session.simulations.run_all("ghz", methods=["sqlite"], options={"memdb": {"fuse": True}})

    def test_pooled_instances_are_shared_with_run(self, session):
        session.circuits.add_circuit(ghz_circuit(3), "ghz")
        session.simulations.run_all("ghz", methods=["memdb"], options={"memdb": {"fuse": True}})
        pooled = session.simulations._pooled_method("memdb", {"fuse": True})
        assert pooled is session.simulations._method_pool[("memdb", (("fuse", True),))]


class TestPooledMethod:
    def test_pool_reuse_across_run_explain_engine_stats(self, session):
        session.circuits.add_circuit(ghz_circuit(3), "ghz")
        session.simulations.run("ghz", "memdb")
        pooled = session.simulations._pooled_method("memdb", {})
        session.simulations.explain("ghz")
        session.simulations.engine_stats("memdb")
        # All three entry points resolve to the same pooled instance.
        assert session.simulations._pooled_method("memdb", {}) is pooled
        assert len([key for key in session.simulations._method_pool if key[0] == "memdb"]) == 1

    def test_unhashable_options_fall_back_to_fresh_instances(self, session):
        class UnhashableCache(PlanCache):
            __hash__ = None

        options = {"plan_cache": UnhashableCache()}
        first = session.simulations._pooled_method("memdb", options)
        second = session.simulations._pooled_method("memdb", options)
        assert first is not second
        assert not session.simulations._method_pool

    def test_unhashable_options_still_run(self, session):
        class UnhashableCache(PlanCache):
            __hash__ = None

        session.circuits.add_circuit(ghz_circuit(3), "ghz")
        result = session.simulations.run("ghz", "memdb", plan_cache=UnhashableCache())
        assert result.state.num_nonzero == 2

    def test_plan_cache_hits_survive_pooling(self, session):
        """Re-running a circuit on the pooled memdb instance hits cached plans."""
        cache = PlanCache()
        session.circuits.add_circuit(ghz_circuit(4), "ghz4")
        session.simulations.run("ghz4", "memdb", plan_cache=cache)
        planned_after_first = cache.stats()["planned"]
        hits_after_first = cache.stats()["hits"]
        session.simulations.run("ghz4", "memdb", plan_cache=cache)
        stats = cache.stats()
        # Same pooled instance, same SQL texts: the second run compiles no new
        # plans and lands only hits for the hot query.
        assert stats["planned"] == planned_after_first
        assert stats["hits"] > hits_after_first


class TestJobSubmission:
    def test_submit_routes_through_the_job_service(self, session):
        session.circuits.add_circuit(qaoa_maxcut_circuit(4, p=1), "qaoa")
        grid = [{"gamma[0]": 0.2 * k, "beta[0]": 0.3} for k in range(1, 4)]
        handle = session.simulations.submit("qaoa", "memdb", param_grid=grid)
        results = handle.result(timeout=60)
        assert len(results) == 3
        assert handle.poll()["tag"] == "qaoa"
        assert session.jobs.stats()["jobs"]["done"] >= 1
        session.jobs.shutdown()


class TestOutputPanel:
    def test_views_and_exports(self, session, tmp_path):
        session.circuits.add_circuit(ghz_circuit(3), "ghz")
        session.simulations.run("ghz", "sqlite")
        session.simulations.run("ghz", "statevector")

        assert "111" in session.output.state_table("ghz", "sqlite")
        assert "#" in session.output.probability_histogram("ghz", "sqlite")
        assert "mixed" in session.output.bloch_view("ghz", "sqlite", 0)
        assert session.output.entanglement("ghz", "sqlite", [0]) == pytest.approx(1.0)
        assert "sqlite" in session.output.performance_table("ghz")

        histogram_text = session.output.sample_histogram("ghz", "sqlite", shots=256)
        assert "000" in histogram_text or "111" in histogram_text

        csv_path = session.output.export_state_csv("ghz", "sqlite", tmp_path / "state.csv")
        assert csv_path.exists()
        payload = json.loads(session.output.export_result_json("ghz", "sqlite"))
        assert payload["method"] == "sqlite"

        records = session.simulations.benchmark(["ghz"], sizes=[3], methods=["sqlite", "statevector"])
        bench_path = session.output.export_benchmark_csv(records, tmp_path / "bench.csv")
        assert "sqlite" in bench_path.read_text()

    def test_missing_result(self, session):
        session.circuits.add_circuit(ghz_circuit(2), "ghz")
        with pytest.raises(QymeraError):
            session.output.state_table("ghz", "sqlite")


class TestQuickHelpers:
    def test_quick_run_and_final_state(self, session):
        result = session.quick_run(ghz_circuit(3), "memdb")
        assert result.method == "memdb"
        state = session.final_state(ghz_circuit(2), "sqlite")
        assert state.num_nonzero == 2
