"""Tests for the end-to-end session facade (E11: Fig. 1 / Fig. 3 walk-through)."""

import json

import pytest

from repro.circuits import ghz_circuit, qaoa_maxcut_circuit
from repro.errors import QymeraError
from repro.io import dumps_circuit, dumps_qasm
from repro.service import QymeraSession


@pytest.fixture
def session():
    return QymeraSession()


class TestCircuitPanel:
    def test_builder_path(self, session):
        builder = session.circuits.new_builder(3)
        builder.place("h", [0])
        builder.place("cx", [0, 1])
        builder.place("cx", [1, 2])
        name = session.circuits.add_from_builder(builder, "ghz")
        assert name == "ghz"
        assert session.circuits.get("ghz") == ghz_circuit(3)

    def test_code_input_path(self, session):
        session.circuits.add_circuit(ghz_circuit(4), "ghz4")
        assert "ghz4" in session.circuits.names()

    def test_file_input_paths(self, session, tmp_path):
        qasm_path = tmp_path / "ghz.qasm"
        qasm_path.write_text(dumps_qasm(ghz_circuit(3)))
        json_path = tmp_path / "ghz.json"
        json_path.write_text(dumps_circuit(ghz_circuit(3)))
        session.circuits.load_file(qasm_path, "from_qasm")
        session.circuits.load_file(json_path, "from_json")
        assert session.circuits.get("from_qasm").count_ops() == {"h": 1, "cx": 2}
        assert session.circuits.get("from_json").count_ops() == {"h": 1, "cx": 2}
        with pytest.raises(QymeraError):
            session.circuits.load_file(tmp_path / "bogus.txt")

    def test_text_input_paths(self, session):
        session.circuits.load_text("H 0\nCNOT 0 1\n", "quil", "bell_quil")
        session.circuits.load_text(dumps_qasm(ghz_circuit(2)), "qasm", "bell_qasm")
        assert session.circuits.get("bell_quil").size() == 2
        with pytest.raises(QymeraError):
            session.circuits.load_text("H 0", "morse")

    def test_parameterized_family_binding(self, session):
        session.circuits.add_circuit(qaoa_maxcut_circuit(4, p=1), "qaoa")
        described = session.circuits.describe("qaoa")
        assert described["parameters"] == ["beta[0]", "gamma[0]"]
        bound_name = session.circuits.bind("qaoa", {"gamma[0]": 0.4, "beta[0]": 0.3})
        assert not session.circuits.get(bound_name).is_parameterized

    def test_unknown_circuit(self, session):
        with pytest.raises(QymeraError):
            session.circuits.get("missing")


class TestSimulationPanel:
    def test_translate_shows_sql(self, session):
        session.circuits.add_circuit(ghz_circuit(3), "ghz")
        translation = session.simulations.translate("ghz")
        assert "WITH T1 AS" in translation.cte_query()

    def test_run_and_run_all(self, session):
        session.circuits.add_circuit(ghz_circuit(3), "ghz")
        single = session.simulations.run("ghz", "sqlite")
        assert single.state.num_nonzero == 2
        everything = session.simulations.run_all("ghz", methods=["memdb", "statevector", "dd"])
        assert set(everything) == {"memdb", "statevector", "dd"}

    def test_unknown_method(self, session):
        session.circuits.add_circuit(ghz_circuit(2), "ghz")
        with pytest.raises(QymeraError):
            session.simulations.run("ghz", "quantum_annealer")

    def test_benchmark_entry_point(self, session):
        records = session.simulations.benchmark(["ghz"], sizes=[3], methods=["sqlite", "statevector"])
        assert len(records) == 2
        with pytest.raises(QymeraError):
            session.simulations.benchmark(["ghz"], sizes=[3], methods=["fpga"])

    def test_available_methods(self, session):
        methods = session.simulations.available_methods()
        assert {"sqlite", "memdb", "statevector", "sparse", "mps", "dd"} <= set(methods)

    def test_explain_shows_optimizer_plan(self, session):
        session.circuits.add_circuit(ghz_circuit(3), "ghz")
        plan = session.simulations.explain("ghz")
        assert "fused join-aggregate [cost" in plan
        assert "plan cache:" in plan
        analyzed = session.simulations.explain("ghz", analyze=True)
        assert "actual" in analyzed

    def test_engine_stats_exposed(self, session):
        session.circuits.add_circuit(ghz_circuit(3), "ghz")
        session.simulations.run("ghz", "memdb")
        stats = session.simulations.engine_stats()
        assert "plan_cache" in stats and "optimizer" in stats
        assert "hits" in stats["plan_cache"]
        assert stats["optimizer"]["enabled"] is True
        with pytest.raises(QymeraError):
            session.simulations.engine_stats("statevector")


class TestOutputPanel:
    def test_views_and_exports(self, session, tmp_path):
        session.circuits.add_circuit(ghz_circuit(3), "ghz")
        session.simulations.run("ghz", "sqlite")
        session.simulations.run("ghz", "statevector")

        assert "111" in session.output.state_table("ghz", "sqlite")
        assert "#" in session.output.probability_histogram("ghz", "sqlite")
        assert "mixed" in session.output.bloch_view("ghz", "sqlite", 0)
        assert session.output.entanglement("ghz", "sqlite", [0]) == pytest.approx(1.0)
        assert "sqlite" in session.output.performance_table("ghz")

        histogram_text = session.output.sample_histogram("ghz", "sqlite", shots=256)
        assert "000" in histogram_text or "111" in histogram_text

        csv_path = session.output.export_state_csv("ghz", "sqlite", tmp_path / "state.csv")
        assert csv_path.exists()
        payload = json.loads(session.output.export_result_json("ghz", "sqlite"))
        assert payload["method"] == "sqlite"

        records = session.simulations.benchmark(["ghz"], sizes=[3], methods=["sqlite", "statevector"])
        bench_path = session.output.export_benchmark_csv(records, tmp_path / "bench.csv")
        assert "sqlite" in bench_path.read_text()

    def test_missing_result(self, session):
        session.circuits.add_circuit(ghz_circuit(2), "ghz")
        with pytest.raises(QymeraError):
            session.output.state_table("ghz", "sqlite")


class TestQuickHelpers:
    def test_quick_run_and_final_state(self, session):
        result = session.quick_run(ghz_circuit(3), "memdb")
        assert result.method == "memdb"
        state = session.final_state(ghz_circuit(2), "sqlite")
        assert state.num_nonzero == 2
