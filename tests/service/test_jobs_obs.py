"""Observability tests for the job service: queue metrics, contention, merge."""

import threading

import pytest

from repro.circuits import ghz_circuit, qaoa_maxcut_circuit, ring_graph
from repro.obs import MetricsRegistry
from repro.service import EnginePool, JobService

_GRID = [{"gamma[0]": round(0.2 * k, 3), "beta[0]": 0.3} for k in range(1, 5)]


def _qaoa_template():
    return qaoa_maxcut_circuit(4, edges=ring_graph(4), p=1)


@pytest.fixture
def service():
    service = JobService(max_workers=2)
    yield service
    service.shutdown(wait=True)


class TestServiceMetrics:
    def test_lifecycle_counters_and_gauges(self, service):
        for _ in range(3):
            service.submit(circuit=ghz_circuit(3), method="memdb").result(timeout=30)
        snapshot = service.metrics.snapshot()
        assert snapshot["counters"]["jobs.submitted"] == 3
        assert snapshot["counters"]["jobs.done"] == 3
        # Everything finished: both level gauges are back to zero.
        assert snapshot["gauges"]["jobs.queue_depth"] == 0
        assert snapshot["gauges"]["jobs.running"] == 0

    def test_latency_histograms_populated(self, service):
        service.submit(circuit=ghz_circuit(3), method="memdb").result(timeout=30)
        snapshot = service.metrics.snapshot()
        assert snapshot["histograms"]["jobs.queue_wait_seconds"]["count"] == 1
        assert snapshot["histograms"]["jobs.thread_tier_seconds"]["count"] == 1
        assert snapshot["histograms"]["jobs.thread_tier_seconds"]["max"] > 0

    def test_error_jobs_counted(self, service):
        handle = service.submit(
            circuit=_qaoa_template(), method="memdb", params={"nonexistent": 1.0}
        )
        with pytest.raises(Exception):
            handle.result(timeout=30)
        snapshot = service.metrics.snapshot()
        assert snapshot["counters"]["jobs.error"] == 1
        assert snapshot["gauges"]["jobs.running"] == 0

    def test_cancelled_from_queue_counted_and_depth_restored(self):
        service = JobService(max_workers=1)
        try:
            release = threading.Event()
            original_grid = [{"gamma[0]": 0.1, "beta[0]": 0.2}]

            # Occupy the single worker so the next submit stays queued.
            blocker = service.submit(
                circuit=_qaoa_template(), method="memdb", param_grid=original_grid * 8
            )
            queued = service.submit(circuit=ghz_circuit(3), method="memdb")
            cancelled = queued.cancel()
            blocker.result(timeout=60)
            release.set()
            if cancelled:
                snapshot = service.metrics.snapshot()
                assert snapshot["counters"]["jobs.cancelled"] == 1
                assert snapshot["gauges"]["jobs.queue_depth"] == 0
        finally:
            service.shutdown(wait=True)

    def test_shared_registry_injection(self):
        registry = MetricsRegistry()
        service = JobService(max_workers=1, metrics=registry)
        try:
            service.submit(circuit=ghz_circuit(2), method="memdb").result(timeout=30)
            assert registry.counter("jobs.done").value == 1
        finally:
            service.shutdown(wait=True)

    def test_service_stats_include_metrics_snapshot(self, service):
        service.submit(circuit=ghz_circuit(2), method="memdb").result(timeout=30)
        stats = service.stats()
        assert "metrics" in stats
        assert stats["metrics"]["counters"]["jobs.done"] == 1


class TestEnginePoolContention:
    def test_first_acquire_is_not_contention(self):
        pool = EnginePool()
        key, instance = pool.acquire("statevector", {})
        pool.release(key, instance)
        assert pool.stats()["contended"] == 0

    def test_reuse_is_not_contention(self):
        pool = EnginePool()
        key, instance = pool.acquire("statevector", {})
        pool.release(key, instance)
        pool.acquire("statevector", {})
        stats = pool.stats()
        assert stats["reused"] == 1
        assert stats["contended"] == 0

    def test_concurrent_lease_of_seen_key_counts(self):
        pool = EnginePool()
        key, first = pool.acquire("statevector", {})
        # The key has leased before and its idle list is empty: contention.
        pool.acquire("statevector", {})
        assert pool.stats()["contended"] == 1
        pool.release(key, first)

    def test_distinct_options_are_distinct_keys(self):
        pool = EnginePool()
        pool.acquire("statevector", {})
        pool.acquire("statevector", {"prune_atol": 1e-9})
        assert pool.stats()["contended"] == 0


class TestProcessTierMerge:
    @pytest.fixture
    def process_service(self):
        service = JobService(max_workers=2, process_workers=2)
        yield service
        service.shutdown(wait=True)

    def test_worker_stats_merged_into_job_metadata(self, process_service):
        handle = process_service.submit(
            circuit=_qaoa_template(), method="memdb", param_grid=_GRID
        )
        results = handle.result(timeout=180)
        assert len(results) == len(_GRID)
        tier = handle.metadata.get("process_tier")
        assert tier is not None, "process-tier jobs must report worker stats"
        workers = tier["workers"]
        assert workers, "no worker snapshots were merged"
        assert sum(worker["points"] for worker in workers.values()) == len(_GRID)
        for worker in workers.values():
            assert worker["chunks"] >= 1
            engine = worker.get("engine")
            assert engine is not None
            # Worker engines report the unified schema.
            assert engine["schema_version"] == 1
            assert engine["plan_cache"]["size"] >= 1
        # Per-tier latency landed in the process histogram, not the thread one.
        snapshot = process_service.metrics.snapshot()
        assert snapshot["histograms"]["jobs.process_tier_seconds"]["count"] == 1

    def test_thread_tier_jobs_have_no_process_metadata(self, process_service):
        handle = process_service.submit(circuit=ghz_circuit(3), method="memdb")
        handle.result(timeout=30)
        assert "process_tier" not in handle.metadata
