"""Tests for the asyncio HTTP front end (all five endpoints + error paths)."""

import http.client
import json

import pytest

from repro.bench.loadgen import ServingClient
from repro.circuits import ghz_circuit, hardware_efficient_ansatz
from repro.io.json_io import circuit_to_dict
from repro.service import JobService
from repro.service.server import (
    AdmissionController,
    FairScheduler,
    JobJournal,
    JobServer,
    ServerThread,
    StructuralCostEstimator,
    TenantQuota,
    build_server,
    parse_job_payload,
)

_PARAMS = [f"theta[{i}]" for i in range(6)]
_GRID = [{name: round(0.1 * k, 3) for name in _PARAMS} for k in range(1, 4)]


def _ansatz():
    return hardware_efficient_ansatz(3, rotation_gates=("ry",))


def _raw_request(host, port, method, path, payload=None):
    """Like ServingClient._request but also returning the response headers."""
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        body = json.dumps(payload).encode() if isinstance(payload, dict) else payload
        connection.request(method, path, body=body)
        response = connection.getresponse()
        raw = response.read()
        document = json.loads(raw.decode()) if raw else {}
        return response.status, dict(response.getheaders()), document
    finally:
        connection.close()


@pytest.fixture
def plain_server():
    service = JobService(max_workers=2)
    with ServerThread(JobServer(service)) as (host, port):
        yield ServingClient(host, port), service
    service.shutdown(wait=True)


class TestEndpoints:
    def test_submit_poll_results_round_trip(self, plain_server):
        client, _service = plain_server
        status, body = client.submit(ghz_circuit(3), method="memdb", tenant="alice", tag="t1")
        assert status == 202
        assert body["tenant"] == "alice"
        assert body["status"] in ("queued", "running", "done")  # races the worker
        final = client.wait(body["job_id"])
        assert final["status"] == "done"
        assert final["tag"] == "t1"
        assert final["completed_points"] == final["total_points"] == 1
        # ?rows=1 inlines the full result documents.
        status, with_rows = client._request("GET", f"/v1/jobs/{body['job_id']}?rows=1")
        assert status == 200
        (result,) = with_rows["results"]
        assert result["num_qubits"] == 3

    def test_grid_submit_and_stream(self, plain_server):
        client, _service = plain_server
        status, body = client.submit(_ansatz(), method="memdb", param_grid=_GRID)
        assert status == 202
        records = client.stream(body["job_id"])
        # One record per point plus the trailing status line.
        assert len(records) == len(_GRID) + 1
        assert records[-1] == {"job_id": body["job_id"], "status": "done"}
        for point, record in zip(_GRID, records):
            assert record["metadata"]["parameter_binding"] == point
            assert "rows" not in record  # stripped without ?rows=1

    def test_cancel_endpoint(self, plain_server):
        client, _service = plain_server
        status, body = client.submit(_ansatz(), method="memdb", param_grid=_GRID * 4)
        assert status == 202
        status, cancelled = client.cancel(body["job_id"])
        assert status == 200 and cancelled["job_id"] == body["job_id"]
        final = client.wait(body["job_id"])
        assert final["status"] in ("cancelled", "done")

    def test_stats_endpoint_schema(self, plain_server):
        client, _service = plain_server
        stats = client.stats()
        assert stats["schema_version"] == 1
        assert stats["requests_served"] >= 1
        assert "jobs" in stats["service"] and "pool" in stats["service"]

    def test_unknown_job_is_404_without_journal(self, plain_server):
        client, _service = plain_server
        status, body = client.poll(12345)
        assert status == 404
        assert "12345" in body["error"]


class TestErrorPaths:
    def test_bad_json_body_is_400(self, plain_server):
        client, _service = plain_server
        status, headers, body = _raw_request(
            client.host, client.port, "POST", "/v1/jobs", b"{not json"
        )
        assert status == 400 and "invalid JSON" in body["error"]

    def test_missing_circuit_is_400(self, plain_server):
        client, _service = plain_server
        status, _headers, body = _raw_request(
            client.host, client.port, "POST", "/v1/jobs", {"method": "memdb"}
        )
        assert status == 400 and "circuit" in body["error"]

    def test_non_integer_job_id_is_400(self, plain_server):
        client, _service = plain_server
        status, _headers, body = _raw_request(client.host, client.port, "GET", "/v1/jobs/abc")
        assert status == 400

    def test_unknown_path_is_404_and_wrong_method_405(self, plain_server):
        client, _service = plain_server
        status, _headers, _body = _raw_request(client.host, client.port, "GET", "/v2/what")
        assert status == 404
        status, _headers, _body = _raw_request(client.host, client.port, "PUT", "/v1/jobs/1")
        assert status == 405

    def test_parse_job_payload_validates_shapes(self):
        doc = circuit_to_dict(ghz_circuit(2))
        with pytest.raises(Exception, match="params"):
            parse_job_payload({"circuit": doc, "params": [1, 2]})
        with pytest.raises(Exception, match="param_grid"):
            parse_job_payload({"circuit": doc, "param_grid": {"a": 1}})
        with pytest.raises(Exception, match="tenant"):
            parse_job_payload({"circuit": doc, "tenant": ""})
        request = parse_job_payload({"circuit": doc})
        assert request.method == "memdb" and request.tenant == "default"


class TestQuotaAndAdmissionOverHttp:
    def test_rate_quota_is_429_with_retry_after_header(self):
        scheduler = FairScheduler()
        scheduler.configure("limited", TenantQuota(rate=0.001, burst=1.0))
        service = JobService(max_workers=1, scheduler=scheduler)
        try:
            with ServerThread(JobServer(service)) as (host, port):
                client = ServingClient(host, port)
                status, _body = client.submit(ghz_circuit(2), tenant="limited")
                assert status == 202
                raw = json.dumps(
                    {"circuit": circuit_to_dict(ghz_circuit(2)), "tenant": "limited"}
                ).encode()
                status, headers, body = _raw_request(host, port, "POST", "/v1/jobs", raw)
                assert status == 429
                assert body["reason"] == "rate"
                assert float(headers["Retry-After"]) > 0
        finally:
            service.shutdown(wait=True)

    def test_admission_ceiling_is_429(self):
        scheduler = FairScheduler()
        admission = AdmissionController(
            max_queued_cost=1.0, estimator=StructuralCostEstimator()
        )
        service = JobService(max_workers=1, scheduler=scheduler, admission=admission)
        try:
            with ServerThread(JobServer(service)) as (host, port):
                # A 3-qubit circuit prices above the 1-unit ceiling outright.
                status, body = ServingClient(host, port).submit(ghz_circuit(3))
                assert status == 429
                assert body["reason"] == "cost ceiling"
                assert body["retry_after"] > 0
        finally:
            service.shutdown(wait=True)


class TestJournalOverHttp:
    def test_purged_job_answers_410_from_the_journal(self, tmp_path):
        service = JobService(max_workers=1, journal=JobJournal(tmp_path / "j.journal"))
        try:
            with ServerThread(JobServer(service)) as (host, port):
                client = ServingClient(host, port)
                _status, body = client.submit(ghz_circuit(3), method="statevector")
                final = client.wait(body["job_id"])
                assert final["status"] == "done"
                assert service.purge() == 1
                status, gone = client.poll(body["job_id"])
                assert status == 410
                assert gone["status"] == "done" and gone["source"] == "journal"
                assert gone["completed_points"] == 1
        finally:
            service.shutdown(wait=True)

    def test_build_server_replays_incomplete_jobs_on_boot(self, tmp_path):
        journal_path = tmp_path / "serve.journal"
        # First incarnation: journal a mid-sweep kill by hand.
        journal = JobJournal(journal_path)
        from repro.service import JobRequest

        journal.record_submitted(
            1, JobRequest(circuit=_ansatz(), method="memdb", param_grid=_GRID)
        )
        journal.record_started(1)
        journal.record_point(1, 0)
        journal.close()
        # Second incarnation: build_server replays before accepting traffic.
        server = build_server(journal_path=journal_path, max_workers=2, shards=2)
        try:
            with ServerThread(server) as (host, port):
                client = ServingClient(host, port)
                resumed_id = server.service.jobs()[0].job_id
                final = client.wait(resumed_id)
                assert final["status"] == "done"
                assert final["total_points"] == len(_GRID) - 1  # suffix only
                stats = client.stats()["service"]
                assert stats["journal"]["incomplete"] == 0
                assert stats["scheduler"]["policy"] == "deficit-round-robin"
                assert stats["admission"]["estimator"]["estimator"] == "memdb-cost-model"
        finally:
            server.service.shutdown(wait=True)
