"""Tests for the job service (submit / poll / result / stream + engine pool)."""

import pytest

from repro.circuits import ghz_circuit, qaoa_maxcut_circuit, ring_graph
from repro.errors import QymeraError
from repro.service import EnginePool, JobRequest, JobService, options_fingerprint

_GRID = [{"gamma[0]": round(0.2 * k, 3), "beta[0]": 0.3} for k in range(1, 5)]


def _qaoa_template():
    return qaoa_maxcut_circuit(4, edges=ring_graph(4), p=1)


@pytest.fixture
def service():
    service = JobService(max_workers=2)
    yield service
    service.shutdown(wait=True)


class TestJobLifecycle:
    def test_single_job_result(self, service):
        handle = service.submit(circuit=ghz_circuit(3), method="memdb")
        result = handle.result(timeout=30)
        assert result.state.num_nonzero == 2
        snapshot = handle.poll()
        assert snapshot["status"] == "done"
        assert snapshot["completed_points"] == snapshot["total_points"] == 1

    def test_request_object_and_tag(self, service):
        request = JobRequest(circuit=ghz_circuit(2), method="statevector", tag="bell")
        handle = service.submit(request)
        handle.result(timeout=30)
        assert handle.poll()["tag"] == "bell"
        assert service.poll(handle.job_id)["status"] == "done"

    def test_grid_job_results_in_submission_order(self, service):
        handle = service.submit(circuit=_qaoa_template(), method="memdb", param_grid=_GRID)
        results = handle.result(timeout=60)
        assert len(results) == len(_GRID)
        for point, result in zip(_GRID, results):
            assert result.metadata["parameter_binding"] == point

    def test_stream_yields_every_point(self, service):
        handle = service.submit(circuit=_qaoa_template(), method="sparse", param_grid=_GRID)
        streamed = list(handle.stream(timeout=60))
        assert len(streamed) == len(_GRID)
        assert handle.status() == "done"

    def test_params_job_binds_the_template(self, service):
        handle = service.submit(
            circuit=_qaoa_template(), method="statevector", params=_GRID[0]
        )
        result = handle.result(timeout=30)
        assert result.metadata["parameter_binding"] == _GRID[0]

    def test_error_job_reraises_on_result(self, service):
        handle = service.submit(circuit=ghz_circuit(2), method="does_not_exist")
        with pytest.raises(QymeraError, match="unknown simulation method"):
            handle.result(timeout=30)
        assert handle.poll()["status"] == "error"

    def test_non_qymera_errors_still_terminate_the_job(self, service):
        """Regression: a TypeError in the worker used to leave the job 'running'."""
        handle = service.submit(circuit=ghz_circuit(2), method="memdb", options={"bogus_option": 1})
        with pytest.raises(TypeError):
            handle.result(timeout=30)
        assert handle.poll()["status"] == "error"
        assert "bogus_option" in handle.poll()["error"]

    def test_unbound_parameter_job_fails_cleanly(self, service):
        handle = service.submit(circuit=_qaoa_template(), method="memdb")
        with pytest.raises(QymeraError, match="unbound parameters"):
            handle.result(timeout=30)

    def test_result_lookup_by_id(self, service):
        handle = service.submit(circuit=ghz_circuit(2), method="sqlite")
        assert service.result(handle.job_id, timeout=30).state.num_nonzero == 2
        with pytest.raises(QymeraError, match="no job with id"):
            service.job(99999)

    def test_params_and_grid_are_mutually_exclusive(self):
        with pytest.raises(QymeraError, match="not both"):
            JobRequest(circuit=ghz_circuit(2), params={}, param_grid=[{}])

    def test_shutdown_rejects_new_work(self):
        service = JobService(max_workers=1)
        service.submit(circuit=ghz_circuit(2), method="statevector").result(timeout=30)
        service.shutdown(wait=True)
        with pytest.raises(QymeraError, match="shut down"):
            service.submit(circuit=ghz_circuit(2), method="statevector")


class TestCancellation:
    def test_queued_job_can_be_cancelled(self):
        service = JobService(max_workers=1)
        try:
            # Occupy the single worker with a sweep, then cancel a queued job.
            first = service.submit(
                circuit=_qaoa_template(), method="memdb", param_grid=_GRID * 4
            )
            queued = service.submit(circuit=ghz_circuit(2), method="statevector")
            assert queued.cancel() is True
            first.result(timeout=60)
            with pytest.raises(QymeraError):
                queued.result(timeout=30)
            assert queued.status() == "cancelled"
        finally:
            service.shutdown(wait=True)

    def test_terminal_job_cannot_be_cancelled(self):
        service = JobService(max_workers=1)
        try:
            handle = service.submit(circuit=ghz_circuit(2), method="statevector")
            handle.result(timeout=30)
            assert handle.cancel() is False
        finally:
            service.shutdown(wait=True)

    def test_cancel_return_matches_outcome(self):
        """cancel() returns True only when the job is guaranteed to stop."""
        service = JobService(max_workers=1)
        try:
            handle = service.submit(circuit=ghz_circuit(2), method="statevector")
            guaranteed = handle.cancel()
            try:
                handle.result(timeout=30)
                completed = True
            except QymeraError:
                completed = False
            # A True return promises the job produced nothing.
            assert not (guaranteed and completed)
            assert handle.status() == ("done" if completed else "cancelled")
        finally:
            service.shutdown(wait=True)


class TestConcurrency:
    def test_parallel_memdb_jobs_share_the_plan_cache_safely(self):
        """Concurrent workers hammer the shared plan cache; results stay exact."""
        from repro.output.analysis import states_agree
        from repro.simulators import StatevectorSimulator

        service = JobService(max_workers=4)
        try:
            template = _qaoa_template()
            handles = [
                service.submit(circuit=template, method="memdb", param_grid=_GRID)
                for _ in range(6)
            ]
            reference = StatevectorSimulator().compile(template).execute_batch(_GRID)
            for handle in handles:
                results = handle.result(timeout=120)
                for expected, actual in zip(reference, results):
                    assert states_agree(
                        expected.state, actual.state, atol=1e-9, up_to_global_phase=False
                    )
            assert service.stats()["jobs"] == {"done": 6}
        finally:
            service.shutdown(wait=True)


class TestEnginePool:
    def test_sequential_jobs_reuse_the_engine(self):
        service = JobService(max_workers=1)
        try:
            for _ in range(3):
                service.submit(circuit=ghz_circuit(3), method="memdb").result(timeout=30)
            stats = service.stats()
            assert stats["pool"]["created"] == 1
            assert stats["pool"]["reused"] == 2
            assert stats["jobs"] == {"done": 3}
        finally:
            service.shutdown(wait=True)

    def test_distinct_options_get_distinct_engines(self):
        pool = EnginePool()
        key_a, engine_a = pool.acquire("memdb", {"fuse": True})
        key_b, engine_b = pool.acquire("memdb", {"fuse": False})
        assert key_a != key_b
        assert engine_a is not engine_b
        pool.release(key_a, engine_a)
        key_c, engine_c = pool.acquire("memdb", {"fuse": True})
        assert key_c == key_a and engine_c is engine_a

    def test_release_caps_idle_instances(self):
        pool = EnginePool(max_idle_per_key=1)
        key, first = pool.acquire("statevector", {})
        _key, second = pool.acquire("statevector", {})
        pool.release(key, first)
        pool.release(key, second)
        assert pool.stats()["idle"]["statevector"] == 1

    def test_options_fingerprint_handles_unhashable_values(self):
        fingerprint = options_fingerprint({"budget": [1, 2, 3], "fuse": True})
        assert isinstance(hash(fingerprint), int)
        assert fingerprint == options_fingerprint({"fuse": True, "budget": [1, 2, 3]})

    def test_options_fingerprint_keeps_values_alive(self):
        """The fingerprint must hold the option objects, so a GC'd option can
        never alias a new object recycled onto the same address."""
        value = [1, 2, 3]
        fingerprint = options_fingerprint({"budget": value})
        (_key, token) = fingerprint[0]
        assert token.value is value

    def test_distinct_stateful_options_never_alias(self):
        from repro.backends.memdb.engine import PlanCache

        first = options_fingerprint({"plan_cache": PlanCache()})
        second = options_fingerprint({"plan_cache": PlanCache()})
        assert first != second


class TestRetention:
    def test_terminal_jobs_are_evicted_beyond_the_bound(self):
        service = JobService(max_workers=1, max_retained_jobs=2)
        try:
            handles = [
                service.submit(circuit=ghz_circuit(2), method="statevector") for _ in range(4)
            ]
            for handle in handles:
                try:
                    handle.result(timeout=30)
                except QymeraError:
                    pass
            service.submit(circuit=ghz_circuit(2), method="statevector").result(timeout=30)
            assert len(service.jobs()) <= 2
        finally:
            service.shutdown(wait=True)

    def test_purge_drops_finished_jobs(self):
        service = JobService(max_workers=1)
        try:
            handle = service.submit(circuit=ghz_circuit(2), method="statevector")
            handle.result(timeout=30)
            assert service.purge() == 1
            assert service.jobs() == []
            with pytest.raises(QymeraError, match="no job with id"):
                service.poll(handle.job_id)
        finally:
            service.shutdown(wait=True)


# ---------------------------------------------------------------------------
# Process-backed batch tier (PR 5)
# ---------------------------------------------------------------------------


class TestProcessBackedTier:
    @pytest.fixture
    def process_service(self):
        service = JobService(max_workers=2, process_workers=2)
        yield service
        service.shutdown(wait=True)

    def test_grid_results_match_thread_tier_in_order(self, process_service, service):
        template = _qaoa_template()
        expected = service.submit(
            circuit=template, method="memdb", param_grid=_GRID
        ).result(timeout=60)
        handle = process_service.submit(circuit=template, method="memdb", param_grid=_GRID)
        results = handle.result(timeout=180)
        assert len(results) == len(expected) == len(_GRID)
        for actual, reference, point in zip(results, expected, _GRID):
            assert actual.metadata["parameter_binding"] == point
            assert actual.state.num_nonzero == reference.state.num_nonzero
        stats = process_service.stats()["process_tier"]
        assert stats["enabled"] and stats["points"] == len(_GRID) and stats["fallbacks"] == 0

    def test_streaming_preserves_grid_order(self, process_service):
        handle = process_service.submit(
            circuit=_qaoa_template(), method="memdb", param_grid=_GRID
        )
        bindings = [
            result.metadata["parameter_binding"]
            for result in process_service.stream(handle.job_id, timeout=180)
        ]
        assert bindings == _GRID

    def test_single_point_jobs_stay_on_threads(self, process_service):
        handle = process_service.submit(circuit=ghz_circuit(3), method="memdb")
        handle.result(timeout=60)
        assert process_service.stats()["process_tier"]["points"] == 0

    def test_unpicklable_options_fall_back_to_threads(self, process_service):
        import threading

        # A lock in the options cannot cross the process boundary: the job
        # must be *routed* through the thread tier (counted as a fallback)
        # without wedging the service.  The job itself then errors — a Lock
        # is not a valid option value — which is fine; the routing is what
        # is under test.
        fallback = process_service.submit(
            circuit=_qaoa_template(),
            method="memdb",
            options={"max_state_bytes": threading.Lock()},
            param_grid=_GRID[:1],
        )
        with pytest.raises(Exception):
            fallback.result(timeout=60)
        assert process_service.stats()["process_tier"]["fallbacks"] >= 1
        # The service keeps serving process-tier jobs afterwards.
        ok = process_service.submit(
            circuit=_qaoa_template(), method="memdb", param_grid=_GRID[:1]
        )
        assert len(ok.result(timeout=180)) == 1

    def test_worker_error_lands_job_in_error_state(self, process_service):
        # Unknown parameter names raise inside the worker process.
        handle = process_service.submit(
            circuit=_qaoa_template(),
            method="memdb",
            param_grid=[{"nonsense": 1.0}],
        )
        with pytest.raises(Exception):
            handle.result(timeout=180)
        assert handle.status() == "error"

    def test_reuse_across_jobs_uses_warm_workers(self, process_service):
        template = _qaoa_template()
        first = process_service.submit(circuit=template, method="memdb", param_grid=_GRID)
        first.result(timeout=180)
        second = process_service.submit(circuit=template, method="memdb", param_grid=_GRID)
        assert len(second.result(timeout=180)) == len(_GRID)
        stats = process_service.stats()["process_tier"]
        assert stats["points"] == 2 * len(_GRID)

    def test_shutdown_closes_process_pool(self):
        service = JobService(max_workers=1, process_workers=1)
        handle = service.submit(
            circuit=_qaoa_template(), method="memdb", param_grid=_GRID[:2]
        )
        handle.result(timeout=180)
        service.shutdown(wait=True)
        with pytest.raises(QymeraError):
            service.submit(circuit=ghz_circuit(2), method="memdb")

    def test_invalid_configuration_rejected(self):
        with pytest.raises(QymeraError):
            JobService(process_workers=0)
        with pytest.raises(QymeraError):
            JobService(process_workers=2, process_chunk_points=0)

    def test_explicit_chunk_size_controls_fanout(self):
        service = JobService(max_workers=1, process_workers=2, process_chunk_points=1)
        try:
            handle = service.submit(
                circuit=_qaoa_template(), method="memdb", param_grid=_GRID
            )
            assert len(handle.result(timeout=180)) == len(_GRID)
            assert service.stats()["process_tier"]["chunks"] == len(_GRID)
        finally:
            service.shutdown(wait=True)
