"""Graceful-shutdown and engine-pool lease tests for the serving tier.

The serving contract under shutdown: queued jobs are cancelled, running
jobs get the drain deadline then a cancel request, the journal ends with a
terminal record for every submitted id, and EnginePool leases never leak —
a job racing the close always gets to release (the release lands in the
discard path), and acquire-after-close fails loudly instead of minting
instances nobody will reap.
"""

import threading
import time

import pytest

from repro.circuits import ghz_circuit, hardware_efficient_ansatz
from repro.errors import QymeraError
from repro.service import EnginePool, JobService
from repro.service.server import FairScheduler, JobJournal, ShardedEnginePool

_PARAMS = [f"theta[{i}]" for i in range(6)]
_LONG_GRID = [{name: round(0.02 * k, 3) for name in _PARAMS} for k in range(1, 41)]


def _ansatz():
    return hardware_efficient_ansatz(3, rotation_gates=("ry",))


class TestEnginePoolClose:
    def test_release_after_close_discards_instead_of_pooling(self):
        pool = EnginePool()
        key, instance = pool.acquire("statevector", {})
        pool.close()
        pool.release(key, instance)  # must not raise, must not resurrect idle
        stats = pool.stats()
        assert stats["closed"] is True
        assert stats["idle"] == {} or not any(stats["idle"].values())
        assert stats["discarded_on_close"] == 1

    def test_acquire_after_close_raises(self):
        pool = EnginePool()
        pool.close()
        with pytest.raises(QymeraError):
            pool.acquire("statevector", {})

    def test_close_drops_idle_and_is_idempotent(self):
        pool = EnginePool()
        key, instance = pool.acquire("statevector", {})
        pool.release(key, instance)
        pool.close()
        pool.close()
        assert pool.stats()["discarded_on_close"] == 1

    def test_concurrent_acquire_release_racing_close_never_leaks(self):
        """Stress the lease contract: N threads lease/release while the pool
        closes mid-flight.  Every lease must end released-or-discarded and
        no thread may die on anything but the documented closed error."""
        pool = EnginePool(max_idle_per_key=2)
        stop = threading.Event()
        failures: list[BaseException] = []
        leases = {"taken": 0, "returned": 0}
        lock = threading.Lock()

        def worker():
            while not stop.is_set():
                try:
                    key, instance = pool.acquire("statevector", {})
                except QymeraError:
                    return  # pool closed: the only acceptable refusal
                except BaseException as exc:  # noqa: BLE001 — recorded for the assert
                    failures.append(exc)
                    return
                with lock:
                    leases["taken"] += 1
                pool.release(key, instance)
                with lock:
                    leases["returned"] += 1

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)
        pool.close()
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not failures
        assert all(not thread.is_alive() for thread in threads)
        # Every taken lease came back (released or discarded-on-close).
        assert leases["taken"] == leases["returned"]
        assert not any(pool.stats()["idle"].values())

    def test_sharded_pool_close_covers_every_shard(self):
        pool = ShardedEnginePool(shards=3)
        lease_key, instance = pool.acquire("statevector", {})
        pool.close()
        pool.release(lease_key, instance)  # discard path, no raise
        with pytest.raises(QymeraError):
            pool.acquire("statevector", {})
        stats = pool.stats()
        assert stats["closed"] is True
        assert stats["discarded_on_close"] == 1


class TestGracefulShutdown:
    def test_shutdown_cancels_queued_and_journals_everything(self, tmp_path):
        scheduler = FairScheduler()
        journal_path = tmp_path / "j.journal"
        service = JobService(
            max_workers=1, scheduler=scheduler, journal=JobJournal(journal_path)
        )
        # One long sweep occupies the worker; the rest are queued.
        handles = [
            service.submit(circuit=_ansatz(), method="memdb", param_grid=_LONG_GRID)
        ]
        handles.extend(
            service.submit(circuit=ghz_circuit(2), method="statevector")
            for _ in range(5)
        )
        service.shutdown(wait=True, drain_timeout=0.5)
        for handle in handles:
            assert handle.status() in ("done", "cancelled", "error")
        # Zero dropped records: every submitted id reached a terminal record.
        journal = JobJournal(journal_path)
        assert len(journal.entries()) == len(handles)
        assert journal.incomplete() == []

    def test_drain_deadline_bounds_shutdown_of_a_running_sweep(self):
        service = JobService(max_workers=1, scheduler=FairScheduler())
        handle = service.submit(circuit=_ansatz(), method="memdb", param_grid=_LONG_GRID)
        # Let it start, then shut down with a short drain window.
        deadline = time.monotonic() + 10.0
        while handle.status() == "queued" and time.monotonic() < deadline:
            time.sleep(0.005)
        started = time.monotonic()
        service.shutdown(wait=True, drain_timeout=0.25)
        elapsed = time.monotonic() - started
        assert elapsed < 8.0, f"shutdown took {elapsed:.1f}s against a 0.25s drain deadline"
        assert handle.status() in ("cancelled", "done")
        if handle.status() == "cancelled":
            assert handle.poll()["completed_points"] < len(_LONG_GRID)

    def test_submits_racing_shutdown_never_strand_a_job(self, tmp_path):
        journal_path = tmp_path / "j.journal"
        service = JobService(
            max_workers=2, scheduler=FairScheduler(), journal=JobJournal(journal_path)
        )
        accepted: list = []
        lock = threading.Lock()

        def submitter():
            for _ in range(20):
                try:
                    handle = service.submit(circuit=ghz_circuit(2), method="statevector")
                except QymeraError:
                    return  # service closed: the documented refusal
                with lock:
                    accepted.append(handle)

        threads = [threading.Thread(target=submitter) for _ in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)
        service.shutdown(wait=True, drain_timeout=5.0)
        for thread in threads:
            thread.join(timeout=10.0)
        assert all(not thread.is_alive() for thread in threads)
        # Every accepted handle reached a terminal state...
        for handle in accepted:
            assert handle.status() in ("done", "cancelled", "error")
        # ...and the journal agrees (no stranded incomplete entries).
        journal = JobJournal(journal_path)
        assert journal.incomplete() == []

    def test_shutdown_closes_an_owned_pool(self):
        service = JobService(max_workers=1)
        handle = service.submit(circuit=ghz_circuit(2), method="statevector")
        handle.result(timeout=30)
        pool = service.pool
        service.shutdown(wait=True)
        assert pool.closed is True

    def test_shutdown_leaves_a_shared_pool_open(self):
        shared = EnginePool()
        service = JobService(max_workers=1, pool=shared)
        handle = service.submit(circuit=ghz_circuit(2), method="statevector")
        handle.result(timeout=30)
        service.shutdown(wait=True)
        assert shared.closed is False
        shared.close()
