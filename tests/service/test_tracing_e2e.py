"""End-to-end request tracing over real HTTP: one connected tree per request.

These tests drive the full serving stack — asyncio front end, admission,
fair scheduler, worker threads, and (in the process-tier case) spawned
worker processes — and assert that every stage of a request lands in a
single assembled span tree with consistent lineage and timings.
"""

import http.client
import json
import os
import re
import time

import pytest

from repro.bench.loadgen import ServingClient
from repro.circuits import ghz_circuit, hardware_efficient_ansatz
from repro.io.json_io import circuit_to_dict
from repro.obs import MetricsRegistry, RequestTraceStore, Tracer
from repro.obs.tracing import TraceContext
from repro.service import JobRequest, JobService
from repro.service.server import JobJournal, ServerThread, TenantQuota, build_server

_PARAMS = [f"theta[{i}]" for i in range(6)]
_GRID = [{name: round(0.1 * k, 3) for name in _PARAMS} for k in range(1, 5)]

#: Slack for child-within-parent timing checks.  Spans are timestamped at
#: different call sites (perf_counter reads straddle lock acquisitions), so
#: exact containment is too strict by a few microseconds.
_EPS_S = 1e-3


def _walk(node):
    yield node
    for child in node.get("children", []):
        yield from _walk(child)


def _assert_monotone(node, pid=None):
    """Child spans nest within their parent's window, per process.

    ``perf_counter`` is not comparable across processes, so the check
    recurses only while the worker pid stays the same; a worker-tagged
    subtree restarts the check against its own clock.
    """
    node_pid = node.get("attrs", {}).get("worker_pid", pid)
    start = node["start_s"]
    end = start + node["duration_s"]
    for child in node.get("children", []):
        child_pid = child.get("attrs", {}).get("worker_pid", node_pid)
        if child_pid == node_pid:
            assert child["start_s"] >= start - _EPS_S, (node["name"], child["name"])
            assert (
                child["start_s"] + child["duration_s"] <= end + _EPS_S
            ), (node["name"], child["name"])
        _assert_monotone(child, pid=child_pid)


def _raw_request(host, port, method, path, payload=None, headers=None):
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        body = json.dumps(payload).encode() if isinstance(payload, dict) else payload
        connection.request(method, path, body=body, headers=headers or {})
        response = connection.getresponse()
        raw = response.read()
        document = json.loads(raw.decode()) if raw else {}
        return response.status, dict(response.getheaders()), document
    finally:
        connection.close()


def _submit_payload(circuit, tenant="acme"):
    return {"circuit": circuit_to_dict(circuit), "method": "memdb", "tenant": tenant}


@pytest.fixture
def traced_server():
    server = build_server(
        max_workers=2,
        tracing=True,
        default_quota=TenantQuota(sample_rate=1.0),
        slow_threshold_s=60.0,
    )
    with ServerThread(server) as (host, port):
        yield ServingClient(host, port), server.service, (host, port)
    server.service.shutdown(wait=True)


class TestThreadTierTracing:
    def test_request_assembles_into_one_connected_tree(self, traced_server):
        client, service, _addr = traced_server
        status, body = client.submit(ghz_circuit(3), method="memdb", tenant="acme")
        assert status == 202
        assert re.fullmatch(r"[0-9a-f]{32}", body["trace_id"])
        client.wait(body["job_id"])

        store = service.tracer.request_store
        assembled = store.for_job(body["job_id"])
        assert assembled is not None
        assert assembled["trace_id"] == body["trace_id"]
        assert assembled["status"] == "done"
        assert assembled["partial"] is False, "trace has disconnected spans"

        root = assembled["root"]
        assert root["name"] == "request"
        names = [span["name"] for span in _walk(root)]
        # Every serving stage present, ingress through engine execution.
        for stage in ("request", "ingress", "admission", "queue_wait", "job"):
            assert stage in names, f"missing {stage} span in {names}"
        (job_span,) = [span for span in _walk(root) if span["name"] == "job"]
        assert job_span["children"], "job span recorded no engine work"
        _assert_monotone(root)
        # Connected tree: every recorded span is reachable from the root.
        assert len(list(_walk(root))) == len(names)

    def test_traceparent_header_joins_the_upstream_trace(self, traced_server):
        client, service, (host, port) = traced_server
        upstream_trace = "ab" * 16
        upstream_span = "cd" * 8
        header = f"00-{upstream_trace}-{upstream_span}-01"
        status, headers, body = _raw_request(
            host, port, "POST", "/v1/jobs",
            payload=_submit_payload(ghz_circuit(2)),
            headers={"traceparent": header, "Content-Type": "application/json"},
        )
        assert status == 202
        assert body["trace_id"] == upstream_trace
        # The response propagates our context onward: same trace id, a span
        # id minted here (not the upstream one we sent).
        echoed = headers.get("traceparent", "")
        assert echoed.startswith(f"00-{upstream_trace}-")
        assert upstream_span not in echoed
        client.wait(body["job_id"])
        assembled = service.tracer.request_store.for_job(body["job_id"])
        assert assembled["trace_id"] == upstream_trace
        assert assembled["root"]["parent_span_id"] == upstream_span

    def test_unsampled_traceparent_discards_after_success(self, traced_server):
        client, service, (host, port) = traced_server
        header = f"00-{'ef' * 16}-{'12' * 8}-00"  # flags 00: unsampled upstream
        status, _headers, body = _raw_request(
            host, port, "POST", "/v1/jobs",
            payload=_submit_payload(ghz_circuit(2)),
            headers={"traceparent": header, "Content-Type": "application/json"},
        )
        assert status == 202
        client.wait(body["job_id"])
        assert service.tracer.request_store.for_job(body["job_id"]) is None


class TestProcessTierTracing:
    def test_worker_process_spans_reassemble_under_the_job(self):
        server = build_server(
            max_workers=2,
            process_workers=2,
            tracing=True,
            default_quota=TenantQuota(sample_rate=1.0),
            slow_threshold_s=60.0,
        )
        circuit = hardware_efficient_ansatz(3, rotation_gates=("ry",))
        try:
            with ServerThread(server) as (host, port):
                client = ServingClient(host, port)
                status, body = client.submit(
                    circuit, method="memdb", tenant="acme", param_grid=_GRID
                )
                assert status == 202
                final = client.wait(body["job_id"], timeout=120.0)
                assert final["status"] == "done"
                status, assembled = client.trace(body["job_id"])
            assert status == 200
            assert assembled["partial"] is False
            root = assembled["root"]
            chunks = [span for span in _walk(root) if span["name"] == "chunk"]
            assert chunks, "process-tier job recorded no worker chunk spans"
            main_pid = os.getpid()
            for chunk in chunks:
                # Chunk spans come from spawned workers, tagged with the
                # foreign pid whose clock their timestamps belong to.
                assert chunk["attrs"]["worker_pid"] != main_pid
                assert chunk["children"], "chunk span recorded no engine work"
            (job_span,) = [span for span in _walk(root) if span["name"] == "job"]
            job_ids = {span.get("span_id") for span in _walk(job_span)}
            for chunk in chunks:
                assert chunk["span_id"] in job_ids, "chunk not parented under job"
            _assert_monotone(root)
            stats_tier = server.service.stats()["process_tier"]
            assert stats_tier["traces_dropped"] == 0
        finally:
            server.service.shutdown(wait=True)


class TestJournalReplayLineage:
    def test_replayed_job_keeps_its_original_trace_id(self, tmp_path):
        path = tmp_path / "jobs.journal"
        original = TraceContext.generate(sampled=True)
        request = JobRequest(circuit=ghz_circuit(2), method="memdb", trace=original)
        # A journal with one submitted-but-never-finished job, as a crashed
        # service would leave behind.
        journal = JobJournal(path)
        journal.record_submitted(1, request, trace_id=original.trace_id)
        journal.close()

        store = RequestTraceStore(capacity=64, slow_threshold_s=60.0)
        service = JobService(
            max_workers=1,
            journal=JobJournal(path),
            metrics=MetricsRegistry(),
            tracer=Tracer(registry=MetricsRegistry(), request_store=store),
        )
        try:
            (handle,) = service.replay_journal()
            handle.result(timeout=60)
            assert handle.request.trace.trace_id == original.trace_id
            # result() wakes on the status flip; the seal runs just after
            # it on the worker thread, so poll briefly for the sealed entry.
            deadline = time.monotonic() + 10.0
            while True:
                assembled = store.for_job(handle.job_id)
                if assembled is not None and assembled["status"] != "open":
                    break
                assert time.monotonic() < deadline, "trace never sealed"
                time.sleep(0.01)
            assert assembled["trace_id"] == original.trace_id
            assert assembled["status"] == "done"
        finally:
            service.shutdown(wait=True)


class TestTelemetrySurface:
    def test_internal_error_returns_json_500_with_trace_id(self, traced_server):
        _client, service, (host, port) = traced_server

        def explode():
            raise RuntimeError("boom")

        service.stats = explode
        status, _headers, body = _raw_request(host, port, "GET", "/v1/stats")
        assert status == 500
        assert "boom" in body["error"]
        assert re.fullmatch(r"[0-9a-f]{32}", body["trace_id"])
        snapshot = service.metrics.snapshot()
        assert snapshot["counters"]["http.errors_total"] >= 1
        assert snapshot["counters"]["http.requests_total"] >= 1

    def test_metrics_exemplar_resolves_to_a_retained_trace(self, traced_server):
        client, _service, _addr = traced_server
        for _ in range(3):
            status, body = client.submit(ghz_circuit(3), method="memdb", tenant="acme")
            assert status == 202
            client.wait(body["job_id"])
        text = client.metrics_text()
        assert text.endswith("\n")
        for line in text.splitlines():
            assert line.startswith("#") or " " in line
        assert 'repro_tenant_latency_seconds{tenant="acme",quantile="0.99"}' in text
        match = re.search(
            r'# exemplar repro_tenant_latency_seconds\{tenant="acme",quantile="0.99"\} '
            r"trace_id=([0-9a-f]{32}) job_id=(\d+)",
            text,
        )
        assert match, "no resolvable exemplar on the tenant latency summary"
        trace_id, job_id = match.group(1), int(match.group(2))
        status, assembled = client.trace(job_id)
        assert status == 200
        assert assembled["trace_id"] == trace_id

    def test_trace_endpoints_404_unknown_and_list_retained(self, traced_server):
        client, _service, _addr = traced_server
        status, body = client.trace(999_999)
        assert status == 404
        assert "error" in body
        status, submitted = client.submit(ghz_circuit(2), method="memdb", tenant="acme")
        assert status == 202
        client.wait(submitted["job_id"])
        listing = client.traces(tenant="acme")
        assert any(
            summary["job_id"] == submitted["job_id"] for summary in listing["traces"]
        )
        assert listing["store"]["retained"] >= 1

    def test_zero_sample_rate_keeps_only_failures(self):
        server = build_server(
            max_workers=2,
            tracing=True,
            default_quota=TenantQuota(sample_rate=0.0),
            slow_threshold_s=60.0,
        )
        try:
            with ServerThread(server) as (host, port):
                client = ServingClient(host, port)
                status, ok_body = client.submit(
                    ghz_circuit(2), method="memdb", tenant="acme"
                )
                assert status == 202
                client.wait(ok_body["job_id"])
                status, bad_body = client.submit(
                    ghz_circuit(2), method="no-such-engine", tenant="acme"
                )
                assert status == 202
                final = client.wait(bad_body["job_id"])
                assert final["status"] == "error"
                store = server.service.tracer.request_store
                # Success at rate 0.0: sealed and discarded.  Failure: kept.
                assert store.for_job(ok_body["job_id"]) is None
                errored = store.for_job(bad_body["job_id"])
                assert errored is not None
                assert errored["status"] == "error"
                assert errored["sampled"] is False
        finally:
            server.service.shutdown(wait=True)

    def test_slow_requests_surface_with_stage_breakdown(self):
        # An explicit tracer (not the REPRO_TRACE process-shared one) so the
        # zero slow threshold is guaranteed to be the store consulted.
        store = RequestTraceStore(capacity=64, slow_threshold_s=0.0)
        server = build_server(
            max_workers=2,
            default_quota=TenantQuota(sample_rate=1.0),
            tracer=Tracer(registry=MetricsRegistry(), request_store=store),
        )
        try:
            with ServerThread(server) as (host, port):
                client = ServingClient(host, port)
                status, body = client.submit(
                    ghz_circuit(3), method="memdb", tenant="acme"
                )
                assert status == 202
                client.wait(body["job_id"])
                listing = client.traces(tenant="acme", slow=True)
            (summary,) = [
                s for s in listing["traces"] if s["job_id"] == body["job_id"]
            ]
            assert summary["duration_s"] > 0.0
            slow_entries = [
                entry for entry in listing["slow_requests"]
                if entry["job_id"] == body["job_id"]
            ]
            assert slow_entries, "slow request missing from the slow log"
            entry = slow_entries[0]
            for key in ("total_s", "admission_s", "queue_wait_s", "execute_s"):
                assert key in entry
            assert entry["execute_s"] > 0.0
            assert entry["total_s"] >= entry["execute_s"]
        finally:
            server.service.shutdown(wait=True)
