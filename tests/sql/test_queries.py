"""Tests for the auxiliary Output-Layer SQL queries (Table 1 operators included)."""

import sqlite3

import pytest

from repro.backends import MemDBBackend, SQLiteBackend
from repro.circuits import ghz_circuit, superposition_circuit, w_state_circuit
from repro.errors import TranslationError
from repro.sql import (
    amplitude_query,
    expectation_z_query,
    joint_marginal_query,
    marginal_probability_query,
    norm_query,
    probabilities_query,
    row_count_query,
    state_rows_query,
    translate_circuit,
)


def _prepare(circuit, dialect="sqlite"):
    translation = translate_circuit(circuit, dialect=dialect)
    connection = sqlite3.connect(":memory:")
    for statement in translation.setup_statements():
        connection.execute(statement)
    for item in translation.materialized_statements():
        connection.execute(item["sql"])
    return connection, translation.final_table


class TestAnalysisQueries:
    def test_norm_is_one(self):
        connection, table = _prepare(ghz_circuit(3))
        assert connection.execute(norm_query(table)).fetchone()[0] == pytest.approx(1.0)

    def test_row_count(self):
        connection, table = _prepare(w_state_circuit(4))
        assert connection.execute(row_count_query(table)).fetchone()[0] == 4

    def test_probabilities_sorted_descending(self):
        connection, table = _prepare(ghz_circuit(3))
        rows = connection.execute(probabilities_query(table)).fetchall()
        assert [row[0] for row in rows] == [0, 7]
        assert rows[0][1] == pytest.approx(0.5)

    def test_probabilities_limit(self):
        connection, table = _prepare(superposition_circuit(3))
        rows = connection.execute(probabilities_query(table, limit=3)).fetchall()
        assert len(rows) == 3
        with pytest.raises(TranslationError):
            probabilities_query(table, limit=0)

    def test_marginal_probability(self):
        connection, table = _prepare(ghz_circuit(3))
        rows = dict(connection.execute(marginal_probability_query(table, 1)).fetchall())
        assert rows[0] == pytest.approx(0.5)
        assert rows[1] == pytest.approx(0.5)

    def test_joint_marginal(self):
        connection, table = _prepare(ghz_circuit(3))
        rows = dict(connection.execute(joint_marginal_query(table, [0, 2])).fetchall())
        assert rows == {0: pytest.approx(0.5), 3: pytest.approx(0.5)}
        with pytest.raises(TranslationError):
            joint_marginal_query(table, [])

    def test_expectation_z(self):
        connection, table = _prepare(ghz_circuit(2))
        assert connection.execute(expectation_z_query(table, 0)).fetchone()[0] == pytest.approx(0.0)

    def test_amplitude_query(self):
        connection, table = _prepare(ghz_circuit(3))
        row = connection.execute(amplitude_query(table, 7)).fetchone()
        assert row[0] == pytest.approx(2 ** -0.5)
        assert connection.execute(amplitude_query(table, 3)).fetchone() is None

    def test_state_rows_query_sorted(self):
        connection, table = _prepare(ghz_circuit(3))
        rows = connection.execute(state_rows_query(table)).fetchall()
        assert [row[0] for row in rows] == [0, 7]


class TestInDatabaseAnalysisViaBackends:
    @pytest.mark.parametrize("backend_cls", [SQLiteBackend, MemDBBackend])
    def test_execute_analysis_query(self, backend_cls):
        backend = backend_cls(mode="materialized")
        rows = backend.execute_analysis_query(ghz_circuit(3), marginal_probability_query, 2)
        marginals = {int(outcome): probability for outcome, probability in rows}
        assert marginals[0] == pytest.approx(0.5)
        assert marginals[1] == pytest.approx(0.5)

    @pytest.mark.parametrize("backend_cls", [SQLiteBackend, MemDBBackend])
    def test_norm_inside_engine(self, backend_cls):
        backend = backend_cls(mode="materialized")
        rows = backend.execute_analysis_query(superposition_circuit(4), norm_query)
        assert rows[0][0] == pytest.approx(1.0)


class TestBitwiseOperatorCoverage:
    """Every operator of the paper's Table 1 must appear in generated SQL and compute correctly."""

    def test_all_table1_operators_appear(self):
        from repro.core import QuantumCircuit

        circuit = QuantumCircuit(3)
        circuit.h(1)        # shifted single-qubit gate -> >> and &
        circuit.cx(1, 2)    # contiguous two-qubit run above 0 -> << and ~ and |
        sql = translate_circuit(circuit).cte_query()
        for operator in ("&", "|", "~", "<<", ">>"):
            assert operator in sql, f"operator {operator} missing from generated SQL"

    @pytest.mark.parametrize("dialect_backend", [SQLiteBackend, MemDBBackend])
    def test_operators_compute_identically_across_backends(self, dialect_backend):
        from repro.core import QuantumCircuit
        from repro.simulators import StatevectorSimulator

        circuit = QuantumCircuit(4)
        circuit.h(2)
        circuit.cx(2, 0)
        circuit.cx(1, 3)
        circuit.x(3)
        reference = StatevectorSimulator().run(circuit).state
        result = dialect_backend().run(circuit).state
        assert reference.equiv(result, up_to_global_phase=False)
