"""Tests for the integer/bitwise encoding helpers."""

import pytest

from repro.errors import TranslationError
from repro.sql.encoding import (
    bitstring,
    clear_expression,
    deposit_expression,
    deposit_local,
    extract_expression,
    extract_local,
    index_of_bitstring,
    is_contiguous_ascending,
    output_index_expression,
    qubit_mask,
    replace_bits,
    validate_qubits,
)


class TestPythonReference:
    def test_qubit_mask(self):
        assert qubit_mask([0]) == 1
        assert qubit_mask([1, 2]) == 6
        assert qubit_mask([0, 3]) == 9

    def test_extract_local(self):
        assert extract_local(0b110, [1, 2]) == 0b11
        assert extract_local(0b110, [0]) == 0
        assert extract_local(0b101, [0, 2]) == 0b11
        assert extract_local(0b101, [2, 0]) == 0b11

    def test_deposit_local_inverse_of_extract(self):
        for qubits in ([0], [1, 2], [0, 3], [2, 0, 4]):
            for local in range(1 << len(qubits)):
                assert extract_local(deposit_local(local, qubits), qubits) == local

    def test_replace_bits(self):
        # Replace qubits 1..2 of 0b101 with local value 0b10 -> 0b101 & ~0b110 | 0b100.
        assert replace_bits(0b101, 0b10, [1, 2]) == 0b101

    def test_bitstring_roundtrip(self):
        assert bitstring(5, 4) == "0101"
        assert index_of_bitstring("0101") == 5
        with pytest.raises(TranslationError):
            bitstring(16, 4)
        with pytest.raises(TranslationError):
            index_of_bitstring("01a1")


class TestValidation:
    def test_valid(self):
        assert validate_qubits([2, 0], 3) == (2, 0)

    def test_duplicates_rejected(self):
        with pytest.raises(TranslationError):
            validate_qubits([1, 1], 3)

    def test_out_of_range_rejected(self):
        with pytest.raises(TranslationError):
            validate_qubits([3], 3)

    def test_empty_rejected(self):
        with pytest.raises(TranslationError):
            validate_qubits([], 3)

    def test_too_many_qubits_for_64bit(self):
        with pytest.raises(TranslationError):
            validate_qubits([0], 63)


class TestSQLExpressions:
    def test_contiguity_detection(self):
        assert is_contiguous_ascending([0])
        assert is_contiguous_ascending([2, 3, 4])
        assert not is_contiguous_ascending([1, 0])
        assert not is_contiguous_ascending([0, 2])

    def test_extract_matches_paper_forms(self):
        # Fig. 2c: H on qubit 0 joins on (T0.s & 1); CX on qubits 1,2 joins on ((T2.s >> 1) & 3).
        assert extract_expression("T0.s", [0]) == "(T0.s & 1)"
        assert extract_expression("T1.s", [0, 1]) == "(T1.s & 3)"
        assert extract_expression("T2.s", [1, 2]) == "((T2.s >> 1) & 3)"

    def test_deposit_matches_paper_forms(self):
        assert deposit_expression("H.out_s", [0]) == "H.out_s"
        assert deposit_expression("CX.out_s", [1, 2]) == "(CX.out_s << 1)"

    def test_clear_expression(self):
        assert clear_expression("T0.s", [0]) == "(T0.s & ~1)"
        assert clear_expression("T2.s", [1, 2]) == "(T2.s & ~6)"

    def test_output_index_matches_paper(self):
        assert output_index_expression("T0.s", "H.out_s", [0]) == "((T0.s & ~1) | H.out_s)"
        assert (
            output_index_expression("T2.s", "CX.out_s", [1, 2])
            == "((T2.s & ~6) | (CX.out_s << 1))"
        )

    def test_non_contiguous_fallback_is_correct_sql(self):
        import sqlite3

        qubits = [3, 0]
        expression = extract_expression("s", qubits)
        connection = sqlite3.connect(":memory:")
        for s in range(32):
            value = connection.execute(f"SELECT {expression}", ).fetchone()[0] if False else None
        # Evaluate via sqlite by substituting s literally.
        for s in range(32):
            got = connection.execute(f"SELECT {expression.replace('s', str(s))}").fetchone()[0]
            assert got == extract_local(s, qubits)

    def test_non_contiguous_deposit_fallback(self):
        import sqlite3

        qubits = [3, 1]
        expression = deposit_expression("o", qubits)
        connection = sqlite3.connect(":memory:")
        for local in range(4):
            got = connection.execute(f"SELECT {expression.replace('o', str(local))}").fetchone()[0]
            assert got == deposit_local(local, qubits)
