"""Tests for relational schema / DDL generation."""

import sqlite3

import pytest

from repro.errors import TranslationError
from repro.sql.schema import (
    gate_insert_sql,
    gate_table_ddl,
    is_valid_identifier,
    sanitize_identifier,
    state_insert_sql,
    state_table_ddl,
    state_table_name,
)


class TestNaming:
    def test_state_table_names(self):
        assert state_table_name(0) == "T0"
        assert state_table_name(12) == "T12"
        with pytest.raises(TranslationError):
            state_table_name(-1)

    def test_identifier_validation(self):
        assert is_valid_identifier("CX")
        assert is_valid_identifier("gate_rz_0")
        assert not is_valid_identifier("2fast")
        assert not is_valid_identifier("select")
        assert not is_valid_identifier("has space")

    def test_sanitize(self):
        assert sanitize_identifier("RZ(0.5)") == "RZ_0_5_"
        assert sanitize_identifier("select") == "select_t"
        assert is_valid_identifier(sanitize_identifier("123"))


class TestDDLAndInserts:
    def test_state_ddl_executes_on_sqlite(self):
        connection = sqlite3.connect(":memory:")
        connection.execute(state_table_ddl("T0", "INTEGER", "REAL"))
        connection.execute(state_insert_sql("T0", [(0, 1.0, 0.0)]))
        assert connection.execute("SELECT * FROM T0").fetchall() == [(0, 1.0, 0.0)]

    def test_gate_ddl_executes_on_sqlite(self):
        connection = sqlite3.connect(":memory:")
        connection.execute(gate_table_ddl("H", "INTEGER", "REAL"))
        rows = [(0, 0, 0.7, 0.0), (1, 1, -0.7, 0.0)]
        connection.execute(gate_insert_sql("H", rows))
        assert connection.execute("SELECT COUNT(*) FROM H").fetchone()[0] == 2

    def test_insert_preserves_full_precision(self):
        connection = sqlite3.connect(":memory:")
        connection.execute(state_table_ddl("T0"))
        amplitude = 2 ** -0.5
        connection.execute(state_insert_sql("T0", [(0, amplitude, -amplitude)]))
        row = connection.execute("SELECT r, i FROM T0").fetchone()
        assert row[0] == amplitude
        assert row[1] == -amplitude

    def test_empty_rows_rejected(self):
        with pytest.raises(TranslationError):
            state_insert_sql("T0", [])
        with pytest.raises(TranslationError):
            gate_insert_sql("H", [])

    def test_invalid_names_rejected(self):
        with pytest.raises(TranslationError):
            state_table_ddl("select")
        with pytest.raises(TranslationError):
            gate_table_ddl("1bad")
