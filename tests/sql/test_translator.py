"""Tests for circuit-to-SQL translation."""

import sqlite3

import pytest

from repro.circuits import ghz_circuit, superposition_circuit
from repro.core import QuantumCircuit
from repro.core.parameters import Parameter
from repro.errors import TranslationError
from repro.output import SparseState
from repro.sql import SQLTranslator, translate_circuit
from repro.sql.dialect import get_dialect


def _run_on_sqlite(translation, mode="cte"):
    connection = sqlite3.connect(":memory:")
    for statement in translation.setup_statements():
        connection.execute(statement)
    if mode == "cte":
        return connection.execute(translation.cte_query(pretty=False)).fetchall()
    for item in translation.materialized_statements():
        connection.execute(item["sql"])
    return connection.execute(translation.final_select()).fetchall()


class TestTranslationStructure:
    def test_one_step_per_gate(self, ghz3):
        translation = translate_circuit(ghz3)
        assert len(translation.steps) == 3
        assert translation.final_table == "T3"
        assert [step.input_table for step in translation.steps] == ["T0", "T1", "T2"]

    def test_gate_tables_are_shared(self, ghz3):
        translation = translate_circuit(ghz3)
        assert sorted(table.name for table in translation.gate_tables) == ["CX", "H"]

    def test_initial_state_is_single_row(self, ghz3):
        assert translate_circuit(ghz3).initial_rows == [(0, 1.0, 0.0)]

    def test_custom_initial_state(self, ghz3):
        initial = SparseState(3, {3: 1.0})
        translation = translate_circuit(ghz3, initial_state=initial)
        assert translation.initial_rows == [(3, 1.0, 0.0)]

    def test_initial_state_width_mismatch(self, ghz3):
        with pytest.raises(TranslationError):
            translate_circuit(ghz3, initial_state=SparseState(2, {0: 1.0}))

    def test_measurements_and_barriers_skipped(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.barrier()
        circuit.cx(0, 1)
        circuit.measure_all()
        translation = translate_circuit(circuit)
        assert len(translation.steps) == 2

    def test_reset_rejected(self):
        circuit = QuantumCircuit(1)
        circuit.reset(0)
        with pytest.raises(TranslationError):
            translate_circuit(circuit)

    def test_unbound_parameters_rejected(self):
        circuit = QuantumCircuit(1)
        circuit.rx(Parameter("theta"), 0)
        with pytest.raises(TranslationError):
            translate_circuit(circuit)

    def test_empty_circuit_selects_t0(self):
        circuit = QuantumCircuit(2)
        translation = translate_circuit(circuit)
        assert translation.final_table == "T0"
        assert _run_on_sqlite(translation) == [(0, 1.0, 0.0)]

    def test_describe_summary(self, ghz3):
        summary = translate_circuit(ghz3, dialect="sqlite").describe()
        assert summary["num_steps"] == 3
        assert summary["dialect"] == "sqlite"
        assert summary["num_gate_tables"] == 2


class TestGeneratedSQLText:
    def test_cte_query_matches_fig2_shape(self, ghz3):
        query = translate_circuit(ghz3).cte_query()
        assert "WITH T1 AS (" in query
        assert "((T0.s & ~1) | H.out_s) AS s" in query
        assert "ON H.in_s = (T0.s & 1)" in query
        assert "((T2.s & ~6) | (CX.out_s << 1))" in query
        assert "ON CX.in_s = ((T2.s >> 1) & 3)" in query
        assert query.strip().endswith("SELECT s, r, i FROM T3 ORDER BY s")

    def test_sum_expressions_follow_complex_multiplication(self, ghz3):
        query = translate_circuit(ghz3).cte_query()
        assert "SUM((T0.r * H.r) - (T0.i * H.i)) AS r" in query
        assert "SUM((T0.r * H.i) + (T0.i * H.r)) AS i" in query

    def test_full_script_modes(self, ghz3):
        translation = translate_circuit(ghz3, dialect="sqlite")
        cte_script = translation.full_script(mode="cte")
        mat_script = translation.full_script(mode="materialized")
        assert "CREATE TABLE H" in cte_script
        assert "CREATE TABLE T1 AS" in mat_script
        with pytest.raises(TranslationError):
            translation.full_script(mode="bogus")

    def test_dialect_type_names(self, ghz3):
        sqlite_script = translate_circuit(ghz3, dialect="sqlite").setup_statements()[0]
        memdb_script = translate_circuit(ghz3, dialect="memdb").setup_statements()[0]
        assert "INTEGER" in sqlite_script
        assert "BIGINT" in memdb_script

    def test_unknown_dialect(self):
        with pytest.raises(TranslationError):
            get_dialect("oracle")


class TestExecutionEquivalence:
    def test_cte_and_materialized_agree(self, ghz3):
        translation = translate_circuit(ghz3, dialect="sqlite")
        assert _run_on_sqlite(translation, "cte") == _run_on_sqlite(translation, "materialized")

    def test_materialized_prune_removes_zero_rows(self):
        # Two Hadamard layers drive interference: half the amplitudes cancel.
        circuit = superposition_circuit(2, layers=2)
        translation = SQLTranslator(dialect="sqlite", prune_epsilon=1e-12).translate(circuit)
        rows = _run_on_sqlite(translation, "materialized")
        assert [row[0] for row in rows] == [0]

    def test_keep_intermediate_tables(self, ghz3):
        translation = translate_circuit(ghz3, dialect="sqlite")
        connection = sqlite3.connect(":memory:")
        for statement in translation.setup_statements():
            connection.execute(statement)
        for item in translation.materialized_statements(keep_intermediate=True):
            connection.execute(item["sql"])
        tables = {row[0] for row in connection.execute("SELECT name FROM sqlite_master WHERE type='table'")}
        assert {"T0", "T1", "T2", "T3"} <= tables

    def test_drop_intermediate_tables_by_default(self, ghz3):
        translation = translate_circuit(ghz3, dialect="sqlite")
        connection = sqlite3.connect(":memory:")
        for statement in translation.setup_statements():
            connection.execute(statement)
        for item in translation.materialized_statements():
            connection.execute(item["sql"])
        tables = {row[0] for row in connection.execute("SELECT name FROM sqlite_master WHERE type='table'")}
        assert "T1" not in tables and "T2" not in tables
        assert "T3" in tables

    def test_fusion_reduces_steps(self, ghz3):
        fused = SQLTranslator(dialect="sqlite", fuse=True).translate(ghz3)
        plain = translate_circuit(ghz3, dialect="sqlite")
        assert len(fused.steps) < len(plain.steps)
        assert _run_on_sqlite(fused) == pytest.approx(_run_on_sqlite(plain))
