"""Tests for the gate-fusion optimizer."""

import pytest

from repro.circuits import ghz_circuit, qft_circuit, random_circuit
from repro.core import QuantumCircuit
from repro.errors import TranslationError
from repro.output import states_agree
from repro.simulators import StatevectorSimulator
from repro.sql.fusion import fuse_adjacent_gates, fusion_savings

_SV = StatevectorSimulator()


class TestFusionCorrectness:
    @pytest.mark.parametrize(
        "circuit",
        [ghz_circuit(4), qft_circuit(4), random_circuit(4, 6, seed=9)],
        ids=lambda c: c.name,
    )
    def test_fused_circuit_preserves_state(self, circuit):
        fused, report = fuse_adjacent_gates(circuit, max_qubits=2)
        assert states_agree(_SV.run(circuit).state, _SV.run(fused).state, up_to_global_phase=False)
        assert report["gates_after"] <= report["gates_before"]

    def test_three_qubit_fusion_window(self):
        circuit = qft_circuit(5)
        fused, report = fuse_adjacent_gates(circuit, max_qubits=3)
        assert report["gates_after"] < report["gates_before"]
        assert states_agree(_SV.run(circuit).state, _SV.run(fused).state, up_to_global_phase=False)


class TestFusionStructure:
    def test_single_qubit_run_collapses_to_one_gate(self):
        circuit = QuantumCircuit(1)
        circuit.h(0).t(0).h(0).s(0)
        fused, report = fuse_adjacent_gates(circuit, max_qubits=1)
        assert report["gates_after"] == 1
        assert fused.size() == 1

    def test_barrier_blocks_fusion(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        circuit.barrier()
        circuit.t(0)
        fused, report = fuse_adjacent_gates(circuit, max_qubits=1)
        assert report["gates_after"] == 2

    def test_disjoint_qubits_do_not_fuse_beyond_window(self):
        circuit = QuantumCircuit(4)
        circuit.h(0).h(1).h(2).h(3)
        _fused, report = fuse_adjacent_gates(circuit, max_qubits=2)
        assert report["gates_after"] == 2  # two 2-qubit blocks

    def test_oversized_gate_passes_through(self):
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        circuit.h(0)
        fused, report = fuse_adjacent_gates(circuit, max_qubits=2)
        assert any(ins.gate.name == "ccx" for ins in fused.gates)

    def test_invalid_window(self):
        with pytest.raises(TranslationError):
            fuse_adjacent_gates(ghz_circuit(2), max_qubits=0)

    def test_savings_report_only(self):
        report = fusion_savings(ghz_circuit(5), max_qubits=2)
        assert report["gates_before"] == 5
        assert report["stages_saved"] >= 1
