"""Tests for gate-table construction and the registry."""

import math

import pytest

from repro.core.gates import standard_gate
from repro.core.parameters import Parameter
from repro.errors import TranslationError
from repro.sql.gate_tables import GateTableRegistry, gate_rows


class TestGateRows:
    def test_hadamard_rows(self):
        rows = gate_rows(standard_gate("h"))
        assert len(rows) == 4
        amp = 1 / math.sqrt(2)
        assert (1, 1, pytest.approx(-amp), 0.0) in [
            (a, b, pytest.approx(c), d) for a, b, c, d in rows
        ]

    def test_x_rows_are_permutation(self):
        rows = gate_rows(standard_gate("x"))
        assert rows == [(0, 1, 1.0, 0.0), (1, 0, 1.0, 0.0)]

    def test_zero_entries_are_dropped(self):
        rows = gate_rows(standard_gate("cx"))
        assert len(rows) == 4  # not 16


class TestRegistry:
    def test_standard_gates_keep_their_names(self):
        registry = GateTableRegistry()
        assert registry.register(standard_gate("h")).name == "H"
        assert registry.register(standard_gate("cx")).name == "CX"

    def test_identical_gates_are_deduplicated(self):
        registry = GateTableRegistry()
        first = registry.register(standard_gate("h"))
        second = registry.register(standard_gate("h"))
        assert first is second
        assert len(registry) == 1

    def test_parameterized_gates_get_suffixes(self):
        registry = GateTableRegistry()
        a = registry.register(standard_gate("rz", 0.3))
        b = registry.register(standard_gate("rz", 0.7))
        c = registry.register(standard_gate("rz", 0.3))
        assert a.name != b.name
        assert a is c
        assert a.name.startswith("RZ_")

    def test_unbound_parameter_rejected(self):
        registry = GateTableRegistry()
        with pytest.raises(TranslationError):
            registry.register(standard_gate("rz", Parameter("t")))

    def test_permutation_detection(self):
        registry = GateTableRegistry()
        assert registry.register(standard_gate("cx")).is_permutation()
        assert not registry.register(standard_gate("h")).is_permutation()

    def test_lookup_and_total_rows(self):
        registry = GateTableRegistry()
        registry.register(standard_gate("h"))
        registry.register(standard_gate("cx"))
        assert registry.get("H").gate_name == "h"
        assert registry.total_rows() == 8
        with pytest.raises(TranslationError):
            registry.get("SWAP")

    def test_same_matrix_different_name_shares_table(self):
        registry = GateTableRegistry()
        cx = registry.register(standard_gate("cx"))
        cnot = registry.register(standard_gate("cnot"))
        assert cx is cnot
