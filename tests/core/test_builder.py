"""Tests for the grid circuit builder (graphical-builder model)."""

import pytest

from repro.circuits import ghz_circuit
from repro.core.builder import CircuitGridBuilder, build_circuit, parameter_assignment
from repro.core.parameters import Parameter
from repro.core import QuantumCircuit
from repro.errors import CircuitError, GateError


class TestPlacement:
    def test_auto_column_assignment(self):
        builder = CircuitGridBuilder(3)
        builder.place("h", [0])
        builder.place("cx", [0, 1])
        builder.place("cx", [1, 2])
        columns = [placement.column for placement in builder.placements]
        assert columns == [0, 1, 2]

    def test_independent_gates_share_a_column(self):
        builder = CircuitGridBuilder(2)
        builder.place("h", [0])
        builder.place("h", [1])
        columns = [placement.column for placement in builder.placements]
        assert columns == [0, 0]

    def test_explicit_column_conflict_rejected(self):
        builder = CircuitGridBuilder(2)
        builder.place("h", [0], column=0)
        with pytest.raises(CircuitError):
            builder.place("x", [0], column=0)

    def test_unknown_gate(self):
        builder = CircuitGridBuilder(1)
        with pytest.raises(GateError):
            builder.place("bogus", [0])

    def test_qubit_out_of_range(self):
        builder = CircuitGridBuilder(2)
        with pytest.raises(CircuitError):
            builder.place("h", [5])

    def test_parameterized_placement(self):
        builder = CircuitGridBuilder(1)
        builder.place("rz", [0], params=(0.5,))
        circuit = builder.build()
        assert circuit.gates[0].gate.params == (0.5,)

    def test_remove_and_move(self):
        builder = CircuitGridBuilder(2)
        placement = builder.place("h", [0])
        other = builder.place("x", [0])
        builder.move(other, 5)
        assert other.column == 5
        builder.remove(placement)
        assert len(builder.placements) == 1
        with pytest.raises(CircuitError):
            builder.remove(placement)

    def test_add_qubit_row(self):
        builder = CircuitGridBuilder(1)
        new_row = builder.add_qubit()
        assert new_row == 1
        builder.place("cx", [0, 1])

    def test_clear(self):
        builder = CircuitGridBuilder(2)
        builder.place("h", [0])
        builder.clear()
        assert builder.num_columns == 0


class TestCompilation:
    def test_build_matches_manual_circuit(self):
        builder = CircuitGridBuilder(3)
        builder.place("h", [0])
        builder.place("cx", [0, 1])
        builder.place("cx", [1, 2])
        assert builder.build() == ghz_circuit(3)

    def test_from_circuit_roundtrip(self):
        circuit = ghz_circuit(4)
        rebuilt = CircuitGridBuilder.from_circuit(circuit).build()
        assert rebuilt == circuit

    def test_ascii_rendering(self):
        builder = CircuitGridBuilder(2)
        builder.place("h", [0])
        builder.place("cx", [0, 1])
        art = builder.to_ascii()
        assert "q0:" in art and "q1:" in art
        assert "[H " in art or "[H]" in art or "[H" in art


class TestBuildCircuitHelper:
    def test_moment_construction(self):
        circuit = build_circuit(
            3,
            [
                [("h", [0])],
                [("cx", [0, 1])],
                [("cx", [1, 2])],
            ],
            name="ghz",
        )
        assert circuit == ghz_circuit(3)

    def test_moment_with_params(self):
        circuit = build_circuit(1, [[("rz", [0], (0.3,))]])
        assert circuit.gates[0].gate.params == (0.3,)

    def test_invalid_moment_entry(self):
        with pytest.raises(CircuitError):
            build_circuit(1, [[("h",)]])


class TestParameterAssignment:
    def test_maps_names_to_parameters(self):
        theta = Parameter("theta")
        qc = QuantumCircuit(1)
        qc.rx(theta, 0)
        assignment = parameter_assignment(qc, {"theta": 0.5})
        assert assignment == {theta: 0.5}

    def test_unknown_name_raises(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        with pytest.raises(CircuitError):
            parameter_assignment(qc, {"theta": 0.5})
