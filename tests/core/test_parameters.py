"""Tests for symbolic circuit parameters."""

import math

import pytest

from repro.core.parameters import (
    Parameter,
    ParameterExpression,
    ParameterVector,
    free_parameters,
    parameter_value_text,
    resolve_parameter,
)
from repro.errors import ParameterError


class TestParameter:
    def test_name_and_repr(self):
        theta = Parameter("theta")
        assert theta.name == "theta"
        assert "theta" in repr(theta)

    def test_equality_is_by_name(self):
        assert Parameter("a") == Parameter("a")
        assert Parameter("a") != Parameter("b")
        assert hash(Parameter("a")) == hash(Parameter("a"))

    def test_empty_name_rejected(self):
        with pytest.raises(ParameterError):
            Parameter("")

    def test_bind_to_value(self):
        theta = Parameter("theta")
        assert theta.bind({theta: 1.5}) == pytest.approx(1.5)

    def test_unbound_evaluation_raises(self):
        theta = Parameter("theta")
        with pytest.raises(ParameterError):
            theta.evaluate({})


class TestParameterExpression:
    def test_arithmetic_chain(self):
        theta = Parameter("theta")
        expression = 2 * theta + 1.0
        assert isinstance(expression, ParameterExpression)
        assert expression.bind({theta: 3.0}) == pytest.approx(7.0)

    def test_subtraction_and_division(self):
        a, b = Parameter("a"), Parameter("b")
        expression = (a - b) / 2
        assert expression.bind({a: 5.0, b: 1.0}) == pytest.approx(2.0)

    def test_reflected_operators(self):
        theta = Parameter("theta")
        assert (1.0 - theta).bind({theta: 0.25}) == pytest.approx(0.75)
        assert (2.0 / theta).bind({theta: 4.0}) == pytest.approx(0.5)

    def test_power_and_negation(self):
        theta = Parameter("theta")
        assert (theta ** 2).bind({theta: 3.0}) == pytest.approx(9.0)
        assert (-theta).bind({theta: 3.0}) == pytest.approx(-3.0)

    def test_trig_helpers(self):
        theta = Parameter("theta")
        assert theta.sin().bind({theta: math.pi / 2}) == pytest.approx(1.0)
        assert theta.cos().bind({theta: 0.0}) == pytest.approx(1.0)
        assert theta.exp().bind({theta: 0.0}) == pytest.approx(1.0)

    def test_partial_binding_keeps_expression(self):
        a, b = Parameter("a"), Parameter("b")
        expression = a + b
        partially = expression.bind({a: 1.0})
        assert isinstance(partially, ParameterExpression)
        assert partially.parameters == frozenset({b})
        assert partially.bind({b: 2.0}) == pytest.approx(3.0)

    def test_unknown_keys_are_ignored(self):
        a, b = Parameter("a"), Parameter("b")
        assert (a + 0).bind({a: 1.0, b: 9.0}) == pytest.approx(1.0)

    def test_free_parameter_tracking(self):
        a, b = Parameter("a"), Parameter("b")
        expression = a * 2 + b
        assert expression.parameters == frozenset({a, b})
        assert not expression.is_bound

    def test_type_error_on_bad_operand(self):
        theta = Parameter("theta")
        with pytest.raises(TypeError):
            _ = theta + "not a number"


class TestParameterVector:
    def test_length_and_names(self):
        vector = ParameterVector("x", 3)
        assert len(vector) == 3
        assert [p.name for p in vector] == ["x[0]", "x[1]", "x[2]"]

    def test_indexing(self):
        vector = ParameterVector("x", 2)
        assert vector[1].name == "x[1]"

    def test_negative_length_rejected(self):
        with pytest.raises(ParameterError):
            ParameterVector("x", -1)


class TestHelpers:
    def test_resolve_parameter_float_passthrough(self):
        assert resolve_parameter(1.25) == pytest.approx(1.25)

    def test_resolve_parameter_with_assignment(self):
        theta = Parameter("theta")
        assert resolve_parameter(theta * 2, {theta: 2.0}) == pytest.approx(4.0)

    def test_free_parameters_of_float_is_empty(self):
        assert free_parameters(3.0) == frozenset()

    def test_parameter_value_text(self):
        theta = Parameter("theta")
        assert parameter_value_text(theta) == "theta"
        assert parameter_value_text(0.5) == "0.5"
