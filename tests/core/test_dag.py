"""Tests for the instruction dependency DAG."""

from repro.circuits import ghz_circuit
from repro.core import QuantumCircuit
from repro.core.dag import CircuitDag


class TestDagStructure:
    def test_ghz_chain_dependencies(self):
        dag = CircuitDag(ghz_circuit(3))
        assert dag.num_nodes == 3
        assert dag.node(0).predecessors == set()
        assert dag.node(1).predecessors == {0}
        assert dag.node(2).predecessors == {1}
        assert dag.node(0).successors == {1}

    def test_independent_gates_have_no_edges(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.h(1)
        dag = CircuitDag(qc)
        assert dag.node(0).successors == set()
        assert dag.node(1).predecessors == set()

    def test_topological_order_respects_dependencies(self):
        qc = QuantumCircuit(3)
        qc.h(0)
        qc.h(2)
        qc.cx(0, 1)
        qc.cx(1, 2)
        dag = CircuitDag(qc)
        order = dag.topological_order()
        assert order.index(0) < order.index(2)
        assert order.index(2) < order.index(3)
        assert sorted(order) == [0, 1, 2, 3]

    def test_layers_are_parallel(self):
        qc = QuantumCircuit(4)
        qc.h(0)
        qc.h(1)
        qc.cx(0, 1)
        qc.cx(2, 3)
        layers = CircuitDag(qc).layers()
        assert layers[0] == [0, 1, 3]
        assert layers[1] == [2]

    def test_interaction_pairs(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 1)
        qc.cx(2, 1)
        qc.ccx(0, 1, 2)
        pairs = CircuitDag(qc).qubit_interaction_pairs()
        assert pairs == {(0, 1), (1, 2), (0, 2)}

    def test_critical_path_matches_depth(self):
        circuit = ghz_circuit(5)
        dag = CircuitDag(circuit)
        assert dag.critical_path_length() == circuit.depth()

    def test_iteration(self):
        dag = CircuitDag(ghz_circuit(3))
        assert len(list(dag)) == 3
