"""Tests for gate decomposition into the {1-qubit, CX} basis."""

import numpy as np
import pytest

from repro.circuits import ghz_circuit, grover_circuit, qft_circuit, random_circuit
from repro.core.decompose import (
    decompose_circuit,
    decompose_instruction,
    gate_sequence_unitary,
    two_qubit_basis_circuit,
    _expand_gate_matrix,
)
from repro.core.gates import standard_gate, unitary_gate
from repro.core.instruction import Instruction
from repro.core.parameters import Parameter
from repro.errors import CircuitError, GateError
from repro.simulators import StatevectorSimulator

_CASES = [
    ("cy", 2, ()),
    ("cz", 2, ()),
    ("ch", 2, ()),
    ("cp", 2, (0.7,)),
    ("crx", 2, (1.1,)),
    ("cry", 2, (0.7,)),
    ("crz", 2, (0.7,)),
    ("swap", 2, ()),
    ("iswap", 2, ()),
    ("rzz", 2, (0.7,)),
    ("rxx", 2, (0.7,)),
    ("ccx", 3, ()),
    ("ccz", 3, ()),
    ("cswap", 3, ()),
]


class TestInstructionDecomposition:
    @pytest.mark.parametrize("name,num_qubits,params", _CASES)
    def test_decomposition_is_exact(self, name, num_qubits, params):
        gate = standard_gate(name, *params)
        instruction = Instruction(gate, list(range(num_qubits)))
        decomposed = decompose_instruction(instruction)
        reconstructed = gate_sequence_unitary(decomposed, num_qubits)
        reference = _expand_gate_matrix(gate.matrix(), list(range(num_qubits)), num_qubits)
        np.testing.assert_allclose(reconstructed, reference, atol=1e-8)

    @pytest.mark.parametrize("name,num_qubits,params", _CASES)
    def test_only_basis_gates_remain(self, name, num_qubits, params):
        instruction = Instruction(standard_gate(name, *params), list(range(num_qubits)))
        for decomposed in decompose_instruction(instruction):
            assert decomposed.gate is not None
            assert decomposed.gate.num_qubits == 1 or decomposed.gate.name == "cx"

    def test_reversed_qubit_order_is_respected(self):
        gate = standard_gate("cx")
        instruction = Instruction(gate, [1, 0])
        decomposed = decompose_instruction(instruction)
        reconstructed = gate_sequence_unitary(decomposed, 2)
        reference = _expand_gate_matrix(gate.matrix(), [1, 0], 2)
        np.testing.assert_allclose(reconstructed, reference, atol=1e-8)

    def test_basis_gates_pass_through(self):
        instruction = Instruction(standard_gate("h"), [0])
        assert decompose_instruction(instruction) == [instruction]

    def test_measurement_passes_through(self):
        instruction = Instruction(None, [0], "measure", [0])
        assert decompose_instruction(instruction) == [instruction]

    def test_parameterized_gate_rejected(self):
        instruction = Instruction(standard_gate("crz", Parameter("t")), [0, 1])
        with pytest.raises(CircuitError):
            decompose_instruction(instruction)

    def test_non_controlled_custom_two_qubit_rejected(self):
        matrix = np.kron(standard_gate("h").matrix(), standard_gate("h").matrix())
        gate = unitary_gate(matrix, name="hh")
        with pytest.raises(GateError):
            decompose_instruction(Instruction(gate, [0, 1]))


class TestCircuitDecomposition:
    @pytest.mark.parametrize(
        "circuit",
        [ghz_circuit(4), qft_circuit(4), grover_circuit(3, 5), random_circuit(4, 5, seed=11)],
        ids=lambda circuit: circuit.name,
    )
    def test_final_state_is_preserved(self, circuit):
        simulator = StatevectorSimulator()
        original = simulator.run(circuit).state
        rewritten = simulator.run(decompose_circuit(circuit)).state
        assert original.equiv(rewritten, atol=1e-8, up_to_global_phase=False)

    def test_two_qubit_basis_keeps_native_two_qubit_gates(self):
        circuit = qft_circuit(3)
        rewritten = two_qubit_basis_circuit(circuit)
        assert any(ins.gate.name == "cp" for ins in rewritten.gates)
        assert all(ins.gate.num_qubits <= 2 for ins in rewritten.gates)

    def test_two_qubit_basis_rewrites_toffoli(self):
        from repro.core import QuantumCircuit

        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        rewritten = two_qubit_basis_circuit(circuit)
        assert all(ins.gate.num_qubits <= 2 for ins in rewritten.gates)
