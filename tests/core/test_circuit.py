"""Tests for the QuantumCircuit IR."""

import math

import pytest

from repro.core import ClassicalRegister, QuantumCircuit, QuantumRegister, standard_gate
from repro.core.circuit import circuit_from_instructions
from repro.core.instruction import Instruction
from repro.core.parameters import Parameter
from repro.errors import CircuitError, ParameterError


class TestConstruction:
    def test_basic_properties(self, ghz3):
        assert ghz3.num_qubits == 3
        assert ghz3.size() == 3
        assert ghz3.depth() == 3
        assert ghz3.count_ops() == {"h": 1, "cx": 2}

    def test_gates_property_excludes_non_gates(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.barrier()
        qc.measure_all()
        assert len(qc.gates) == 1
        assert len(qc.instructions) == 4

    def test_needs_at_least_one_qubit(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(0)

    def test_register_construction(self):
        qreg = QuantumRegister(3, "data")
        creg = ClassicalRegister(2, "out")
        qc = QuantumCircuit(qreg, creg)
        assert qc.num_qubits == 3
        assert qc.num_clbits == 2
        qc.h(qreg[1])
        assert qc.gates[0].qubits == (1,)

    def test_qubit_out_of_range(self):
        qc = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            qc.h(2)
        with pytest.raises(CircuitError):
            qc.cx(0, 5)

    def test_duplicate_qubits_rejected(self):
        qc = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            qc.cx(1, 1)

    def test_fluent_chaining(self):
        qc = QuantumCircuit(2)
        returned = qc.h(0).cx(0, 1).x(1)
        assert returned is qc
        assert qc.size() == 3

    def test_all_gate_helpers_append(self):
        qc = QuantumCircuit(3)
        qc.id(0).x(0).y(0).z(0).h(0).s(0).sdg(0).t(0).tdg(0).sx(0)
        qc.rx(0.1, 0).ry(0.2, 0).rz(0.3, 0).p(0.4, 0).u(0.1, 0.2, 0.3, 0)
        qc.cx(0, 1).cy(0, 1).cz(0, 1).ch(0, 1).cp(0.1, 0, 1)
        qc.crx(0.1, 0, 1).cry(0.2, 0, 1).crz(0.3, 0, 1)
        qc.swap(0, 1).iswap(0, 1).rzz(0.5, 0, 1).rxx(0.5, 0, 1)
        qc.ccx(0, 1, 2).ccz(0, 1, 2).cswap(0, 1, 2)
        assert qc.size() == 30

    def test_unitary_append(self):
        qc = QuantumCircuit(1)
        qc.unitary(standard_gate("h").matrix(), [0], name="hadamard_like")
        assert qc.gates[0].gate.name == "hadamard_like"


class TestMeasurementAndClassicalBits:
    def test_measure_allocates_clbits(self):
        qc = QuantumCircuit(3)
        qc.measure(2)
        assert qc.num_clbits == 3
        assert qc.instructions[-1].clbits == (2,)

    def test_measure_all(self):
        qc = QuantumCircuit(3)
        qc.measure_all()
        assert qc.num_clbits == 3
        assert qc.measured_qubits() == [0, 1, 2]

    def test_explicit_clbit(self):
        qc = QuantumCircuit(2, 2)
        qc.measure(0, 1)
        assert qc.instructions[-1].clbits == (1,)

    def test_clbit_out_of_range(self):
        qc = QuantumCircuit(2, 1)
        with pytest.raises(CircuitError):
            qc.measure(0, 5)


class TestTransformations:
    def test_bind_parameters_by_name_and_object(self):
        theta = Parameter("theta")
        qc = QuantumCircuit(1)
        qc.rx(theta, 0)
        by_name = qc.bind_parameters({"theta": math.pi})
        by_object = qc.bind_parameters({theta: math.pi})
        assert not by_name.is_parameterized
        assert by_name == by_object
        # The original circuit is untouched.
        assert qc.is_parameterized

    def test_bind_unknown_parameter_raises(self):
        qc = QuantumCircuit(1)
        qc.rx(Parameter("theta"), 0)
        with pytest.raises(ParameterError):
            qc.bind_parameters({"other": 1.0})

    def test_compose_identity_mapping(self, ghz3):
        qc = QuantumCircuit(3)
        combined = qc.compose(ghz3)
        assert combined.count_ops() == ghz3.count_ops()

    def test_compose_onto_subset(self):
        inner = QuantumCircuit(2)
        inner.cx(0, 1)
        outer = QuantumCircuit(4)
        combined = outer.compose(inner, qubits=[2, 3])
        assert combined.gates[0].qubits == (2, 3)

    def test_compose_wrong_mapping_length(self, ghz3):
        with pytest.raises(CircuitError):
            QuantumCircuit(3).compose(ghz3, qubits=[0, 1])

    def test_inverse_reverses_and_inverts(self):
        qc = QuantumCircuit(1)
        qc.s(0).t(0)
        inverse = qc.inverse()
        assert [ins.gate.name for ins in inverse.gates] == ["t_dg", "s_dg"]

    def test_inverse_with_measurement_raises(self):
        qc = QuantumCircuit(1)
        qc.h(0).measure(0)
        with pytest.raises(CircuitError):
            qc.inverse()

    def test_without_measurements(self):
        qc = QuantumCircuit(2)
        qc.h(0).measure_all()
        stripped = qc.without_measurements()
        assert stripped.size() == 1
        assert len(stripped.instructions) == 1

    def test_power(self):
        qc = QuantumCircuit(1)
        qc.x(0)
        assert qc.power(3).size() == 3
        with pytest.raises(CircuitError):
            qc.power(-1)

    def test_copy_is_independent(self, ghz3):
        duplicate = ghz3.copy()
        duplicate.h(2)
        assert duplicate.size() == ghz3.size() + 1


class TestStatistics:
    def test_depth_with_parallel_gates(self):
        qc = QuantumCircuit(4)
        qc.h(0).h(1).h(2).h(3)
        qc.cx(0, 1).cx(2, 3)
        assert qc.depth() == 2

    def test_barrier_does_not_count_towards_depth(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.barrier()
        qc.h(1)
        assert qc.depth() == 1

    def test_num_nonlocal_gates(self, ghz3):
        assert ghz3.num_nonlocal_gates() == 2

    def test_branching_gate_count(self, ghz3):
        # H branches; CX gates are permutations.
        assert ghz3.branching_gate_count() == 1

    def test_width(self):
        qc = QuantumCircuit(2, 2)
        assert qc.width() == 4

    def test_draw_contains_gate_markers(self, ghz3):
        art = ghz3.draw()
        assert "[H]" in art
        assert "[CX]" in art
        assert art.count("\n") == 2


class TestIterationAndEquality:
    def test_len_iter_getitem(self, ghz3):
        assert len(ghz3) == 3
        assert ghz3[0].name == "h"
        assert [ins.name for ins in ghz3] == ["h", "cx", "cx"]

    def test_equality_by_structure(self):
        a = QuantumCircuit(2)
        a.h(0).cx(0, 1)
        b = QuantumCircuit(2, name="different_name")
        b.h(0).cx(0, 1)
        assert a == b
        b.x(0)
        assert a != b

    def test_circuit_from_instructions(self):
        instructions = [Instruction(standard_gate("h"), [0]), Instruction(standard_gate("cx"), [0, 1])]
        qc = circuit_from_instructions(2, instructions, name="rebuilt")
        assert qc.size() == 2
        assert qc.name == "rebuilt"
