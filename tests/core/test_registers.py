"""Tests for quantum/classical registers."""

import pytest

from repro.core.registers import ClassicalRegister, QuantumRegister
from repro.errors import CircuitError


class TestRegisters:
    def test_quantum_register_basics(self):
        register = QuantumRegister(3, "q")
        assert register.size == 3
        assert len(register) == 3
        assert register[1].index == 1
        assert register[1].register is register
        assert repr(register[2]) == "q[2]"

    def test_classical_register(self):
        register = ClassicalRegister(2, "c")
        assert [bit.index for bit in register] == [0, 1]

    def test_zero_size_rejected(self):
        with pytest.raises(CircuitError):
            QuantumRegister(0, "q")

    def test_invalid_names_rejected(self):
        with pytest.raises(CircuitError):
            QuantumRegister(1, "1bad")
        with pytest.raises(CircuitError):
            QuantumRegister(1, "")
        with pytest.raises(CircuitError):
            QuantumRegister(1, "has space")

    def test_bit_equality_is_register_identity(self):
        a = QuantumRegister(2, "q")
        b = QuantumRegister(2, "q")
        assert a[0] == a[0]
        assert a[0] != b[0]
        assert a[0] != a[1]
