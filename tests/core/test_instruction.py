"""Tests for circuit instructions."""

import pytest

from repro.core.gates import standard_gate
from repro.core.instruction import Instruction
from repro.core.parameters import Parameter
from repro.errors import CircuitError


class TestInstruction:
    def test_gate_instruction(self):
        instruction = Instruction(standard_gate("cx"), [1, 3])
        assert instruction.is_gate
        assert instruction.name == "cx"
        assert instruction.qubits == (1, 3)

    def test_arity_mismatch(self):
        with pytest.raises(CircuitError):
            Instruction(standard_gate("cx"), [0])

    def test_duplicate_qubits(self):
        with pytest.raises(CircuitError):
            Instruction(standard_gate("cx"), [1, 1])

    def test_negative_qubit(self):
        with pytest.raises(CircuitError):
            Instruction(standard_gate("h"), [-1])

    def test_gate_required_for_gate_kind(self):
        with pytest.raises(CircuitError):
            Instruction(None, [0], "gate")

    def test_unknown_kind(self):
        with pytest.raises(CircuitError):
            Instruction(None, [0], "teleport")

    def test_measurement_instruction(self):
        instruction = Instruction(None, [2], "measure", [0])
        assert instruction.is_measurement
        assert instruction.name == "measure"
        assert instruction.clbits == (0,)

    def test_bind_passes_through_unparameterized(self):
        instruction = Instruction(standard_gate("h"), [0])
        assert instruction.bind({}) == instruction

    def test_bind_substitutes(self):
        theta = Parameter("theta")
        instruction = Instruction(standard_gate("rz", theta), [0])
        bound = instruction.bind({theta: 0.5})
        assert not bound.free_parameters
        assert bound.gate.params[0] == pytest.approx(0.5)

    def test_remapped(self):
        instruction = Instruction(standard_gate("cx"), [0, 1])
        remapped = instruction.remapped({0: 4, 1: 2})
        assert remapped.qubits == (4, 2)

    def test_remapped_missing_qubit(self):
        instruction = Instruction(standard_gate("cx"), [0, 1])
        with pytest.raises(CircuitError):
            instruction.remapped({0: 4})

    def test_equality(self):
        first = Instruction(standard_gate("h"), [0])
        second = Instruction(standard_gate("h"), [0])
        third = Instruction(standard_gate("h"), [1])
        assert first == second
        assert first != third
