"""Tests for the gate library."""

import math

import numpy as np
import pytest

from repro.core.gates import (
    STANDARD_GATES,
    Gate,
    canonical_gate_name,
    controlled_gate,
    is_standard_gate,
    standard_gate,
    unitary_gate,
)
from repro.core.parameters import Parameter
from repro.errors import GateError, ParameterError


class TestStandardGateLibrary:
    @pytest.mark.parametrize("name", sorted(STANDARD_GATES))
    def test_every_standard_gate_is_unitary(self, name):
        spec = STANDARD_GATES[name]
        params = [0.7] * spec.num_params
        gate = standard_gate(name, *params)
        gate.check_unitary()

    def test_alias_resolution(self):
        assert canonical_gate_name("cnot") == "cx"
        assert canonical_gate_name("u1") == "p"
        assert canonical_gate_name("toffoli") == "ccx"

    def test_unknown_gate_raises(self):
        with pytest.raises(GateError):
            canonical_gate_name("frobnicate")
        assert not is_standard_gate("frobnicate")

    def test_wrong_parameter_count(self):
        with pytest.raises(GateError):
            standard_gate("rz")
        with pytest.raises(GateError):
            standard_gate("h", 0.5)

    def test_hadamard_matrix(self):
        matrix = standard_gate("h").matrix()
        expected = np.array([[1, 1], [1, -1]]) / math.sqrt(2)
        np.testing.assert_allclose(matrix, expected)

    def test_cx_matrix_matches_paper_table(self):
        # Fig. 2b of the paper: in 0->0, 1->3, 2->2, 3->1 (control = local bit 0).
        rows = standard_gate("cx").nonzero_entries()
        assert rows == [(0, 0, 1.0, 0.0), (1, 3, 1.0, 0.0), (2, 2, 1.0, 0.0), (3, 1, 1.0, 0.0)]

    def test_hadamard_rows_match_paper_table(self):
        rows = standard_gate("h").nonzero_entries()
        amp = 1 / math.sqrt(2)
        assert rows == [
            (0, 0, pytest.approx(amp), 0.0),
            (0, 1, pytest.approx(amp), 0.0),
            (1, 0, pytest.approx(amp), 0.0),
            (1, 1, pytest.approx(-amp), 0.0),
        ]

    def test_rz_depends_on_angle(self):
        assert not np.allclose(standard_gate("rz", 0.3).matrix(), standard_gate("rz", 0.7).matrix())

    def test_ccx_flips_only_when_both_controls_set(self):
        matrix = standard_gate("ccx").matrix()
        # Local index 3 = both controls set, target 0 -> local index 7.
        assert matrix[7, 3] == pytest.approx(1.0)
        assert matrix[3, 3] == pytest.approx(0.0)
        assert matrix[2, 2] == pytest.approx(1.0)


class TestGateBehaviour:
    def test_parameterized_gate_binding(self):
        theta = Parameter("theta")
        gate = standard_gate("rx", theta)
        assert gate.is_parameterized
        bound = gate.bind({theta: math.pi})
        assert not bound.is_parameterized
        np.testing.assert_allclose(bound.matrix(), np.array([[0, -1j], [-1j, 0]]), atol=1e-12)

    def test_unbound_matrix_raises(self):
        gate = standard_gate("rx", Parameter("theta"))
        with pytest.raises(ParameterError):
            gate.matrix()

    def test_inverse_gate(self):
        gate = standard_gate("s")
        inverse = gate.inverse()
        np.testing.assert_allclose(gate.matrix() @ inverse.matrix(), np.eye(2), atol=1e-12)

    def test_inverse_of_parameterized_raises(self):
        with pytest.raises(GateError):
            standard_gate("rz", Parameter("t")).inverse()

    def test_diagonal_and_permutation_classification(self):
        assert standard_gate("z").is_diagonal()
        assert standard_gate("rz", 0.3).is_diagonal()
        assert not standard_gate("h").is_diagonal()
        assert standard_gate("x").is_permutation()
        assert standard_gate("cx").is_permutation()
        assert not standard_gate("h").is_permutation()

    def test_equality(self):
        assert standard_gate("h") == standard_gate("h")
        assert standard_gate("rz", 0.5) == standard_gate("rz", 0.5)
        assert standard_gate("rz", 0.5) != standard_gate("rz", 0.6)
        assert standard_gate("h") != standard_gate("x")

    def test_free_parameters_property(self):
        theta = Parameter("theta")
        assert standard_gate("rz", theta).free_parameters == frozenset({theta})
        assert standard_gate("h").free_parameters == frozenset()


class TestCustomGates:
    def test_unitary_gate_roundtrip(self):
        matrix = standard_gate("h").matrix()
        gate = unitary_gate(matrix, name="my_h")
        np.testing.assert_allclose(gate.matrix(), matrix)
        assert gate.name == "my_h"

    def test_non_unitary_rejected(self):
        with pytest.raises(GateError):
            unitary_gate(np.array([[1, 0], [0, 2]]))

    def test_non_power_of_two_rejected(self):
        with pytest.raises(GateError):
            unitary_gate(np.eye(3))

    def test_non_square_rejected(self):
        with pytest.raises(GateError):
            unitary_gate(np.ones((2, 4)))

    def test_controlled_gate_construction(self):
        controlled_z = controlled_gate(standard_gate("z"))
        np.testing.assert_allclose(controlled_z.matrix(), standard_gate("cz").matrix(), atol=1e-12)

    def test_controlled_gate_of_parameterized_raises(self):
        with pytest.raises(GateError):
            controlled_gate(standard_gate("rz", Parameter("t")))

    def test_gate_requires_positive_qubits(self):
        with pytest.raises(GateError):
            Gate("bad", 0)
