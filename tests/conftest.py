"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.backends import MemDBBackend, SQLiteBackend
from repro.circuits import ghz_circuit
from repro.simulators import (
    DecisionDiagramSimulator,
    MPSSimulator,
    SparseSimulator,
    StatevectorSimulator,
)


@pytest.fixture
def ghz3():
    """The paper's running-example circuit: a 3-qubit GHZ preparation."""
    return ghz_circuit(3)


@pytest.fixture
def statevector_simulator():
    return StatevectorSimulator()


@pytest.fixture
def sparse_simulator():
    return SparseSimulator()


@pytest.fixture
def sqlite_backend():
    return SQLiteBackend()


@pytest.fixture
def memdb_backend():
    return MemDBBackend()


@pytest.fixture(params=["sqlite-cte", "sqlite-materialized", "memdb-cte", "memdb-materialized"])
def any_rdbms_backend(request):
    """Every RDBMS backend/mode combination available offline."""
    kind, mode = request.param.split("-")
    if kind == "sqlite":
        return SQLiteBackend(mode=mode)
    return MemDBBackend(mode=mode)


@pytest.fixture(params=["statevector", "sparse", "mps", "dd", "sqlite", "memdb"])
def any_method(request):
    """Every simulation method (SQL backends and baselines)."""
    factories = {
        "statevector": StatevectorSimulator,
        "sparse": SparseSimulator,
        "mps": MPSSimulator,
        "dd": DecisionDiagramSimulator,
        "sqlite": SQLiteBackend,
        "memdb": MemDBBackend,
    }
    return factories[request.param]()
