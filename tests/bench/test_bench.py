"""Tests for the benchmarking framework (metrics, memory, workloads, runner, sweep, report)."""

import math

import pytest

from repro.backends import SQLiteBackend
from repro.bench import (
    BenchmarkRecord,
    BenchmarkRunner,
    MemoryBudget,
    ParameterSweep,
    STATUS_OK,
    STATUS_OOM,
    capacity_ratio,
    capacity_table,
    default_method_factories,
    fastest_method_summary,
    get_workload,
    grid,
    max_relational_qubits,
    max_statevector_qubits,
    memory_table,
    records_to_rows,
    relational_bytes,
    scaling_plot,
    speedup,
    statevector_bytes,
    time_callable,
    timing_table,
    trace_allocations,
    win_counts,
    workload_names,
    workloads_by_sparsity,
)
from repro.bench.memory import (
    PAPER_MEMORY_LIMIT_BYTES,
    encoded_storage_report,
    peak_rss_bytes,
)
from repro.circuits import qaoa_maxcut_circuit, ring_graph, maxcut_expected_value
from repro.errors import BenchmarkError
from repro.simulators import SparseSimulator, StatevectorSimulator


class TestMemoryAccounting:
    def test_statevector_bytes(self):
        assert statevector_bytes(10) == 16 * 1024
        with pytest.raises(BenchmarkError):
            statevector_bytes(0)

    def test_relational_bytes(self):
        assert relational_bytes(2) == 48

    def test_max_statevector_qubits_under_paper_limit(self):
        # 2 GB / 16 bytes = 2^27 amplitudes -> 27 qubits.
        assert max_statevector_qubits(PAPER_MEMORY_LIMIT_BYTES) == 27

    def test_max_relational_qubits_for_ghz_hits_encoding_limit(self):
        assert max_relational_qubits(PAPER_MEMORY_LIMIT_BYTES, lambda n: 2) == 62

    def test_capacity_ratio_shape(self):
        ratio = capacity_ratio(PAPER_MEMORY_LIMIT_BYTES, lambda n: 2)
        assert ratio["relational_max_qubits"] > ratio["statevector_max_qubits"]
        assert ratio["extra_qubits"] == ratio["relational_max_qubits"] - ratio["statevector_max_qubits"]

    def test_budget_helpers(self):
        budget = MemoryBudget.mebibytes(1)
        assert budget.fits_relational(1000)
        assert not budget.fits_statevector(20)
        assert MemoryBudget.paper_limit().limit_bytes == PAPER_MEMORY_LIMIT_BYTES
        with pytest.raises(BenchmarkError):
            MemoryBudget(0)

    def test_physical_memory_probes(self):
        assert peak_rss_bytes() > 0
        with trace_allocations() as report:
            _payload = [0] * 100000
        assert report.peak_bytes > 0

    def test_encoded_storage_report(self):
        from repro.backends.memdb.engine import MemDatabase

        db = MemDatabase(enable_dict_encoding=True)
        db.execute("CREATE TABLE t (id BIGINT NOT NULL, s TEXT)")
        db.execute("INSERT INTO t (id, s) VALUES (0, 'x'), (1, NULL), (2, 'y'), (3, 'x')")
        report = encoded_storage_report(db.storage_stats())
        assert report["dict_encoding"] is True
        assert report["total_bytes"] > 0
        column = report["tables"]["t"]["columns"]["s"]
        assert column["kind"] == "dict"
        assert column["dictionary_size"] == 2
        assert column["null_count"] == 1
        # The floor an object representation needs: one reference per row
        # plus the distinct string payloads.
        assert column["object_bytes_floor"] == 8 * 4 + column["dictionary_bytes"]
        assert report["data_bytes"] + report["dictionary_bytes"] + report[
            "validity_bytes"
        ] == sum(
            stats["data_bytes"] + stats["dictionary_bytes"] + stats["validity_bytes"]
            for table in report["tables"].values()
            for stats in table["columns"].values()
        )

    def test_encoded_storage_report_empty_stats(self):
        report = encoded_storage_report({"dict_encoding": None, "total_bytes": 0, "tables": {}})
        assert report["tables"] == {}
        assert report["data_bytes"] == 0


class TestMetrics:
    def test_record_to_dict(self):
        record = BenchmarkRecord("ghz", 4, "sqlite", wall_time_s=0.1, extra={"note": 1})
        row = record.to_dict()
        assert row["workload"] == "ghz"
        assert row["extra_note"] == 1
        assert record.succeeded

    def test_time_callable(self):
        stats = time_callable(lambda: sum(range(1000)), repeats=3, warmup=1)
        assert stats.best <= stats.mean
        assert len(stats.samples) == 3
        assert stats.to_dict()["repeats"] == 3

    def test_time_callable_validation(self):
        with pytest.raises(BenchmarkError):
            time_callable(lambda: None, repeats=0)

    def test_speedup(self):
        baseline = [BenchmarkRecord("ghz", 4, "statevector", wall_time_s=1.0)]
        candidate = [BenchmarkRecord("ghz", 4, "sqlite", wall_time_s=0.5)]
        assert speedup(baseline, candidate)[("ghz", 4)] == pytest.approx(2.0)


class TestWorkloads:
    def test_registry_contains_paper_workloads(self):
        names = workload_names()
        assert {"ghz", "superposition", "parity", "qft"} <= set(names)

    def test_unknown_workload(self):
        with pytest.raises(BenchmarkError):
            get_workload("nonexistent")

    def test_sparsity_classes(self):
        sparse_names = {w.name for w in workloads_by_sparsity("sparse")}
        assert "ghz" in sparse_names and "superposition" not in sparse_names

    def test_peak_rows_model_matches_simulation(self):
        for name in ("ghz", "superposition", "w_state"):
            workload = get_workload(name)
            state = SparseSimulator().run(workload.build(4)).state
            assert state.num_nonzero <= workload.peak_rows(4)

    def test_build(self):
        assert get_workload("ghz").build(5).num_qubits == 5


class TestRunner:
    def test_small_comparison_run(self):
        runner = BenchmarkRunner(
            methods={
                "sqlite": lambda: SQLiteBackend(mode="materialized"),
                "statevector": StatevectorSimulator,
            }
        )
        records = runner.run_workload("ghz", sizes=[3, 4])
        assert len(records) == 4
        assert all(record.status == STATUS_OK for record in records)
        assert all(record.extra.get("matches_reference", True) for record in records)

    def test_oom_is_recorded_not_raised(self):
        runner = BenchmarkRunner(
            methods={
                "statevector": lambda: StatevectorSimulator(max_state_bytes=200),
                "sparse": lambda: SparseSimulator(max_state_bytes=200),
            },
            reference="sparse",
        )
        records = runner.run_workload("ghz", sizes=[6])
        by_method = {record.method: record for record in records}
        assert by_method["statevector"].status == STATUS_OOM
        assert by_method["sparse"].status == STATUS_OK

    def test_max_simulable_qubits_shape(self):
        runner = BenchmarkRunner(
            methods={
                "statevector": lambda: StatevectorSimulator(),
                "sqlite": lambda: SQLiteBackend(mode="materialized"),
            },
            verify=False,
        )
        budget = 16 * (1 << 6)  # room for a 6-qubit dense vector
        best = runner.max_simulable_qubits("ghz", budget, candidate_sizes=[4, 6, 8, 10])
        assert best["sqlite"] > best["statevector"]

    def test_max_simulable_qubits_uses_one_prepared_instance_per_method(self):
        """The capacity sweep routes through compile-bind-execute.

        One method instance per method (not per size), every run via an
        explicit Executable: the factory call count proves the routing, the
        compile counter proves each size compiled exactly once.
        """
        instances = []
        compiles = []

        class CountingSimulator(StatevectorSimulator):
            def compile(self, circuit):
                compiles.append(circuit.num_qubits)
                return super().compile(circuit)

        def factory():
            simulator = CountingSimulator()
            instances.append(simulator)
            return simulator

        runner = BenchmarkRunner(methods={"statevector": factory}, verify=False)
        budget = 16 * (1 << 6)
        best = runner.max_simulable_qubits("ghz", budget, candidate_sizes=[4, 6, 8])
        assert best["statevector"] == 6
        assert len(instances) == 1
        assert sorted(compiles) == [4, 6, 8]
        assert instances[0].max_state_bytes == budget

    def test_empty_methods_rejected(self):
        with pytest.raises(BenchmarkError):
            BenchmarkRunner(methods={})

    def test_default_factories_cover_all_methods(self):
        assert set(default_method_factories()) == {"sqlite", "memdb", "statevector", "sparse", "mps", "dd"}


class TestSweep:
    def test_grid(self):
        points = grid({"gamma": [0.1, 0.2], "beta": [0.3]})
        assert len(points) == 2
        with pytest.raises(BenchmarkError):
            grid({})

    def test_qaoa_sweep_with_observable(self):
        edges = ring_graph(4)

        def family(point):
            return qaoa_maxcut_circuit(4, edges=edges, p=1, gammas=[point["gamma"]], betas=[point["beta"]])

        sweep = ParameterSweep(
            family,
            method_factory=StatevectorSimulator,
            observable=lambda result: maxcut_expected_value(edges, result.state.probabilities()),
        )
        points = grid({"gamma": [0.2, 0.6], "beta": [0.3, 0.9]})
        results = sweep.run(points)
        assert len(results) == 4
        assert all(result.status == "ok" for result in results)
        best = sweep.best_point(results)
        assert best.observable == max(result.observable for result in results)

    def test_sweep_records_errors(self):
        def broken_family(_point):
            raise ValueError("boom")

        def family(point):
            if point["x"] > 0:
                from repro.circuits import ghz_circuit

                return ghz_circuit(2)
            raise BenchmarkError("bad point")

        sweep = ParameterSweep(family, method_factory=StatevectorSimulator)
        results = sweep.run(grid({"x": [-1, 1]}))
        statuses = sorted(result.status for result in results)
        assert statuses == ["error", "ok"]

    def test_sweep_result_to_dict(self):
        sweep_result_fields = ParameterSweep(
            lambda p: get_workload("ghz").build(2), StatevectorSimulator
        ).run([{"n": 2.0}])[0].to_dict()
        assert "param_n" in sweep_result_fields


class TestReport:
    @pytest.fixture
    def records(self):
        return [
            BenchmarkRecord("ghz", 4, "sqlite", wall_time_s=0.2, peak_state_bytes=48, status=STATUS_OK),
            BenchmarkRecord("ghz", 4, "statevector", wall_time_s=0.1, peak_state_bytes=256, status=STATUS_OK),
            BenchmarkRecord("ghz", 6, "sqlite", wall_time_s=0.3, peak_state_bytes=48, status=STATUS_OK),
            BenchmarkRecord("ghz", 6, "statevector", wall_time_s=0.4, peak_state_bytes=1024, status=STATUS_OK),
        ]

    def test_timing_table(self, records):
        table = timing_table(records, "ghz")
        assert "qubits" in table and "sqlite" in table

    def test_memory_table(self, records):
        table = memory_table(records, "ghz")
        assert "1024" in table

    def test_scaling_plot(self, records):
        assert "wall time" in scaling_plot(records, "ghz")

    def test_fastest_and_win_counts(self, records):
        fastest = fastest_method_summary(records)
        assert fastest[("ghz", 4)] == "statevector"
        assert fastest[("ghz", 6)] == "sqlite"
        assert win_counts(records) == {"statevector": 1, "sqlite": 1}

    def test_capacity_table(self):
        table = capacity_table({"sqlite": 40, "statevector": 22}, budget_bytes=1 << 30)
        assert "sqlite" in table and "40" in table

    def test_records_to_rows(self, records):
        rows = records_to_rows(records)
        assert rows[0]["workload"] == "ghz"

    def test_empty_workload_rejected(self, records):
        with pytest.raises(BenchmarkError):
            timing_table(records, "nonexistent")

    def test_engine_stats_table(self):
        from repro.backends import MemDBBackend
        from repro.bench import engine_stats_table
        from repro.circuits import ghz_circuit

        backend = MemDBBackend()
        backend.run(ghz_circuit(3))
        table = engine_stats_table(backend.engine_stats())
        assert "plan_cache" in table and "optimizer" in table
        assert "hits" in table and "enabled" in table

    def test_engine_stats_table_rejects_empty(self):
        from repro.bench import engine_stats_table

        with pytest.raises(BenchmarkError):
            engine_stats_table({})


class TestTemplateSweep:
    """ParameterSweep over a parameterized template (compile once, bind per point)."""

    def _template(self):
        return qaoa_maxcut_circuit(4, edges=ring_graph(4), p=1)

    def test_template_sweep_matches_callable_family(self):
        edges = ring_graph(4)
        points = grid({"gamma[0]": [0.2, 0.6], "beta[0]": [0.3, 0.9]})

        template_sweep = ParameterSweep(
            self._template(),
            method_factory=StatevectorSimulator,
            observable=lambda result: maxcut_expected_value(edges, result.state.probabilities()),
        )

        def family(point):
            return qaoa_maxcut_circuit(
                4, edges=edges, p=1, gammas=[point["gamma[0]"]], betas=[point["beta[0]"]]
            )

        callable_sweep = ParameterSweep(
            family,
            method_factory=StatevectorSimulator,
            observable=lambda result: maxcut_expected_value(edges, result.state.probabilities()),
        )
        template_results = template_sweep.run(points)
        callable_results = callable_sweep.run(points)
        assert all(result.status == "ok" for result in template_results)
        for mine, theirs in zip(template_results, callable_results):
            assert mine.observable == pytest.approx(theirs.observable, abs=1e-9)

    def test_template_sweep_without_reuse(self):
        points = grid({"gamma[0]": [0.2, 0.6], "beta[0]": [0.3]})
        sweep = ParameterSweep(
            self._template(), method_factory=StatevectorSimulator, reuse_method=False
        )
        results = sweep.run(points)
        assert [result.status for result in results] == ["ok", "ok"]

    def test_template_sweep_records_bad_points(self):
        points = [{"gamma[0]": 0.2, "beta[0]": 0.3}, {"nonsense": 1.0}]
        sweep = ParameterSweep(self._template(), method_factory=StatevectorSimulator)
        results = sweep.run(points)
        assert [result.status for result in results] == ["ok", "error"]
        assert "nonsense" in results[1].error

    def test_template_sweep_shares_one_executable(self):
        from repro.backends import MemDBBackend
        from repro.backends.memdb.engine import PlanCache

        cache = PlanCache()
        points = grid({"gamma[0]": [0.2, 0.4, 0.6], "beta[0]": [0.3]})
        sweep = ParameterSweep(self._template(), method_factory=lambda: MemDBBackend(plan_cache=cache))
        results = sweep.run(points)
        assert all(result.status == "ok" for result in results)
        # compile() prepared the hot plan once; every point re-bound it.
        stats = cache.stats()
        assert stats["planned"] >= 1
        assert stats["hits"] > 0
