"""Tests for trace identity: traceparent parsing, context lineage, span records."""

import pytest

from repro.obs.tracing import TraceContext, new_trace_id, next_span_id, span_record


class TestIdGeneration:
    def test_trace_ids_are_32_hex_and_distinct(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        for trace_id in ids:
            assert len(trace_id) == 32
            int(trace_id, 16)  # must parse as hex

    def test_span_ids_are_16_hex_and_distinct(self):
        ids = {next_span_id() for _ in range(64)}
        assert len(ids) == 64
        for span_id in ids:
            assert len(span_id) == 16
            int(span_id, 16)


class TestTraceparent:
    def test_round_trip_preserves_trace_and_parents_to_upstream_span(self):
        upstream = TraceContext.generate()
        parsed = TraceContext.from_traceparent(upstream.to_traceparent())
        assert parsed is not None
        assert parsed.trace_id == upstream.trace_id
        # The adopter becomes a *child* of the upstream span: same trace,
        # fresh local root span, upstream span recorded as the parent.
        assert parsed.parent_span_id == upstream.span_id
        assert parsed.span_id != upstream.span_id
        assert parsed.sampled is True

    def test_unsampled_flag_honored_and_re_emitted(self):
        header = f"00-{'a' * 32}-{'b' * 16}-00"
        parsed = TraceContext.from_traceparent(header)
        assert parsed is not None
        assert parsed.sampled is False
        assert parsed.to_traceparent().endswith("-00")
        sampled = TraceContext.from_traceparent(f"00-{'a' * 32}-{'b' * 16}-01")
        assert sampled.sampled is True
        assert sampled.to_traceparent().endswith("-01")

    @pytest.mark.parametrize(
        "header",
        [
            "",
            "00",
            f"00-{'a' * 32}-{'b' * 16}",  # three parts
            f"00-{'a' * 32}-{'b' * 16}-01-extra",  # five parts
            f"0-{'a' * 32}-{'b' * 16}-01",  # short version
            f"00-{'a' * 31}-{'b' * 16}-01",  # short trace id
            f"00-{'a' * 32}-{'b' * 15}-01",  # short span id
            f"00-{'a' * 32}-{'b' * 16}-1",  # short flags
            f"00-{'g' * 32}-{'b' * 16}-01",  # non-hex trace id
            f"00-{'a' * 32}-{'z' * 16}-01",  # non-hex span id
            f"00-{'a' * 32}-{'b' * 16}-zz",  # non-hex flags
            f"ff-{'a' * 32}-{'b' * 16}-01",  # forbidden version
            f"00-{'0' * 32}-{'b' * 16}-01",  # all-zero trace id
            f"00-{'a' * 32}-{'0' * 16}-01",  # all-zero span id
        ],
    )
    def test_malformed_headers_rejected(self, header):
        assert TraceContext.from_traceparent(header) is None

    def test_surrounding_whitespace_tolerated(self):
        header = f"  00-{'a' * 32}-{'b' * 16}-01 \n"
        assert TraceContext.from_traceparent(header) is not None


class TestLineage:
    def test_child_shares_trace_and_parents_here(self):
        root = TraceContext.generate(sampled=False)
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_span_id == root.span_id
        assert child.span_id != root.span_id
        assert child.sampled is False
        assert child.started_s == root.started_s


class TestSpanRecord:
    def test_shape_matches_span_to_dict(self):
        record = span_record(
            "queue_wait",
            trace_id="a" * 32,
            parent_span_id="b" * 16,
            start_s=1.0,
            end_s=1.25,
            attrs={"tenant": "acme"},
        )
        assert set(record) == {
            "name", "start_s", "duration_s", "attrs", "children",
            "trace_id", "span_id", "parent_span_id",
        }
        assert record["duration_s"] == pytest.approx(0.25)
        assert record["children"] == []
        assert record["attrs"] == {"tenant": "acme"}
        assert len(record["span_id"]) == 16

    def test_duration_clamped_non_negative(self):
        record = span_record("x", trace_id="a" * 32, start_s=5.0, end_s=4.0)
        assert record["duration_s"] == 0.0

    def test_attrs_are_copied_not_aliased(self):
        attrs = {"k": 1}
        record = span_record("x", trace_id="a" * 32, start_s=0.0, end_s=0.0, attrs=attrs)
        attrs["k"] = 2
        assert record["attrs"]["k"] == 1
