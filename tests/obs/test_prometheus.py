"""Tests for the Prometheus text exposition of the metrics registry."""

import re

from repro.obs.metrics import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsRegistry,
    prometheus_exposition,
)

#: One exposition line: a comment, or ``name{labels} value``.
_LINE = re.compile(
    r"^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[+-]Inf|-?[0-9.e+-]+))$"
)


def _lines(text):
    assert text.endswith("\n")
    return [line for line in text.splitlines() if line]


def test_every_line_is_valid_exposition_syntax():
    registry = MetricsRegistry()
    registry.counter("jobs.done").inc(3)
    registry.gauge("jobs.queue_depth").set(2)
    registry.histogram("tenant.acme.latency_seconds").observe(0.25)
    registry.histogram("http.route./v1/jobs.latency_seconds").observe(
        0.01, exemplar={"trace_id": "ab" * 16}
    )
    for line in _lines(prometheus_exposition(registry.snapshot())):
        assert _LINE.match(line), f"invalid exposition line: {line!r}"


def test_counters_get_total_suffix_and_type_line():
    registry = MetricsRegistry()
    registry.counter("jobs.submitted").inc(5)
    lines = _lines(prometheus_exposition(registry.snapshot()))
    assert "# TYPE repro_jobs_submitted_total counter" in lines
    assert "repro_jobs_submitted_total 5" in lines


def test_tenant_and_route_names_fold_into_labels():
    registry = MetricsRegistry()
    registry.counter("tenant.acme.jobs_done").inc()
    registry.histogram("http.route./v1/jobs.latency_seconds").observe(0.5)
    text = prometheus_exposition(registry.snapshot())
    assert 'repro_tenant_jobs_done_total{tenant="acme"} 1' in text
    assert 'repro_http_route_latency_seconds{route="/v1/jobs",quantile="0.5"}' in text


def test_histograms_render_as_summaries():
    registry = MetricsRegistry()
    histogram = registry.histogram("jobs.latency_seconds")
    for value in (0.1, 0.2, 0.3, 0.5):
        histogram.observe(value)
    lines = _lines(prometheus_exposition(registry.snapshot()))
    assert "# TYPE repro_jobs_latency_seconds summary" in lines
    for quantile in ("0.5", "0.95", "0.99"):
        assert any(
            line.startswith(f'repro_jobs_latency_seconds{{quantile="{quantile}"}} ')
            for line in lines
        ), f"missing quantile {quantile}"
    assert "repro_jobs_latency_seconds_sum 1.1" in lines
    assert "repro_jobs_latency_seconds_count 4" in lines


def test_exemplar_emitted_as_comment_next_to_its_series():
    registry = MetricsRegistry()
    registry.histogram("tenant.acme.latency_seconds").observe(
        1.5, exemplar={"trace_id": "cd" * 16, "job_id": 9}
    )
    lines = _lines(prometheus_exposition(registry.snapshot()))
    (exemplar_line,) = [line for line in lines if line.startswith("# exemplar ")]
    assert 'repro_tenant_latency_seconds{tenant="acme",quantile="0.99"}' in exemplar_line
    assert f"trace_id={'cd' * 16}" in exemplar_line
    assert "job_id=9" in exemplar_line


def test_exemplar_snapshot_tracks_the_tail_sample():
    registry = MetricsRegistry()
    histogram = registry.histogram("x.latency_seconds")
    for index in range(50):
        histogram.observe(0.01, exemplar={"trace_id": f"fast{index}"})
    histogram.observe(9.0, exemplar={"trace_id": "straggler"})
    snapshot = histogram.snapshot()
    assert snapshot["exemplar"]["trace_id"] == "straggler"
    assert snapshot["exemplar"]["value"] == 9.0


def test_later_snapshots_win_name_collisions():
    first = MetricsRegistry()
    first.counter("shared.counter").inc(1)
    second = MetricsRegistry()
    second.counter("shared.counter").inc(7)
    text = prometheus_exposition(first.snapshot(), second.snapshot())
    assert "repro_shared_counter_total 7" in text
    assert "repro_shared_counter_total 1" not in text


def test_metric_names_sanitized_and_label_values_escaped():
    registry = MetricsRegistry()
    registry.counter("weird-name.with spaces").inc()
    registry.counter('tenant.ev"il\\corp.jobs').inc()
    text = prometheus_exposition(registry.snapshot())
    assert "repro_weird_name_with_spaces_total 1" in text
    assert 'repro_tenant_jobs_total{tenant="ev\\"il\\\\corp"} 1' in text


def test_content_type_is_classic_text():
    assert PROMETHEUS_CONTENT_TYPE.startswith("text/plain")
    assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE
