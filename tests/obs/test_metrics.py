"""Tests for the metrics registry: counters, gauges, histograms, concurrency."""

import threading

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, global_registry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter()
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_rejects_negative_increment(self):
        counter = Counter()
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7


class TestHistogram:
    def test_snapshot_of_known_values(self):
        histogram = Histogram()
        for value in range(1, 101):
            histogram.observe(float(value))
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 100
        assert snapshot["min"] == 1.0
        assert snapshot["max"] == 100.0
        # Nearest-rank over a sorted window: round(f * (n-1)) indexes in.
        assert snapshot["p50"] == 51.0
        assert snapshot["p95"] == 95.0
        assert snapshot["p99"] == 99.0
        assert snapshot["sum"] == pytest.approx(5050.0)
        assert snapshot["mean"] == pytest.approx(50.5)

    def test_empty_snapshot_is_all_zeros(self):
        snapshot = Histogram().snapshot()
        assert snapshot["count"] == 0
        assert snapshot["p50"] == 0.0
        assert snapshot["sum"] == 0.0

    def test_window_is_bounded_but_lifetime_totals_are_exact(self):
        histogram = Histogram(window=16)
        for value in range(1000):
            histogram.observe(float(value))
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 1000
        assert snapshot["min"] == 0.0
        assert snapshot["max"] == 999.0
        # Percentiles come from the recent window only (the last 16 samples).
        assert snapshot["p50"] >= 984.0

    def test_rejects_non_positive_window(self):
        with pytest.raises(ValueError):
            Histogram(window=0)

    def test_time_context_manager_observes_once(self):
        histogram = Histogram()
        with histogram.time():
            pass
        assert histogram.count == 1
        assert histogram.snapshot()["min"] >= 0.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("jobs.done").inc(3)
        registry.gauge("queue.depth").set(2)
        registry.histogram("latency").observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"jobs.done": 3}
        assert snapshot["gauges"] == {"queue.depth": 2}
        assert snapshot["histograms"]["latency"]["count"] == 1

    def test_names_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a")
        assert registry.names() == ["a", "b"]

    def test_global_registry_is_a_singleton(self):
        assert global_registry() is global_registry()

    def test_concurrent_updates_lose_nothing(self):
        registry = MetricsRegistry()
        threads_n, per_thread = 8, 2000

        def work() -> None:
            counter = registry.counter("stress.counter")
            histogram = registry.histogram("stress.hist")
            gauge = registry.gauge("stress.gauge")
            for step in range(per_thread):
                counter.inc()
                histogram.observe(float(step))
                gauge.inc()
                gauge.dec()

        threads = [threading.Thread(target=work) for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter("stress.counter").value == threads_n * per_thread
        assert registry.histogram("stress.hist").count == threads_n * per_thread
        assert registry.gauge("stress.gauge").value == 0

    def test_concurrent_get_or_create_same_name(self):
        registry = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(8)

        def work() -> None:
            barrier.wait()
            seen.append(registry.counter("race"))

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(instrument is seen[0] for instrument in seen)
