"""Tests for spans, the tracer, sinks, and the unified stats schema."""

import json
import threading

import pytest

from repro.obs import (
    JsonlTraceSink,
    MetricsRegistry,
    SlowQueryLog,
    Span,
    TraceRingBuffer,
    Tracer,
    annotate_current,
    current_span,
    flatten_counters,
    maybe_span,
    reset_shared_tracer,
    shared_tracer,
    unified_engine_stats,
)
from repro.obs.tracing import TRACE_ENV_VAR


@pytest.fixture(autouse=True)
def _fresh_shared_tracer():
    reset_shared_tracer()
    yield
    reset_shared_tracer()


class TestSpan:
    def test_finish_freezes_duration(self):
        span = Span("s")
        span.finish()
        frozen = span.duration_s
        assert span.duration_s == frozen

    def test_set_add_and_walk(self):
        root = Span("root")
        child = Span("child")
        root.children.append(child)
        root.set(rows=5)
        child.add("morsels", 3)
        child.add("morsels", 2)
        assert [span.name for span in root.walk()] == ["root", "child"]
        assert root.find("child").attrs["morsels"] == 5
        assert root.find("child", morsels=5) is child
        assert root.find("child", morsels=99) is None

    def test_to_dict_is_json_serializable(self):
        root = Span("root", {"k": 1})
        root.children.append(Span("child"))
        root.finish()
        encoded = json.dumps(root.to_dict())
        decoded = json.loads(encoded)
        assert decoded["name"] == "root"
        assert decoded["children"][0]["name"] == "child"


class TestTracerNesting:
    def test_spans_nest_and_pop(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            assert current_span() is outer
            with tracer.span("inner") as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is None
        assert outer.children == [inner]

    def test_exception_still_finishes_and_dispatches(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        assert current_span() is None
        traces = tracer.recent_traces()
        assert len(traces) == 1 and traces[0]["name"] == "failing"

    def test_only_root_lands_in_ring(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.query("SELECT 1"):
                pass
        traces = tracer.recent_traces()
        assert len(traces) == 1
        assert traces[0]["name"] == "outer"
        assert traces[0]["children"][0]["name"] == "query"

    def test_query_records_metrics_even_when_nested(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry)
        with tracer.span("outer"):
            with tracer.query("SELECT 1"):
                pass
        assert registry.counter("engine.queries").value == 1
        assert registry.histogram("engine.query_seconds").count == 1

    def test_thread_local_isolation(self):
        tracer = Tracer()
        seen = {}

        def worker() -> None:
            seen["before"] = current_span()
            with tracer.span("worker-root") as span:
                seen["during"] = current_span() is span

        with tracer.span("main-root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["before"] is None
        assert seen["during"] is True
        # Two independent roots, one per thread.
        assert sorted(t["name"] for t in tracer.recent_traces()) == ["main-root", "worker-root"]

    def test_annotate_current_accumulates_or_noops(self):
        annotate_current("never_recorded")  # no active span: must not raise
        tracer = Tracer()
        with tracer.span("op") as span:
            annotate_current("morsel_tasks", 4)
            annotate_current("morsel_tasks", 2)
        assert span.attrs["morsel_tasks"] == 6


class TestMaybeSpan:
    def test_noop_without_env_or_active_span(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV_VAR, raising=False)
        with maybe_span("compile") as span:
            assert span is None

    def test_env_enables_root(self, monkeypatch):
        monkeypatch.setenv(TRACE_ENV_VAR, "1")
        with maybe_span("compile", method="memdb") as span:
            assert span is not None
        roots = shared_tracer().recent_traces()
        assert roots and roots[-1]["name"] == "compile"

    def test_nests_under_active_span_regardless_of_env(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV_VAR, raising=False)
        tracer = Tracer()
        with tracer.span("job") as job:
            with maybe_span("compile") as span:
                assert span is not None
        assert job.children[0].name == "compile"


class TestSinks:
    def test_ring_buffer_bounds_and_drain(self):
        ring = TraceRingBuffer(maxlen=3)
        for index in range(5):
            ring.append({"name": str(index)})
        assert ring.appended == 5
        assert [t["name"] for t in ring.snapshot()] == ["2", "3", "4"]
        assert len(ring.drain()) == 3
        assert len(ring) == 0

    def test_jsonl_sink_writes_one_line_per_trace(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        sink = JsonlTraceSink(str(path))
        sink.write({"name": "a", "weird": object()})
        sink.write({"name": "b"})
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["name"] == "b"
        assert sink.stats()["written"] == 2

    def test_slow_log_threshold_gating(self):
        log = SlowQueryLog(threshold_s=0.5)
        fast = Span("query", {"sql": "SELECT 1"})
        fast.end_s = fast.start_s + 0.1
        slow = Span("query", {"sql": "SELECT 2", "rows": 7})
        slow.end_s = slow.start_s + 1.0
        assert log.offer(fast) is False
        assert log.offer(slow) is True
        entries = log.entries()
        assert len(entries) == 1
        assert entries[0]["sql"] == "SELECT 2"
        assert entries[0]["rows"] == 7

    def test_slow_log_renders_plan_lazily(self):
        log = SlowQueryLog(threshold_s=0.0)
        span = Span("query", {"sql": "SELECT 1"})
        calls = []
        span.plan_provider = lambda: calls.append(1) or ["plan line"]
        span.finish()
        log.offer(span)
        assert calls == [1]
        assert log.entries()[0]["plan"] == ["plan line"]

    def test_slow_log_degrades_on_plan_failure(self):
        log = SlowQueryLog(threshold_s=0.0)
        span = Span("query")

        def broken():
            raise RuntimeError("no plan")

        span.plan_provider = broken
        span.finish()
        log.offer(span)
        assert log.entries()[0]["plan"] == ["<plan snapshot failed>"]


class TestUnifiedSchema:
    def test_sections_and_aliases(self):
        optimizer = {"enabled": True, "adaptive": {"enabled": True, "replans": 2}}
        stats = unified_engine_stats(
            plan_cache={"hits": 3},
            optimizer=optimizer,
            parallel={"enabled": False},
            storage={
                "total_bytes": 10,
                "tables": {"t": {"columns": {"c": {"dictionary_rebuilds": 4}}}},
            },
            tracing={"enabled": True},
        )
        assert stats["schema_version"] == 1
        assert stats["plan_cache"]["hits"] == 3
        # The back-compat alias is the same object, not a copy.
        assert stats["adaptive"] is optimizer["adaptive"]
        assert stats["optimizer"]["adaptive"]["replans"] == 2
        assert stats["storage"]["dictionary_rebuilds"] == 4
        assert stats["tracing"]["enabled"] is True

    def test_flatten_counters_dotted_names(self):
        stats = {
            "plan_cache": {"hits": 3, "misses": 1},
            "parallel": {"enabled": True},
            "storage": {"tables": {"ignored": 1}, "total_bytes": 9},
        }
        flat = flatten_counters(stats)
        assert flat["plan_cache.hits"] == 3
        assert flat["parallel.enabled"] == 1
        assert flat["storage.total_bytes"] == 9
        assert not any(name.startswith("storage.tables") for name in flat)
