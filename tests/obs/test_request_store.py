"""Tests for the request trace store: retention policy, assembly, slow log."""

import pytest

from repro.obs.sinks import RequestTraceStore
from repro.obs.tracing import TraceContext, span_record


def _open_request(store, sampled=True, tenant="acme"):
    """Open one request and record its root span; returns the context."""
    context = TraceContext.generate(sampled=sampled)
    store.open(context, tenant=tenant)
    store.record(
        span_record(
            "request",
            trace_id=context.trace_id,
            span_id=context.span_id,
            start_s=0.0,
            end_s=0.05,
            attrs={"tenant": tenant},
        )
    )
    return context


def _stage(context, name, start_s, end_s, parent=None):
    return span_record(
        name,
        trace_id=context.trace_id,
        parent_span_id=parent if parent is not None else context.span_id,
        start_s=start_s,
        end_s=end_s,
    )


class TestRetention:
    def test_sampled_ok_request_is_retained(self):
        store = RequestTraceStore()
        context = _open_request(store, sampled=True)
        assert store.seal(context.trace_id, "done", 0.05) is True
        assert store.assemble(context.trace_id) is not None
        assert store.stats()["retained"] == 1

    def test_unsampled_ok_request_is_discarded(self):
        store = RequestTraceStore()
        context = _open_request(store, sampled=False)
        assert store.seal(context.trace_id, "done", 0.05) is False
        assert store.assemble(context.trace_id) is None
        stats = store.stats()
        assert stats["discarded"] == 1
        assert stats["retained"] == 0

    @pytest.mark.parametrize("status", ["error", "rejected"])
    def test_unsampled_failures_are_always_kept(self, status):
        store = RequestTraceStore()
        context = _open_request(store, sampled=False)
        assert store.seal(context.trace_id, status, 0.01) is True
        assembled = store.assemble(context.trace_id)
        assert assembled["status"] == status
        assert assembled["sampled"] is False

    def test_unsampled_slow_request_kept_and_logged(self):
        store = RequestTraceStore(slow_threshold_s=0.5)
        context = _open_request(store, sampled=False, tenant="slowpoke")
        store.record(_stage(context, "queue_wait", 0.0, 0.4))
        store.record(_stage(context, "job", 0.4, 0.7))
        assert store.seal(context.trace_id, "done", 0.7) is True
        (logged,) = store.slow_requests(tenant="slowpoke")
        assert logged["trace_id"] == context.trace_id
        assert logged["queue_wait_s"] == pytest.approx(0.4)
        assert logged["execute_s"] == pytest.approx(0.3)
        assert logged["total_s"] == pytest.approx(0.7)
        # Below-threshold requests never reach the slow log.
        assert store.slow_requests(tenant="nobody") == []

    def test_fast_request_stays_out_of_slow_log(self):
        store = RequestTraceStore(slow_threshold_s=10.0)
        context = _open_request(store, sampled=True)
        store.seal(context.trace_id, "done", 0.01)
        assert store.slow_requests() == []

    def test_sealing_unknown_trace_is_a_noop(self):
        store = RequestTraceStore()
        assert store.seal("f" * 32, "done", 0.1) is False
        assert store.stats()["sealed"] == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            RequestTraceStore(capacity=0)


class TestBreakdown:
    def test_retained_request_carries_stage_breakdown(self):
        store = RequestTraceStore()
        context = _open_request(store, sampled=True, tenant="acme")
        store.record(_stage(context, "admission", 0.0, 0.01))
        store.record(_stage(context, "queue_wait", 0.01, 0.11))
        store.record(_stage(context, "job", 0.11, 0.31))
        store.bind_job(context.trace_id, 7)
        store.seal(context.trace_id, "done", 0.31)
        breakdown = store.assemble(context.trace_id)["breakdown"]
        assert breakdown["job_id"] == 7
        assert breakdown["tenant"] == "acme"
        assert breakdown["admission_s"] == pytest.approx(0.01)
        assert breakdown["queue_wait_s"] == pytest.approx(0.10)
        assert breakdown["execute_s"] == pytest.approx(0.20)
        # query() summaries surface the same breakdown.
        (summary,) = store.query(tenant="acme")
        assert summary["breakdown"]["queue_wait_s"] == pytest.approx(0.10)


class TestAssembly:
    def test_spans_stitch_into_one_tree_under_the_root(self):
        store = RequestTraceStore()
        context = _open_request(store, sampled=True)
        job = _stage(context, "job", 0.02, 0.05)
        store.record(job)
        store.record(_stage(context, "queue_wait", 0.0, 0.02))
        store.record(_stage(context, "chunk", 0.03, 0.04, parent=job["span_id"]))
        store.seal(context.trace_id, "done", 0.05)
        assembled = store.assemble(context.trace_id)
        root = assembled["root"]
        assert root["name"] == "request"
        assert assembled["partial"] is False
        # Siblings sort by start time; the chunk nests under the job span.
        assert [child["name"] for child in root["children"]] == ["queue_wait", "job"]
        (job_node,) = [c for c in root["children"] if c["name"] == "job"]
        assert [child["name"] for child in job_node["children"]] == ["chunk"]

    def test_orphan_spans_attach_to_root_and_mark_partial(self):
        store = RequestTraceStore()
        context = _open_request(store, sampled=True)
        orphan = _stage(context, "chunk", 0.01, 0.02, parent="dead" * 4)
        store.record(orphan)
        store.seal(context.trace_id, "done", 0.05)
        assembled = store.assemble(context.trace_id)
        assert assembled["partial"] is True
        (child,) = assembled["root"]["children"]
        assert child["attrs"]["orphan"] is True

    def test_assemble_does_not_mutate_stored_spans(self):
        store = RequestTraceStore()
        context = _open_request(store, sampled=True)
        store.record(_stage(context, "job", 0.0, 0.01))
        store.seal(context.trace_id, "done", 0.01)
        first = store.assemble(context.trace_id)
        second = store.assemble(context.trace_id)
        assert first == second  # re-assembly from flat spans is idempotent


class TestIndexesAndEviction:
    def test_bind_job_enables_job_lookups(self):
        store = RequestTraceStore()
        context = _open_request(store, sampled=True)
        store.bind_job(context.trace_id, 42)
        store.seal(context.trace_id, "done", 0.01)
        assert store.trace_id_for_job(42) == context.trace_id
        assert store.for_job(42)["trace_id"] == context.trace_id
        assert store.for_job(99) is None

    def test_capacity_evicts_oldest_with_its_job_index(self):
        store = RequestTraceStore(capacity=2)
        contexts = []
        for job_id in range(3):
            context = _open_request(store)
            store.bind_job(context.trace_id, job_id)
            contexts.append(context)
        assert store.assemble(contexts[0].trace_id) is None
        assert store.trace_id_for_job(0) is None
        assert store.assemble(contexts[2].trace_id) is not None

    def test_late_spans_counted_not_stored(self):
        store = RequestTraceStore()
        context = _open_request(store, sampled=False)
        store.seal(context.trace_id, "done", 0.01)  # discarded
        store.record(_stage(context, "chunk", 0.0, 0.01))
        assert store.stats()["late_spans"] == 1

    def test_spans_without_trace_id_ignored(self):
        store = RequestTraceStore()
        store.record({"name": "stray"})
        assert store.stats()["recorded_spans"] == 0


class TestQuery:
    def test_filters_by_tenant_and_slow_and_skips_open(self):
        store = RequestTraceStore(slow_threshold_s=0.5)
        fast = _open_request(store, tenant="a")
        store.seal(fast.trace_id, "done", 0.1)
        slow = _open_request(store, tenant="b")
        store.seal(slow.trace_id, "done", 0.9)
        _open_request(store, tenant="a")  # still open — never listed
        assert {s["tenant"] for s in store.query()} == {"a", "b"}
        assert [s["trace_id"] for s in store.query(tenant="a")] == [fast.trace_id]
        assert [s["trace_id"] for s in store.query(slow=True)] == [slow.trace_id]
        assert store.query(limit=1)[0]["trace_id"] == slow.trace_id  # newest first
