"""Columnar storage v2 edge cases: dictionary encoding, validity bitmaps.

Targeted regressions for the encoded storage layer — the shapes most likely
to silently diverge from SQLite or from the engine's own object-array
ablation (``enable_dict_encoding=False``):

* empty strings are values, NULL is absent — the two must never merge in
  filters, grouping, DISTINCT or COUNT;
* collation of non-ASCII text must match SQLite's (UTF-8 byte order equals
  code-point order, which equals the sorted-``<U``-dictionary code order);
* dictionary growth across INSERTs remaps every stored chunk and is
  observable in the storage counters, while plan caches keyed on logical
  schema signatures must not be invalidated by it;
* multi-key parallel GROUP BY must be bit-exact against serial execution.
"""

from __future__ import annotations

import sqlite3

import numpy as np
import pytest

from repro.backends.memdb import MemDatabase
from repro.backends.memdb.column import DictArray
from repro.backends.memdb.engine import PlanCache
from repro.backends.memdb.parallel import WorkerPool


def _fresh(**kwargs) -> MemDatabase:
    return MemDatabase(plan_cache=PlanCache(maxsize=16), **kwargs)


def _sqlite_rows(statements, query):
    connection = sqlite3.connect(":memory:")
    for statement in statements:
        connection.execute(statement)
    rows = connection.execute(query).fetchall()
    connection.close()
    return rows


@pytest.fixture(params=[True, False], ids=["dict", "object"])
def engine(request) -> MemDatabase:
    return _fresh(enable_dict_encoding=request.param)


class TestEmptyStringVersusNull:
    SETUP = [
        "CREATE TABLE t (id BIGINT NOT NULL, s TEXT)",
        "INSERT INTO t (id, s) VALUES (0, ''), (1, NULL), (2, 'a'), (3, ''), (4, NULL)",
    ]

    def _run(self, engine, query):
        for statement in self.SETUP:
            engine.execute(statement)
        return engine.execute(query).rows

    def test_equality_excludes_null(self, engine):
        query = "SELECT t.id AS id FROM t WHERE t.s = '' ORDER BY t.id"
        assert self._run(engine, query) == _sqlite_rows(self.SETUP, query) == [(0,), (3,)]

    def test_is_null_excludes_empty_string(self, engine):
        query = "SELECT t.id AS id FROM t WHERE t.s IS NULL ORDER BY t.id"
        assert self._run(engine, query) == _sqlite_rows(self.SETUP, query) == [(1,), (4,)]

    def test_count_skips_null_not_empty(self, engine):
        query = "SELECT COUNT(t.s) AS n, COUNT(*) AS total FROM t"
        assert self._run(engine, query) == _sqlite_rows(self.SETUP, query) == [(3, 5)]

    def test_group_by_separates_null_and_empty(self, engine):
        query = "SELECT t.s AS s, COUNT(*) AS n FROM t GROUP BY t.s"
        assert self._run(engine, query) == _sqlite_rows(self.SETUP, query) == [
            (None, 2),
            ("", 2),
            ("a", 1),
        ]

    def test_distinct_keeps_null_and_empty_apart(self, engine):
        query = "SELECT DISTINCT t.s AS s FROM t"
        rows = self._run(engine, query)
        assert sorted(rows, key=lambda r: (r[0] is not None, r[0] or "")) == [
            (None,),
            ("",),
            ("a",),
        ]


class TestUnicodeCollationParity:
    #: Adversarial collation pool: ASCII, Latin-1, combining-vs-precomposed,
    #: astral plane, and prefixes of each other.
    VALUES = ["", "a", "A", "ab", "à", "à", "z", "zz", "é", "ß", "Ω", "\U0001F600", "0", " "]

    def _setup(self):
        values = ", ".join(f"({i}, {v!r})" for i, v in enumerate(self.VALUES))
        return [
            "CREATE TABLE t (id BIGINT NOT NULL, s TEXT NOT NULL)",
            f"INSERT INTO t (id, s) VALUES {values}",
        ]

    @pytest.mark.parametrize("direction", ["ASC", "DESC"])
    def test_order_by_matches_sqlite(self, engine, direction):
        setup = self._setup()
        query = f"SELECT t.s AS s FROM t ORDER BY t.s {direction}, t.id ASC"
        for statement in setup:
            engine.execute(statement)
        assert engine.execute(query).rows == _sqlite_rows(setup, query)

    def test_range_predicates_match_sqlite(self, engine):
        setup = self._setup()
        for statement in setup:
            engine.execute(statement)
        for literal in ["a", "à", "é", "z", ""]:
            for operator in ["<", "<=", ">", ">=", "=", "!="]:
                query = (
                    f"SELECT t.id AS id FROM t WHERE t.s {operator} {literal!r} ORDER BY t.id"
                )
                assert engine.execute(query).rows == _sqlite_rows(setup, query), (
                    operator,
                    literal,
                )

    def test_min_max_match_sqlite(self, engine):
        setup = self._setup()
        query = "SELECT MIN(t.s) AS lo, MAX(t.s) AS hi FROM t"
        for statement in setup:
            engine.execute(statement)
        assert engine.execute(query).rows == _sqlite_rows(setup, query)


class TestDictionaryGrowth:
    def test_append_rows_grows_dictionary_and_remaps(self):
        db = _fresh(enable_dict_encoding=True)
        db.execute("CREATE TABLE t (id BIGINT NOT NULL, s TEXT)")
        db.execute("INSERT INTO t (id, s) VALUES (0, 'm'), (1, 'z')")
        before = db.storage_stats("t")["columns"]["s"]
        assert before["kind"] == "dict"
        assert before["dictionary_size"] == 2
        # 'a' sorts before every existing entry: every stored code shifts.
        db.execute("INSERT INTO t (id, s) VALUES (2, 'a'), (3, NULL), (4, 'm')")
        after = db.storage_stats("t")["columns"]["s"]
        assert after["dictionary_size"] == 3
        assert after["dictionary_rebuilds"] >= 1
        assert after["null_count"] == 1
        rows = db.execute("SELECT t.id AS id, t.s AS s FROM t ORDER BY t.s ASC, t.id ASC").rows
        assert rows == [(3, None), (2, "a"), (0, "m"), (4, "m"), (1, "z")]
        column = db.table("t").encoded_column("s").materialize()
        assert isinstance(column, DictArray)
        assert list(column.dictionary) == ["a", "m", "z"]

    def test_growth_does_not_change_logical_signature(self):
        db = _fresh(enable_dict_encoding=True)
        db.execute("CREATE TABLE t (id BIGINT NOT NULL, s TEXT)")
        db.execute("INSERT INTO t (id, s) VALUES (0, 'm')")
        signature = db.table("t").schema_signature()
        db.execute("INSERT INTO t (id, s) VALUES (1, 'a'), (2, 'zz')")
        assert db.table("t").schema_signature() == signature

    def test_delete_keeps_results_exact(self):
        db = _fresh(enable_dict_encoding=True)
        db.execute("CREATE TABLE t (id BIGINT NOT NULL, s TEXT)")
        db.execute(
            "INSERT INTO t (id, s) VALUES (0, 'a'), (1, 'b'), (2, NULL), (3, 'a'), (4, 'c')"
        )
        db.execute("DELETE FROM t WHERE t.s = 'a'")
        rows = db.execute("SELECT t.id AS id, t.s AS s FROM t ORDER BY t.id").rows
        assert rows == [(1, "b"), (2, None), (4, "c")]
        stats = db.storage_stats("t")["columns"]["s"]
        assert stats["rows"] == 3
        assert stats["null_count"] == 1

    def test_ctas_preserves_encoding(self):
        db = _fresh(enable_dict_encoding=True)
        db.execute("CREATE TABLE t (id BIGINT NOT NULL, s TEXT)")
        db.execute("INSERT INTO t (id, s) VALUES (0, 'x'), (1, NULL), (2, 'y')")
        db.execute("CREATE TABLE c AS SELECT t.id AS id, t.s AS s FROM t WHERE t.id >= 1")
        stats = db.storage_stats("c")["columns"]["s"]
        assert stats["kind"] == "dict"
        assert db.execute("SELECT c.s AS s FROM c ORDER BY c.id").rows == [(None,), ("y",)]

    def test_ablated_engine_stores_objects(self):
        db = _fresh(enable_dict_encoding=False)
        db.execute("CREATE TABLE t (id BIGINT NOT NULL, s TEXT)")
        db.execute("INSERT INTO t (id, s) VALUES (0, 'x'), (1, NULL)")
        stats = db.storage_stats("t")["columns"]["s"]
        assert stats["kind"] == "object"
        assert stats["dictionary_size"] == 0


class TestMultiKeyParallelParity:
    def test_multi_key_group_by_bit_exact(self):
        pool = WorkerPool(4)
        parallel = MemDatabase(
            plan_cache=PlanCache(maxsize=8),
            enable_parallel=True,
            parallel_threshold_rows=0,
            worker_pool=pool,
        )
        serial = MemDatabase(plan_cache=PlanCache(maxsize=8), enable_parallel=False)
        rng = np.random.default_rng(7)
        rows = 4_000
        ids = np.arange(rows, dtype=np.int64)
        ks = rng.integers(-5, 5, rows)
        names = np.array(["ab", "a", "", "zz", "é", None, "b"], dtype=object)[
            rng.integers(0, 7, rows)
        ]
        values = np.round(rng.normal(size=rows) * 4, 1)
        values[rng.integers(0, rows, rows // 10)] = np.nan
        try:
            for db in (parallel, serial):
                db.create_table_from_columns(
                    "t", {"id": ids, "k": ks.copy(), "s": names.copy(), "v": values.copy()}
                )
            for sql in [
                # int x text keys, NULL text key forms its own group
                "SELECT t.k AS k, t.s AS s, SUM(t.v) AS sv, COUNT(t.v) AS n FROM t GROUP BY t.k, t.s",
                # text x float keys: NaN (NULL) float key collapses to one group
                "SELECT t.s AS s, t.v AS v, COUNT(*) AS n FROM t GROUP BY t.s, t.v",
                # single text key with NULL-skipping text aggregate
                "SELECT t.s AS s, MIN(t.s) AS lo, MAX(t.s) AS hi, COUNT(*) AS n FROM t GROUP BY t.s",
            ]:
                expected = serial.execute(sql).rows
                actual = parallel.execute(sql).rows
                assert len(actual) == len(expected), sql
                for row_a, row_b in zip(actual, expected):
                    for a, b in zip(row_a, row_b):
                        both_nan = (
                            isinstance(a, float) and isinstance(b, float) and a != a and b != b
                        )
                        assert both_nan or (a == b and type(a) is type(b)), (sql, row_a, row_b)
            # The partitioned path really ran (multi-key no longer declines).
            assert parallel.parallel_stats()["parallel_plan_executions"] > 0
        finally:
            pool.shutdown()
