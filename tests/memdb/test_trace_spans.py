"""End-to-end trace-span tests: tree shape, timing, row-count parity.

The acceptance invariant: a traced run's per-block ``rows`` attributes must
match the *pre-limit actual* cardinalities EXPLAIN ANALYZE reports for the
same query — both read the same execution observation, so a traced star join
is exactly as truthful as EXPLAIN ANALYZE, at a fraction of the cost.
"""

import re

import pytest

from repro.backends.memdb import MemDatabase
from repro.backends.memdb.engine import PlanCache
from repro.backends.memdb.parallel import WorkerPool
from repro.obs import MetricsRegistry, SlowQueryLog, TraceRingBuffer, Tracer

_STAR_QUERY = (
    "SELECT c.k AS k, SUM(a.payload * b.scale) AS total "
    "FROM a JOIN b ON b.j = a.j JOIN c ON c.k = a.k "
    "WHERE c.sel = 1 GROUP BY c.k ORDER BY k"
)

_CTE_QUERY = (
    "WITH j1 AS (SELECT a.k AS k, a.payload * b.scale AS v FROM a JOIN b ON b.j = a.j) "
    "SELECT c.k AS k, SUM(j1.v) AS total FROM j1 JOIN c ON c.k = j1.k "
    "WHERE c.sel = 1 GROUP BY c.k ORDER BY k"
)

_ACTUAL_LINE = re.compile(r"^(\w+):.*actual (\d+) \(pre-limit\)")


def _make_tracer(threshold_s: float = 10.0) -> Tracer:
    return Tracer(
        registry=MetricsRegistry(),
        ring=TraceRingBuffer(64),
        slow_log=SlowQueryLog(threshold_s=threshold_s),
    )


def _load_star_schema(db: MemDatabase) -> None:
    db.execute("CREATE TABLE a (k INTEGER, j INTEGER, payload DOUBLE)")
    db.execute("CREATE TABLE b (j INTEGER, scale DOUBLE)")
    db.execute("CREATE TABLE c (k INTEGER, sel INTEGER)")
    a_rows = ", ".join(f"({i % 40}, {i % 12}, {i * 0.5})" for i in range(600))
    b_rows = ", ".join(f"({j}, {j * 0.1})" for j in range(12))
    c_rows = ", ".join(f"({k}, {k % 2})" for k in range(40))
    db.execute(f"INSERT INTO a VALUES {a_rows}")
    db.execute(f"INSERT INTO b VALUES {b_rows}")
    db.execute(f"INSERT INTO c VALUES {c_rows}")


def _explain_analyze_actuals(db: MemDatabase, sql: str) -> dict[str, int]:
    """Per-block pre-limit actual cardinalities parsed from EXPLAIN ANALYZE."""
    actuals: dict[str, int] = {}
    for (line,) in db.execute("EXPLAIN ANALYZE " + sql).rows:
        match = _ACTUAL_LINE.match(line)
        if match:
            actuals[match.group(1)] = int(match.group(2))
    return actuals


@pytest.fixture
def traced_db():
    tracer = _make_tracer()
    db = MemDatabase(plan_cache=PlanCache(maxsize=64), tracer=tracer)
    _load_star_schema(db)
    tracer.ring.drain()  # drop the DDL/INSERT traces; tests read query traces
    return db, tracer


@pytest.fixture
def traced_parallel_db():
    tracer = _make_tracer()
    pool = WorkerPool(3)
    db = MemDatabase(
        plan_cache=PlanCache(maxsize=64),
        enable_parallel=True,
        parallel_threshold_rows=0,
        worker_pool=pool,
        tracer=tracer,
    )
    _load_star_schema(db)
    tracer.ring.drain()
    yield db, tracer
    pool.shutdown()


class TestTraceShape:
    def test_cold_query_has_full_stage_chain(self, traced_db):
        db, tracer = traced_db
        db.execute(_STAR_QUERY)
        root = tracer.recent_traces()[-1]
        assert root["name"] == "query"
        assert root["attrs"]["cache"] == "miss"
        stages = [child["name"] for child in root["children"]]
        assert stages == ["parse", "optimize", "plan", "execute"]

    def test_warm_query_skips_compile_stages(self, traced_db):
        db, tracer = traced_db
        db.execute(_STAR_QUERY)
        db.execute(_STAR_QUERY)
        root = tracer.recent_traces()[-1]
        assert root["attrs"]["cache"] == "hit"
        stages = [child["name"] for child in root["children"]]
        assert stages == ["execute"]

    def test_execute_contains_blocks_and_operators(self, traced_db):
        db, tracer = traced_db
        db.execute(_CTE_QUERY)
        root = tracer.recent_traces()[-1]
        execute = next(c for c in root["children"] if c["name"] == "execute")
        blocks = [c for c in execute["children"] if c["name"] == "block"]
        assert [b["attrs"]["block"] for b in blocks] == ["j1", "main"]
        operators = [c["name"] for b in blocks for c in b["children"]]
        assert "operator" in operators

    def test_timing_monotonicity(self, traced_db):
        db, tracer = traced_db
        db.execute(_CTE_QUERY)
        root = tracer.recent_traces()[-1]

        def check(span: dict) -> None:
            assert span["duration_s"] >= 0.0
            children = span["children"]
            for child in children:
                assert child["start_s"] >= span["start_s"]
                assert child["duration_s"] <= span["duration_s"] + 1e-6
                check(child)
            for earlier, later in zip(children, children[1:]):
                assert later["start_s"] >= earlier["start_s"]
            if children:
                assert sum(c["duration_s"] for c in children) <= span["duration_s"] + 1e-6

        check(root)

    def test_root_attrs_record_result_size(self, traced_db):
        db, tracer = traced_db
        result = db.execute(_STAR_QUERY)
        root = tracer.recent_traces()[-1]
        assert root["attrs"]["rows"] == len(result.rows)
        assert root["attrs"]["sql"].startswith("SELECT c.k")

    def test_metrics_recorded_per_query(self, traced_db):
        db, tracer = traced_db
        db.execute(_STAR_QUERY)
        db.execute(_STAR_QUERY)
        snapshot = tracer.registry.snapshot()
        assert snapshot["counters"]["engine.queries"] >= 2
        assert snapshot["histograms"]["engine.query_seconds"]["count"] >= 2

    def test_untraced_engine_produces_no_spans(self):
        # enable_tracing=False opts out even under REPRO_TRACE=1 (the CI
        # leg that runs the whole suite with env tracing forced on).
        db = MemDatabase(plan_cache=PlanCache(maxsize=8), enable_tracing=False)
        _load_star_schema(db)
        assert db.tracer is None
        result = db.execute(_STAR_QUERY)
        assert len(result.rows) > 0
        assert db.tracing_stats() == {"enabled": False}


class TestRowParity:
    """Block-span rows must equal EXPLAIN ANALYZE's pre-limit actuals."""

    @staticmethod
    def _block_rows(trace: dict) -> dict[str, int]:
        execute = next(c for c in trace["children"] if c["name"] == "execute")
        return {
            b["attrs"]["block"]: b["attrs"]["rows"]
            for b in execute["children"]
            if b["name"] == "block"
        }

    @pytest.mark.parametrize("sql", [_STAR_QUERY, _CTE_QUERY])
    def test_serial_block_rows_match_actuals(self, traced_db, sql):
        db, tracer = traced_db
        actuals = _explain_analyze_actuals(db, sql)
        assert actuals, "EXPLAIN ANALYZE reported no per-block actuals"
        db.execute(sql)
        block_rows = self._block_rows(tracer.recent_traces()[-1])
        assert block_rows == actuals

    @pytest.mark.parametrize("sql", [_STAR_QUERY, _CTE_QUERY])
    def test_parallel_block_rows_match_actuals(self, traced_parallel_db, sql):
        db, tracer = traced_parallel_db
        actuals = _explain_analyze_actuals(db, sql)
        assert actuals
        db.execute(sql)
        block_rows = self._block_rows(tracer.recent_traces()[-1])
        assert block_rows == actuals

    def test_parallel_operator_records_morsel_counts(self, traced_parallel_db):
        db, tracer = traced_parallel_db
        db.execute(_STAR_QUERY)
        root = tracer.recent_traces()[-1]
        execute = next(c for c in root["children"] if c["name"] == "execute")
        assert execute["attrs"]["parallel"] is True
        operators = [
            span
            for block in execute["children"]
            for span in block["children"]
            if span["name"] == "operator"
        ]
        assert any("morsel_tasks" in op["attrs"] for op in operators)

    def test_parallel_and_serial_results_agree(self, traced_db, traced_parallel_db):
        serial_db, _ = traced_db
        parallel_db, _ = traced_parallel_db
        assert sorted(serial_db.execute(_STAR_QUERY).rows) == sorted(
            parallel_db.execute(_STAR_QUERY).rows
        )


class TestSlowQueryLogEndToEnd:
    def test_star_join_captured_with_plan_snapshot(self):
        tracer = _make_tracer(threshold_s=0.0)  # everything is "slow"
        db = MemDatabase(plan_cache=PlanCache(maxsize=64), tracer=tracer)
        _load_star_schema(db)
        result = db.execute(_STAR_QUERY)
        entries = [e for e in tracer.slow_queries() if e["sql"].startswith("SELECT c.k")]
        assert entries, "the star join never reached the slow-query log"
        entry = entries[-1]
        assert entry["rows"] == len(result.rows)
        assert entry["seconds"] > 0
        assert entry["trace"]["name"] == "query"
        # The lazily rendered plan snapshot is the EXPLAIN-style rendering.
        plan_text = "\n".join(entry["plan"])
        assert "physical" in plan_text
        assert "plan cache" in plan_text

    def test_fast_queries_stay_out_of_the_log(self, traced_db):
        db, tracer = traced_db
        db.execute(_STAR_QUERY)
        assert tracer.slow_queries() == []
        assert tracer.slow_log.stats()["captured"] == 0
