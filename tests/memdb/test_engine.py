"""Tests for the embedded columnar engine end to end (DDL, DML, queries)."""

import pytest

from repro.backends.memdb import MemDatabase
from repro.errors import SQLExecutionError


@pytest.fixture
def db():
    database = MemDatabase()
    database.execute("CREATE TABLE t (a BIGINT NOT NULL, b DOUBLE NOT NULL)")
    database.execute("INSERT INTO t (a, b) VALUES (1, 1.5), (2, 2.5), (3, 3.5), (2, 0.5)")
    return database


class TestCatalog:
    def test_create_and_row_count(self, db):
        assert db.has_table("t")
        assert db.row_count("t") == 4
        assert db.table_names() == ["t"]

    def test_duplicate_create_rejected(self, db):
        with pytest.raises(SQLExecutionError):
            db.execute("CREATE TABLE t (x BIGINT)")

    def test_drop(self, db):
        db.execute("DROP TABLE t")
        assert not db.has_table("t")
        db.execute("DROP TABLE IF EXISTS t")
        with pytest.raises(SQLExecutionError):
            db.execute("DROP TABLE t")

    def test_insert_requires_all_columns(self, db):
        with pytest.raises(SQLExecutionError):
            db.execute("INSERT INTO t (a) VALUES (9)")

    def test_estimated_bytes(self, db):
        assert db.estimated_bytes("t") > 0
        assert db.estimated_bytes() >= db.estimated_bytes("t")


class TestQueries:
    def test_projection_and_expression(self, db):
        result = db.execute("SELECT a * 2 AS twice, b FROM t ORDER BY twice")
        assert result.columns == ["twice", "b"]
        assert [row[0] for row in result.rows] == [2, 4, 4, 6]

    def test_where_filter(self, db):
        result = db.execute("SELECT a FROM t WHERE b > 1.0 ORDER BY a")
        assert [row[0] for row in result.rows] == [1, 2, 3]

    def test_group_by_sum(self, db):
        result = db.execute("SELECT a, SUM(b) AS total FROM t GROUP BY a ORDER BY a")
        assert result.rows == [(1, 1.5), (2, 3.0), (3, 3.5)]

    def test_aggregates_without_group_by(self, db):
        result = db.execute("SELECT COUNT(*), SUM(b), MIN(b), MAX(b), AVG(a) FROM t")
        count, total, minimum, maximum, average = result.rows[0]
        assert count == 4
        assert total == pytest.approx(8.0)
        assert minimum == pytest.approx(0.5)
        assert maximum == pytest.approx(3.5)
        assert average == pytest.approx(2.0)

    def test_aggregate_on_empty_table(self):
        db = MemDatabase()
        db.execute("CREATE TABLE empty (x BIGINT, y DOUBLE)")
        result = db.execute("SELECT COUNT(*), SUM(y) FROM empty")
        assert result.rows[0][0] == 0

    def test_having(self, db):
        result = db.execute("SELECT a, SUM(b) AS total FROM t GROUP BY a HAVING SUM(b) > 2 ORDER BY a")
        assert [row[0] for row in result.rows] == [2, 3]

    def test_join_on_expression(self):
        db = MemDatabase()
        db.execute("CREATE TABLE s (v BIGINT NOT NULL)")
        db.execute("INSERT INTO s (v) VALUES (0), (1), (2), (3)")
        db.execute("CREATE TABLE g (k BIGINT NOT NULL, label BIGINT NOT NULL)")
        db.execute("INSERT INTO g (k, label) VALUES (0, 10), (1, 11)")
        result = db.execute("SELECT s.v, g.label FROM s JOIN g ON g.k = (s.v & 1) ORDER BY s.v")
        assert result.rows == [(0, 10), (1, 11), (2, 10), (3, 11)]

    def test_bitwise_expressions(self, db):
        result = db.execute("SELECT (a & ~1) | 1 AS x, a << 2 AS y, a >> 1 AS z FROM t WHERE a = 3")
        assert result.rows[0] == (3, 12, 1)

    def test_order_by_desc_and_limit(self, db):
        result = db.execute("SELECT b FROM t ORDER BY b DESC LIMIT 2")
        assert [row[0] for row in result.rows] == [3.5, 2.5]

    def test_distinct(self, db):
        result = db.execute("SELECT DISTINCT a FROM t ORDER BY a")
        assert [row[0] for row in result.rows] == [1, 2, 3]

    def test_case_expression(self, db):
        result = db.execute("SELECT a, CASE WHEN b > 2 THEN 1 ELSE 0 END AS big FROM t ORDER BY a, big")
        assert (3, 1) in result.rows and (1, 0) in result.rows

    def test_with_cte_chain(self, db):
        result = db.execute(
            "WITH doubled AS (SELECT a * 2 AS a2, b FROM t), "
            "filtered AS (SELECT a2, b FROM doubled WHERE a2 > 2) "
            "SELECT COUNT(*) FROM filtered"
        )
        assert result.rows[0][0] == 3

    def test_create_table_as_and_delete(self, db):
        db.execute("CREATE TABLE big AS SELECT a, b FROM t WHERE b > 1")
        assert db.row_count("big") == 3
        result = db.execute("DELETE FROM big WHERE a = 2")
        assert result.rowcount == 1
        assert db.row_count("big") == 2

    def test_scalar_functions(self, db):
        result = db.execute("SELECT ABS(-2), SQRT(4.0), ROUND(2.7) FROM t LIMIT 1")
        assert result.rows[0] == (2, 2.0, 3.0)

    def test_unknown_table(self, db):
        with pytest.raises(SQLExecutionError):
            db.execute("SELECT * FROM nope")

    def test_unknown_column(self, db):
        with pytest.raises(SQLExecutionError):
            db.execute("SELECT nonexistent FROM t")

    def test_left_join_unsupported(self, db):
        db.execute("CREATE TABLE u (a BIGINT)")
        db.execute("INSERT INTO u (a) VALUES (1)")
        with pytest.raises(SQLExecutionError):
            db.execute("SELECT * FROM t LEFT JOIN u ON u.a = t.a")

    def test_non_equality_join_unsupported(self, db):
        db.execute("CREATE TABLE u (a BIGINT)")
        db.execute("INSERT INTO u (a) VALUES (1)")
        with pytest.raises(SQLExecutionError):
            db.execute("SELECT * FROM t JOIN u ON u.a > t.a")


class TestAgainstSQLiteReference:
    """The embedded engine must agree with SQLite on the query shapes Qymera generates."""

    @pytest.mark.parametrize(
        "query",
        [
            "SELECT a, SUM(b) AS s FROM t GROUP BY a ORDER BY a",
            "SELECT (a & 1) AS bit, SUM(b * b) AS p FROM t GROUP BY (a & 1) ORDER BY bit",
            "SELECT a FROM t WHERE (a >> 1) & 1 = 1 ORDER BY a",
            "SELECT COUNT(*) FROM t WHERE b < 3",
            "SELECT a * 2 + 1 AS x FROM t ORDER BY x DESC LIMIT 3",
        ],
    )
    def test_same_results_as_sqlite(self, query, db):
        import sqlite3

        reference = sqlite3.connect(":memory:")
        reference.execute("CREATE TABLE t (a INTEGER NOT NULL, b REAL NOT NULL)")
        reference.executemany("INSERT INTO t VALUES (?, ?)", [(1, 1.5), (2, 2.5), (3, 3.5), (2, 0.5)])
        expected = reference.execute(query).fetchall()
        got = db.execute(query).rows
        assert [tuple(row) for row in got] == pytest.approx(expected)


class TestInsertTyping:
    """INSERT literals must respect declared column types instead of silently casting."""

    @pytest.fixture
    def typed(self):
        database = MemDatabase()
        database.execute("CREATE TABLE typed (n BIGINT NOT NULL, x DOUBLE NOT NULL, label TEXT)")
        return database

    def test_valid_rows_round_trip(self, typed):
        typed.execute("INSERT INTO typed (n, x, label) VALUES (1, 2.5, 'a'), (-3, 4, 'b')")
        rows = typed.execute("SELECT n, x, label FROM typed ORDER BY n").rows
        assert rows == [(-3, 4.0, "b"), (1, 2.5, "a")]

    def test_float_into_integer_column_rejected(self, typed):
        with pytest.raises(SQLExecutionError, match="integer column"):
            typed.execute("INSERT INTO typed (n, x, label) VALUES (1.5, 2.0, 'a')")
        assert typed.row_count("typed") == 0

    def test_string_into_real_column_rejected(self, typed):
        with pytest.raises(SQLExecutionError, match="real column"):
            typed.execute("INSERT INTO typed (n, x, label) VALUES (1, 'oops', 'a')")
        assert typed.row_count("typed") == 0

    def test_null_into_integer_column_rejected(self, typed):
        with pytest.raises(SQLExecutionError, match="integer column"):
            typed.execute("INSERT INTO typed (n, x, label) VALUES (NULL, 2.0, 'a')")

    def test_null_into_real_column_becomes_nan(self, typed):
        typed.execute("INSERT INTO typed (n, x, label) VALUES (1, NULL, 'a')")
        value = typed.execute("SELECT x FROM typed").rows[0][0]
        assert value != value  # NaN

    def test_object_column_preserves_values_on_empty_table(self, typed):
        typed.execute("INSERT INTO typed (n, x, label) VALUES (1, 1.0, 'first')")
        assert typed.table("typed").column("label").dtype == object
        assert typed.execute("SELECT label FROM typed").rows == [("first",)]

    def test_bad_row_leaves_table_unchanged(self, typed):
        typed.execute("INSERT INTO typed (n, x, label) VALUES (1, 1.0, 'ok')")
        with pytest.raises(SQLExecutionError):
            typed.execute("INSERT INTO typed (n, x, label) VALUES (2.5, 1.0, 'bad')")
        assert typed.row_count("typed") == 1

    def test_out_of_range_integer_rejected_cleanly(self, typed):
        with pytest.raises(SQLExecutionError, match="64-bit range"):
            typed.execute("INSERT INTO typed (n, x, label) VALUES (9223372036854775808, 1.0, 'big')")
        assert typed.row_count("typed") == 0

    def test_integral_float_into_integer_column_accepted(self, typed):
        typed.execute("INSERT INTO typed (n, x, label) VALUES (2.0, 1.0, 'a')")
        rows = typed.execute("SELECT n FROM typed").rows
        assert rows == [(2,)]

    def test_integer_strings_coerce_like_sqlite_affinity(self, typed):
        # Integer strings store losslessly (SQLite INTEGER affinity)...
        typed.execute("INSERT INTO typed (n, x, label) VALUES ('2', 0.5, 'a')")
        assert typed.execute("SELECT n, x FROM typed").rows == [(2, 0.5)]

    def test_numeric_string_into_real_column_rejected(self, typed):
        # ...but a numeric string into a DOUBLE column is a type error: the
        # old silent '1.5' -> 1.5 coercion violated declared-dtype
        # strictness (regression test for the float-column string leak).
        with pytest.raises(SQLExecutionError, match="real column"):
            typed.execute("INSERT INTO typed (n, x, label) VALUES (1, '1.5', 'a')")
        assert typed.row_count("typed") == 0

    def test_non_numeric_string_into_integer_column_rejected(self, typed):
        with pytest.raises(SQLExecutionError, match="integer column"):
            typed.execute("INSERT INTO typed (n, x, label) VALUES ('two', 1.0, 'a')")

    def test_large_integer_string_preserved_exactly(self, typed):
        # Above 2^53: a float round-trip would silently land on ...992.
        typed.execute("INSERT INTO typed (n, x, label) VALUES ('9007199254740993', 1.0, 'a')")
        assert typed.execute("SELECT n FROM typed").rows == [(9007199254740993,)]


class TestSelfJoin:
    def test_self_join_same_binding_still_executes(self, db):
        result = db.execute("SELECT t.a FROM t JOIN t ON t.a = t.a ORDER BY t.a")
        # 4 rows, values 1,2,2,3; each matches itself (and 2 matches both 2s).
        assert len(result.rows) == 6

    def test_self_join_with_aliases_compiles(self, db):
        result = db.execute(
            "SELECT p.a, q.a FROM t p JOIN t q ON q.a = p.a WHERE p.b < q.b ORDER BY p.a"
        )
        assert result.rows == [(2, 2)]


class TestPrepare:
    """prepare(): compile a query into the plan cache without executing it."""

    def _database(self):
        from repro.backends.memdb.engine import PlanCache

        cache = PlanCache()
        database = MemDatabase(plan_cache=cache)
        database.execute("CREATE TABLE t (a BIGINT NOT NULL, b DOUBLE NOT NULL)")
        database.execute("INSERT INTO t (a, b) VALUES (1, 1.5), (2, 2.5), (3, 3.5)")
        return database, cache

    def test_prepare_then_execute_hits_the_cache(self):
        database, cache = self._database()
        query = "SELECT a, SUM(b) AS total FROM t GROUP BY a ORDER BY a"
        assert database.prepare(query) == "prepared"
        planned = cache.stats()["planned"]
        assert planned >= 1
        hits_before = cache.stats()["hits"]
        result = database.execute(query)
        assert [row[0] for row in result.rows] == [1, 2, 3]
        stats = cache.stats()
        assert stats["planned"] == planned  # nothing recompiled
        assert stats["hits"] > hits_before

    def test_prepare_twice_reports_hit(self):
        database, _cache = self._database()
        query = "SELECT a FROM t ORDER BY a"
        assert database.prepare(query) == "prepared"
        assert database.prepare(query) == "hit"

    def test_prepare_never_executes(self):
        database, _cache = self._database()
        database.prepare("SELECT a FROM t ORDER BY a")
        # No result tables, no side effects: the catalog is untouched.
        assert database.table_names() == ["t"]
        assert database.row_count("t") == 3

    def test_prepare_rejects_non_query_statements(self):
        database, _cache = self._database()
        with pytest.raises(SQLExecutionError, match="prepare only supports"):
            database.prepare("DROP TABLE t")
        with pytest.raises(SQLExecutionError, match="prepare only supports"):
            database.prepare("INSERT INTO t (a, b) VALUES (9, 9.0)")
        assert database.row_count("t") == 3

    def test_prepared_plan_survives_table_recreation(self):
        """The sweep shape: drop + identically recreate, then re-bind the plan."""
        database, cache = self._database()
        query = "SELECT a, b FROM t ORDER BY a"
        database.prepare(query)
        planned = cache.stats()["planned"]
        database.execute("DROP TABLE t")
        database.execute("CREATE TABLE t (a BIGINT NOT NULL, b DOUBLE NOT NULL)")
        database.execute("INSERT INTO t (a, b) VALUES (7, 0.5)")
        result = database.execute(query)
        assert result.rows == [(7, 0.5)]
        assert cache.stats()["planned"] == planned

    def test_prepared_plan_invalidated_by_schema_change(self):
        database, cache = self._database()
        query = "SELECT a, b FROM t ORDER BY a"
        database.prepare(query)
        database.execute("DROP TABLE t")
        database.execute("CREATE TABLE t (a DOUBLE NOT NULL, b DOUBLE NOT NULL)")
        database.execute("INSERT INTO t (a, b) VALUES (1.25, 0.5)")
        result = database.execute(query)
        assert result.rows == [(1.25, 0.5)]
        assert cache.stats()["invalidations"] >= 1

    def test_prepare_with_cte_chain(self):
        database, _cache = self._database()
        query = (
            "WITH big AS (SELECT a, b FROM t WHERE b > 1.0) "
            "SELECT a, SUM(b) AS total FROM big GROUP BY a ORDER BY a"
        )
        assert database.prepare(query) == "prepared"
        result = database.execute(query)
        assert [row[0] for row in result.rows] == [1, 2, 3]


class TestConcurrentPlanCache:
    """Stress the thread-safe PlanCache + adaptive re-plan hook.

    The supported concurrency model is one MemDatabase per worker sharing a
    process-wide PlanCache (the job service's EnginePool shape).  Workers
    hammer prepare/execute while interleaving DML that invalidates their
    statistics and triggers adaptive re-plans; the assertions are: every
    result is correct (no lost updates, no stale-schema rows), no worker
    deadlocks (joined with a timeout), and the cache's counters stay
    consistent.
    """

    def _worker(self, cache, worker_id, iterations, failures):
        from repro.backends.memdb.engine import MemDatabase

        try:
            database = MemDatabase(plan_cache=cache)
            database.execute(
                "CREATE TABLE w (a BIGINT NOT NULL, b DOUBLE NOT NULL)"
            )
            total_rows = 0
            query = "SELECT w.a, w.b FROM w ORDER BY w.b LIMIT 5"
            grouped = "SELECT w.a AS a, COUNT(*) AS n FROM w GROUP BY w.a ORDER BY a"
            database.prepare(query)
            for step in range(iterations):
                batch = [(step * 10 + offset, float(worker_id)) for offset in range(10)]
                values = ", ".join(f"({a}, {b!r})" for a, b in batch)
                database.execute(f"INSERT INTO w (a, b) VALUES {values}")  # invalidates stats
                total_rows += len(batch)
                result = database.execute(query)
                expected_rows = min(5, total_rows)
                if len(result.rows) != expected_rows:
                    failures.append((worker_id, "limit", len(result.rows), expected_rows))
                if any(row[1] != float(worker_id) for row in result.rows):
                    failures.append((worker_id, "cross-database row leak", result.rows))
                counted = database.execute(grouped)
                if sum(row[1] for row in counted.rows) != total_rows:
                    failures.append((worker_id, "lost update", counted.rows, total_rows))
                if step % 3 == 2:
                    # Schema churn under the shared cache: recreate with a
                    # different shape, run, then restore the original shape.
                    database.execute("DROP TABLE w")
                    database.execute("CREATE TABLE w (a DOUBLE NOT NULL, b DOUBLE NOT NULL)")
                    reshaped = database.execute(query)
                    if len(reshaped.rows) != 0:
                        failures.append((worker_id, "stale schema rows", reshaped.rows))
                    database.execute("DROP TABLE w")
                    database.execute("CREATE TABLE w (a BIGINT NOT NULL, b DOUBLE NOT NULL)")
                    total_rows = 0
        except Exception as error:  # pragma: no cover - surfaced via failures
            failures.append((worker_id, "exception", repr(error)))

    def test_concurrent_prepare_execute_dml(self):
        import threading

        from repro.backends.memdb.engine import PlanCache

        cache = PlanCache(maxsize=16)
        failures: list = []
        threads = [
            threading.Thread(target=self._worker, args=(cache, worker, 12, failures))
            for worker in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not any(thread.is_alive() for thread in threads), "worker deadlocked"
        assert not failures, failures
        stats = cache.stats()
        # Counter consistency: every lookup is exactly one hit or one miss.
        assert stats["hits"] > 0
        assert stats["misses"] > 0
        assert stats["size"] <= 2 * stats["maxsize"]

    def test_concurrent_adaptive_replans_stay_consistent(self):
        import threading

        from repro.backends.memdb.engine import MemDatabase, PlanCache

        cache = PlanCache(maxsize=16)
        query = "SELECT s.a, s.b FROM s ORDER BY s.b LIMIT 3"
        failures: list = []

        def worker(worker_id):
            try:
                database = MemDatabase(plan_cache=cache)
                database.execute("CREATE TABLE s (a BIGINT NOT NULL, b DOUBLE NOT NULL)")
                database.execute(
                    "INSERT INTO s (a, b) VALUES "
                    + ", ".join(f"({i}, {i}.0)" for i in range(10))
                )
                database.execute(query)  # small plan enters the shared cache
                database.execute(
                    "INSERT INTO s (a, b) VALUES "
                    + ", ".join(f"({i}, {i}.5)" for i in range(2000))
                )
                for _ in range(5):
                    result = database.execute(query)  # feedback marks replans
                    if [row[1] for row in result.rows] != [0.0, 0.5, 1.0]:
                        failures.append((worker_id, result.rows))
            except Exception as error:  # pragma: no cover
                failures.append((worker_id, repr(error)))

        threads = [threading.Thread(target=worker, args=(w,)) for w in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not any(thread.is_alive() for thread in threads), "worker deadlocked"
        assert not failures, failures
        # Replans happened and the cache survived them without corruption.
        assert cache.stats()["replans"] >= 1
