"""Recursive CTE semantics: fixpoint termination, caps, and SQLite parity.

``WITH RECURSIVE`` evaluates breadth-first: UNION deduplicates across
iterations (so cyclic graphs terminate once the frontier stops producing
new rows), while UNION ALL keeps every row and terminates only when the
recursive term goes empty — unbounded recursions must die at the engine's
iteration cap with a diagnosable error, not hang.
"""

import sqlite3

import pytest

from repro.backends.memdb import MemDatabase
from repro.backends.memdb.engine import PlanCache
from repro.errors import SQLExecutionError, SQLParseError

_GRAPH_DDL = [
    "CREATE TABLE edges (src BIGINT NOT NULL, dst BIGINT NOT NULL)",
    # 1 -> 2 -> 3 -> 4 -> 2: a cycle, plus a disconnected edge 7 -> 8.
    "INSERT INTO edges (src, dst) VALUES (1, 2), (2, 3), (3, 4), (4, 2), (7, 8)",
]

_REACH_SQL = (
    "WITH RECURSIVE reach(node) AS ("
    "SELECT 1 UNION SELECT e.dst FROM edges AS e JOIN reach AS r ON e.src = r.node"
    ") SELECT node FROM reach ORDER BY node"
)


def _engines():
    return {
        "optimizer": MemDatabase(plan_cache=PlanCache(maxsize=8)),
        "plain": MemDatabase(plan_cache=PlanCache(maxsize=8), enable_optimizer=False),
    }


class TestTermination:
    @pytest.mark.parametrize("flavor", ["optimizer", "plain"])
    def test_union_dedup_terminates_on_cycles(self, flavor):
        engine = _engines()[flavor]
        for statement in _GRAPH_DDL:
            engine.execute(statement)
        reference = sqlite3.connect(":memory:")
        for statement in _GRAPH_DDL:
            reference.execute(statement)
        expected = reference.execute(_REACH_SQL).fetchall()
        assert [tuple(row) for row in engine.execute(_REACH_SQL).rows] == expected
        assert [row[0] for row in engine.execute(_REACH_SQL).rows] == [1, 2, 3, 4]

    @pytest.mark.parametrize("flavor", ["optimizer", "plain"])
    def test_union_all_unbounded_hits_iteration_cap(self, flavor):
        engine = _engines()[flavor]
        with pytest.raises(SQLExecutionError) as excinfo:
            engine.execute(
                "WITH RECURSIVE c(n) AS (SELECT 1 UNION ALL SELECT n + 1 FROM c) "
                "SELECT count(*) FROM c"
            )
        message = str(excinfo.value)
        assert "iteration limit" in message and "1000" in message and "'c'" in message
        assert "UNION" in message  # the error suggests the fix

    def test_union_all_bounded_stops_before_cap(self):
        db = MemDatabase()
        rows = db.execute(
            "WITH RECURSIVE c(n) AS (SELECT 1 UNION ALL SELECT n + 1 FROM c WHERE n < 500) "
            "SELECT count(*) AS k FROM c"
        ).rows
        assert rows == [(500,)]

    def test_recursion_limit_knob(self):
        db = MemDatabase(recursion_limit=7)
        with pytest.raises(SQLExecutionError, match=r"\(7\)"):
            db.execute(
                "WITH RECURSIVE c(n) AS (SELECT 1 UNION ALL SELECT n + 1 FROM c) "
                "SELECT count(*) FROM c"
            )
        # Within the lowered cap, recursion still works.
        rows = db.execute(
            "WITH RECURSIVE c(n) AS (SELECT 1 UNION ALL SELECT n + 1 FROM c WHERE n < 5) "
            "SELECT count(*) AS k FROM c"
        ).rows
        assert rows == [(5,)]

    def test_union_dedups_base_rows_too(self):
        db = MemDatabase()
        for statement in _GRAPH_DDL:
            db.execute(statement)
        rows = db.execute(
            "WITH RECURSIVE reach(node) AS ("
            "SELECT src FROM edges WHERE src = 4 "
            "UNION SELECT e.dst FROM edges AS e JOIN reach AS r ON e.src = r.node"
            ") SELECT node FROM reach ORDER BY node"
        ).rows
        assert [row[0] for row in rows] == [2, 3, 4]


class TestValidation:
    @pytest.fixture()
    def db(self):
        engine = MemDatabase()
        for statement in _GRAPH_DDL:
            engine.execute(statement)
        return engine

    def test_self_reference_requires_recursive_keyword(self, db):
        with pytest.raises(SQLExecutionError, match="WITH RECURSIVE"):
            db.execute(
                "WITH c(n) AS (SELECT 1 UNION ALL SELECT n + 1 FROM c WHERE n < 3) "
                "SELECT n FROM c"
            )

    def test_base_term_may_not_self_reference(self, db):
        with pytest.raises(SQLExecutionError, match="base term"):
            db.execute(
                "WITH RECURSIVE c(n) AS (SELECT n FROM c UNION ALL SELECT 1) SELECT n FROM c"
            )

    def test_recursive_term_may_reference_itself_only_once(self, db):
        with pytest.raises(SQLExecutionError, match="only once"):
            db.execute(
                "WITH RECURSIVE c(n) AS (SELECT 1 UNION ALL "
                "SELECT a.n FROM c AS a JOIN c AS b ON a.n = b.n) SELECT n FROM c"
            )

    def test_recursive_term_may_not_aggregate(self, db):
        with pytest.raises(SQLExecutionError, match="aggregates"):
            db.execute(
                "WITH RECURSIVE c(n) AS (SELECT 1 UNION ALL SELECT max(n) FROM c) "
                "SELECT n FROM c"
            )

    def test_alias_arity_mismatch(self, db):
        with pytest.raises(SQLExecutionError, match="column"):
            db.execute(
                "WITH RECURSIVE c(n, m) AS (SELECT 1 UNION ALL SELECT n + 1 FROM c WHERE n < 3) "
                "SELECT n FROM c"
            )

    def test_cte_body_supports_single_union_only(self, db):
        with pytest.raises(SQLParseError, match="single UNION"):
            db.execute(
                "WITH RECURSIVE c(n) AS (SELECT 1 UNION SELECT 2 UNION SELECT 3) SELECT n FROM c"
            )


class TestParity:
    """Handwritten recursive shapes vs sqlite3 (fuzzer covers the breadth)."""

    _QUERIES = [
        _REACH_SQL,
        # Depth-tracked reachability (UNION ALL bounded by depth).
        "WITH RECURSIVE walk(node, depth) AS ("
        "SELECT 1, 0 UNION ALL "
        "SELECT e.dst, w.depth + 1 FROM edges AS e JOIN walk AS w ON e.src = w.node "
        "WHERE w.depth < 6"
        ") SELECT node, depth FROM walk ORDER BY depth, node",
        # Fibonacci-style accumulator.
        "WITH RECURSIVE f(a, b) AS (SELECT 0, 1 UNION ALL SELECT b, a + b FROM f WHERE b < 100) "
        "SELECT a, b FROM f ORDER BY a",
        # Non-recursive compound body (plain UNION of two terms).
        "WITH u(v) AS (SELECT 1 UNION SELECT 2) SELECT v FROM u ORDER BY v",
        "WITH u(v) AS (SELECT 3 UNION ALL SELECT 3) SELECT v FROM u ORDER BY v",
        # Recursive CTE consumed by a window function.
        "WITH RECURSIVE c(n) AS (SELECT 1 UNION ALL SELECT n + 1 FROM c WHERE n < 8) "
        "SELECT n, sum(n) OVER (ORDER BY n) AS s, row_number() OVER (ORDER BY n DESC) AS rn "
        "FROM c ORDER BY n",
    ]

    @pytest.mark.parametrize("flavor", ["optimizer", "plain"])
    def test_recursive_queries_match_sqlite(self, flavor):
        engine = _engines()[flavor]
        reference = sqlite3.connect(":memory:")
        for statement in _GRAPH_DDL:
            engine.execute(statement)
            reference.execute(statement)
        for sql in self._QUERIES:
            expected = [tuple(row) for row in reference.execute(sql).fetchall()]
            for _attempt in ("cold", "warm"):
                actual = [
                    tuple(
                        float(value) if isinstance(value, float) else value for value in row
                    )
                    for row in engine.execute(sql).rows
                ]
                normalized_expected = [
                    tuple(
                        float(value) if isinstance(value, (int, float)) else value
                        for value in row
                    )
                    for row in expected
                ]
                normalized_actual = [
                    tuple(
                        float(value) if isinstance(value, (int, float)) else value
                        for value in row
                    )
                    for row in actual
                ]
                assert normalized_actual == normalized_expected, sql

    def test_create_table_as_recursive(self):
        db = MemDatabase()
        for statement in _GRAPH_DDL:
            db.execute(statement)
        db.execute(f"CREATE TABLE closure AS {_REACH_SQL}")
        assert [row[0] for row in db.execute("SELECT node FROM closure ORDER BY node").rows] == [
            1,
            2,
            3,
            4,
        ]

    def test_explain_analyze_reports_iterations(self):
        db = MemDatabase()
        for statement in _GRAPH_DDL:
            db.execute(statement)
        plan = "\n".join(row[0] for row in db.execute(f"EXPLAIN ANALYZE {_REACH_SQL}").rows)
        assert "recursive-fixpoint (UNION" in plan
        assert "iterations=" in plan and "iterations=0" not in plan

    def test_obs_spans_cover_recursive_iterations_and_windows(self):
        # Traced execution wraps each fixpoint step (and the window stage)
        # in operator spans under the owning block.
        from repro.obs import MetricsRegistry, SlowQueryLog, TraceRingBuffer, Tracer

        tracer = Tracer(
            registry=MetricsRegistry(), ring=TraceRingBuffer(64), slow_log=SlowQueryLog(threshold_s=10.0)
        )
        db = MemDatabase(plan_cache=PlanCache(maxsize=8), tracer=tracer)
        for statement in _GRAPH_DDL:
            db.execute(statement)
        tracer.ring.drain()

        db.execute(_REACH_SQL)
        root = tracer.recent_traces()[-1]
        execute = next(c for c in root["children"] if c["name"] == "execute")
        blocks = [c for c in execute["children"] if c["name"] == "block"]
        operator_ops = [
            c["attrs"].get("op")
            for block in blocks
            for c in block["children"]
            if c["name"] == "operator"
        ]
        steps = [op for op in operator_ops if op == "recursive-step"]
        assert len(steps) >= 2  # one span per fixpoint iteration

        db.execute(
            "SELECT src, row_number() OVER (PARTITION BY src ORDER BY dst) AS rn "
            "FROM edges ORDER BY src, rn"
        )
        root = tracer.recent_traces()[-1]
        execute = next(c for c in root["children"] if c["name"] == "execute")
        blocks = [c for c in execute["children"] if c["name"] == "block"]
        window_ops = [
            c
            for block in blocks
            for c in block["children"]
            if c["name"] == "operator" and c["attrs"].get("op") == "window"
        ]
        assert window_ops and window_ops[0]["attrs"].get("rows") == 5
