"""Tests for the embedded engine's SQL parser."""

import pytest

from repro.backends.memdb.ast_nodes import (
    BinaryOp,
    ColumnRef,
    CreateTable,
    CreateTableAs,
    Delete,
    DropTable,
    FunctionCall,
    Insert,
    Literal,
    Select,
    UnaryOp,
    WithSelect,
)
from repro.backends.memdb.parser import parse_one, parse_sql
from repro.errors import SQLParseError


class TestSelectParsing:
    def test_simple_select(self):
        statement = parse_one("SELECT s, r FROM T0")
        assert isinstance(statement, Select)
        assert len(statement.items) == 2
        assert statement.source.name == "T0"

    def test_expression_precedence_bitwise_below_comparison(self):
        statement = parse_one("SELECT 1 FROM t WHERE a & 3 = 2")
        where = statement.where
        assert isinstance(where, BinaryOp) and where.operator == "="
        assert isinstance(where.left, BinaryOp) and where.left.operator == "&"

    def test_shift_precedence_above_bitand(self):
        statement = parse_one("SELECT a & 1 << 2 FROM t")
        expression = statement.items[0].expression
        assert expression.operator == "&"
        assert isinstance(expression.right, BinaryOp) and expression.right.operator == "<<"

    def test_unary_tilde(self):
        statement = parse_one("SELECT s & ~6 FROM t")
        expression = statement.items[0].expression
        assert isinstance(expression.right, UnaryOp) and expression.right.operator == "~"

    def test_aliases_with_and_without_as(self):
        statement = parse_one("SELECT a AS x, b y FROM t")
        assert statement.items[0].alias == "x"
        assert statement.items[1].alias == "y"

    def test_join_with_on(self):
        statement = parse_one("SELECT * FROM T0 JOIN H ON H.in_s = (T0.s & 1)")
        assert len(statement.joins) == 1
        assert statement.joins[0].source.name == "H"
        assert statement.joins[0].condition.operator == "="

    def test_group_by_order_by_limit(self):
        statement = parse_one(
            "SELECT s, SUM(r) FROM t GROUP BY s ORDER BY s DESC LIMIT 5"
        )
        assert len(statement.group_by) == 1
        assert statement.order_by[0].descending
        assert statement.limit == 5

    def test_aggregate_count_star(self):
        statement = parse_one("SELECT COUNT(*) FROM t")
        call = statement.items[0].expression
        assert isinstance(call, FunctionCall) and call.is_star

    def test_with_clause(self):
        statement = parse_one("WITH a AS (SELECT 1), b AS (SELECT 2) SELECT * FROM b")
        assert isinstance(statement, WithSelect)
        assert [cte.name for cte in statement.ctes] == ["a", "b"]

    def test_case_expression(self):
        statement = parse_one("SELECT CASE WHEN a > 0 THEN 1 ELSE 0 END FROM t")
        assert statement.items[0].expression.default == Literal(0)

    def test_in_list_and_is_null(self):
        statement = parse_one("SELECT 1 FROM t WHERE a IN (1, 2) AND b IS NOT NULL")
        assert statement.where.operator == "and"

    def test_distinct(self):
        assert parse_one("SELECT DISTINCT s FROM t").distinct


class TestOtherStatements:
    def test_create_table(self):
        statement = parse_one("CREATE TABLE T0 (s BIGINT NOT NULL, r DOUBLE, i DOUBLE)")
        assert isinstance(statement, CreateTable)
        assert [column.name for column in statement.columns] == ["s", "r", "i"]
        assert statement.columns[0].not_null

    def test_create_table_as(self):
        statement = parse_one("CREATE TABLE T1 AS SELECT * FROM T0")
        assert isinstance(statement, CreateTableAs)
        assert statement.name == "T1"

    def test_create_temp_table_as(self):
        statement = parse_one("CREATE TEMP TABLE T1 AS SELECT 1")
        assert statement.temporary

    def test_insert_multi_row(self):
        statement = parse_one("INSERT INTO H (in_s, out_s, r, i) VALUES (0, 0, 0.7, 0.0), (1, 1, -0.7, 0.0)")
        assert isinstance(statement, Insert)
        assert len(statement.rows) == 2
        assert statement.columns == ("in_s", "out_s", "r", "i")

    def test_delete_with_where(self):
        statement = parse_one("DELETE FROM T1 WHERE (r * r) + (i * i) <= 1e-12")
        assert isinstance(statement, Delete)
        assert statement.where is not None

    def test_drop_if_exists(self):
        statement = parse_one("DROP TABLE IF EXISTS T1")
        assert isinstance(statement, DropTable)
        assert statement.if_exists

    def test_multiple_statements(self):
        statements = parse_sql("SELECT 1; SELECT 2;")
        assert len(statements) == 2

    def test_column_ref_qualification(self):
        statement = parse_one("SELECT T0.s FROM T0")
        ref = statement.items[0].expression
        assert isinstance(ref, ColumnRef) and ref.table == "T0" and ref.name == "s"


class TestParserErrors:
    def test_empty_statement(self):
        with pytest.raises(SQLParseError):
            parse_sql("   ")

    def test_unsupported_statement(self):
        with pytest.raises(SQLParseError):
            parse_one("UPDATE t SET a = 1")

    def test_missing_from_table(self):
        with pytest.raises(SQLParseError):
            parse_one("SELECT * FROM")

    def test_bad_expression(self):
        with pytest.raises(SQLParseError):
            parse_one("SELECT * FROM t WHERE a = ")

    def test_two_statements_for_parse_one(self):
        with pytest.raises(SQLParseError):
            parse_one("SELECT 1; SELECT 2")
