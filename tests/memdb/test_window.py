"""Window-function edge audit: handwritten adversarial shapes vs sqlite3.

The differential fuzzer (tests/properties/test_sql_fuzz.py) covers the
grammar breadth; this suite pins the named edge cases — empty/degenerate
partitions, all-NULL ORDER BY keys, rank vs dense_rank tie ladders,
lag/lead defaults past frame edges, unicode text partition keys — plus the
physical-layer contracts: window blocks decline morsel parallelism through
the costed path with byte-identical results, and EXPLAIN surfaces the
window operator.
"""

import sqlite3

import pytest

from repro.backends.memdb import MemDatabase
from repro.backends.memdb.engine import PlanCache
from repro.backends.memdb.optimizer.cost import CostModel
from repro.backends.memdb.parser import parse_one
from repro.errors import SQLExecutionError

# ---------------------------------------------------------------------------
# Differential helper
# ---------------------------------------------------------------------------

#: One tie-and-NULL-heavy document table used by most cases below.  The
#: unicode partition keys ("Ω" > "é" > ASCII in code points) force the
#: dictionary's collation order through the partition/sort key space.
_TREE_DDL = [
    "CREATE TABLE doc (id BIGINT NOT NULL, part TEXT, k DOUBLE, v DOUBLE)",
    "INSERT INTO doc (id, part, k, v) VALUES "
    "(0, 'a', 1.0, 10.0), "
    "(1, 'a', 1.0, 20.0), "
    "(2, 'a', 2.0, NULL), "
    "(3, 'é', NULL, 1.0), "
    "(4, 'é', NULL, 2.0), "
    "(5, 'Ω', 5.0, NULL), "
    "(6, NULL, 1.0, 3.0), "
    "(7, NULL, 1.0, 4.0), "
    "(8, '', 0.0, 5.0)",
]


def _norm(rows):
    out = []
    for row in rows:
        values = []
        for value in row:
            if isinstance(value, float) and value != value:
                value = None  # NaN encodes NULL in memdb results
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                value = round(float(value), 7)
            values.append(value)
        out.append(tuple(values))
    return out


def assert_matches_sqlite(statements, sql):
    """Run ``sql`` on sqlite3 and every memdb flavor; all must agree."""
    reference = sqlite3.connect(":memory:")
    for statement in statements:
        reference.execute(statement)
    expected = _norm(reference.execute(sql).fetchall())
    reference.close()

    flavors = {
        "optimizer": MemDatabase(plan_cache=PlanCache(maxsize=8)),
        "plain": MemDatabase(plan_cache=PlanCache(maxsize=8), enable_optimizer=False),
        "no-dict": MemDatabase(plan_cache=PlanCache(maxsize=8), enable_dict_encoding=False),
    }
    for label, engine in flavors.items():
        for statement in statements:
            engine.execute(statement)
        for attempt in ("cold", "warm"):
            actual = _norm(engine.execute(sql).rows)
            assert actual == expected, (
                f"memdb[{label}][{attempt}] diverged on:\n{sql}\n"
                f"expected {expected}\nactual   {actual}"
            )
    return expected


# ---------------------------------------------------------------------------
# Ranking: ties, NULL keys, degenerate partitions
# ---------------------------------------------------------------------------


class TestRankingEdges:
    def test_rank_vs_dense_rank_tie_ladder(self):
        assert_matches_sqlite(
            _TREE_DDL,
            "SELECT id, rank() OVER (PARTITION BY part ORDER BY k) AS r, "
            "dense_rank() OVER (PARTITION BY part ORDER BY k) AS d "
            "FROM doc ORDER BY id",
        )

    def test_all_null_order_keys_are_one_peer_group(self):
        # Partition 'é' orders by an all-NULL key: every row is rank 1.
        rows = assert_matches_sqlite(
            _TREE_DDL,
            "SELECT id, rank() OVER (PARTITION BY part ORDER BY k) AS r "
            "FROM doc WHERE part = 'é' ORDER BY id",
        )
        assert [row[1] for row in rows] == [1, 1]

    def test_null_partition_key_forms_its_own_partition(self):
        rows = assert_matches_sqlite(
            _TREE_DDL,
            "SELECT id, count(*) OVER (PARTITION BY part) AS n FROM doc ORDER BY id",
        )
        assert rows[6][1] == 2 and rows[7][1] == 2  # the two NULL-part rows

    def test_rank_without_order_by_is_all_ones(self):
        assert_matches_sqlite(
            _TREE_DDL,
            "SELECT id, rank() OVER (PARTITION BY part) AS r, "
            "dense_rank() OVER () AS d FROM doc ORDER BY id",
        )

    def test_descending_order_places_nulls_last(self):
        assert_matches_sqlite(
            _TREE_DDL,
            "SELECT id, rank() OVER (ORDER BY k DESC) AS r FROM doc ORDER BY id",
        )

    def test_row_number_over_empty_table(self):
        assert_matches_sqlite(
            ["CREATE TABLE empty (id BIGINT NOT NULL, x DOUBLE)"],
            "SELECT id, row_number() OVER (ORDER BY x, id) AS rn, "
            "sum(x) OVER (PARTITION BY x) AS s FROM empty ORDER BY id",
        ) == []

    def test_single_row_partitions(self):
        assert_matches_sqlite(
            _TREE_DDL,
            "SELECT id, row_number() OVER (PARTITION BY id ORDER BY id) AS rn, "
            "sum(v) OVER (PARTITION BY id) AS s FROM doc ORDER BY id",
        )


# ---------------------------------------------------------------------------
# lag / lead: defaults past frame edges
# ---------------------------------------------------------------------------


class TestLagLeadEdges:
    def test_defaults_past_partition_edges(self):
        assert_matches_sqlite(
            _TREE_DDL,
            "SELECT id, lag(v) OVER (PARTITION BY part ORDER BY id) AS a, "
            "lead(v) OVER (PARTITION BY part ORDER BY id) AS b, "
            "lag(v, 2, -1.0) OVER (PARTITION BY part ORDER BY id) AS c, "
            "lead(v, 2, -1.0) OVER (PARTITION BY part ORDER BY id) AS d "
            "FROM doc ORDER BY id",
        )

    def test_default_only_fills_missing_rows_not_null_values(self):
        # Row 2's v IS NULL: lag onto it yields NULL, never the default.
        rows = assert_matches_sqlite(
            _TREE_DDL,
            "SELECT id, lag(v, 1, 99.0) OVER (PARTITION BY part ORDER BY id) AS a "
            "FROM doc WHERE part = 'a' ORDER BY id",
        )
        assert [row[1] for row in rows] == [99.0, 10.0, 20.0]

    def test_offset_zero_is_identity(self):
        assert_matches_sqlite(
            _TREE_DDL,
            "SELECT id, lag(v, 0) OVER (ORDER BY id) AS a, "
            "lead(v, 0, 7.0) OVER (ORDER BY id) AS b FROM doc ORDER BY id",
        )

    def test_offset_beyond_any_partition(self):
        assert_matches_sqlite(
            _TREE_DDL,
            "SELECT id, lag(v, 100) OVER (PARTITION BY part ORDER BY id) AS a, "
            "lead(v, 100, 0.5) OVER (PARTITION BY part ORDER BY id) AS b "
            "FROM doc ORDER BY id",
        )

    def test_text_values_and_text_defaults(self):
        assert_matches_sqlite(
            _TREE_DDL,
            "SELECT id, lag(part) OVER (ORDER BY id) AS a, "
            "lead(part, 1, '<none>') OVER (ORDER BY id) AS b FROM doc ORDER BY id",
        )


# ---------------------------------------------------------------------------
# Frames and running aggregates
# ---------------------------------------------------------------------------


class TestFrameEdges:
    def test_default_frame_includes_order_by_peers(self):
        # Rows 0 and 1 tie on k: SQLite's default frame (RANGE ... CURRENT
        # ROW) includes the whole peer group in both running sums.
        rows = assert_matches_sqlite(
            _TREE_DDL,
            "SELECT id, sum(v) OVER (PARTITION BY part ORDER BY k) AS s "
            "FROM doc WHERE part = 'a' ORDER BY id",
        )
        assert rows[0][1] == rows[1][1] == 30.0

    def test_empty_frames_yield_null_and_count_zero(self):
        # At the partition head, 3 PRECEDING..1 PRECEDING selects nothing.
        assert_matches_sqlite(
            _TREE_DDL,
            "SELECT id, sum(v) OVER (ORDER BY id ROWS BETWEEN 3 PRECEDING AND 1 PRECEDING) AS s, "
            "count(v) OVER (ORDER BY id ROWS BETWEEN 3 PRECEDING AND 1 PRECEDING) AS c, "
            "min(k) OVER (ORDER BY id ROWS BETWEEN 2 FOLLOWING AND 3 FOLLOWING) AS m "
            "FROM doc ORDER BY id",
        )

    def test_frames_clip_to_partition_bounds(self):
        assert_matches_sqlite(
            _TREE_DDL,
            "SELECT id, sum(v) OVER (PARTITION BY part ORDER BY id "
            "ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS s, "
            "max(v) OVER (PARTITION BY part ORDER BY id "
            "ROWS BETWEEN UNBOUNDED PRECEDING AND UNBOUNDED FOLLOWING) AS m "
            "FROM doc ORDER BY id",
        )

    def test_all_null_input_aggregates(self):
        assert_matches_sqlite(
            _TREE_DDL,
            "SELECT id, sum(v) OVER (PARTITION BY part) AS s, "
            "avg(v) OVER (PARTITION BY part) AS a, count(v) OVER (PARTITION BY part) AS c "
            "FROM doc WHERE part = 'Ω' ORDER BY id",
        )

    def test_count_star_vs_count_column_over_nulls(self):
        assert_matches_sqlite(
            _TREE_DDL,
            "SELECT id, count(*) OVER (ORDER BY id) AS a, count(v) OVER (ORDER BY id) AS b "
            "FROM doc ORDER BY id",
        )


# ---------------------------------------------------------------------------
# Unicode partitions, composition, misuse
# ---------------------------------------------------------------------------


class TestPartitionAndComposition:
    def test_unicode_text_partition_keys(self):
        assert_matches_sqlite(
            _TREE_DDL,
            "SELECT id, part, row_number() OVER (PARTITION BY part ORDER BY id) AS rn, "
            "rank() OVER (ORDER BY part) AS r FROM doc ORDER BY id",
        )

    def test_window_over_cte_output(self):
        assert_matches_sqlite(
            _TREE_DDL,
            "WITH filtered AS (SELECT id, part, v FROM doc WHERE v > 1.0) "
            "SELECT id, sum(v) OVER (PARTITION BY part ORDER BY id) AS s "
            "FROM filtered ORDER BY id",
        )

    def test_multiple_specs_share_one_query(self):
        assert_matches_sqlite(
            _TREE_DDL,
            "SELECT id, row_number() OVER (PARTITION BY part ORDER BY id) AS a, "
            "rank() OVER (ORDER BY k, id) AS b, "
            "sum(v) OVER (ORDER BY id ROWS BETWEEN 1 PRECEDING AND CURRENT ROW) AS c "
            "FROM doc ORDER BY id",
        )

    def test_window_with_limit_tail(self):
        assert_matches_sqlite(
            _TREE_DDL,
            "SELECT id, row_number() OVER (ORDER BY k, id) AS rn "
            "FROM doc ORDER BY id DESC LIMIT 4 OFFSET 2",
        )


class TestWindowMisuse:
    @pytest.fixture()
    def db(self):
        engine = MemDatabase()
        for statement in _TREE_DDL:
            engine.execute(statement)
        return engine

    @pytest.mark.parametrize("optimizer", [True, False], ids=["optimizer", "plain"])
    def test_window_in_where_rejected_identically(self, optimizer):
        engine = MemDatabase(enable_optimizer=optimizer)
        for statement in _TREE_DDL:
            engine.execute(statement)
        with pytest.raises(SQLExecutionError, match="only allowed in the SELECT list"):
            engine.execute("SELECT id FROM doc WHERE row_number() OVER () = 1")

    def test_window_with_group_by_rejected(self, db):
        with pytest.raises(SQLExecutionError, match="GROUP BY"):
            db.execute("SELECT part, count(*), rank() OVER () FROM doc GROUP BY part")

    def test_window_with_star_rejected(self, db):
        with pytest.raises(SQLExecutionError, match="'\\*' projection"):
            db.execute("SELECT *, row_number() OVER () FROM doc")

    def test_unknown_window_function(self, db):
        with pytest.raises(SQLExecutionError, match="unknown window function"):
            db.execute("SELECT ntile(4) OVER (ORDER BY id) FROM doc")

    def test_text_window_aggregate_rejected(self, db):
        with pytest.raises(SQLExecutionError, match="text columns"):
            db.execute("SELECT min(part) OVER () FROM doc")


# ---------------------------------------------------------------------------
# Physical layer: parallelism declined, EXPLAIN rendering
# ---------------------------------------------------------------------------


_WINDOW_SQL = (
    "SELECT id, part, rank() OVER (PARTITION BY part ORDER BY k, id) AS r, "
    "sum(v) OVER (PARTITION BY part ORDER BY id) AS s FROM doc ORDER BY id"
)


class TestWindowPhysical:
    def test_cost_model_declines_parallelism_for_windows(self):
        db = MemDatabase()
        for statement in _TREE_DDL:
            db.execute(statement)
        cost = CostModel(
            db._tables, enable_parallel=True, parallel_workers=8, parallel_threshold_rows=0
        )
        decision = cost.parallel_decision(parse_one(_WINDOW_SQL))
        assert not decision.eligible and not decision.use_parallel
        assert "serial" in decision.reason

    def test_parallel_engine_results_byte_identical(self):
        from repro.backends.memdb.parallel import shared_worker_pool

        parallel = MemDatabase(
            plan_cache=PlanCache(maxsize=8),
            enable_parallel=True,
            parallel_threshold_rows=0,
            worker_pool=shared_worker_pool(),
        )
        serial = MemDatabase(plan_cache=PlanCache(maxsize=8))
        for statement in _TREE_DDL:
            parallel.execute(statement)
            serial.execute(statement)
        expected = serial.execute(_WINDOW_SQL).rows
        for _attempt in ("cold", "warm"):
            rows = parallel.execute(_WINDOW_SQL).rows
            assert len(rows) == len(expected)
            for left, right in zip(rows, expected):
                for a, b in zip(left, right):
                    both_nan = (
                        isinstance(a, float) and isinstance(b, float) and a != a and b != b
                    )
                    assert both_nan or (a == b and type(a) is type(b))

    def test_explain_shows_window_operator(self):
        db = MemDatabase()
        for statement in _TREE_DDL:
            db.execute(statement)
        plan = "\n".join(row[0] for row in db.execute(f"EXPLAIN {_WINDOW_SQL}").rows)
        assert "-> window" in plan

    def test_explain_analyze_window_traces_rows(self):
        db = MemDatabase()
        for statement in _TREE_DDL:
            db.execute(statement)
        plan = "\n".join(row[0] for row in db.execute(f"EXPLAIN ANALYZE {_WINDOW_SQL}").rows)
        assert "-> window" in plan and "actual" in plan

    def test_plan_cache_flavors_unchanged_by_windows(self):
        # Windowed statements ride the same per-flavor cache as everything
        # else: one optimizer-on entry, one optimizer-off entry.
        cache = PlanCache(maxsize=8)
        db = MemDatabase(plan_cache=cache)
        for statement in _TREE_DDL:
            db.execute(statement)
        db.execute(_WINDOW_SQL)
        first = db.execute(_WINDOW_SQL)
        assert _norm(first.rows) == _norm(db.execute(_WINDOW_SQL).rows)
