"""Tests for the morsel-driven parallel execution subsystem.

The contract under test is strict: a parallel engine must return results
*byte-identical* to serial execution — same values, same bits, same order —
for every operator (filters, joins, group-by, top-k), because parallelism is
a costed physical plan choice, never a semantic one.  The differential tests
therefore compare raw rows with an exact matcher (NaN-aware, type-aware)
against a serial engine and, where affordable, against the interpreter-based
reference via the optimizer-off engine.
"""

from __future__ import annotations

import math
import os
import threading
import time

import numpy as np
import pytest

from repro.backends import MemDBBackend
from repro.backends.memdb.engine import MemDatabase, PlanCache
from repro.backends.memdb.executor import ExpressionEvaluator, apply_filter, join_indices
from repro.backends.memdb.optimizer.cost import CostModel, ParallelDecision
from repro.backends.memdb.parallel import (
    WorkerPool,
    morsel_ranges,
    parallel_apply_filter,
    parallel_join_indices,
    shared_worker_pool,
)
from repro.backends.memdb.parallel.pool import PARALLEL_ENV_VAR
from repro.backends.memdb.parser import parse_sql
from repro.errors import SQLExecutionError
from repro.service.session import QymeraSession


def _exact_equal(left, right) -> bool:
    """Row-for-row equality that distinguishes NaN-vs-value and types."""
    if len(left) != len(right):
        return False
    for row_a, row_b in zip(left, right):
        if len(row_a) != len(row_b):
            return False
        for a, b in zip(row_a, row_b):
            if isinstance(a, float) and isinstance(b, float):
                if math.isnan(a) != math.isnan(b):
                    return False
                if not math.isnan(a) and a != b:
                    return False
            elif a != b or type(a) is not type(b):
                return False
    return True


def assert_rows_identical(actual, expected, context=""):
    assert _exact_equal(actual, expected), f"{context}\nexpected {expected}\nactual   {actual}"


# ---------------------------------------------------------------------------
# Morsel partitioning
# ---------------------------------------------------------------------------


class TestMorselRanges:
    def test_covers_input_contiguously(self):
        for length in (0, 1, 7, 2_048, 65_537, 1_000_000):
            ranges = morsel_ranges(length, workers=4)
            assert sum(stop - start for start, stop in ranges) == length
            position = 0
            for start, stop in ranges:
                assert start == position and stop > start
                position = stop

    def test_large_input_gets_at_least_one_morsel_per_worker(self):
        ranges = morsel_ranges(1_000_000, workers=4)
        assert len(ranges) >= 4

    def test_tiny_input_stays_single_morsel(self):
        assert len(morsel_ranges(100, workers=4)) == 1

    def test_empty_input(self):
        assert morsel_ranges(0, workers=4) == []


# ---------------------------------------------------------------------------
# Worker pool
# ---------------------------------------------------------------------------


class TestWorkerPool:
    def test_map_preserves_order(self):
        pool = WorkerPool(3)
        try:
            assert pool.map(lambda x: x * x, list(range(20))) == [x * x for x in range(20)]
        finally:
            pool.shutdown()

    def test_exception_propagates_and_pool_stays_usable(self):
        pool = WorkerPool(3)
        try:
            def boom(x):
                if x == 5:
                    raise SQLExecutionError("morsel failure")
                return x

            with pytest.raises(SQLExecutionError, match="morsel failure"):
                pool.map(boom, list(range(10)))
            assert pool.stats()["errors"] == 1
            # The pool survives a failed batch.
            assert pool.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
        finally:
            pool.shutdown()

    def test_shutdown_degrades_to_inline_execution(self):
        pool = WorkerPool(3)
        pool.shutdown()
        pool.shutdown()  # idempotent
        assert pool.map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]
        stats = pool.stats()
        assert not stats["active"]
        assert stats["inline_batches"] >= 1

    def test_single_item_runs_inline(self):
        pool = WorkerPool(3)
        try:
            assert pool.map(lambda x: x, [7]) == [7]
            assert pool.stats()["batches"] == 0
        finally:
            pool.shutdown()

    def test_shared_pool_is_replaced_after_shutdown(self):
        pool = shared_worker_pool()
        assert shared_worker_pool() is pool
        pool.shutdown()
        replacement = shared_worker_pool()
        assert replacement is not pool and replacement.active


# ---------------------------------------------------------------------------
# Operator-level byte identity
# ---------------------------------------------------------------------------


def _select_of(sql: str):
    (statement,) = parse_sql(sql)
    return statement


class TestOperatorParity:
    def setup_method(self):
        self.pool = WorkerPool(3)
        rng = np.random.default_rng(7)
        n = 9_000
        self.frame = {
            "t.id": np.arange(n, dtype=np.int64),
            "t.v": np.round(rng.normal(size=n), 3),
            "t.k": rng.integers(-5, 5, n),
        }
        # NaNs sprinkled in to exercise NULL semantics.
        self.frame["t.v"][rng.integers(0, n, 200)] = np.nan
        self.length = n

    def teardown_method(self):
        self.pool.shutdown()

    def test_parallel_filter_identical(self):
        predicate = _select_of("SELECT t.id FROM t WHERE t.v > 0 AND t.k != 2").where
        serial_frame, serial_length = apply_filter(dict(self.frame), self.length, predicate)
        par_frame, par_length = parallel_apply_filter(dict(self.frame), self.length, predicate, self.pool)
        assert par_length == serial_length
        for key in serial_frame:
            np.testing.assert_array_equal(
                par_frame[key], serial_frame[key], strict=True
            )

    def test_parallel_join_indices_identical(self):
        rng = np.random.default_rng(11)
        left = rng.integers(0, 500, 8_000)
        right = rng.integers(0, 500, 3_000)
        serial = join_indices(left, right)
        parallel = parallel_join_indices(left, right, self.pool)
        np.testing.assert_array_equal(parallel[0], serial[0], strict=True)
        np.testing.assert_array_equal(parallel[1], serial[1], strict=True)

    def test_parallel_join_with_nan_keys_identical(self):
        rng = np.random.default_rng(13)
        left = rng.integers(0, 60, 4_000).astype(np.float64)
        right = rng.integers(0, 60, 4_000).astype(np.float64)
        left[rng.integers(0, 4_000, 300)] = np.nan
        right[rng.integers(0, 4_000, 300)] = np.nan
        serial = join_indices(left, right)
        parallel = parallel_join_indices(left, right, self.pool)
        np.testing.assert_array_equal(parallel[0], serial[0], strict=True)
        np.testing.assert_array_equal(parallel[1], serial[1], strict=True)

    def test_filter_error_propagates_from_worker(self):
        predicate = _select_of("SELECT t.id FROM t WHERE t.missing > 0").where
        with pytest.raises(SQLExecutionError, match="unknown column"):
            parallel_apply_filter(dict(self.frame), self.length, predicate, self.pool)


# ---------------------------------------------------------------------------
# Engine-level differential: parallel == serial, row for row
# ---------------------------------------------------------------------------


def _build_pair(rows: int = 4_000, seed: int = 3):
    """A (parallel, serial) engine pair over identical data.

    The parallel engine forces the costed decision to parallel on any
    non-empty input (threshold 0) so the operators are exercised even on
    test-sized tables.
    """
    pool = WorkerPool(3)
    parallel = MemDatabase(
        plan_cache=PlanCache(maxsize=64),
        enable_parallel=True,
        parallel_threshold_rows=0,
        worker_pool=pool,
    )
    serial = MemDatabase(plan_cache=PlanCache(maxsize=64), enable_parallel=False)
    interpreter = MemDatabase(plan_cache=PlanCache(0), enable_optimizer=False)

    rng = np.random.default_rng(seed)
    ids = np.arange(rows, dtype=np.int64)
    # Tie-heavy values, NaNs for NULL semantics, negative keys for hashing.
    values = np.round(rng.normal(size=rows) * 4, 1)
    values[rng.integers(0, rows, rows // 20)] = np.nan
    keys = rng.integers(-7, 7, rows)
    groups = rng.integers(0, 12, rows)
    dim_ids = np.arange(-7, 13, dtype=np.int64)
    weights = np.round(np.linspace(-2.0, 2.0, len(dim_ids)), 2)

    for db in (parallel, serial, interpreter):
        db.create_table_from_columns("t", {"id": ids, "v": values.copy(), "k": keys, "g": groups})
        db.create_table_from_columns("d", {"id": dim_ids, "w": weights})
    return parallel, serial, interpreter, pool


_DIFFERENTIAL_QUERIES = [
    # scans + filters + projections
    "SELECT t.id AS id, t.v * 2 + 1 AS e FROM t WHERE t.v > 0.5 ORDER BY t.id",
    "SELECT t.id AS id, t.v AS v FROM t WHERE t.k IN (1, -3, 5) AND t.v <= 1.5 ORDER BY t.id",
    # NULL handling through filters and projections
    "SELECT t.id AS id, t.v AS v FROM t WHERE t.v IS NOT NULL ORDER BY t.id",
    "SELECT t.id AS id, CASE WHEN t.v > 0 THEN t.v ELSE -t.v END AS a FROM t ORDER BY t.id",
    # joins (duplicate keys on both sides, NULL keys never match)
    "SELECT t.id AS id, d.w AS w FROM t JOIN d ON t.k = d.id ORDER BY t.id",
    "SELECT t.id AS id, t.v + d.w AS s FROM t JOIN d ON t.g = d.id WHERE d.w > -1 ORDER BY t.id",
    # group-by: sums over ties and NaNs must merge bit-identically
    "SELECT t.g AS g, SUM(t.v) AS sv, COUNT(*) AS n FROM t GROUP BY t.g",
    "SELECT t.k AS k, MIN(t.v) AS mn, MAX(t.v) AS mx, AVG(t.v) AS av FROM t GROUP BY t.k",
    "SELECT t.g AS g, SUM(t.v * t.v) AS s2 FROM t WHERE t.k > 0 GROUP BY t.g",
    # fused join-aggregate shape (the paper's hot path)
    "SELECT t.g AS g, SUM(t.v * d.w) AS s, COUNT(*) AS n FROM t JOIN d ON t.k = d.id GROUP BY t.g",
    # grouped shapes the partitioned path must *decline* (HAVING, multi-key)
    "SELECT t.g AS g, COUNT(*) AS n FROM t GROUP BY t.g HAVING COUNT(*) > 300",
    "SELECT t.g AS g, t.k AS k, SUM(t.v) AS s FROM t GROUP BY t.g, t.k",
    # order/limit tails over parallel blocks (top-k)
    "SELECT t.id AS id, t.v AS v FROM t WHERE t.v IS NOT NULL ORDER BY t.v ASC, t.id ASC LIMIT 25",
    "SELECT t.id AS id, t.v AS v FROM t ORDER BY t.v DESC, t.id ASC LIMIT 10 OFFSET 5",
    # CTE chains: every block gets its own parallel decision
    "WITH c AS (SELECT t.id AS id, t.v AS v, t.g AS g FROM t WHERE t.v > -1) "
    "SELECT c.g AS g, SUM(c.v) AS s FROM c GROUP BY c.g",
    "WITH c AS (SELECT t.k AS k, SUM(t.v) AS s FROM t GROUP BY t.k) "
    "SELECT c.k AS k, c.s + d.w AS e FROM c JOIN d ON c.k = d.id ORDER BY c.k",
]


class TestParallelSerialDifferential:
    def test_queries_byte_identical_across_engines(self):
        parallel, serial, interpreter, pool = _build_pair()
        try:
            for sql in _DIFFERENTIAL_QUERIES:
                expected = serial.execute(sql).rows
                assert_rows_identical(parallel.execute(sql).rows, expected, sql)
                assert_rows_identical(interpreter.execute(sql).rows, expected, sql)
                # Warm (plan-cached) execution must match the cold one.
                assert_rows_identical(parallel.execute(sql).rows, expected, sql + " [warm]")
            # The parallel engine really did run parallel plans.
            stats = parallel.parallel_stats()
            assert stats["parallel_plan_executions"] > 0
            assert stats["pool"]["tasks"] > 0
        finally:
            pool.shutdown()

    def test_dml_between_executions_stays_identical(self):
        parallel, serial, _interpreter, pool = _build_pair(rows=2_000)
        try:
            sql = "SELECT t.g AS g, SUM(t.v) AS s, COUNT(*) AS n FROM t GROUP BY t.g"
            assert_rows_identical(parallel.execute(sql).rows, serial.execute(sql).rows)
            for db in (parallel, serial):
                db.execute("DELETE FROM t WHERE t.k = 3")
                db.execute("INSERT INTO t (id, v, k, g) VALUES (100000, 0.125, 3, 1), (100001, -0.25, 3, 2)")
            assert_rows_identical(parallel.execute(sql).rows, serial.execute(sql).rows)
        finally:
            pool.shutdown()

    def test_text_columns_group_and_join_identically(self):
        pool = WorkerPool(3)
        parallel = MemDatabase(
            plan_cache=PlanCache(maxsize=8),
            enable_parallel=True,
            parallel_threshold_rows=0,
            worker_pool=pool,
        )
        serial = MemDatabase(plan_cache=PlanCache(maxsize=8), enable_parallel=False)
        names = np.array(["ab", "a", "", "zz", "é", "b"] * 300, dtype=object)
        ids = np.arange(len(names), dtype=np.int64)
        try:
            for db in (parallel, serial):
                db.create_table_from_columns("s", {"id": ids, "name": names.copy()})
            for sql in [
                "SELECT s.id AS id, s.name AS name FROM s ORDER BY s.name DESC, s.id ASC LIMIT 9",
                "SELECT s.id AS id, s.name || '!' AS tagged FROM s WHERE s.id < 100 ORDER BY s.id",
            ]:
                assert_rows_identical(parallel.execute(sql).rows, serial.execute(sql).rows, sql)
        finally:
            pool.shutdown()


# ---------------------------------------------------------------------------
# Cost gate
# ---------------------------------------------------------------------------


class TestParallelCostGate:
    def test_disabled_model_is_ineligible(self):
        decision = CostModel(enable_parallel=False).parallel_decision(
            _select_of("SELECT t.id FROM t")
        )
        assert isinstance(decision, ParallelDecision)
        assert not decision.eligible and not decision.use_parallel

    def test_single_worker_is_ineligible(self):
        decision = CostModel(enable_parallel=True, parallel_workers=1).parallel_decision(
            _select_of("SELECT t.id FROM t")
        )
        assert not decision.eligible

    def test_small_input_chooses_serial_large_chooses_parallel(self):
        small = MemDatabase(plan_cache=PlanCache(), enable_parallel=True, parallel_workers=4)
        small.create_table_from_columns("t", {"id": np.arange(100, dtype=np.int64)})
        select = _select_of("SELECT t.id AS id FROM t WHERE t.id > 3")
        model = small._optimizer().cost_model()
        decision = model.parallel_decision(select)
        assert decision.eligible and not decision.use_parallel

        big = MemDatabase(plan_cache=PlanCache(), enable_parallel=True, parallel_workers=4)
        big.create_table_from_columns("t", {"id": np.arange(1_000_000, dtype=np.int64)})
        decision = big._optimizer().cost_model().parallel_decision(select)
        assert decision.use_parallel
        assert decision.parallel_cost < decision.serial_cost

    def test_explain_shows_the_decision(self):
        db = MemDatabase(plan_cache=PlanCache(), enable_parallel=True, parallel_workers=4)
        db.create_table_from_columns("t", {"id": np.arange(1_000_000, dtype=np.int64)})
        plan = "\n".join(
            row[0] for row in db.execute("EXPLAIN SELECT t.id AS id FROM t WHERE t.id > 5").rows
        )
        assert "morsel-parallel (4 workers)" in plan

        serial_db = MemDatabase(plan_cache=PlanCache(), enable_parallel=True, parallel_workers=4)
        serial_db.create_table_from_columns("t", {"id": np.arange(10, dtype=np.int64)})
        plan = "\n".join(
            row[0] for row in serial_db.execute("EXPLAIN SELECT t.id AS id FROM t WHERE t.id > 5").rows
        )
        assert "serial [cost" in plan

    def test_invalid_star_aggregates_raise_like_serial(self):
        # SUM(*)/AVG(*) are errors on the serial path; the partitioned
        # aggregation must decline them (falling back to the serial code
        # that raises), never silently return COUNT semantics.
        parallel, serial, _interpreter, pool = _build_pair(rows=500)
        try:
            for sql in (
                "SELECT t.g AS g, SUM(*) AS s FROM t GROUP BY t.g",
                "SELECT t.g AS g, AVG(*) AS a FROM t GROUP BY t.g",
                "SELECT t.g AS g, MIN(*) AS m FROM t GROUP BY t.g",
            ):
                with pytest.raises(SQLExecutionError, match="not a valid aggregate"):
                    serial.execute(sql)
                with pytest.raises(SQLExecutionError, match="not a valid aggregate"):
                    parallel.execute(sql)
        finally:
            pool.shutdown()

    def test_shared_cache_keeps_parallel_flavors_distinct(self):
        # Plans bake their costed ParallelDecision, so engines with
        # different parallel configurations sharing one cache must compile
        # their own entries instead of re-binding each other's.
        cache = PlanCache(maxsize=8)
        serial = MemDatabase(plan_cache=cache, enable_parallel=False)
        pool = WorkerPool(2)
        parallel = MemDatabase(
            plan_cache=cache, enable_parallel=True, parallel_threshold_rows=0, worker_pool=pool
        )
        data = {"id": np.arange(2_000, dtype=np.int64), "g": np.arange(2_000) % 5}
        serial.create_table_from_columns("t", dict(data))
        parallel.create_table_from_columns("t", dict(data))
        sql = "SELECT t.g AS g, COUNT(*) AS n FROM t GROUP BY t.g"
        try:
            expected = serial.execute(sql).rows
            assert parallel.parallel_stats()["parallel_plan_executions"] == 0
            # Despite the shared cache, the parallel engine compiles its own
            # flavor and actually executes the parallel operators.
            assert_rows_identical(parallel.execute(sql).rows, expected)
            assert parallel.parallel_stats()["parallel_plan_executions"] == 1
            assert serial.plan_flavor != parallel.plan_flavor
            # Both flavors are now warm: each engine re-binds its own entry.
            hits_before = cache.stats()["hits"]
            serial.execute(sql)
            parallel.execute(sql)
            assert cache.stats()["hits"] == hits_before + 2
        finally:
            pool.shutdown()

    def test_parallel_plan_runs_serially_without_a_pool(self):
        # Plans hold only the decision, never threads: executing a
        # parallel-decided compiled script with pool=None runs serially
        # and returns identical rows.
        db = MemDatabase(
            plan_cache=PlanCache(maxsize=8),
            enable_parallel=True,
            parallel_threshold_rows=0,
            parallel_workers=2,
        )
        db.create_table_from_columns("t", {"id": np.arange(500, dtype=np.int64)})
        from repro.backends.memdb.planner import compile_statement

        statement = _select_of("SELECT t.id AS id FROM t WHERE t.id >= 250 ORDER BY t.id")
        plan = compile_statement(statement, db._optimizer().cost_model())
        assert plan.uses_parallel()
        pool = WorkerPool(2)
        try:
            with_pool = plan.execute(db._tables, pool=pool)
            without_pool = plan.execute(db._tables, pool=None)
            np.testing.assert_array_equal(with_pool[1]["id"], without_pool[1]["id"], strict=True)
        finally:
            pool.shutdown()


# ---------------------------------------------------------------------------
# Lifecycle and stress
# ---------------------------------------------------------------------------


class TestPoolLifecycle:
    def test_queries_survive_concurrent_pool_shutdown(self):
        pool = WorkerPool(3)
        db = MemDatabase(
            plan_cache=PlanCache(maxsize=8),
            enable_parallel=True,
            parallel_threshold_rows=0,
            worker_pool=pool,
        )
        rng = np.random.default_rng(5)
        db.create_table_from_columns(
            "t",
            {
                "id": np.arange(30_000, dtype=np.int64),
                "v": rng.normal(size=30_000),
                "g": rng.integers(0, 16, 30_000),
            },
        )
        sql = "SELECT t.g AS g, SUM(t.v) AS s FROM t GROUP BY t.g"
        expected = db.execute(sql).rows

        errors: list[BaseException] = []

        def hammer():
            try:
                for _ in range(10):
                    assert_rows_identical(db.execute(sql).rows, expected)
            except BaseException as exc:  # noqa: BLE001 — collected for the assert
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(0.02)
        pool.shutdown()  # mid-flight: later batches run inline
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        # And the engine keeps answering after the pool is gone.
        assert_rows_identical(db.execute(sql).rows, expected)

    def test_worker_exception_leaves_engine_consistent(self):
        pool = WorkerPool(3)
        db = MemDatabase(
            plan_cache=PlanCache(maxsize=8),
            enable_parallel=True,
            parallel_threshold_rows=0,
            worker_pool=pool,
        )
        try:
            db.create_table_from_columns(
                "t", {"id": np.arange(5_000, dtype=np.int64), "name": np.array(["x"] * 5_000, dtype=object)}
            )
            # Comparing text to text with '<' works; sqrt of text raises
            # inside the morsel workers and must surface unchanged.
            with pytest.raises(Exception):
                db.execute("SELECT sqrt(t.name) AS b FROM t")
            result = db.execute("SELECT t.id AS id FROM t WHERE t.id < 3 ORDER BY t.id")
            assert [row[0] for row in result.rows] == [0, 1, 2]
        finally:
            pool.shutdown()


# ---------------------------------------------------------------------------
# Configuration plumbing
# ---------------------------------------------------------------------------


class TestParallelPlumbing:
    def test_env_variable_enables_parallel(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_ENV_VAR, "1")
        assert MemDatabase(plan_cache=PlanCache()).enable_parallel
        monkeypatch.setenv(PARALLEL_ENV_VAR, "0")
        assert not MemDatabase(plan_cache=PlanCache()).enable_parallel
        monkeypatch.delenv(PARALLEL_ENV_VAR)
        assert not MemDatabase(plan_cache=PlanCache()).enable_parallel

    def test_explicit_flag_overrides_env(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_ENV_VAR, "1")
        assert not MemDatabase(plan_cache=PlanCache(), enable_parallel=False).enable_parallel

    def test_engine_parallel_stats_shape(self):
        db = MemDatabase(plan_cache=PlanCache(), enable_parallel=False)
        stats = db.parallel_stats()
        assert stats["enabled"] is False
        assert stats["pool"] == {}
        assert stats["parallel_plan_executions"] == 0

    def test_backend_and_session_expose_parallel_stats(self):
        backend = MemDBBackend(enable_parallel=True, parallel_workers=2)
        stats = backend.parallel_stats()
        assert stats["enabled"] is True
        assert backend.engine_stats()["parallel"]["enabled"] is True

        session = QymeraSession()
        from repro.circuits import ghz_circuit

        session.circuits.add_circuit(ghz_circuit(3), "ghz")
        session.simulations.run("ghz", "memdb", enable_parallel=True, parallel_workers=2)
        stats = session.simulations.parallel_stats(enable_parallel=True, parallel_workers=2)
        assert stats["enabled"] is True and stats["workers"] == 2

    def test_executable_provenance_carries_parallel_stats(self):
        from repro.circuits import ghz_circuit

        backend = MemDBBackend(enable_parallel=True, parallel_workers=2)
        executable = backend.compile(ghz_circuit(3))
        executable.bind().execute()
        provenance = executable.provenance
        assert provenance["last_execution"]["parallel"]["enabled"] is True

    def test_create_table_from_columns_rejects_duplicates(self):
        db = MemDatabase(plan_cache=PlanCache())
        db.create_table_from_columns("t", {"id": np.arange(3, dtype=np.int64)})
        assert db.row_count("t") == 3
        with pytest.raises(SQLExecutionError, match="already exists"):
            db.create_table_from_columns("t", {"id": np.arange(3, dtype=np.int64)})
