"""Histogram/MCV statistics and the adaptive re-optimization feedback loop."""

import numpy as np
import pytest

from repro.backends.memdb import MemDatabase
from repro.backends.memdb.engine import PlanCache
from repro.backends.memdb.optimizer.cost import CostModel, select_shape
from repro.backends.memdb.optimizer.stats import StatisticsCatalog, _column_stats
from repro.backends.memdb.parser import parse_one


def _expr(sql: str):
    return parse_one(f"SELECT 1 FROM d WHERE {sql}").where


# ---------------------------------------------------------------------------
# Histogram / MCV collection
# ---------------------------------------------------------------------------


class TestDistributionStatistics:
    def test_skewed_column_gets_mcv_entries(self):
        # 900 copies of 7, a hundred unique others: 7 must be an MCV.
        values = np.asarray([7] * 900 + list(range(100, 200)), dtype=np.int64)
        stats = _column_stats("x", values)
        assert stats.mcv and stats.mcv[0][0] == 7
        assert stats.mcv[0][1] == pytest.approx(900 / 1000)

    def test_uniform_column_gets_histogram_not_mcv(self):
        values = np.asarray([i % 64 for i in range(1024)], dtype=np.int64)
        stats = _column_stats("x", values)
        assert not stats.mcv
        assert len(stats.histogram) >= 2
        assert stats.histogram_fraction == pytest.approx(1.0)

    def test_eq_fraction_mcv_hit_and_miss(self):
        values = np.asarray([7] * 900 + list(range(100, 200)), dtype=np.int64)
        stats = _column_stats("x", values)
        assert stats.eq_fraction(7) == pytest.approx(0.9)
        # A non-MCV value: remaining mass spread over remaining NDV.
        miss = stats.eq_fraction(142)
        assert 0 < miss < 0.01

    def test_exhaustive_mcv_makes_unseen_value_empty(self):
        values = np.asarray([1] * 50 + [2] * 30, dtype=np.int64)
        stats = _column_stats("x", values)
        # ndv=2 <= both listed... when all distinct values are MCVs an
        # unseen literal matches nothing.
        if len(stats.mcv) == stats.ndv:
            assert stats.eq_fraction(99) == 0.0

    def test_histogram_range_fraction_beats_min_max_on_clustered_data(self):
        # Data clustered near 0 with one outlier at 1000: min/max
        # interpolation wildly overestimates "< 10"; the equi-depth
        # histogram does not.
        values = np.asarray(list(range(100)) + [100000], dtype=np.int64)
        stats = _column_stats("x", values)
        fraction = stats.range_fraction("<", 50)
        assert fraction == pytest.approx(50 / 101, abs=0.05)
        above = stats.range_fraction(">", 50)
        assert above == pytest.approx(51 / 101, abs=0.06)

    def test_range_fraction_none_without_distribution(self):
        values = np.asarray([], dtype=np.int64)
        stats = _column_stats("x", values)
        assert stats.range_fraction("<", 5) is None

    def test_nan_column_counts_as_nulls(self):
        values = np.asarray([1.0, np.nan, 2.0, np.nan], dtype=np.float64)
        stats = _column_stats("x", values)
        assert stats.null_fraction == pytest.approx(0.5)

    def test_object_column_mcv(self):
        values = np.empty(10, dtype=object)
        values[:] = ["hot"] * 8 + ["a", "b"]
        stats = _column_stats("x", values)
        assert stats.mcv and stats.mcv[0] == ("hot", pytest.approx(0.8))

    def test_selectivity_uses_mcv_through_cost_model(self):
        db = MemDatabase(plan_cache=PlanCache(0))
        db.execute("CREATE TABLE d (x BIGINT NOT NULL)")
        rows = ", ".join(["(7)"] * 90 + [f"({i})" for i in range(20, 30)])
        db.execute(f"INSERT INTO d (x) VALUES {rows}")
        db.execute("ANALYZE")
        model = CostModel(db._tables, db.statistics)
        assert model.selectivity(_expr("x = 7"), "d") == pytest.approx(0.9)
        assert model.selectivity(_expr("x != 7"), "d") == pytest.approx(0.1)
        assert model.selectivity(_expr("x IN (7, 20)"), "d") == pytest.approx(0.91, abs=0.02)


# ---------------------------------------------------------------------------
# Correction store
# ---------------------------------------------------------------------------


class TestCorrectionStore:
    def test_record_and_apply(self):
        catalog = StatisticsCatalog()
        factor = catalog.record_correction("t", "from:t|range(x)", 8.0)
        assert factor == pytest.approx(8.0)
        assert catalog.correction("t", "from:t|range(x)") == pytest.approx(8.0)
        assert catalog.correction("t", "other") == 1.0

    def test_corrections_compose_multiplicatively(self):
        catalog = StatisticsCatalog()
        catalog.record_correction("t", "s", 4.0)
        catalog.record_correction("t", "s", 2.0)
        assert catalog.correction("t", "s") == pytest.approx(8.0)

    def test_corrections_never_drop_below_one(self):
        catalog = StatisticsCatalog()
        catalog.record_correction("t", "s", 0.01)
        assert catalog.correction("t", "s") == 1.0

    def test_invalidation_drops_corrections(self):
        catalog = StatisticsCatalog()
        catalog.record_correction("t", "s", 5.0)
        catalog.record_correction("u", "s", 5.0)
        catalog.invalidate("t")
        assert catalog.correction("t", "s") == 1.0
        assert catalog.correction("u", "s") == pytest.approx(5.0)

    def test_analyze_drops_corrections_for_that_table(self):
        db = MemDatabase(plan_cache=PlanCache(0))
        db.execute("CREATE TABLE d (x BIGINT NOT NULL)")
        db.execute("INSERT INTO d (x) VALUES (1)")
        db.statistics.record_correction("d", "s", 5.0)
        db.execute("ANALYZE d")
        assert db.statistics.correction("d", "s") == 1.0

    def test_select_shape_elides_literals(self):
        a = parse_one("SELECT d.x FROM d WHERE d.x < 5")
        b = parse_one("SELECT d.x FROM d WHERE d.x < 99")
        c = parse_one("SELECT d.x FROM d WHERE d.x = 5")
        assert select_shape(a) == select_shape(b)
        assert select_shape(a) != select_shape(c)

    def test_correction_raises_estimates(self):
        db = MemDatabase(plan_cache=PlanCache(0))
        db.execute("CREATE TABLE d (x BIGINT NOT NULL)")
        db.execute("INSERT INTO d (x) VALUES " + ", ".join(f"({i})" for i in range(100)))
        statement = parse_one("SELECT d.x FROM d WHERE d.x < 5")
        model = CostModel(db._tables, db.statistics)
        baseline = model.estimate_select_rows(statement)
        db.statistics.record_correction("d", select_shape(statement), 3.0)
        assert model.estimate_select_rows(statement) == pytest.approx(baseline * 3.0)


# ---------------------------------------------------------------------------
# The feedback loop end to end
# ---------------------------------------------------------------------------


def _shifted_db(cache):
    """A database whose cached plan was compiled against 20 rows, then shifted."""
    db = MemDatabase(plan_cache=cache)
    db.execute("CREATE TABLE facts (x BIGINT NOT NULL, y DOUBLE NOT NULL)")
    db.execute(
        "INSERT INTO facts (x, y) VALUES "
        + ", ".join(f"({i % 5}, {i}.0)" for i in range(20))
    )
    return db


_SHIFT_QUERY = "SELECT facts.x, facts.y FROM facts ORDER BY facts.y LIMIT 10"


def _shift(db, rows=5000):
    db.execute(
        "INSERT INTO facts (x, y) VALUES "
        + ", ".join(f"({i % 5}, {i}.25)" for i in range(rows))
    )


class TestAdaptiveReplan:
    def test_distribution_shift_flags_replan(self):
        cache = PlanCache()
        db = _shifted_db(cache)
        db.execute(_SHIFT_QUERY)  # plan compiled at 20 rows (sort chosen)
        _shift(db)
        db.execute(_SHIFT_QUERY)  # stale plan executes; feedback fires
        stats = db.adaptive_stats()
        assert stats["replans"] == 1
        assert stats["events"] and stats["events"][0]["q_error"] > 4
        assert cache.peek_state(_SHIFT_QUERY, db._tables, db.plan_flavor) == "replan"
        db.execute(_SHIFT_QUERY)  # re-plan happens on this lookup
        assert cache.stats()["replans"] == 1
        assert cache.peek_state(_SHIFT_QUERY, db._tables, db.plan_flavor) == "hit"

    def test_replanned_plan_switches_to_topk(self):
        cache = PlanCache()
        db = _shifted_db(cache)
        db.execute(_SHIFT_QUERY)
        _shift(db)
        db.execute(_SHIFT_QUERY)
        db.execute(_SHIFT_QUERY)  # replanned
        plan = "\n".join(row[0] for row in db.execute(f"EXPLAIN {_SHIFT_QUERY}").rows)
        assert "top-k (k=10)" in plan

    def test_replan_converges_no_thrash(self):
        cache = PlanCache()
        db = _shifted_db(cache)
        db.execute(_SHIFT_QUERY)
        _shift(db)
        for _ in range(5):
            db.execute(_SHIFT_QUERY)
        # One replan fixes the estimate; later executions must not re-flag.
        assert db.adaptive_stats()["replans"] == 1
        assert cache.stats()["replans"] == 1

    def test_results_identical_across_replan(self):
        cache = PlanCache()
        db = _shifted_db(cache)
        db.execute(_SHIFT_QUERY)
        _shift(db)
        first = db.execute(_SHIFT_QUERY).rows
        second = db.execute(_SHIFT_QUERY).rows
        assert first == second

    def test_disabled_adaptive_keeps_stale_plan(self):
        cache = PlanCache()
        db = MemDatabase(plan_cache=cache, enable_adaptive=False)
        db.execute("CREATE TABLE facts (x BIGINT NOT NULL, y DOUBLE NOT NULL)")
        db.execute(
            "INSERT INTO facts (x, y) VALUES "
            + ", ".join(f"({i % 5}, {i}.0)" for i in range(20))
        )
        db.execute(_SHIFT_QUERY)
        _shift(db)
        db.execute(_SHIFT_QUERY)
        db.execute(_SHIFT_QUERY)
        assert db.adaptive_stats()["replans"] == 0
        assert cache.stats()["replans"] == 0

    def test_correlated_predicate_records_correction(self):
        # a == b always: independence multiplies the selectivities and
        # underestimates ~50x even with fresh statistics, so the residual
        # error must be captured as a sticky correction factor.
        db = MemDatabase(plan_cache=PlanCache())
        db.execute("CREATE TABLE c (a BIGINT NOT NULL, b BIGINT NOT NULL)")
        db.execute(
            "INSERT INTO c (a, b) VALUES "
            + ", ".join(f"({i % 50}, {i % 50})" for i in range(5000))
        )
        db.execute("ANALYZE")
        query = "SELECT c.a FROM c WHERE c.a = 3 AND c.b = 3 ORDER BY c.a LIMIT 100"
        db.execute(query)
        corrections = db.statistics.corrections()
        assert corrections, "expected a correction for the correlated shape"
        ((key, factor),) = list(corrections.items())
        assert key[0] == "c"
        assert factor > 4
        # The corrected re-plan estimates ~actual: a second run stays quiet.
        db.execute(query)
        db.execute(query)
        assert db.adaptive_stats()["replans"] == 1

    def test_explain_analyze_feeds_the_loop(self):
        # EXPLAIN ANALYZE re-optimizes fresh, so pure staleness (live row
        # counts) shows no error — but a correlated predicate's residual
        # misestimate is fed back exactly like a normal execution's.
        db = MemDatabase(plan_cache=PlanCache())
        db.execute("CREATE TABLE c (a BIGINT NOT NULL, b BIGINT NOT NULL)")
        db.execute(
            "INSERT INTO c (a, b) VALUES "
            + ", ".join(f"({i % 50}, {i % 50})" for i in range(5000))
        )
        db.execute("ANALYZE")
        db.execute("EXPLAIN ANALYZE SELECT c.a FROM c WHERE c.a = 3 AND c.b = 3")
        assert db.statistics.corrections()
        assert db.adaptive_stats()["replans"] == 1

    def test_optimizer_stats_exposes_adaptive_section(self):
        db = MemDatabase(plan_cache=PlanCache())
        stats = db.optimizer_stats()
        assert stats["adaptive"]["enabled"] is True
        assert stats["adaptive"]["replans"] == 0


# ---------------------------------------------------------------------------
# EXPLAIN / EXPLAIN ANALYZE coverage (satellite)
# ---------------------------------------------------------------------------


class TestExplainCoverage:
    @pytest.fixture
    def db(self):
        database = MemDatabase(plan_cache=PlanCache(0))
        database.execute("CREATE TABLE t (a BIGINT NOT NULL, b DOUBLE NOT NULL)")
        database.execute("INSERT INTO t (a, b) VALUES (1, 1.5), (2, 2.5), (3, 3.5)")
        return database

    def test_plain_explain_never_inserts(self, db):
        db.execute("EXPLAIN INSERT INTO t (a, b) VALUES (9, 9.5)")
        assert db.row_count("t") == 3

    def test_plain_explain_never_deletes(self, db):
        db.execute("EXPLAIN DELETE FROM t")
        assert db.row_count("t") == 3

    def test_plain_explain_never_creates(self, db):
        db.execute("EXPLAIN CREATE TABLE u AS SELECT t.a AS a FROM t")
        assert not db.has_table("u")

    def test_plain_explain_never_drops(self, db):
        db.execute("EXPLAIN DROP TABLE t")
        assert db.has_table("t")

    def test_explain_analyze_populates_every_cte_relation(self, db):
        # Grouped bodies keep every CTE alive (inlining only fires for plain
        # projections), so all three blocks plus main must be reported.
        query = (
            "WITH s1 AS (SELECT t.a AS a, SUM(t.b) AS b FROM t GROUP BY t.a), "
            "s2 AS (SELECT s1.a AS a, SUM(s1.b) * 2 AS b2 FROM s1 GROUP BY s1.a), "
            "s3 AS (SELECT s2.a AS a, SUM(s2.b2) AS total FROM s2 GROUP BY s2.a) "
            "SELECT s3.a, s3.total FROM s3 ORDER BY s3.a"
        )
        lines = [row[0] for row in db.execute(f"EXPLAIN ANALYZE {query}").rows]
        text = "\n".join(lines)
        # Estimated AND actual cardinalities for every block of the chain.
        for label in ("s1:", "s2:", "s3:", "main:"):
            (header,) = [line for line in lines if line.startswith(label)]
            assert "estimated rows" in header, text
            assert "actual" in header, text

    def test_explain_analyze_executes_dml_like_postgres(self, db):
        db.execute("EXPLAIN ANALYZE DELETE FROM t WHERE a = 1")
        assert db.row_count("t") == 2

    def test_explain_reports_pre_limit_estimate(self, db):
        lines = [
            row[0]
            for row in db.execute("EXPLAIN SELECT t.a FROM t ORDER BY t.a LIMIT 1").rows
        ]
        (header,) = [line for line in lines if line.startswith("main:")]
        assert "pre-limit" in header


class TestBackendSurfacing:
    def test_executable_provenance_carries_adaptive_stats(self):
        from repro.backends import MemDBBackend
        from repro.backends.memdb.engine import PlanCache
        from repro.circuits import ghz_circuit

        backend = MemDBBackend(plan_cache=PlanCache(maxsize=16))
        bound = backend.compile(ghz_circuit(3)).bind()
        bound.execute()
        adaptive = bound.executable.provenance["last_execution"]["adaptive"]
        assert adaptive["enabled"] is True
        assert "replans" in adaptive and "corrections" in adaptive

    def test_backend_optimizer_stats_before_first_run(self):
        from repro.backends import MemDBBackend

        stats = MemDBBackend(enable_adaptive=False).optimizer_stats()
        assert stats["adaptive"]["enabled"] is False


class TestFeedbackHygiene:
    def test_cte_sourced_blocks_replan_without_sticky_corrections(self):
        # A grouped (non-inlinable) CTE consumer: the consumer block scans
        # the CTE by name.  CTE names never reach invalidate(), so no
        # correction may be recorded under them — the block only re-plans.
        db = MemDatabase(plan_cache=PlanCache())
        db.execute("CREATE TABLE base (g BIGINT NOT NULL, x BIGINT NOT NULL)")
        db.execute(
            "INSERT INTO base (g, x) VALUES "
            + ", ".join(f"({i % 10}, {i % 10})" for i in range(3000))
        )
        db.execute("ANALYZE")
        query = (
            "WITH c AS (SELECT base.g AS g, base.x AS x, COUNT(*) AS n "
            "FROM base GROUP BY base.g, base.x) "
            "SELECT c.g FROM c WHERE c.g = c.x"
        )
        db.execute(query)
        db.execute(query)
        assert all(key[0] != "c" for key in db.statistics.corrections())

    def test_clear_resets_adaptive_events(self):
        cache = PlanCache()
        db = _shifted_db(cache)
        db.execute(_SHIFT_QUERY)
        _shift(db)
        db.execute(_SHIFT_QUERY)
        assert db.adaptive_stats()["events"]
        db.clear()
        assert db.adaptive_stats()["events"] == []


# ---------------------------------------------------------------------------
# Correction decay / aging (PR 5)
# ---------------------------------------------------------------------------


class TestCorrectionDecay:
    def test_decay_needs_consecutive_observations(self):
        catalog = StatisticsCatalog()
        catalog.record_correction("t", "s", 16.0)
        # Two gross overestimates, then one accurate execution: streak resets.
        assert catalog.observe_correction("t", "s", 0.01, threshold=4.0) is None
        assert catalog.observe_correction("t", "s", 0.01, threshold=4.0) is None
        assert catalog.observe_correction("t", "s", 0.9, threshold=4.0) is None
        assert catalog.correction("t", "s") == pytest.approx(16.0)
        # Three consecutive gross overestimates decay the factor.
        assert catalog.observe_correction("t", "s", 0.01, threshold=4.0) is None
        assert catalog.observe_correction("t", "s", 0.01, threshold=4.0) is None
        decayed = catalog.observe_correction("t", "s", 0.01, threshold=4.0)
        assert decayed == pytest.approx(1.0)  # 16 * 0.01 clamps to 1
        assert catalog.correction("t", "s") == pytest.approx(1.0)
        assert catalog.decay_count == 1

    def test_decay_reanchors_to_observed_level(self):
        catalog = StatisticsCatalog()
        catalog.record_correction("t", "s", 100.0)
        for _ in range(2):
            assert catalog.observe_correction("t", "s", 0.1, threshold=4.0) is None
        # factor * ratio = 100 * 0.1 = 10: still > 1, so it survives partially.
        assert catalog.observe_correction("t", "s", 0.1, threshold=4.0) == pytest.approx(10.0)
        assert catalog.correction("t", "s") == pytest.approx(10.0)

    def test_observation_without_correction_is_noop(self):
        catalog = StatisticsCatalog()
        assert catalog.observe_correction("t", "s", 0.001, threshold=4.0) is None
        assert catalog.correction("t", "s") == 1.0
        assert catalog.decay_count == 0

    def test_in_band_ratio_keeps_factor(self):
        catalog = StatisticsCatalog()
        catalog.record_correction("t", "s", 8.0)
        # Within a threshold factor of the actual: the correction is useful.
        for _ in range(10):
            assert catalog.observe_correction("t", "s", 0.5, threshold=4.0) is None
        assert catalog.correction("t", "s") == pytest.approx(8.0)

    def test_record_correction_resets_streak(self):
        catalog = StatisticsCatalog()
        catalog.record_correction("t", "s", 8.0)
        catalog.observe_correction("t", "s", 0.01, threshold=4.0)
        catalog.observe_correction("t", "s", 0.01, threshold=4.0)
        catalog.record_correction("t", "s", 1.0)  # growth observation
        # The streak restarted: two more overestimates do not decay yet.
        assert catalog.observe_correction("t", "s", 0.01, threshold=4.0) is None
        assert catalog.observe_correction("t", "s", 0.01, threshold=4.0) is None
        assert catalog.correction("t", "s") == pytest.approx(8.0)

    def test_invalidation_drops_streaks(self):
        catalog = StatisticsCatalog()
        catalog.record_correction("t", "s", 8.0)
        catalog.observe_correction("t", "s", 0.01, threshold=4.0)
        catalog.invalidate("t")
        assert catalog._overestimate_streaks == {}

    def _correlated_db(self):
        """512 rows with perfectly correlated x == y (independence fails)."""
        db = MemDatabase(plan_cache=PlanCache(maxsize=8))
        db.execute("CREATE TABLE w (x BIGINT NOT NULL, y BIGINT NOT NULL)")
        db.execute(
            "INSERT INTO w (x, y) VALUES "
            + ", ".join(f"({i % 64}, {i % 64})" for i in range(512))
        )
        return db

    def test_shrink_then_grow_workload_recovers(self):
        """Literal drift both ways: the correction ages out, then re-learns.

        No DML ever touches the table, so invalidation never fires — decay
        is the only way back.  The workload first hits a dense region (the
        correction is learned from the correlated underestimate), then
        drifts to a sparse region (three consecutive gross overestimates
        decay the factor to 1), then back to a dense region (a fresh
        correction is learned).
        """
        db = self._correlated_db()
        dense = "SELECT w.x AS x FROM w WHERE w.x >= 0 AND w.y >= 0"
        shape = select_shape(parse_one(dense))

        db.execute(dense)  # underestimate observed -> correction recorded
        learned = db.statistics.correction("w", shape)
        assert learned > 4.0

        sparse = "SELECT w.x AS x FROM w WHERE w.x >= 63 AND w.y >= 63"
        assert select_shape(parse_one(sparse)) == shape
        for _ in range(3):
            db.execute(sparse)
        assert db.statistics.correction("w", shape) == pytest.approx(1.0)
        stats = db.adaptive_stats()
        assert stats["decays"] == 1
        assert any("decay" in event for event in stats["events"])

        # The workload drifts back: a fresh dense query (factor 1 at compile)
        # underestimates again and re-learns a correction.
        db.execute("SELECT w.x AS x FROM w WHERE w.x >= 1 AND w.y >= 1")
        assert db.statistics.correction("w", shape) > 4.0

    def test_shrink_then_grow_table_via_dml_recovers(self):
        """The complementary path: DML invalidation clears corrections.

        A table that literally shrinks (DELETE) drops its corrections with
        its statistics; regrowing it re-learns them from fresh feedback —
        the two recovery mechanisms (invalidation for data changes, decay
        for workload drift) cover both directions.
        """
        db = self._correlated_db()
        dense = "SELECT w.x AS x FROM w WHERE w.x >= 0 AND w.y >= 0"
        shape = select_shape(parse_one(dense))
        db.execute(dense)
        assert db.statistics.correction("w", shape) > 4.0

        db.execute("DELETE FROM w WHERE w.x >= 8")  # shrink
        assert db.statistics.correction("w", shape) == 1.0

        db.execute(
            "INSERT INTO w (x, y) VALUES "
            + ", ".join(f"({i % 64}, {i % 64})" for i in range(512))
        )  # grow again
        db.execute("SELECT w.x AS x FROM w WHERE w.x >= 2 AND w.y >= 2")
        assert db.statistics.correction("w", shape) > 4.0

    def test_decay_flags_replan(self):
        """A decayed factor re-plans the flagged text on its next lookup."""
        db = self._correlated_db()
        dense = "SELECT w.x AS x FROM w WHERE w.x >= 0 AND w.y >= 0"
        sparse = "SELECT w.x AS x FROM w WHERE w.x >= 63 AND w.y >= 63"
        db.execute(dense)
        for _ in range(2):
            db.execute(sparse)
        assert db.plan_cache.peek_state(sparse, db._tables, db.plan_flavor) == "hit"
        db.execute(sparse)  # third consecutive overestimate -> decay + replan
        assert db.plan_cache.peek_state(sparse, db._tables, db.plan_flavor) == "replan"
        # Results stay identical across the re-plan.
        before = db.execute(sparse).rows
        after = db.execute(sparse).rows
        assert before == after
