"""Tests for the cost-based optimizer subsystem (stats, rewrites, cost, EXPLAIN)."""

import numpy as np
import pytest

from repro.backends.memdb import MemDatabase, PlanCache, parse_one
from repro.backends.memdb.ast_nodes import (
    BinaryOp,
    ColumnRef,
    Literal,
    Select,
    WithSelect,
)
from repro.backends.memdb.optimizer import CostModel, Optimizer, StatisticsCatalog
from repro.backends.memdb.optimizer.rewrite import (
    column_refs,
    fold_expression,
    rewrite_statement,
)
from repro.backends.memdb.planner import CompiledScript, compile_statement
from repro.errors import SQLExecutionError


def _expr(sql_expression: str):
    """Parse one scalar expression through the SELECT grammar."""
    statement = parse_one(f"SELECT {sql_expression} AS e")
    return statement.items[0].expression


def _gate_db() -> MemDatabase:
    db = MemDatabase(plan_cache=PlanCache())
    db.execute("CREATE TABLE T0 (s BIGINT NOT NULL, r DOUBLE NOT NULL, i DOUBLE NOT NULL)")
    db.execute(
        "INSERT INTO T0 (s, r, i) VALUES (0, 0.6, 0.0), (1, 0.8, 0.0), (2, 0.0, 0.6), (3, 0.0, -0.8)"
    )
    db.execute("CREATE TABLE G (in_s BIGINT NOT NULL, out_s BIGINT NOT NULL, r DOUBLE NOT NULL, i DOUBLE NOT NULL)")
    db.execute(
        "INSERT INTO G (in_s, out_s, r, i) VALUES "
        "(0, 0, 0.7071067811865476, 0.0), (0, 1, 0.7071067811865476, 0.0), "
        "(1, 0, 0.7071067811865476, 0.0), (1, 1, -0.7071067811865476, 0.0)"
    )
    return db


_GATE_STEP_SQL = (
    "SELECT ((T0.s & ~1) | G.out_s) AS s, "
    "SUM((T0.r * G.r) - (T0.i * G.i)) AS r, "
    "SUM((T0.r * G.i) + (T0.i * G.r)) AS i "
    "FROM T0 JOIN G ON G.in_s = (T0.s & 1) "
    "GROUP BY ((T0.s & ~1) | G.out_s)"
)


# ---------------------------------------------------------------------------
# Statistics catalog
# ---------------------------------------------------------------------------


class TestStatisticsCatalog:
    def test_analyze_computes_column_statistics(self):
        db = _gate_db()
        db.execute("ANALYZE T0")
        stats = db.statistics.get("T0")
        assert stats is not None
        assert stats.row_count == 4
        s = stats.column("s")
        assert (s.minimum, s.maximum, s.ndv, s.null_fraction) == (0.0, 3.0, 4, 0.0)

    def test_analyze_all_tables(self):
        db = _gate_db()
        result = db.execute("ANALYZE")
        assert result.rowcount == 2
        assert db.statistics.table_names() == ["G", "T0"]

    def test_analyze_unknown_table_raises(self):
        db = _gate_db()
        with pytest.raises(SQLExecutionError):
            db.execute("ANALYZE missing")

    def test_null_fraction_on_real_column(self):
        db = MemDatabase(plan_cache=PlanCache())
        db.execute("CREATE TABLE n (v DOUBLE)")
        db.execute("INSERT INTO n (v) VALUES (1.0), (NULL), (2.0), (NULL)")
        db.execute("ANALYZE n")
        column = db.statistics.get("n").column("v")
        assert column.null_fraction == pytest.approx(0.5)
        assert column.ndv == 2

    @pytest.mark.parametrize(
        "dml",
        [
            "INSERT INTO T0 (s, r, i) VALUES (9, 0.1, 0.0)",
            "DELETE FROM T0 WHERE s = 0",
            "DROP TABLE T0",
        ],
    )
    def test_dml_invalidates_statistics(self, dml):
        db = _gate_db()
        db.execute("ANALYZE T0")
        assert db.statistics.get("T0") is not None
        db.execute(dml)
        assert db.statistics.get("T0") is None
        assert db.statistics.invalidation_count >= 1

    def test_create_table_as_invalidates_stale_entry(self):
        db = _gate_db()
        db.execute("ANALYZE T0")
        db.execute("DROP TABLE T0")
        db.execute("CREATE TABLE T0 AS SELECT in_s AS s FROM G")
        assert db.statistics.get("T0") is None


# ---------------------------------------------------------------------------
# Rewrite rules
# ---------------------------------------------------------------------------


class TestConstantFolding:
    @pytest.mark.parametrize(
        "expression,expected",
        [
            ("~1", -2),
            ("-3", -3),
            ("2 + 3 * 4", 14),
            ("1 << 4", 16),
            ("12 & 10", 8),
            ("12 | 3", 15),
            ("-7 / 2", -3),  # SQL truncation toward zero
            ("7 / 2", 3),
            ("7.0 / 2", 3.5),
        ],
    )
    def test_folds_numeric_literals(self, expression, expected):
        folded, count = fold_expression(_expr(expression))
        assert count >= 1
        assert folded == Literal(expected)

    def test_zero_divisor_not_folded(self):
        folded, count = fold_expression(_expr("1 / 0"))
        assert count == 0
        assert isinstance(folded, BinaryOp)

    def test_overflowing_shift_not_folded(self):
        folded, count = fold_expression(_expr("1 << 200"))
        assert count == 0

    def test_folds_inside_column_expressions(self):
        folded, count = fold_expression(_expr("(s & ~1) | 0"))
        assert count == 1  # only the ~1 leaf is constant
        assert folded == BinaryOp(
            "|", BinaryOp("&", ColumnRef("s"), Literal(-2)), Literal(0)
        )

    def test_folded_query_results_unchanged(self):
        optimized = _gate_db()
        plain = MemDatabase(plan_cache=PlanCache(0), enable_optimizer=False)
        plain._tables = optimized._tables  # same data, optimizer off
        expected = plain.execute(_GATE_STEP_SQL).rows
        actual = optimized.execute(_GATE_STEP_SQL).rows
        assert len(actual) == len(expected)
        for left, right in zip(actual, expected):
            assert left[0] == right[0]
            assert left[1] == pytest.approx(right[1], abs=1e-12)
            assert left[2] == pytest.approx(right[2], abs=1e-12)


class TestPredicatePushdown:
    def test_single_table_conjuncts_move_to_scans(self):
        db = _gate_db()
        statement = parse_one(
            "SELECT T0.s, G.out_s FROM T0 JOIN G ON G.in_s = T0.s "
            "WHERE T0.r > 0.5 AND G.out_s = 1 AND T0.s + G.out_s < 9"
        )
        rewritten, log = rewrite_statement(statement, db._tables)
        assert log.predicates_pushed == 2
        assert rewritten.source.filter is not None
        assert rewritten.joins[0].source.filter is not None
        # The cross-table conjunct stays in WHERE.
        assert rewritten.where is not None
        assert {ref.table for ref in column_refs(rewritten.where)} == {"T0", "G"}

    def test_pushdown_preserves_results(self):
        db = _gate_db()
        query = (
            "SELECT T0.s AS s, G.out_s AS o FROM T0 JOIN G ON G.in_s = (T0.s & 1) "
            "WHERE T0.r > 0.5 AND G.out_s = 1 ORDER BY s, o"
        )
        plain = MemDatabase(plan_cache=PlanCache(0), enable_optimizer=False)
        plain._tables = db._tables
        assert db.execute(query).rows == plain.execute(query).rows

    def test_filter_migrates_into_single_use_cte(self):
        db = _gate_db()
        statement = parse_one(
            "WITH agg AS (SELECT T0.s AS s, SUM(T0.r) AS total FROM T0 JOIN G ON G.in_s = T0.s GROUP BY T0.s), "
            "plain AS (SELECT agg.s AS s, agg.total AS total FROM agg JOIN G ON G.in_s = agg.s WHERE agg.s = 1) "
            "SELECT plain.s, plain.total FROM plain JOIN G ON G.in_s = plain.s ORDER BY plain.s"
        )
        rewritten, log = rewrite_statement(statement, db._tables)
        # `agg` has GROUP BY, so its filter cannot migrate; `plain` is
        # transparent but multiply constrained — assert at least the scan
        # pushdown happened and nothing was lost.
        assert log.predicates_pushed >= 1

    def test_join_free_consumer_filter_migrates_into_cte(self):
        """The common filtered-CTE shape — a single-source consumer with a
        WHERE on a non-inlinable CTE — must push the filter into the body."""
        statement = parse_one(
            "WITH c AS (SELECT a.k AS k, b.v AS v FROM a JOIN b ON b.j = a.j) "
            "SELECT v FROM c WHERE k = 1"
        )
        rewritten, log = rewrite_statement(statement, {})
        assert log.predicates_pushed == 1
        assert log.cte_filters_pushed == 1
        assert rewritten.ctes[0].query.where is not None
        assert rewritten.query.where is None
        assert rewritten.query.source.filter is None

    def test_duplicate_cte_names_back_off(self):
        """Duplicate CTE names (last definition wins) defeat name-keyed
        rewrites; WITH-level rules must back off (regression)."""
        db = MemDatabase(plan_cache=PlanCache(0))
        db.execute("CREATE TABLE t (k BIGINT)")
        db.execute("INSERT INTO t (k) VALUES (1)")
        db.execute("CREATE TABLE u (k2 BIGINT)")
        db.execute("INSERT INTO u (k2) VALUES (99)")
        query = "WITH x AS (SELECT k FROM t), x AS (SELECT k2 AS k FROM u) SELECT k FROM x"
        plain = MemDatabase(plan_cache=PlanCache(0), enable_optimizer=False)
        plain._tables = db._tables
        assert db.execute(query).rows == plain.execute(query).rows == [(99,)]

    def test_cte_pushdown_moves_predicate_inside_body(self):
        # A joined CTE body is not inlinable, so the filter must migrate.
        db = _gate_db()
        statement = parse_one(
            "WITH pick AS (SELECT T0.s AS s, T0.r AS r FROM T0 JOIN G ON G.in_s = T0.s) "
            "SELECT pick.s, G.out_s FROM pick JOIN G ON G.in_s = pick.s "
            "WHERE pick.r > 0.5 ORDER BY pick.s, G.out_s"
        )
        rewritten, log = rewrite_statement(statement, db._tables)
        assert log.predicates_pushed == 1
        assert log.cte_filters_pushed == 1
        body = rewritten.ctes[0].query
        assert body.where is not None
        # The main query no longer filters.
        assert rewritten.query.where is None
        assert rewritten.query.source.filter is None


class TestPushdownSafety:
    def test_self_join_same_binding_backs_off(self):
        """An unaliased self-join must not receive pushed filters (the
        predicate would attach to both scans bound to the same name)."""
        db = MemDatabase(plan_cache=PlanCache())
        db.execute("CREATE TABLE t (a BIGINT, b BIGINT)")
        db.execute("INSERT INTO t (a, b) VALUES (1, 1), (2, 1)")
        statement = parse_one("SELECT t.a FROM t JOIN t ON t.b = t.b WHERE a > 1 ORDER BY t.a")
        rewritten, log = rewrite_statement(statement, db._tables)
        assert log.predicates_pushed == 0
        assert rewritten.where is not None

    def test_catalog_table_shadowing_later_cte_name(self):
        """An earlier CTE body referencing a catalog table that shares a
        *later* CTE's name must not have rewrites misattributed to the CTE."""
        db = MemDatabase(plan_cache=PlanCache())
        db.execute("CREATE TABLE pick (a BIGINT, b BIGINT)")
        db.execute("INSERT INTO pick (a, b) VALUES (1, 10), (2, 20)")
        query = (
            "WITH first AS (SELECT pick.a AS a, pick.b AS b FROM pick WHERE pick.a > 0), "
            "pick AS (SELECT first.a AS a FROM first WHERE first.b > 15) "
            "SELECT pick.a AS a FROM pick ORDER BY a"
        )
        plain = MemDatabase(plan_cache=PlanCache(0), enable_optimizer=False)
        plain._tables = db._tables
        assert db.execute(query).rows == plain.execute(query).rows == [(2,)]


class TestInlineAliasShadowing:
    def test_consumer_order_by_alias_not_substituted(self):
        """ORDER BY on the consumer's own output alias must keep resolving to
        the alias, not to the CTE column of the same name (regression)."""
        db = MemDatabase(plan_cache=PlanCache(0))
        db.execute("CREATE TABLE t (a BIGINT, b BIGINT)")
        db.execute("INSERT INTO t (a, b) VALUES (1, 9), (2, 0), (3, 5)")
        query = "WITH c AS (SELECT a, b + 1 AS y FROM t) SELECT a AS y FROM c ORDER BY y"
        plain = MemDatabase(plan_cache=PlanCache(0), enable_optimizer=False)
        plain._tables = db._tables
        assert db.execute(query).rows == plain.execute(query).rows == [(1,), (2,), (3,)]


class TestPruningKeepsBodyOrderAliases:
    def test_cte_own_order_by_alias_survives(self):
        """A CTE output referenced only by the body's own ORDER BY must not be
        pruned (the alias resolves through the projection at run time)."""
        db = MemDatabase(plan_cache=PlanCache(0))
        db.execute("CREATE TABLE t (a BIGINT, b BIGINT)")
        db.execute("INSERT INTO t (a, b) VALUES (1, 9), (2, 0), (3, 5)")
        query = "WITH c AS (SELECT a, a + b AS s FROM t ORDER BY s) SELECT a FROM c"
        plain = MemDatabase(plan_cache=PlanCache(0), enable_optimizer=False)
        plain._tables = db._tables
        assert db.execute(query).rows == plain.execute(query).rows == [(2,), (3,), (1,)]

    def test_distinct_cte_never_pruned(self):
        """DISTINCT dedupes over the full projection: dropping a column would
        change the row count, so pruning must back off."""
        db = MemDatabase(plan_cache=PlanCache(0))
        db.execute("CREATE TABLE t (a BIGINT, b BIGINT)")
        db.execute("INSERT INTO t (a, b) VALUES (1, 1), (1, 2), (1, 2)")
        query = "WITH c AS (SELECT DISTINCT a, b FROM t) SELECT c.a AS a FROM c ORDER BY a"
        plain = MemDatabase(plan_cache=PlanCache(0), enable_optimizer=False)
        plain._tables = db._tables
        assert db.execute(query).rows == plain.execute(query).rows == [(1,), (1,)]


class TestCacheOptimizerFlagIsolation:
    def test_shared_cache_does_not_cross_optimizer_flags(self):
        """An optimizer-off database must never execute optimizer-rewritten
        plans cached by an optimizer-on database (and vice versa)."""
        cache = PlanCache()
        on = MemDatabase(plan_cache=cache)
        on.execute("CREATE TABLE u (a BIGINT)")
        on.execute("INSERT INTO u (a) VALUES (1)")
        query = "SELECT a + (1 + 1) AS v FROM u"
        assert on.execute(query).rows == [(3,)]
        off = MemDatabase(plan_cache=cache, enable_optimizer=False)
        off._tables = on._tables
        misses_before = cache.stats()["misses"]
        assert off.execute(query).rows == [(3,)]
        assert cache.stats()["misses"] == misses_before + 1

    def test_both_flavors_stay_warm_on_a_shared_cache(self):
        """The ablation pair must not thrash: each flavor keeps its own entry."""
        cache = PlanCache()
        on = MemDatabase(plan_cache=cache)
        on.execute("CREATE TABLE u (a BIGINT)")
        on.execute("INSERT INTO u (a) VALUES (1)")
        off = MemDatabase(plan_cache=cache, enable_optimizer=False)
        off._tables = on._tables
        query = "SELECT a FROM u"
        on.execute(query)
        off.execute(query)  # each flavor compiles once...
        hits_before = cache.stats()["hits"]
        for _ in range(2):
            on.execute(query)
            off.execute(query)
        assert cache.stats()["hits"] == hits_before + 4  # ...then always hits


class TestProjectionPruning:
    def test_dead_cte_columns_dropped(self):
        db = _gate_db()
        statement = parse_one(
            "WITH wide AS (SELECT T0.s AS s, T0.r AS r, T0.i AS i, T0.r * 2.0 AS dead FROM T0 JOIN G ON G.in_s = T0.s) "
            "SELECT wide.s AS s, wide.r AS r FROM wide JOIN G ON G.in_s = wide.s ORDER BY wide.s"
        )
        rewritten, log = rewrite_statement(statement, db._tables)
        assert log.columns_pruned == 2  # i and dead
        kept = [item.alias for item in rewritten.ctes[0].query.items]
        assert kept == ["s", "r"]

    def test_pruning_preserves_positional_output_names(self):
        """Dropping earlier items must not rename surviving ``col{N}``
        outputs (regression: downstream references broke after the shift)."""
        db = MemDatabase(plan_cache=PlanCache(0))
        db.execute("CREATE TABLE t (a BIGINT, b BIGINT)")
        db.execute("INSERT INTO t (a, b) VALUES (1, 2), (3, 3)")
        query = (
            "WITH c AS (SELECT a, b + 1 FROM t) "
            "SELECT c.col1 AS v FROM c JOIN t ON c.col1 = t.b ORDER BY v"
        )
        plain = MemDatabase(plan_cache=PlanCache(0), enable_optimizer=False)
        plain._tables = db._tables
        assert db.execute(query).rows == plain.execute(query).rows == [(3,)]

    def test_star_consumer_disables_pruning(self):
        db = _gate_db()
        statement = parse_one(
            "WITH wide AS (SELECT T0.s AS s, T0.r AS r FROM T0 JOIN G ON G.in_s = T0.s) "
            "SELECT * FROM wide ORDER BY s"
        )
        _rewritten, log = rewrite_statement(statement, db._tables)
        assert log.columns_pruned == 0


class TestCteInlining:
    def test_single_use_simple_cte_inlined(self):
        db = _gate_db()
        statement = parse_one(
            "WITH pick AS (SELECT T0.s AS s, T0.r AS r FROM T0 WHERE T0.r > 0.1) "
            "SELECT pick.s AS s, pick.r AS r FROM pick ORDER BY s"
        )
        rewritten, log = rewrite_statement(statement, db._tables)
        assert log.ctes_inlined == 1
        assert isinstance(rewritten, Select)  # the WITH disappeared entirely
        assert rewritten.source.name == "T0"
        assert rewritten.source.filter is not None  # body WHERE became a scan filter

    def test_inlined_results_match(self):
        db = _gate_db()
        query = (
            "WITH pick AS (SELECT T0.s AS s, T0.r AS r FROM T0 WHERE T0.r > 0.1) "
            "SELECT pick.s AS s, pick.r AS r FROM pick ORDER BY s"
        )
        plain = MemDatabase(plan_cache=PlanCache(0), enable_optimizer=False)
        plain._tables = db._tables
        assert db.execute(query).rows == plain.execute(query).rows

    def test_multi_use_cte_not_inlined(self):
        db = _gate_db()
        statement = parse_one(
            "WITH pick AS (SELECT T0.s AS s FROM T0), "
            "a AS (SELECT pick.s AS s FROM pick), "
            "b AS (SELECT pick.s AS s FROM pick) "
            "SELECT a.s FROM a JOIN b ON b.s = a.s ORDER BY a.s"
        )
        rewritten, log = rewrite_statement(statement, db._tables)
        names = [cte.name for cte in rewritten.ctes]
        assert "pick" in names  # referenced twice: must survive

    def test_inlined_bare_body_refs_qualified_in_joined_consumer(self):
        """A CTE body with bare column refs spliced into a multi-table
        consumer must qualify them with the source binding (regression:
        bare names are ambiguous after a join)."""
        db = MemDatabase(plan_cache=PlanCache(0))
        db.execute("CREATE TABLE t (a BIGINT, b BIGINT)")
        db.execute("INSERT INTO t (a, b) VALUES (1, 10), (2, 6), (3, 2)")
        db.execute("CREATE TABLE u (a BIGINT, c BIGINT)")
        db.execute("INSERT INTO u (a, c) VALUES (1, 100), (2, 200), (3, 400)")
        query = (
            "WITH w AS (SELECT a, b FROM t) "
            "SELECT w.b, u.c FROM w JOIN u ON u.a = w.a "
            "WHERE w.b > 5 AND u.c < 300 ORDER BY w.b"
        )
        plain = MemDatabase(plan_cache=PlanCache(0), enable_optimizer=False)
        plain._tables = db._tables
        assert db.execute(query).rows == plain.execute(query).rows == [(6, 200), (10, 100)]

    def test_shadowed_source_name_blocks_inlining(self):
        """The spliced-in table name must resolve identically in the
        consumer's scope; a CTE shadowing it there blocks inlining."""
        db = MemDatabase(plan_cache=PlanCache(0))
        db.execute("CREATE TABLE t (x BIGINT)")
        db.execute("INSERT INTO t (x) VALUES (1), (2), (3)")
        query = (
            "WITH a AS (SELECT x FROM t), t AS (SELECT x + 100 AS x FROM t) "
            "SELECT a.x FROM a ORDER BY a.x"
        )
        plain = MemDatabase(plan_cache=PlanCache(0), enable_optimizer=False)
        plain._tables = db._tables
        assert db.execute(query).rows == plain.execute(query).rows == [(1,), (2,), (3,)]

    def test_grouped_consumer_order_by_output_alias(self):
        """ORDER BY on an output alias of a grouped consumer must keep
        resolving against the aggregated outputs after inlining."""
        db = MemDatabase(plan_cache=PlanCache(0))
        db.execute("CREATE TABLE t (x BIGINT, z BIGINT)")
        db.execute("INSERT INTO t (x, z) VALUES (1, 10), (2, 20), (1, 5)")
        query = (
            "WITH a AS (SELECT t.x AS x, t.z AS z FROM t) "
            "SELECT a.x AS x, SUM(a.z) AS s FROM a GROUP BY a.x ORDER BY x"
        )
        plain = MemDatabase(plan_cache=PlanCache(0), enable_optimizer=False)
        plain._tables = db._tables
        assert db.execute(query).rows == plain.execute(query).rows == [(1, 15.0), (2, 20.0)]

    def test_distinct_consumer_order_by_output_alias(self):
        db = MemDatabase(plan_cache=PlanCache(0))
        db.execute("CREATE TABLE t (x BIGINT)")
        db.execute("INSERT INTO t (x) VALUES (2), (1), (2)")
        query = "WITH a AS (SELECT t.x AS x FROM t) SELECT DISTINCT a.x AS x FROM a ORDER BY x"
        plain = MemDatabase(plan_cache=PlanCache(0), enable_optimizer=False)
        plain._tables = db._tables
        assert db.execute(query).rows == plain.execute(query).rows == [(1,), (2,)]

    def test_grouped_cte_not_inlined(self):
        db = _gate_db()
        statement = parse_one(
            "WITH agg AS (SELECT T0.s AS s, SUM(T0.r) AS total FROM T0 GROUP BY T0.s) "
            "SELECT agg.s, agg.total FROM agg ORDER BY agg.s"
        )
        rewritten, log = rewrite_statement(statement, db._tables)
        assert log.ctes_inlined == 0
        assert isinstance(rewritten, WithSelect)


# ---------------------------------------------------------------------------
# Cost model: cardinalities and join ordering
# ---------------------------------------------------------------------------


def _three_table_db() -> MemDatabase:
    """big (4096 rows) -> mid (256) -> small (4): written order is worst."""
    db = MemDatabase(plan_cache=PlanCache())
    db.execute("CREATE TABLE big (k BIGINT NOT NULL, payload DOUBLE NOT NULL)")
    db.execute("CREATE TABLE mid (k BIGINT NOT NULL, v BIGINT NOT NULL)")
    db.execute("CREATE TABLE small (v BIGINT NOT NULL, w DOUBLE NOT NULL)")
    big_rows = ", ".join(f"({index % 64}, {index}.0)" for index in range(1024))
    db.execute(f"INSERT INTO big (k, payload) VALUES {big_rows}")
    mid_rows = ", ".join(f"({index % 64}, {index % 16})" for index in range(256))
    db.execute(f"INSERT INTO mid (k, v) VALUES {mid_rows}")
    db.execute("INSERT INTO small (v, w) VALUES (0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0)")
    db.execute("ANALYZE")
    return db


class TestCardinalityEstimates:
    def test_table_rows_prefers_statistics(self):
        db = _three_table_db()
        model = CostModel(db._tables, db.statistics)
        assert model.table_rows("big") == 1024.0
        assert model.table_rows("unknown") == 1000.0  # default

    def test_key_frequency_uses_ndv(self):
        db = _three_table_db()
        model = CostModel(db._tables, db.statistics)
        # big.k has 64 distinct values over 1024 rows -> frequency 16.
        assert model.key_frequency("big", ColumnRef("k")) == pytest.approx(16.0)

    def test_join_upper_bound_is_pessimistic(self):
        # |L|=1024, f_L=16, |R|=256, f_R=4 -> min(1024*4, 256*16) = 4096.
        assert CostModel.join_upper_bound(1024, 16, 256, 4) == 4096

    def test_equality_selectivity_uses_ndv(self):
        db = _three_table_db()
        model = CostModel(db._tables, db.statistics)
        predicate = _expr("k = 3")
        assert model.selectivity(predicate, "big") == pytest.approx(1 / 64)

    def test_range_selectivity_interpolates_min_max(self):
        db = _three_table_db()
        model = CostModel(db._tables, db.statistics)
        # big.k spans [0, 63]; k < 16 covers about a quarter of the range.
        predicate = _expr("k < 16")
        assert model.selectivity(predicate, "big") == pytest.approx(16 / 63, rel=0.01)

    def test_estimates_never_underestimate_gate_join(self):
        db = _gate_db()
        db.execute("ANALYZE")
        model = CostModel(db._tables, db.statistics)
        statement = parse_one(_GATE_STEP_SQL)
        estimate = model.estimate_select_rows(statement)
        actual = len(db.execute(_GATE_STEP_SQL).rows)
        assert estimate >= actual


class TestJoinOrdering:
    _QUERY = (
        "SELECT small.w AS w, SUM(big.payload) AS total "
        "FROM big JOIN mid ON mid.k = big.k JOIN small ON small.v = mid.v "
        "WHERE small.w < 2.5 "
        "GROUP BY small.w"
    )

    def test_greedy_order_prefers_selective_join(self):
        db = _three_table_db()
        optimizer = Optimizer(db._tables, db.statistics)
        optimized, report, _cost = optimizer.optimize(parse_one(self._QUERY))
        decision = report.queries[0].join_order
        assert decision is not None
        # Written order joins mid (binding mid) first; the optimizer is free
        # to pick the cheaper order but must keep a connected join graph:
        # small joins on mid.v, so mid must come before small.
        assert decision.chosen.index("mid") < decision.chosen.index("small")
        assert len(decision.step_estimates) == 2

    def test_reordered_results_match_written_order(self):
        db = _three_table_db()
        plain = MemDatabase(plan_cache=PlanCache(0), enable_optimizer=False)
        plain._tables = db._tables
        expected = plain.execute(self._QUERY).rows
        actual = db.execute(self._QUERY).rows
        assert len(actual) == len(expected)
        for left, right in zip(sorted(actual), sorted(expected)):
            assert left[0] == right[0]
            assert left[1] == pytest.approx(right[1], rel=1e-12)

    def test_bare_star_disables_reordering(self):
        db = _three_table_db()
        optimizer = Optimizer(db._tables, db.statistics)
        statement = parse_one(
            "SELECT * FROM big JOIN mid ON mid.k = big.k JOIN small ON small.v = mid.v ORDER BY big.k"
        )
        _optimized, report, _cost = optimizer.optimize(statement)
        assert report.queries[0].join_order is None

    def test_unordered_ungrouped_query_not_reordered(self):
        db = _three_table_db()
        optimizer = Optimizer(db._tables, db.statistics)
        statement = parse_one(
            "SELECT big.payload FROM big JOIN mid ON mid.k = big.k JOIN small ON small.v = mid.v"
        )
        _optimized, report, _cost = optimizer.optimize(statement)
        assert report.queries[0].join_order is None


# ---------------------------------------------------------------------------
# Costed fusion choice + EXPLAIN
# ---------------------------------------------------------------------------


class TestFusionDecision:
    def test_gate_query_fuses_by_cost(self):
        db = _gate_db()
        db.execute("ANALYZE")
        optimizer = Optimizer(db._tables, db.statistics)
        optimized, _report, cost = optimizer.optimize(parse_one(_GATE_STEP_SQL))
        plan = compile_statement(optimized, cost)
        assert isinstance(plan, CompiledScript)
        decision = plan.query.fusion
        assert decision is not None and decision.eligible and decision.use_fused
        assert decision.fused_cost < decision.generic_cost
        assert plan.query.fused is not None

    def test_ineligible_shape_reports_no_fusion(self):
        db = _gate_db()
        plan = compile_statement(parse_one("SELECT T0.s FROM T0 ORDER BY T0.s"))
        assert plan.query.fusion is None


class TestExplain:
    def test_explain_shows_cost_based_fusion(self):
        db = _gate_db()
        db.execute("ANALYZE")
        text = "\n".join(row[0] for row in db.execute(f"EXPLAIN {_GATE_STEP_SQL}").rows)
        assert "fused join-aggregate [cost" in text
        assert "estimated rows" in text
        assert "plan cache:" in text

    def test_explain_does_not_execute(self):
        db = _gate_db()
        db.execute("EXPLAIN CREATE TABLE copy AS SELECT T0.s AS s FROM T0")
        assert not db.has_table("copy")

    def test_explain_analyze_executes_and_reports_actuals(self):
        db = _gate_db()
        rows = db.execute(f"EXPLAIN ANALYZE {_GATE_STEP_SQL}").rows
        text = "\n".join(row[0] for row in rows)
        assert "actual" in text
        assert "ms" in text

    def test_explain_analyze_create_materializes(self):
        db = _gate_db()
        db.execute("EXPLAIN ANALYZE CREATE TABLE copy AS SELECT T0.s AS s FROM T0")
        assert db.has_table("copy")
        assert db.row_count("copy") == 4

    def test_explain_interpreted_statement(self):
        db = _gate_db()
        text = "\n".join(
            row[0] for row in db.execute("EXPLAIN INSERT INTO T0 (s, r, i) VALUES (9, 0.0, 0.0)").rows
        )
        assert "interpreted statement" in text
        assert db.row_count("T0") == 4  # not executed

    def test_explain_cache_provenance(self):
        db = _gate_db()
        query = "SELECT T0.s FROM T0 ORDER BY T0.s"
        text = "\n".join(row[0] for row in db.execute(f"EXPLAIN {query}").rows)
        assert "plan cache: miss" in text
        db.execute(query)
        text = "\n".join(row[0] for row in db.execute(f"EXPLAIN {query}").rows)
        assert "plan cache: hit" in text

    def test_explain_statements_are_not_cached(self):
        db = _gate_db()
        explain = f"EXPLAIN {_GATE_STEP_SQL}"
        db.execute(explain)
        assert explain not in db.plan_cache


# ---------------------------------------------------------------------------
# Optimizer toggle
# ---------------------------------------------------------------------------


class TestOptimizerToggle:
    def test_disabled_optimizer_reports_no_rewrites(self):
        db = MemDatabase(plan_cache=PlanCache(0), enable_optimizer=False)
        db.execute("CREATE TABLE t (a BIGINT)")
        db.execute("INSERT INTO t (a) VALUES (1), (2)")
        db.execute("SELECT a + (1 + 1) AS b FROM t ORDER BY a")
        assert db.optimizer_stats()["counters"] == {}

    def test_disabled_optimizer_explain_mentions_it(self):
        db = MemDatabase(plan_cache=PlanCache(0), enable_optimizer=False)
        db.execute("CREATE TABLE t (a BIGINT)")
        text = "\n".join(row[0] for row in db.execute("EXPLAIN SELECT a FROM t").rows)
        assert "optimizer: disabled" in text

    def test_enabled_optimizer_counts_activity(self):
        db = _gate_db()
        db.execute(_GATE_STEP_SQL)
        counters = db.optimizer_stats()["counters"]
        assert counters.get("constant_folds", 0) >= 1
