"""Tests for the embedded engine's SQL tokenizer."""

import pytest

from repro.backends.memdb.tokenizer import (
    IDENTIFIER,
    KEYWORD,
    NUMBER,
    OPERATOR,
    PUNCT,
    STRING,
    tokenize,
)
from repro.errors import SQLParseError


class TestTokenizer:
    def test_keywords_are_lowercased(self):
        tokens = tokenize("SELECT s FROM T0")
        assert tokens[0].kind == KEYWORD and tokens[0].text == "select"
        assert tokens[2].kind == KEYWORD and tokens[2].text == "from"

    def test_identifiers_preserve_case(self):
        tokens = tokenize("SELECT T0.s FROM T0")
        assert tokens[1].text == "T0"

    def test_numbers_integer_float_exponent(self):
        tokens = tokenize("SELECT 42, 0.5, 1e-3, 2.5E+4")
        numbers = [token.text for token in tokens if token.kind == NUMBER]
        assert numbers == ["42", "0.5", "1e-3", "2.5E+4"]

    def test_multi_character_operators(self):
        tokens = tokenize("a << 2 >> 1 <= 3 >= 4 <> 5 != 6")
        operators = [token.text for token in tokens if token.kind == OPERATOR]
        assert operators == ["<<", ">>", "<=", ">=", "<>", "!="]

    def test_bitwise_operators(self):
        tokens = tokenize("s & ~6 | 1")
        operators = [token.text for token in tokens if token.kind == OPERATOR]
        assert operators == ["&", "~", "|"]

    def test_string_literal_with_escape(self):
        tokens = tokenize("SELECT 'it''s'")
        strings = [token for token in tokens if token.kind == STRING]
        assert strings[0].text == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SQLParseError):
            tokenize("SELECT 'oops")

    def test_line_comments_are_skipped(self):
        tokens = tokenize("SELECT 1 -- a comment\n, 2")
        numbers = [token.text for token in tokens if token.kind == NUMBER]
        assert numbers == ["1", "2"]

    def test_quoted_identifiers(self):
        tokens = tokenize('SELECT "weird name" FROM `other`')
        identifiers = [token.text for token in tokens if token.kind == IDENTIFIER]
        assert identifiers == ["weird name", "other"]

    def test_punctuation(self):
        tokens = tokenize("f(a, b);")
        punctuation = [token.text for token in tokens if token.kind == PUNCT]
        assert punctuation == ["(", ",", ")", ";"]

    def test_unexpected_character(self):
        with pytest.raises(SQLParseError):
            tokenize("SELECT #")

    def test_end_token_is_last(self):
        tokens = tokenize("SELECT 1")
        assert tokens[-1].kind == "end"
