"""Tests for the physical-plan compiler and the LRU plan cache."""

import numpy as np
import pytest

from repro.backends.memdb import MemDatabase, PlanCache, compile_statement, parse_one
from repro.backends.memdb.executor import SelectExecutor, join_indices
from repro.backends.memdb.planner import CompiledCreateTableAs, CompiledScript
from repro.errors import SQLExecutionError

_GATE_STEP_SQL = (
    "SELECT ((T0.s & ~1) | G.out_s) AS s, "
    "SUM((T0.r * G.r) - (T0.i * G.i)) AS r, "
    "SUM((T0.r * G.i) + (T0.i * G.r)) AS i "
    "FROM T0 JOIN G ON G.in_s = (T0.s & 1) "
    "GROUP BY ((T0.s & ~1) | G.out_s)"
)


def _fresh_db() -> MemDatabase:
    db = MemDatabase(plan_cache=PlanCache())
    db.execute("CREATE TABLE T0 (s BIGINT NOT NULL, r DOUBLE NOT NULL, i DOUBLE NOT NULL)")
    db.execute("INSERT INTO T0 (s, r, i) VALUES (0, 0.6, 0.0), (1, 0.8, 0.0), (2, 0.0, 0.6), (3, 0.0, -0.8)")
    db.execute("CREATE TABLE G (in_s BIGINT NOT NULL, out_s BIGINT NOT NULL, r DOUBLE NOT NULL, i DOUBLE NOT NULL)")
    db.execute(
        "INSERT INTO G (in_s, out_s, r, i) VALUES "
        "(0, 0, 0.7071067811865476, 0.0), (0, 1, 0.7071067811865476, 0.0), "
        "(1, 0, 0.7071067811865476, 0.0), (1, 1, -0.7071067811865476, 0.0)"
    )
    return db


class TestPlanCache:
    def test_hit_miss_counters(self):
        cache = PlanCache(maxsize=4)
        db = MemDatabase(plan_cache=cache)
        db.execute("CREATE TABLE t (a BIGINT)")
        db.execute("INSERT INTO t (a) VALUES (1), (2)")
        before = cache.stats()
        db.execute("SELECT a FROM t ORDER BY a")
        db.execute("SELECT a FROM t ORDER BY a")
        db.execute("SELECT a FROM t ORDER BY a")
        after = cache.stats()
        assert after["misses"] == before["misses"] + 1
        assert after["hits"] == before["hits"] + 2

    def test_lru_eviction(self):
        cache = PlanCache(maxsize=2)
        db = MemDatabase(plan_cache=cache)
        db.execute("CREATE TABLE t (a BIGINT)")
        db.execute("INSERT INTO t (a) VALUES (1)")
        cache.clear()
        db.execute("SELECT a FROM t")           # entry 1
        db.execute("SELECT a + 1 AS b FROM t")  # entry 2
        db.execute("SELECT a FROM t")           # touch entry 1 (now MRU)
        db.execute("SELECT a + 2 AS c FROM t")  # entry 3 evicts entry 2
        assert cache.stats()["evictions"] == 1
        assert "SELECT a FROM t" in cache
        assert "SELECT a + 1 AS b FROM t" not in cache
        assert len(cache) == 2

    def test_zero_capacity_disables_caching(self):
        cache = PlanCache(maxsize=0)
        db = MemDatabase(plan_cache=cache)
        db.execute("CREATE TABLE t (a BIGINT)")
        db.execute("SELECT a FROM t")
        db.execute("SELECT a FROM t")
        assert len(cache) == 0
        assert cache.stats()["hits"] == 0

    def test_clear_resets_stats(self):
        cache = PlanCache(maxsize=4)
        db = MemDatabase(plan_cache=cache)
        db.execute("CREATE TABLE t (a BIGINT)")
        db.execute("SELECT a FROM t")
        cache.clear()
        stats = cache.stats()
        assert stats == {
            "size": 0,
            "planned": 0,
            "parse_only": 0,
            "maxsize": 4,
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "invalidations": 0,
            "replans": 0,
        }

    def test_parse_only_scripts_cannot_evict_plans(self):
        """A sweep's stream of unique INSERT texts must not flush hot query plans."""
        cache = PlanCache(maxsize=4)
        db = MemDatabase(plan_cache=cache)
        db.execute("CREATE TABLE t (a BIGINT)")
        query = "SELECT a FROM t"
        db.execute(query)
        assert query in cache
        for value in range(20):  # 20 distinct parse-only texts, far past maxsize
            db.execute(f"INSERT INTO t (a) VALUES ({value})")
        assert query in cache
        stats = cache.stats()
        assert stats["planned"] >= 1
        assert stats["parse_only"] <= 4
        assert stats["evictions"] > 0

    def test_repeated_insert_text_hits_parse_cache(self):
        cache = PlanCache(maxsize=8)
        db = MemDatabase(plan_cache=cache)
        db.execute("CREATE TABLE t (a BIGINT)")
        cache.clear()
        db.execute("INSERT INTO t (a) VALUES (1)")
        db.execute("INSERT INTO t (a) VALUES (1)")
        assert cache.stats()["hits"] == 1
        assert db.row_count("t") == 2

    def test_oversized_parse_only_scripts_are_not_pinned(self):
        cache = PlanCache(maxsize=8)
        db = MemDatabase(plan_cache=cache)
        db.execute("CREATE TABLE t (a BIGINT)")
        rows = ", ".join(f"({value})" for value in range(3000))
        insert = f"INSERT INTO t (a) VALUES {rows}"
        assert len(insert) > PlanCache.PARSE_ONLY_MAX_SQL_CHARS
        db.execute(insert)
        assert insert not in cache
        assert db.row_count("t") == 3000

    def test_parse_errors_are_not_cached(self):
        cache = PlanCache(maxsize=4)
        db = MemDatabase(plan_cache=cache)
        with pytest.raises(Exception):
            db.execute("SELEC nonsense")
        assert len(cache) == 0

    def test_cached_plan_rebinds_to_fresh_tables(self):
        """The sweep contract: same SQL text, new table contents, correct result."""
        cache = PlanCache(maxsize=8)
        db = MemDatabase(plan_cache=cache)
        db.execute("CREATE TABLE t (a BIGINT, b DOUBLE)")
        db.execute("INSERT INTO t (a, b) VALUES (1, 10.0), (1, 2.0)")
        query = "SELECT a, SUM(b) AS total FROM t GROUP BY a ORDER BY a"
        assert db.execute(query).rows == [(1, 12.0)]
        db.execute("DROP TABLE t")
        db.execute("CREATE TABLE t (a BIGINT, b DOUBLE)")
        db.execute("INSERT INTO t (a, b) VALUES (2, 1.0), (3, 4.0)")
        hits_before = cache.stats()["hits"]
        assert db.execute(query).rows == [(2, 1.0), (3, 4.0)]
        assert cache.stats()["hits"] == hits_before + 1

    def test_cache_shared_across_databases(self):
        cache = PlanCache(maxsize=8)
        first = MemDatabase(plan_cache=cache)
        first.execute("CREATE TABLE t (a BIGINT)")
        first.execute("INSERT INTO t (a) VALUES (7)")
        assert first.execute("SELECT a FROM t").rows == [(7,)]
        second = MemDatabase(plan_cache=cache)
        second.execute("CREATE TABLE t (a BIGINT)")
        second.execute("INSERT INTO t (a) VALUES (9)")
        hits_before = cache.stats()["hits"]
        assert second.execute("SELECT a FROM t").rows == [(9,)]
        assert cache.stats()["hits"] == hits_before + 1


class TestCompilation:
    def test_gate_step_compiles_to_fused_operator(self):
        plan = compile_statement(parse_one(_GATE_STEP_SQL))
        assert isinstance(plan, CompiledScript)
        assert plan.query.fused is not None

    def test_with_select_compiles_every_cte(self):
        sql = f"WITH T1 AS ({_GATE_STEP_SQL}) SELECT s, r, i FROM T1 ORDER BY s"
        plan = compile_statement(parse_one(sql))
        assert isinstance(plan, CompiledScript)
        assert len(plan.ctes) == 1
        assert plan.ctes[0][1].fused is not None

    def test_create_table_as_compiles(self):
        plan = compile_statement(parse_one(f"CREATE TABLE T1 AS {_GATE_STEP_SQL}"))
        assert isinstance(plan, CompiledCreateTableAs)
        assert plan.script.query.fused is not None

    def test_unqualified_group_key_falls_back_to_generic_plan(self):
        sql = "SELECT a, SUM(b) AS t FROM x JOIN y ON y.k = x.k GROUP BY a"
        plan = compile_statement(parse_one(sql))
        assert isinstance(plan, CompiledScript)
        assert plan.query.fused is None

    def test_insert_and_ddl_fall_back_to_interpreter(self):
        assert compile_statement(parse_one("INSERT INTO t (a) VALUES (1)")) is None
        assert compile_statement(parse_one("CREATE TABLE t (a BIGINT)")) is None
        assert compile_statement(parse_one("DROP TABLE t")) is None

    def test_left_join_raises_like_the_interpreter(self):
        with pytest.raises(SQLExecutionError):
            compile_statement(parse_one("SELECT * FROM a LEFT JOIN b ON b.x = a.x"))


class TestPlanVsInterpreter:
    """Compiled plans must agree with the interpreter on every covered shape."""

    @pytest.mark.parametrize(
        "query",
        [
            _GATE_STEP_SQL,
            "SELECT s, r FROM T0 WHERE r > 0 ORDER BY s",
            "SELECT s + 1 AS s1, r * r + i * i AS p FROM T0 ORDER BY p DESC LIMIT 2",
            "SELECT COUNT(*), SUM(r), MIN(r), MAX(i) FROM T0",
            "SELECT (s & 1) AS bit, SUM(r * r + i * i) AS mass FROM T0 GROUP BY (s & 1) ORDER BY bit",
            "SELECT DISTINCT (s & 1) AS bit FROM T0 ORDER BY bit",
            "SELECT T0.s, G.out_s FROM T0 JOIN G ON G.in_s = (T0.s & 1) ORDER BY T0.s, G.out_s",
            f"WITH T1 AS ({_GATE_STEP_SQL}) SELECT COUNT(*) FROM T1",
            "SELECT s, COUNT(*) AS n, SUM(r) AS t FROM T0 GROUP BY s HAVING COUNT(*) > 0 ORDER BY s",
        ],
    )
    def test_same_rows(self, query):
        db = _fresh_db()
        statement = parse_one(query)
        plan = compile_statement(statement)
        assert plan is not None
        names, columns = plan.execute(db._tables)
        interpreter_names, interpreter_columns = SelectExecutor(db._tables).execute(statement)
        assert names == interpreter_names
        for name in names:
            np.testing.assert_allclose(
                np.asarray(columns[name], dtype=np.float64),
                np.asarray(interpreter_columns[name], dtype=np.float64),
                atol=1e-12,
            )

    def test_fused_preserves_integer_key_dtype(self):
        db = _fresh_db()
        result = db.execute(_GATE_STEP_SQL)
        assert all(isinstance(row[0], int) for row in result.rows)


class TestJoinIndices:
    def test_matches_dict_join_order(self):
        left = np.array([3, 1, 2, 1, 9])
        right = np.array([1, 2, 1, 3])
        left_idx, right_idx = join_indices(left, right)
        pairs = list(zip(left_idx.tolist(), right_idx.tolist()))
        assert pairs == [(0, 3), (1, 0), (1, 2), (2, 1), (3, 0), (3, 2)]

    def test_nan_keys_never_match(self):
        left = np.array([1.0, np.nan, 2.0])
        right = np.array([np.nan, 1.0, np.nan])
        left_idx, right_idx = join_indices(left, right)
        assert left_idx.tolist() == [0]
        assert right_idx.tolist() == [1]

    def test_object_keys_fall_back(self):
        left = np.asarray(["a", "b", "a"], dtype=object)
        right = np.asarray(["a", "c"], dtype=object)
        left_idx, right_idx = join_indices(left, right)
        assert left_idx.tolist() == [0, 2]
        assert right_idx.tolist() == [0, 0]

    def test_empty_inputs(self):
        left_idx, right_idx = join_indices(np.empty(0, dtype=np.int64), np.array([1, 2]))
        assert left_idx.size == 0 and right_idx.size == 0


class TestPlanCacheSchemaFingerprint:
    """Regression: a dropped-and-recreated table with a different schema must
    never re-bind a stale compiled plan (entries are fingerprinted on the
    referenced tables' column names/dtypes, not just the SQL text)."""

    def test_schema_change_invalidates_cached_plan(self):
        cache = PlanCache()
        db = MemDatabase(plan_cache=cache)
        db.execute("CREATE TABLE t (a BIGINT, b DOUBLE)")
        db.execute("INSERT INTO t (a, b) VALUES (1, 2.0)")
        query = "SELECT a, b FROM t ORDER BY a"
        assert db.execute(query).rows == [(1, 2.0)]
        db.execute("DROP TABLE t")
        db.execute("CREATE TABLE t (a TEXT, b BIGINT)")
        db.execute("INSERT INTO t (a, b) VALUES ('x', 7)")
        before = cache.stats()["invalidations"]
        assert db.execute(query).rows == [("x", 7)]
        assert cache.stats()["invalidations"] == before + 1

    def test_stale_pushdown_attribution_is_recompiled(self):
        """The sharpest staleness case: the optimizer attributed a bare WHERE
        column to one table; after recreation the column lives in the *other*
        table.  Without the fingerprint the cached plan filters the wrong
        scan; with it the query recompiles and returns the right rows."""
        cache = PlanCache()
        db = MemDatabase(plan_cache=cache)
        db.execute("CREATE TABLE t1 (x BIGINT, y BIGINT)")
        db.execute("CREATE TABLE t2 (k BIGINT, z BIGINT)")
        db.execute("INSERT INTO t1 (x, y) VALUES (0, 1), (5, 2)")
        db.execute("INSERT INTO t2 (k, z) VALUES (1, 10), (2, 20)")
        query = "SELECT t1.y AS y, t2.z AS z FROM t1 JOIN t2 ON t2.k = t1.y WHERE x > 1 ORDER BY y"
        assert db.execute(query).rows == [(2, 20)]
        db.execute("DROP TABLE t1")
        db.execute("DROP TABLE t2")
        db.execute("CREATE TABLE t1 (y BIGINT)")
        db.execute("CREATE TABLE t2 (k BIGINT, z BIGINT, x BIGINT)")
        db.execute("INSERT INTO t1 (y) VALUES (1), (2)")
        db.execute("INSERT INTO t2 (k, z, x) VALUES (1, 10, 9), (2, 20, 0)")
        # x now belongs to t2: only (y=1, z=10) survives x > 1.
        assert db.execute(query).rows == [(1, 10)]

    def test_same_schema_recreation_still_hits(self):
        """Recreating an identical schema (the sweep pattern) must keep hitting."""
        cache = PlanCache()
        db = MemDatabase(plan_cache=cache)

        def build():
            db.execute("DROP TABLE IF EXISTS t")
            db.execute("CREATE TABLE t (a BIGINT)")
            db.execute("INSERT INTO t (a) VALUES (1), (2)")

        query = "SELECT a FROM t ORDER BY a"
        build()
        db.execute(query)
        hits_before = cache.stats()["hits"]
        build()
        db.execute(query)
        assert cache.stats()["hits"] > hits_before
        assert cache.stats()["invalidations"] == 0

    def test_fingerprint_is_validated_across_databases(self):
        """A shared cache must not leak plans between schema-divergent catalogs."""
        cache = PlanCache()
        db1 = MemDatabase(plan_cache=cache)
        db1.execute("CREATE TABLE t (a BIGINT)")
        db1.execute("INSERT INTO t (a) VALUES (1)")
        query = "SELECT a FROM t"
        assert db1.execute(query).rows == [(1,)]
        db2 = MemDatabase(plan_cache=cache)
        db2.execute("CREATE TABLE t (a TEXT, b BIGINT)")
        db2.execute("INSERT INTO t (a, b) VALUES ('q', 3)")
        assert db2.execute(query).rows == [("q",)]

    def test_mid_script_ddl_does_not_unfingerprint_earlier_reads(self):
        """A statement reading a table *before* the script drops/recreates it
        must still fingerprint the pre-script schema (regression)."""
        cache = PlanCache()
        db = MemDatabase(plan_cache=cache)
        db.execute("CREATE TABLE t1 (x BIGINT, y BIGINT)")
        db.execute("CREATE TABLE t2 (k BIGINT, z BIGINT)")
        db.execute("INSERT INTO t1 (x, y) VALUES (0, 1), (5, 2)")
        db.execute("INSERT INTO t2 (k, z) VALUES (1, 10), (2, 20)")
        script = (
            "SELECT t1.y AS y, t2.z AS z FROM t1 JOIN t2 ON t2.k = t1.y WHERE x > 1 ORDER BY y; "
            "DROP TABLE t1; DROP TABLE t2; "
            "CREATE TABLE t1 (y BIGINT); CREATE TABLE t2 (k BIGINT, z BIGINT, x BIGINT)"
        )
        db.execute(script)
        db.execute("INSERT INTO t1 (y) VALUES (1), (2)")
        db.execute("INSERT INTO t2 (k, z, x) VALUES (1, 10, 9), (2, 20, 0)")
        before = cache.stats()["invalidations"]
        db.execute(script)  # x moved to t2: stale attribution must recompile
        assert cache.stats()["invalidations"] == before + 1
