"""Edge audit for LIMIT/OFFSET and the top-k (LIMIT below ORDER BY) operator.

The satellite checklist for the top-k operator: LIMIT 0, OFFSET beyond the
row count, negative LIMIT/OFFSET, and ties under ORDER BY with
non-deterministic input order must all match SQLite's semantics — and the
partition-based top-k path must return byte-identical rows to the full
sort-then-slice path it replaces (memdb's tie order is the stable input
order, a valid choice SQLite permits).
"""

import sqlite3

import numpy as np
import pytest

from repro.backends.memdb import MemDatabase
from repro.backends.memdb.engine import PlanCache
from repro.backends.memdb.executor import top_k_indices
from repro.backends.memdb.optimizer.cost import CostModel
from repro.backends.memdb.parser import parse_one


def _db(enable_topk=True, rows=()):
    db = MemDatabase(plan_cache=PlanCache(maxsize=8), enable_topk=enable_topk)
    db.execute("CREATE TABLE t (id BIGINT NOT NULL, k BIGINT NOT NULL, v DOUBLE NOT NULL)")
    if rows:
        values = ", ".join(f"({i}, {k}, {v!r})" for i, (k, v) in enumerate(rows))
        db.execute(f"INSERT INTO t (id, k, v) VALUES {values}")
    return db


def _sqlite(rows):
    connection = sqlite3.connect(":memory:")
    connection.execute("CREATE TABLE t (id BIGINT NOT NULL, k BIGINT NOT NULL, v DOUBLE NOT NULL)")
    connection.executemany("INSERT INTO t VALUES (?, ?, ?)", [(i, k, v) for i, (k, v) in enumerate(rows)])
    return connection


#: Tie-heavy rows in deliberately scrambled (non-sorted) input order.
_ROWS = [(3, 0.5), (1, 2.5), (3, 1.5), (2, 0.5), (1, 0.5), (2, 2.5), (1, 1.5), (3, 2.5), (2, 1.5), (0, 9.0)]


class TestLimitOffsetSemantics:
    """LIMIT/OFFSET must follow SQLite: negative limit = all, negative offset = 0."""

    @pytest.mark.parametrize(
        "tail",
        [
            "LIMIT 0",
            "LIMIT 3",
            "LIMIT 3 OFFSET 2",
            "LIMIT 3 OFFSET 100",     # offset beyond the row count -> empty
            "LIMIT 100 OFFSET 8",     # limit beyond the remaining rows
            "LIMIT -1",               # negative limit = unlimited
            "LIMIT -1 OFFSET 4",
            "LIMIT 2 OFFSET -5",      # negative offset = 0
            "LIMIT 0 OFFSET 0",
        ],
    )
    def test_matches_sqlite_with_total_order(self, tail):
        query = f"SELECT id, k, v FROM t ORDER BY k, v, id {tail}"
        expected = _sqlite(_ROWS).execute(query).fetchall()
        actual = _db(rows=_ROWS).execute(query).rows
        assert actual == expected

    def test_offset_without_order_by(self):
        # LIMIT/OFFSET applies to whatever order the pipeline produced; memdb
        # scans in insertion order, same as SQLite's rowid order here.
        query = "SELECT id FROM t LIMIT 4 OFFSET 3"
        expected = _sqlite(_ROWS).execute(query).fetchall()
        assert _db(rows=_ROWS).execute(query).rows == expected

    def test_offset_requires_limit_keyword(self):
        # Bare OFFSET without LIMIT is not part of the supported grammar.
        from repro.errors import SQLParseError

        with pytest.raises(SQLParseError):
            _db(rows=_ROWS).execute("SELECT id FROM t OFFSET 2")


class TestTopKTies:
    """Ties resolved identically by top-k and full sort, acceptably by SQLite."""

    def test_topk_equals_sort_then_slice_under_ties(self):
        query = "SELECT id, k FROM t ORDER BY k LIMIT 4"
        with_topk = _db(enable_topk=True, rows=_ROWS).execute(query).rows
        without = _db(enable_topk=False, rows=_ROWS).execute(query).rows
        assert with_topk == without

    def test_tied_key_values_match_sqlite(self):
        # Which tied row survives the cut is implementation-defined, but the
        # multiset of ORDER BY key values in the prefix is not.
        query = "SELECT k FROM t ORDER BY k LIMIT 5"
        expected = sorted(row[0] for row in _sqlite(_ROWS).execute(query).fetchall())
        actual = sorted(row[0] for row in _db(rows=_ROWS).execute(query).rows)
        assert actual == expected

    def test_tie_resolution_is_input_order_stable(self):
        # memdb's tie resolution is the stable input order: after the single
        # k=0 row, the k=1 rows appear in insertion order (ids 1, 4, ...).
        result = _db(rows=_ROWS).execute("SELECT id FROM t ORDER BY k LIMIT 3").rows
        assert [row[0] for row in result] == [9, 1, 4]

    def test_desc_with_offset_matches_sqlite(self):
        query = "SELECT id, k, v FROM t ORDER BY v DESC, id LIMIT 3 OFFSET 1"
        expected = _sqlite(_ROWS).execute(query).fetchall()
        assert _db(rows=_ROWS).execute(query).rows == expected


class TestTopKIndicesUnit:
    def _keys(self, *columns):
        return [np.asarray(column, dtype=np.float64) for column in columns]

    def test_matches_full_lexsort_prefix(self):
        rng = np.random.default_rng(7)
        secondary = rng.integers(0, 5, size=500).astype(np.float64)
        primary = rng.integers(0, 20, size=500).astype(np.float64)
        keys = [secondary, primary]
        for k in (0, 1, 7, 100, 499, 500, 600):
            expected = np.lexsort(keys)[:k]
            assert np.array_equal(top_k_indices(keys, k), expected)

    def test_nan_cutoff_degrades_to_full_sort(self):
        primary = np.asarray([np.nan, 1.0, np.nan, 0.0])
        keys = [primary]
        for k in (1, 2, 3, 4):
            assert np.array_equal(top_k_indices(keys, k), np.lexsort(keys)[:k])

    def test_heavily_tied_primary_key(self):
        primary = np.zeros(64)
        secondary = np.arange(64, dtype=np.float64)[::-1]
        keys = [secondary, primary]
        assert np.array_equal(top_k_indices(keys, 5), np.lexsort(keys)[:5])

    def test_string_keys(self):
        primary = np.asarray(["b", "a", "c", "a", "b"], dtype=str)
        keys = [primary]
        assert np.array_equal(top_k_indices(keys, 3), np.lexsort(keys)[:3])


class TestTopKDecision:
    def test_large_input_small_k_chooses_topk(self):
        model = CostModel({}, None)
        select = parse_one("SELECT t.a FROM t ORDER BY t.a LIMIT 5")
        decision = model.topk_decision(select)
        assert decision is not None and decision.use_topk  # default 1000-row estimate

    def test_no_limit_means_no_decision(self):
        model = CostModel({}, None)
        assert model.topk_decision(parse_one("SELECT t.a FROM t ORDER BY t.a")) is None

    def test_negative_limit_means_no_decision(self):
        model = CostModel({}, None)
        assert model.topk_decision(parse_one("SELECT t.a FROM t ORDER BY t.a LIMIT -1")) is None

    def test_disabled_model_never_chooses_topk(self):
        model = CostModel({}, None, enable_topk=False)
        decision = model.topk_decision(parse_one("SELECT t.a FROM t ORDER BY t.a LIMIT 5"))
        assert decision is not None and not decision.use_topk

    def test_offset_extends_k(self):
        model = CostModel({}, None)
        decision = model.topk_decision(
            parse_one("SELECT t.a FROM t ORDER BY t.a LIMIT 5 OFFSET 7")
        )
        assert decision.k == 12

    def test_explain_reports_topk(self):
        db = _db(rows=_ROWS * 30)
        plan = "\n".join(
            row[0] for row in db.execute("EXPLAIN SELECT id FROM t ORDER BY k LIMIT 3").rows
        )
        assert "top-k (k=3)" in plan

    def test_explain_reports_sort_when_disabled(self):
        db = _db(enable_topk=False, rows=_ROWS * 30)
        plan = "\n".join(
            row[0] for row in db.execute("EXPLAIN SELECT id FROM t ORDER BY k LIMIT 3").rows
        )
        assert "sort+limit" in plan


class TestLimitLiteralValidation:
    def test_non_integral_limit_rejected_like_sqlite(self):
        from repro.errors import SQLParseError

        db = _db(rows=_ROWS)
        with pytest.raises(SQLParseError, match="datatype mismatch"):
            db.execute("SELECT id FROM t ORDER BY k LIMIT 2.5")
        with pytest.raises(SQLParseError, match="datatype mismatch"):
            db.execute("SELECT id FROM t ORDER BY k LIMIT 2 OFFSET 1.5")

    def test_integral_float_limit_accepted_like_sqlite(self):
        db = _db(rows=_ROWS)
        result = db.execute("SELECT id FROM t ORDER BY k, v, id LIMIT 2.0")
        assert len(result.rows) == 2


# ---------------------------------------------------------------------------
# DESC text keys via the reverse-collation partition key (PR 5)
# ---------------------------------------------------------------------------


_TEXT_ROWS = [
    "a", "ab", "", "b", "a", "Z", "zz", "ab", "abc", "z",
    "A", "aB", " ", "a ", "é", "e", "0", "00", "~", "ß",
]


def _text_db(enable_topk=True):
    db = MemDatabase(plan_cache=PlanCache(maxsize=8), enable_topk=enable_topk)
    db.execute("CREATE TABLE s (id BIGINT NOT NULL, name TEXT NOT NULL)")
    values = ", ".join(f"({i}, '{text}')" for i, text in enumerate(_TEXT_ROWS))
    db.execute(f"INSERT INTO s (id, name) VALUES {values}")
    return db


def _text_sqlite():
    connection = sqlite3.connect(":memory:")
    connection.execute("CREATE TABLE s (id INTEGER, name TEXT)")
    connection.executemany("INSERT INTO s VALUES (?, ?)", list(enumerate(_TEXT_ROWS)))
    return connection


class TestDescTextOrdering:
    """ORDER BY <text> DESC matches SQLite (byte-wise collation) exactly.

    The audit covers the reverse-collation edge cases: empty strings,
    proper prefixes ("a" vs "ab" vs "abc"), case (byte order, not locale),
    spaces, non-ASCII code points (UTF-8 byte order equals code-point
    order), and ties resolved by a secondary key.
    """

    @pytest.mark.parametrize(
        "tail",
        [
            "ORDER BY s.name DESC, s.id ASC",
            "ORDER BY s.name DESC, s.id DESC",
            "ORDER BY s.name DESC, s.id ASC LIMIT 5",
            "ORDER BY s.name DESC, s.id ASC LIMIT 7 OFFSET 3",
            "ORDER BY s.name DESC, s.id DESC LIMIT 4 OFFSET 11",
            "ORDER BY s.name ASC, s.id ASC LIMIT 6",
            "ORDER BY s.id % 3 ASC, s.name DESC, s.id ASC",
        ],
    )
    def test_matches_sqlite(self, tail):
        db = _text_db()
        connection = _text_sqlite()
        sql = f"SELECT s.id AS id, s.name AS name FROM s {tail}"
        expected = connection.execute(f"SELECT s.id, s.name FROM s {tail}").fetchall()
        assert db.execute(sql).rows == expected

    def test_topk_identical_to_sort_then_slice(self):
        sql = "SELECT s.id AS id, s.name AS name FROM s ORDER BY s.name DESC, s.id ASC LIMIT 6"
        assert _text_db(enable_topk=True).execute(sql).rows == _text_db(
            enable_topk=False
        ).execute(sql).rows

    def test_topk_decision_applies_to_desc_text(self):
        db = MemDatabase(plan_cache=PlanCache(maxsize=8))
        db.execute("CREATE TABLE s (id BIGINT NOT NULL, name TEXT NOT NULL)")
        rows = ", ".join(f"({i}, 'n{i % 97:02d}')" for i in range(4000))
        db.execute(f"INSERT INTO s (id, name) VALUES {rows}")
        plan = "\n".join(
            row[0]
            for row in db.execute(
                "EXPLAIN SELECT s.id AS id, s.name AS name FROM s "
                "ORDER BY s.name DESC, s.id ASC LIMIT 5"
            ).rows
        )
        assert "top-k (k=5)" in plan
        # And the operator's rows match SQLite on the large tied input.
        connection = sqlite3.connect(":memory:")
        connection.execute("CREATE TABLE s (id INTEGER, name TEXT)")
        connection.executemany(
            "INSERT INTO s VALUES (?, ?)", [(i, f"n{i % 97:02d}") for i in range(4000)]
        )
        expected = connection.execute(
            "SELECT s.id, s.name FROM s ORDER BY s.name DESC, s.id ASC LIMIT 5"
        ).fetchall()
        actual = db.execute(
            "SELECT s.id AS id, s.name AS name FROM s ORDER BY s.name DESC, s.id ASC LIMIT 5"
        ).rows
        assert actual == expected

    def test_reverse_collation_is_injective_at_the_top_of_the_code_space(self):
        # U+10FFFE and U+10FFFF must stay distinct under the flip — a clamp
        # there would collapse them and diverge from SQLite's byte order.
        from repro.backends.memdb.executor import _reverse_collation

        values = np.array(["\U0010FFFE", "\U0010FFFF", "a"], dtype=object)
        keys = _reverse_collation(values.astype(str))
        order = np.argsort(keys, kind="stable")
        # Ascending transformed order == descending original order.
        assert [values[i] for i in order] == ["\U0010FFFF", "\U0010FFFE", "a"]

    def test_desc_text_ties_keep_stable_input_order(self):
        db = MemDatabase(plan_cache=PlanCache(maxsize=8))
        db.execute("CREATE TABLE s (id BIGINT NOT NULL, name TEXT NOT NULL)")
        db.execute(
            "INSERT INTO s (id, name) VALUES (0, 'x'), (1, 'x'), (2, 'y'), (3, 'x'), (4, 'y')"
        )
        rows = db.execute("SELECT s.id AS id FROM s ORDER BY s.name DESC LIMIT 4").rows
        # 'y' ties first (input order 2, 4), then 'x' ties (0, 1).
        assert [row[0] for row in rows] == [2, 4, 0, 1]
