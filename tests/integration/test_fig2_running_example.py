"""E1: pin the paper's Fig. 2 running example exactly.

Fig. 2 shows the 3-qubit GHZ circuit, the relational tables of the initial
state, the H and CX gates, the three generated queries q1-q3 and the
intermediate/final state tables T1-T3.  These tests assert the reproduction
produces exactly those tables and that the generated SQL uses exactly the
bitwise expressions printed in the figure, on both RDBMS backends.
"""

import math

import pytest

from repro.backends import MemDBBackend, SQLiteBackend
from repro.circuits import ghz_circuit
from repro.sql import translate_circuit
from repro.sql.gate_tables import GateTableRegistry
from repro.core import standard_gate

_SQRT2 = 1 / math.sqrt(2)


class TestFig2Tables:
    def test_t0_initial_state_table(self):
        translation = translate_circuit(ghz_circuit(3))
        assert translation.initial_rows == [(0, 1.0, 0.0)]

    def test_h_gate_table(self):
        rows = GateTableRegistry().register(standard_gate("h")).rows
        expected = [
            (0, 0, pytest.approx(_SQRT2), 0.0),
            (0, 1, pytest.approx(_SQRT2), 0.0),
            (1, 0, pytest.approx(_SQRT2), 0.0),
            (1, 1, pytest.approx(-_SQRT2), 0.0),
        ]
        assert [(a, b, pytest.approx(c), d) for a, b, c, d in rows] == expected

    def test_cx_gate_table_matches_figure(self):
        # Fig. 2b: (in_s, out_s, r) = (0,0,1.0), (1,3,1.0), (2,2,1.0), (3,1,1.0).
        rows = GateTableRegistry().register(standard_gate("cx")).rows
        assert rows == [(0, 0, 1.0, 0.0), (1, 3, 1.0, 0.0), (2, 2, 1.0, 0.0), (3, 1, 1.0, 0.0)]


class TestFig2SQLText:
    def test_query_q1_h_gate(self):
        sql = translate_circuit(ghz_circuit(3)).steps[0].select_sql(pretty=False)
        assert "((T0.s & ~1) | H.out_s) AS s" in sql
        assert "SUM((T0.r * H.r) - (T0.i * H.i)) AS r" in sql
        assert "SUM((T0.r * H.i) + (T0.i * H.r)) AS i" in sql
        assert "JOIN H ON H.in_s = (T0.s & 1)" in sql
        assert "GROUP BY ((T0.s & ~1) | H.out_s)" in sql

    def test_query_q2_first_cx(self):
        sql = translate_circuit(ghz_circuit(3)).steps[1].select_sql(pretty=False)
        assert "((T1.s & ~3) | CX.out_s) AS s" in sql
        assert "ON CX.in_s = (T1.s & 3)" in sql

    def test_query_q3_second_cx(self):
        sql = translate_circuit(ghz_circuit(3)).steps[2].select_sql(pretty=False)
        assert "((T2.s & ~6) | (CX.out_s << 1)) AS s" in sql
        assert "ON CX.in_s = ((T2.s >> 1) & 3)" in sql

    def test_final_select_ordering(self):
        assert translate_circuit(ghz_circuit(3)).cte_query().strip().endswith(
            "SELECT s, r, i FROM T3 ORDER BY s"
        )


class TestFig2Execution:
    @pytest.mark.parametrize("backend_factory", [SQLiteBackend, MemDBBackend])
    def test_intermediate_states_match_figure(self, backend_factory):
        """T1 = {0, 1}, T2 = {0, 3}, T3 = {0, 7}, amplitudes 1/sqrt(2)."""
        backend = backend_factory(mode="materialized", keep_intermediate=True)
        translation = backend.translate(ghz_circuit(3))
        backend._connect()
        try:
            for statement in translation.setup_statements():
                backend._execute(statement)
            for item in translation.materialized_statements(keep_intermediate=True):
                backend._execute(item["sql"])
            t1 = backend._fetch("SELECT s, r, i FROM T1 ORDER BY s")
            t2 = backend._fetch("SELECT s, r, i FROM T2 ORDER BY s")
            t3 = backend._fetch("SELECT s, r, i FROM T3 ORDER BY s")
        finally:
            backend._disconnect()

        assert [(s, pytest.approx(r), i) for s, r, i in t1] == [
            (0, pytest.approx(_SQRT2), 0.0),
            (1, pytest.approx(_SQRT2), 0.0),
        ]
        assert [row[0] for row in t2] == [0, 3]
        assert [row[0] for row in t3] == [0, 7]
        for _s, r, _i in t3:
            assert r == pytest.approx(_SQRT2)

    @pytest.mark.parametrize("backend_factory", [SQLiteBackend, MemDBBackend])
    def test_final_output_state(self, backend_factory):
        result = backend_factory().run(ghz_circuit(3))
        assert result.state.to_rows() == [
            (0, pytest.approx(_SQRT2), 0.0),
            (7, pytest.approx(_SQRT2), 0.0),
        ]
