"""Integration tests for the paper's three demonstration scenarios (E5-E7).

Scenario 1 — Quantum Algorithm Design and Testing (parity check).
Scenario 2 — Simulation Method Benchmarking (GHZ + equal superposition).
Scenario 3 — Educational Exploration (GHZ evolution, entanglement, measurement).
"""

import pytest

from repro.bench import BenchmarkRunner
from repro.backends import MemDBBackend, SQLiteBackend
from repro.circuits import (
    expected_parity,
    ghz_circuit,
    parity_check_circuit,
    superposition_circuit,
)
from repro.output import entanglement_entropy, sample_counts, shannon_entropy
from repro.service import QymeraSession
from repro.simulators import SparseSimulator, StatevectorSimulator


class TestScenario1ParityCheck:
    """Construct the parity-check algorithm, run it through SQL, inspect and compare."""

    @pytest.mark.parametrize("bits", ["101", "0110", "11111"])
    def test_sql_execution_matches_classical_parity(self, bits):
        circuit = parity_check_circuit(bits, measure=False)
        for backend in (SQLiteBackend(), MemDBBackend()):
            state = backend.run(circuit).state
            assert state.num_nonzero == 1
            index = next(iter(state))
            ancilla_bit = (index >> (len(bits))) & 1
            assert ancilla_bit == expected_parity(bits)

    def test_intermediate_states_are_inspectable(self):
        backend = SQLiteBackend(mode="materialized", keep_intermediate=True)
        result = backend.run(parity_check_circuit("101", measure=False))
        # One relational row per step: parity circuits never branch.
        assert all(rows == 1 for rows in result.metadata["step_rows"])

    def test_comparison_with_statevector(self):
        circuit = parity_check_circuit("1011", measure=False)
        sql_result = SQLiteBackend().run(circuit)
        sv_result = StatevectorSimulator().run(circuit)
        assert sql_result.state.equiv(sv_result.state, up_to_global_phase=False)
        # The RDBMS stores 1 row; the dense vector stores 2^n amplitudes.
        assert sql_result.peak_state_rows == 1
        assert sv_result.peak_state_rows == 2 ** circuit.num_qubits


class TestScenario2MethodBenchmarking:
    """Benchmark GHZ and equal superposition across all simulation approaches."""

    def test_all_methods_agree_on_both_workloads(self):
        runner = BenchmarkRunner()
        records = runner.run_suite(["ghz", "superposition"], sizes=[4])
        assert all(record.status == "ok" for record in records)
        assert all(record.extra.get("matches_reference", True) for record in records)

    def test_sparse_workload_favours_relational_row_counts(self):
        sql_rows = SQLiteBackend(mode="materialized").run(ghz_circuit(10)).peak_state_rows
        dense_rows = StatevectorSimulator().run(ghz_circuit(10)).peak_state_rows
        assert sql_rows == 2
        assert dense_rows == 1024

    def test_dense_workload_fills_relational_table(self):
        result = SQLiteBackend(mode="materialized").run(superposition_circuit(6))
        assert result.peak_state_rows == 64


class TestScenario3Education:
    """GHZ as a case study: superposition, entanglement, measurement outcomes."""

    def test_state_evolution_step_by_step(self):
        session = QymeraSession()
        session.circuits.add_circuit(ghz_circuit(3), "ghz")
        backend = SQLiteBackend(mode="materialized", keep_intermediate=True)
        result = backend.run(session.circuits.get("ghz"))
        # |psi0> has 1 row; H creates the superposition (2 rows); CX gates keep 2 rows.
        assert result.metadata["step_rows"] == [2, 2, 2]

    def test_entanglement_and_superposition_metrics(self):
        state = StatevectorSimulator().run(ghz_circuit(3)).state
        assert entanglement_entropy(state, [0]) == pytest.approx(1.0)
        assert shannon_entropy(state.probabilities()) == pytest.approx(1.0)

    def test_measurement_outcomes_are_correlated(self):
        state = SparseSimulator().run(ghz_circuit(3)).state
        counts = sample_counts(state, shots=2000, seed=11)
        assert set(counts) == {"000", "111"}
        assert abs(counts["000"] - counts["111"]) < 2000 * 0.2

    def test_bloch_views_through_session(self):
        session = QymeraSession()
        session.circuits.add_circuit(ghz_circuit(3), "ghz")
        session.simulations.run("ghz", "memdb")
        description = session.output.bloch_view("ghz", "memdb", 1)
        assert "mixed" in description  # a GHZ qubit alone is maximally mixed
