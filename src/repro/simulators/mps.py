"""Matrix-product-state (tensor network) simulator.

One of the "state-of-the-art simulation methods" the paper benchmarks
against (its MPS backend).  The state is a chain of rank-3 tensors, one per
qubit; two-qubit gates are applied to adjacent sites and the bond is
re-truncated with an SVD.  Memory scales with the entanglement across cuts
(bond dimension), not with 2^n, so weakly-entangled circuits stay cheap while
volume-law circuits blow up — a qualitatively different trade-off from both
the dense state vector and the relational representation.

Gates on three or more qubits are first rewritten with the exact
decompositions of :mod:`repro.core.decompose`; non-adjacent two-qubit gates
are routed with SWAPs that are undone afterwards, so site ``k`` always holds
qubit ``k``.
"""

from __future__ import annotations

import numpy as np

from ..core.circuit import QuantumCircuit
from ..core.decompose import two_qubit_basis_circuit
from ..core.instruction import Instruction
from ..errors import SimulationError
from ..output.result import SparseState
from .base import BaseSimulator, EvolutionStats, Executable

#: SWAP matrix in the local convention (bit 0 = first qubit argument).
_SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=np.complex128
)


class MPSSimulator(BaseSimulator):
    """Matrix-product-state simulation with configurable bond truncation.

    Parameters
    ----------
    max_bond_dimension:
        Hard cap on the bond dimension (chi); exceeding entanglement is
        truncated, introducing approximation error that is tracked in the
        result metadata.
    truncation_threshold:
        Singular values below this (relative to the largest) are discarded.
    max_extract_qubits:
        Safety limit for converting the final MPS into an explicit sparse
        state (the extraction is exponential in the qubit count).
    """

    name = "mps"

    def __init__(
        self,
        max_bond_dimension: int = 64,
        truncation_threshold: float = 1e-12,
        max_state_bytes: int | None = None,
        prune_atol: float = 1e-12,
        max_extract_qubits: int = 22,
    ) -> None:
        super().__init__(max_state_bytes=max_state_bytes, prune_atol=prune_atol)
        if max_bond_dimension < 1:
            raise SimulationError("max_bond_dimension must be positive")
        self.max_bond_dimension = int(max_bond_dimension)
        self.truncation_threshold = float(truncation_threshold)
        self.max_extract_qubits = int(max_extract_qubits)

    # ---------------------------------------------------------------- evolve

    def _compile(self, circuit: QuantumCircuit) -> dict:
        """Contraction prep: decompose into the two-qubit basis once.

        The decomposition rewrites 3+-qubit gates into 1- and 2-qubit gates
        and needs concrete matrices, so it only runs for fully bound
        templates; parameterized families decompose per bind (their gate
        matrices change at every point anyway).
        """
        if circuit.is_parameterized:
            return {}
        return {"working": two_qubit_basis_circuit(circuit)}

    def _evolve_compiled(
        self,
        executable: Executable,
        circuit: QuantumCircuit,
        initial_state: SparseState | None,
        stats: EvolutionStats,
    ) -> SparseState:
        working = None
        if circuit is executable.circuit:
            working = executable.artifact.get("working")
        return self._evolve_working(circuit, initial_state, stats, working)

    def _evolve(
        self,
        circuit: QuantumCircuit,
        initial_state: SparseState | None,
        stats: EvolutionStats,
    ) -> SparseState:
        return self._evolve_working(circuit, initial_state, stats, None)

    def _evolve_working(
        self,
        circuit: QuantumCircuit,
        initial_state: SparseState | None,
        stats: EvolutionStats,
        working: QuantumCircuit | None,
    ) -> SparseState:
        if initial_state is not None:
            raise SimulationError("the MPS simulator only supports the |0...0> initial state")
        num_qubits = circuit.num_qubits
        if num_qubits > self.max_extract_qubits:
            raise SimulationError(
                f"MPS extraction limited to {self.max_extract_qubits} qubits (asked for {num_qubits})"
            )
        if working is None:
            working = two_qubit_basis_circuit(circuit)

        tensors = [np.zeros((1, 2, 1), dtype=np.complex128) for _site in range(num_qubits)]
        for tensor in tensors:
            tensor[0, 0, 0] = 1.0
        truncation_error = 0.0

        for instruction in working.instructions:
            if not instruction.is_gate or instruction.gate is None:
                if instruction.kind in ("barrier",) or instruction.is_measurement:
                    continue
                raise SimulationError(f"MPS simulator does not support {instruction.kind!r} instructions")
            truncation_error += self._apply_instruction(tensors, instruction)
            size_bytes = sum(tensor.nbytes for tensor in tensors)
            max_bond = max(tensor.shape[2] for tensor in tensors)
            stats.observe(max_bond, size_bytes)
            self._check_budget(size_bytes, f"after {instruction.name}")

        stats.extras["max_bond_dimension"] = int(max(tensor.shape[2] for tensor in tensors))
        stats.extras["truncation_error"] = float(truncation_error)
        return self._extract_state(tensors, num_qubits)

    # ----------------------------------------------------------- gate applies

    def _apply_instruction(self, tensors: list[np.ndarray], instruction: Instruction) -> float:
        gate = instruction.gate
        assert gate is not None
        qubits = instruction.qubits
        matrix = gate.matrix()
        if len(qubits) == 1:
            self._apply_single(tensors, matrix, qubits[0])
            return 0.0
        if len(qubits) == 2:
            return self._apply_two(tensors, matrix, qubits[0], qubits[1])
        raise SimulationError(
            f"gate {gate.name!r} on {len(qubits)} qubits survived decomposition (internal error)"
        )

    @staticmethod
    def _apply_single(tensors: list[np.ndarray], matrix: np.ndarray, site: int) -> None:
        tensors[site] = np.einsum("Pp,lpr->lPr", matrix, tensors[site])

    def _apply_two(self, tensors: list[np.ndarray], matrix: np.ndarray, first: int, second: int) -> float:
        """Apply a two-qubit gate; returns the truncation error introduced."""
        error = 0.0
        # Route the first qubit next to the second with SWAPs (undone after).
        moves: list[int] = []
        position = first
        while abs(position - second) > 1:
            step = 1 if second > position else -1
            left = min(position, position + step)
            error += self._apply_adjacent(tensors, _SWAP, left)
            moves.append(left)
            position += step

        left_site = min(position, second)
        if position < second:
            local = matrix
        else:
            # The first gate argument sits on the right-hand site: permute the
            # matrix so local bit 0 is the left site.
            permutation = [0, 2, 1, 3]
            local = matrix[np.ix_(permutation, permutation)]
        error += self._apply_adjacent(tensors, local, left_site)

        for left in reversed(moves):
            error += self._apply_adjacent(tensors, _SWAP, left)
        return error

    def _apply_adjacent(self, tensors: list[np.ndarray], matrix: np.ndarray, left: int) -> float:
        """Apply a two-site gate to sites (left, left+1) with an SVD re-split."""
        left_tensor = tensors[left]
        right_tensor = tensors[left + 1]
        bond_left = left_tensor.shape[0]
        bond_right = right_tensor.shape[2]

        theta = np.einsum("lpr,rqs->lpqs", left_tensor, right_tensor)
        # matrix[out, in] with out = p_out + 2*q_out (p = left site). Reshape so
        # indices are [q_out, p_out, q_in, p_in].
        gate4 = matrix.reshape(2, 2, 2, 2)
        theta = np.einsum("QPqp,lpqs->lPQs", gate4, theta)

        merged = theta.reshape(bond_left * 2, 2 * bond_right)
        u, singular, vh = np.linalg.svd(merged, full_matrices=False)
        if singular.size == 0:
            raise SimulationError("SVD produced an empty spectrum (zero state)")
        cutoff = singular[0] * self.truncation_threshold
        keep = max(1, int(np.sum(singular > cutoff)))
        keep = min(keep, self.max_bond_dimension)
        discarded = float(np.sum(singular[keep:] ** 2))

        u = u[:, :keep]
        singular = singular[:keep]
        vh = vh[:keep, :]
        tensors[left] = u.reshape(bond_left, 2, keep)
        tensors[left + 1] = (singular[:, None] * vh).reshape(keep, 2, bond_right)
        return discarded

    # ------------------------------------------------------------ extraction

    def _extract_state(self, tensors: list[np.ndarray], num_qubits: int) -> SparseState:
        """Contract the chain into an explicit state (qubit 0 = least-significant bit)."""
        current = tensors[0].reshape(2, tensors[0].shape[2])  # (states so far, bond)
        for site in range(1, num_qubits):
            combined = np.einsum("xb,bpr->xpr", current, tensors[site])
            # Flat index must place qubit `site` above all previous qubits.
            combined = np.transpose(combined, (1, 0, 2))
            current = combined.reshape(combined.shape[0] * combined.shape[1], combined.shape[2])
        vector = current[:, 0]
        return SparseState.from_dense(vector, atol=self.prune_atol)

    def bond_profile(self, circuit: QuantumCircuit) -> list[int]:
        """Run the circuit and report the final bond dimension at every cut."""
        result = self.run(circuit)
        # The profile is recorded indirectly; rerun cheaply for the caller.
        del result
        working = two_qubit_basis_circuit(circuit)
        tensors = [np.zeros((1, 2, 1), dtype=np.complex128) for _site in range(circuit.num_qubits)]
        for tensor in tensors:
            tensor[0, 0, 0] = 1.0
        for instruction in working.instructions:
            if instruction.is_gate and instruction.gate is not None:
                self._apply_instruction(tensors, instruction)
        return [int(tensor.shape[2]) for tensor in tensors[:-1]]
