"""Baseline simulation methods (the non-SQL half of the Simulation Layer)."""

from .base import BaseSimulator, EvolutionStats
from .dd import DecisionDiagramSimulator
from .mps import MPSSimulator
from .sparse import SparseSimulator, apply_gate_to_mapping
from .statevector import StatevectorSimulator, apply_gate_to_vector

__all__ = [
    "BaseSimulator",
    "EvolutionStats",
    "DecisionDiagramSimulator",
    "MPSSimulator",
    "SparseSimulator",
    "apply_gate_to_mapping",
    "StatevectorSimulator",
    "apply_gate_to_vector",
]


def available_simulators() -> dict[str, type]:
    """Mapping of simulator name to class for the non-SQL methods."""
    return {
        "statevector": StatevectorSimulator,
        "sparse": SparseSimulator,
        "mps": MPSSimulator,
        "dd": DecisionDiagramSimulator,
    }
