"""Baseline simulation methods (the non-SQL half of the Simulation Layer)."""

from .base import BaseSimulator, BoundExecutable, EvolutionStats, Executable
from .dd import DecisionDiagramSimulator
from .mps import MPSSimulator
from .sparse import SparseSimulator, apply_gate_to_mapping, build_transitions
from .statevector import StatevectorSimulator, apply_gate_to_vector, gate_scatter

__all__ = [
    "BaseSimulator",
    "BoundExecutable",
    "EvolutionStats",
    "Executable",
    "build_transitions",
    "gate_scatter",
    "DecisionDiagramSimulator",
    "MPSSimulator",
    "SparseSimulator",
    "apply_gate_to_mapping",
    "StatevectorSimulator",
    "apply_gate_to_vector",
]


def available_simulators() -> dict[str, type]:
    """Mapping of simulator name to class for the non-SQL methods."""
    return {
        "statevector": StatevectorSimulator,
        "sparse": SparseSimulator,
        "mps": MPSSimulator,
        "dd": DecisionDiagramSimulator,
    }
