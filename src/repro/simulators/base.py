"""Common interface for all simulation methods.

Every simulation method in the paper's Simulation Layer — the RDBMS backends
as well as the state-vector, sparse, MPS and decision-diagram baselines —
implements the same contract: take a :class:`QuantumCircuit`, return a
:class:`SimulationResult`.  :class:`BaseSimulator` provides the shared
timing, bookkeeping, measurement handling and budget enforcement so concrete
simulators only implement :meth:`_evolve`.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod

from ..core.circuit import QuantumCircuit
from ..errors import ResourceLimitExceeded, SimulationError
from ..output.result import SimulationResult, SparseState


class EvolutionStats:
    """Mutable statistics a simulator records while evolving a state."""

    __slots__ = ("peak_rows", "peak_bytes", "extras")

    def __init__(self) -> None:
        self.peak_rows = 0
        self.peak_bytes = 0
        self.extras: dict = {}

    def observe(self, rows: int, bytes_estimate: int | None = None) -> None:
        """Record the size of an intermediate representation."""
        self.peak_rows = max(self.peak_rows, int(rows))
        if bytes_estimate is None:
            bytes_estimate = 24 * int(rows)
        self.peak_bytes = max(self.peak_bytes, int(bytes_estimate))


class BaseSimulator(ABC):
    """Abstract simulator.

    Parameters
    ----------
    max_state_bytes:
        Optional budget on the size of the simulator's state representation.
        When an intermediate state exceeds it, :class:`ResourceLimitExceeded`
        is raised — this is the knob the capacity experiments (E3/E9) sweep.
    prune_atol:
        Amplitudes whose magnitude falls at or below this are dropped from
        sparse representations (mirrors "only nonzero basis states are
        stored").
    """

    #: Short identifier reported in results ("statevector", "sqlite", ...).
    name: str = "base"

    def __init__(self, max_state_bytes: int | None = None, prune_atol: float = 1e-12) -> None:
        if max_state_bytes is not None and max_state_bytes <= 0:
            raise SimulationError("max_state_bytes must be positive when given")
        self.max_state_bytes = max_state_bytes
        self.prune_atol = float(prune_atol)

    # ------------------------------------------------------------------ API

    def run(self, circuit: QuantumCircuit, initial_state: SparseState | None = None) -> SimulationResult:
        """Simulate ``circuit`` and return the final state plus metadata.

        Measurement instructions are ignored for state evolution (the final
        state returned is the pre-measurement state; use
        :mod:`repro.output.sampling` to draw shots from it); they are listed
        in the result metadata.  Parameterized circuits must be bound first.
        """
        if circuit.is_parameterized:
            names = sorted(parameter.name for parameter in circuit.parameters)
            raise SimulationError(f"circuit has unbound parameters {names}; bind them before simulating")
        if initial_state is not None and initial_state.num_qubits != circuit.num_qubits:
            raise SimulationError(
                f"initial state has {initial_state.num_qubits} qubits, circuit has {circuit.num_qubits}"
            )
        stats = EvolutionStats()
        started = time.perf_counter()
        state = self._evolve(circuit, initial_state, stats)
        elapsed = time.perf_counter() - started
        metadata = {"measured_qubits": circuit.measured_qubits()}
        metadata.update(stats.extras)
        return SimulationResult(
            state=state.pruned(self.prune_atol),
            method=self.name,
            circuit_name=circuit.name,
            num_qubits=circuit.num_qubits,
            num_gates=circuit.size(),
            wall_time_s=elapsed,
            peak_state_rows=stats.peak_rows,
            peak_state_bytes=stats.peak_bytes,
            metadata=metadata,
        )

    def _check_budget(self, bytes_estimate: int, context: str = "") -> None:
        """Raise :class:`ResourceLimitExceeded` when the byte budget is exceeded."""
        if self.max_state_bytes is not None and bytes_estimate > self.max_state_bytes:
            raise ResourceLimitExceeded(
                f"{self.name}: state requires {bytes_estimate} bytes, budget is {self.max_state_bytes}"
                + (f" ({context})" if context else "")
            )

    # ----------------------------------------------------------- to override

    @abstractmethod
    def _evolve(
        self,
        circuit: QuantumCircuit,
        initial_state: SparseState | None,
        stats: EvolutionStats,
    ) -> SparseState:
        """Evolve |0...0> (or ``initial_state``) through the circuit's gates."""

    def __repr__(self) -> str:
        budget = f", max_state_bytes={self.max_state_bytes}" if self.max_state_bytes else ""
        return f"{type(self).__name__}(name={self.name!r}{budget})"
