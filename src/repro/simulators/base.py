"""Common interface for all simulation methods.

Every simulation method in the paper's Simulation Layer — the RDBMS backends
as well as the state-vector, sparse, MPS and decision-diagram baselines —
implements the same contract, organized as a three-stage lifecycle modelled
on prepared statements:

* :meth:`BaseSimulator.compile` turns a :class:`QuantumCircuit` (possibly
  still parameterized) into a reusable :class:`Executable` — translation,
  gate-matrix preparation and backend plan compilation happen here, once;
* :meth:`Executable.bind` substitutes parameter values and yields a
  :class:`BoundExecutable` for one concrete circuit instance;
* :meth:`BoundExecutable.execute` (or :meth:`Executable.execute_batch` for a
  whole parameter grid) runs the bound instance and returns a
  :class:`SimulationResult`.

:meth:`BaseSimulator.run` is the back-compat wrapper — it is exactly
``compile(circuit).bind().execute()``.  :class:`BaseSimulator` provides the
shared timing, bookkeeping, measurement handling and budget enforcement so
concrete simulators only implement :meth:`_evolve` (and optionally
:meth:`_compile` / :meth:`_evolve_compiled` to exploit compiled artifacts).
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Iterable, Mapping

from ..core.circuit import QuantumCircuit
from ..errors import ResourceLimitExceeded, SimulationError
from ..obs.tracing import maybe_span
from ..output.result import SimulationResult, SparseState


class EvolutionStats:
    """Mutable statistics a simulator records while evolving a state."""

    __slots__ = ("peak_rows", "peak_bytes", "extras")

    def __init__(self) -> None:
        self.peak_rows = 0
        self.peak_bytes = 0
        self.extras: dict = {}

    def observe(self, rows: int, bytes_estimate: int | None = None) -> None:
        """Record the size of an intermediate representation."""
        self.peak_rows = max(self.peak_rows, int(rows))
        if bytes_estimate is None:
            bytes_estimate = 24 * int(rows)
        self.peak_bytes = max(self.peak_bytes, int(bytes_estimate))


class Executable:
    """A compiled circuit bound to one simulation method instance.

    Holds the circuit template (which may still carry free parameters), the
    method that compiled it, and the method-specific compiled artifact —
    precomputed gate matrices and scatter indices for the in-memory
    simulators, the cached SQL translation and prepared engine plans for the
    relational backends.  An Executable is reusable: binding it many times
    (a parameter sweep, repeated service requests) re-uses the compile-time
    work by construction instead of relying on implicit method pooling.
    """

    __slots__ = ("_method", "_circuit", "_artifact", "_executions", "_provenance", "_compile_time_s")

    def __init__(
        self,
        method: "BaseSimulator",
        circuit: QuantumCircuit,
        artifact: dict | None = None,
        compile_time_s: float = 0.0,
    ) -> None:
        self._method = method
        self._circuit = circuit
        self._artifact = dict(artifact) if artifact else {}
        self._executions = 0
        self._compile_time_s = float(compile_time_s)
        self._provenance: dict = {"method": method.name, "compile_time_s": self._compile_time_s}
        compile_info = self._artifact.pop("provenance", None)
        if compile_info:
            self._provenance.update(compile_info)

    # ------------------------------------------------------------ properties

    @property
    def method(self) -> "BaseSimulator":
        """The simulator/backend instance this executable runs on."""
        return self._method

    @property
    def circuit(self) -> QuantumCircuit:
        """The circuit template this executable was compiled from."""
        return self._circuit

    @property
    def artifact(self) -> dict:
        """The method-specific compiled artifact (opaque to callers)."""
        return self._artifact

    @property
    def parameter_names(self) -> list[str]:
        """Names of the template's free parameters (empty when fully bound)."""
        return sorted(parameter.name for parameter in self._circuit.parameters)

    @property
    def is_parameterized(self) -> bool:
        """True when :meth:`bind` needs parameter values."""
        return self._circuit.is_parameterized

    @property
    def executions(self) -> int:
        """How many times this executable has been executed."""
        return self._executions

    @property
    def compile_time_s(self) -> float:
        """Wall time the compile stage took (amortized across every execution).

        Execution results time only the execute stage in ``wall_time_s``
        (that is the point of the lifecycle); this value — also recorded in
        each result's ``metadata["compile_time_s"]`` — keeps end-to-end
        accounting possible for benchmarks comparing one-shot runs.
        """
        return self._compile_time_s

    @property
    def provenance(self) -> dict:
        """Compile- and execution-time provenance (plan-cache state, translation summary)."""
        return dict(self._provenance)

    # ------------------------------------------------------------- lifecycle

    def bind(self, values: Mapping[str, float] | None = None, **kwargs: float) -> "BoundExecutable":
        """Substitute parameter values, yielding a fully bound executable.

        ``values`` maps parameter names to floats; ``kwargs`` are merged on
        top for parameters whose names are valid identifiers.  Every free
        parameter of the template must be covered (partial bindings raise,
        matching the prepared-statement contract), and unknown names raise
        :class:`~repro.errors.ParameterError`.
        """
        point: dict[str, float] = dict(values) if values else {}
        point.update(kwargs)
        if self._circuit.is_parameterized:
            bound = self._circuit.bind_parameters(point) if point else self._circuit
            if bound.is_parameterized:
                names = sorted(parameter.name for parameter in bound.parameters)
                raise SimulationError(
                    f"circuit has unbound parameters {names}; bind them before simulating"
                )
        else:
            if point:
                # Surfaces unknown-parameter errors with the usual message.
                self._circuit.bind_parameters(point)
            bound = self._circuit
        return BoundExecutable(self, bound, point)

    def execute_batch(
        self,
        points: Iterable[Mapping[str, float]],
        initial_state: SparseState | None = None,
    ) -> list[SimulationResult]:
        """Bind and execute every parameter point, returning one result each.

        This is the first-class sweep path: the compile-time artifact (and,
        on the memdb backend, the engine's plan cache) is shared across all
        points, so throughput matches a hand-pooled method instance.
        """
        return [self.bind(point).execute(initial_state=initial_state) for point in points]

    # ------------------------------------------------------------- internals

    def _record_execution(self, provenance: Mapping[str, object] | None) -> None:
        self._executions += 1
        if provenance:
            self._provenance.setdefault("first_execution", dict(provenance))
            self._provenance["last_execution"] = dict(provenance)

    def __repr__(self) -> str:
        parameters = ", ".join(self.parameter_names) or "bound"
        return (
            f"Executable(method={self._method.name!r}, circuit={self._circuit.name!r}, "
            f"parameters=[{parameters}], executions={self._executions})"
        )


class BoundExecutable:
    """An :class:`Executable` with every parameter substituted.

    The second lifecycle stage: holds the concrete bound circuit plus the
    parameter point it came from, and executes on the parent executable's
    method instance (sharing its compiled artifact).
    """

    __slots__ = ("_executable", "_circuit", "_point")

    def __init__(self, executable: Executable, circuit: QuantumCircuit, point: Mapping[str, float]) -> None:
        self._executable = executable
        self._circuit = circuit
        self._point = dict(point)

    @property
    def executable(self) -> Executable:
        """The compiled executable this binding belongs to."""
        return self._executable

    @property
    def circuit(self) -> QuantumCircuit:
        """The fully bound circuit instance."""
        return self._circuit

    @property
    def point(self) -> dict[str, float]:
        """The parameter assignment of this binding (empty for unparameterized templates)."""
        return dict(self._point)

    def execute(self, initial_state: SparseState | None = None) -> SimulationResult:
        """Simulate the bound circuit and return the final state plus metadata."""
        return self._executable.method._execute_bound(
            self._executable, self._circuit, initial_state, self._point
        )

    def __repr__(self) -> str:
        point = ", ".join(f"{name}={value:g}" for name, value in sorted(self._point.items()))
        return f"BoundExecutable(method={self._executable.method.name!r}, point={{{point}}})"


class BaseSimulator(ABC):
    """Abstract simulator.

    Parameters
    ----------
    max_state_bytes:
        Optional budget on the size of the simulator's state representation.
        When an intermediate state exceeds it, :class:`ResourceLimitExceeded`
        is raised — this is the knob the capacity experiments (E3/E9) sweep.
    prune_atol:
        Amplitudes whose magnitude falls at or below this are dropped from
        sparse representations (mirrors "only nonzero basis states are
        stored").
    """

    #: Short identifier reported in results ("statevector", "sqlite", ...).
    name: str = "base"

    def __init__(self, max_state_bytes: int | None = None, prune_atol: float = 1e-12) -> None:
        if max_state_bytes is not None and max_state_bytes <= 0:
            raise SimulationError("max_state_bytes must be positive when given")
        self.max_state_bytes = max_state_bytes
        self.prune_atol = float(prune_atol)

    # ------------------------------------------------------------------ API

    def compile(self, circuit: QuantumCircuit) -> Executable:
        """Compile ``circuit`` into a reusable :class:`Executable`.

        The circuit may still carry free parameters: compile-time work that
        only depends on the circuit *structure* (gate scatter indices, SQL
        translation shape, engine plans) is done here and shared by every
        subsequent :meth:`Executable.bind`.
        """
        started = time.perf_counter()
        with maybe_span(
            "compile", method=self.name, circuit=circuit.name, gates=circuit.size()
        ):
            artifact = self._compile(circuit)
        return Executable(self, circuit, artifact, compile_time_s=time.perf_counter() - started)

    def run(self, circuit: QuantumCircuit, initial_state: SparseState | None = None) -> SimulationResult:
        """Simulate ``circuit`` and return the final state plus metadata.

        Back-compat wrapper over the compile–bind–execute lifecycle: exactly
        ``compile(circuit).bind().execute(initial_state=initial_state)``.
        Measurement instructions are ignored for state evolution (the final
        state returned is the pre-measurement state; use
        :mod:`repro.output.sampling` to draw shots from it); they are listed
        in the result metadata.  Parameterized circuits must be bound first.
        """
        return self.compile(circuit).bind().execute(initial_state=initial_state)

    def _execute_bound(
        self,
        executable: Executable,
        circuit: QuantumCircuit,
        initial_state: SparseState | None,
        point: Mapping[str, float],
    ) -> SimulationResult:
        """Shared execute stage: validation, timing, bookkeeping, budget."""
        if circuit.is_parameterized:
            names = sorted(parameter.name for parameter in circuit.parameters)
            raise SimulationError(f"circuit has unbound parameters {names}; bind them before simulating")
        if initial_state is not None and initial_state.num_qubits != circuit.num_qubits:
            raise SimulationError(
                f"initial state has {initial_state.num_qubits} qubits, circuit has {circuit.num_qubits}"
            )
        stats = EvolutionStats()
        started = time.perf_counter()
        with maybe_span(
            "simulate",
            method=self.name,
            circuit=circuit.name,
            qubits=circuit.num_qubits,
            execution=executable.executions + 1,
        ) as span:
            state = self._evolve_compiled(executable, circuit, initial_state, stats)
            if span is not None:
                span.set(peak_rows=stats.peak_rows)
        elapsed = time.perf_counter() - started
        metadata = {"measured_qubits": circuit.measured_qubits()}
        metadata.update(stats.extras)
        metadata["compile_time_s"] = executable.compile_time_s
        if point:
            metadata["parameter_binding"] = dict(point)
        executable._record_execution(self._execution_provenance(executable))
        return SimulationResult(
            state=state.pruned(self.prune_atol),
            method=self.name,
            circuit_name=circuit.name,
            num_qubits=circuit.num_qubits,
            num_gates=circuit.size(),
            wall_time_s=elapsed,
            peak_state_rows=stats.peak_rows,
            peak_state_bytes=stats.peak_bytes,
            metadata=metadata,
        )

    def _check_budget(self, bytes_estimate: int, context: str = "") -> None:
        """Raise :class:`ResourceLimitExceeded` when the byte budget is exceeded."""
        if self.max_state_bytes is not None and bytes_estimate > self.max_state_bytes:
            raise ResourceLimitExceeded(
                f"{self.name}: state requires {bytes_estimate} bytes, budget is {self.max_state_bytes}"
                + (f" ({context})" if context else "")
            )

    # ----------------------------------------------------------- to override

    def _compile(self, circuit: QuantumCircuit) -> dict:
        """Build the method-specific compiled artifact (default: none).

        Subclasses return a dict of precomputed state; the reserved
        ``"provenance"`` key is lifted onto :attr:`Executable.provenance`.
        """
        return {}

    def _evolve_compiled(
        self,
        executable: Executable,
        circuit: QuantumCircuit,
        initial_state: SparseState | None,
        stats: EvolutionStats,
    ) -> SparseState:
        """Evolve using the compiled artifact; defaults to plain :meth:`_evolve`."""
        return self._evolve(circuit, initial_state, stats)

    def _execution_provenance(self, executable: Executable) -> dict:
        """Method-specific per-execution provenance (e.g. plan-cache counters)."""
        return {}

    @abstractmethod
    def _evolve(
        self,
        circuit: QuantumCircuit,
        initial_state: SparseState | None,
        stats: EvolutionStats,
    ) -> SparseState:
        """Evolve |0...0> (or ``initial_state``) through the circuit's gates."""

    def __repr__(self) -> str:
        budget = f", max_state_bytes={self.max_state_bytes}" if self.max_state_bytes else ""
        return f"{type(self).__name__}(name={self.name!r}{budget})"
