"""Sparse hash-map simulator.

This simulator evolves the same representation the RDBMS stores — a mapping
from basis index to nonzero amplitude — entirely in Python dictionaries.  It
is the in-memory mirror of the SQL pipeline: every gate performs exactly the
join-and-group-by of the generated query, so it doubles as an executable
specification of the translation semantics and as the "how well could the
relational approach do without a database engine" baseline.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Mapping, Sequence

from ..core.circuit import QuantumCircuit
from ..core.instruction import Instruction
from ..errors import SimulationError
from ..output.result import SparseState
from .base import BaseSimulator, EvolutionStats

#: Estimated bytes per stored amplitude: dict entry overhead + key + complex.
_BYTES_PER_ENTRY = 96


def apply_gate_to_mapping(
    amplitudes: Mapping[int, complex],
    gate_rows: Sequence[tuple[int, int, float, float]],
    qubits: Sequence[int],
    prune_atol: float = 1e-12,
) -> dict[int, complex]:
    """Apply a gate (given as relational rows) to a sparse amplitude mapping.

    This mirrors the generated SQL exactly (Fig. 2c of the paper):

    * the join condition matches the state's *local* sub-index
      (``s & mask`` collapsed onto the gate's qubits) against ``in_s``;
    * the new index is the old index with the gate qubits replaced by
      ``out_s``;
    * amplitudes of identical output indices are summed (GROUP BY s).
    """
    transitions: dict[int, list[tuple[int, complex]]] = defaultdict(list)
    for in_s, out_s, real, imag in gate_rows:
        transitions[in_s].append((out_s, complex(real, imag)))

    result: dict[int, complex] = defaultdict(complex)
    for index, amplitude in amplitudes.items():
        local = 0
        for position, qubit in enumerate(qubits):
            local |= ((index >> qubit) & 1) << position
        rest = index
        for qubit in qubits:
            rest &= ~(1 << qubit)
        for out_s, transition in transitions.get(local, ()):  # rows with matching in_s
            target = rest
            for position, qubit in enumerate(qubits):
                if (out_s >> position) & 1:
                    target |= 1 << qubit
            result[target] += amplitude * transition

    return {index: amplitude for index, amplitude in result.items() if abs(amplitude) > prune_atol}


class SparseSimulator(BaseSimulator):
    """Hash-map simulation storing only nonzero amplitudes."""

    name = "sparse"

    def __init__(
        self,
        max_state_bytes: int | None = None,
        prune_atol: float = 1e-12,
        max_nonzero: int | None = None,
    ) -> None:
        super().__init__(max_state_bytes=max_state_bytes, prune_atol=prune_atol)
        if max_nonzero is not None and max_nonzero < 1:
            raise SimulationError("max_nonzero must be positive when given")
        self.max_nonzero = max_nonzero

    def _evolve(
        self,
        circuit: QuantumCircuit,
        initial_state: SparseState | None,
        stats: EvolutionStats,
    ) -> SparseState:
        if initial_state is None:
            amplitudes: dict[int, complex] = {0: 1.0 + 0.0j}
        else:
            amplitudes = dict(initial_state.items())

        stats.observe(len(amplitudes), _BYTES_PER_ENTRY * len(amplitudes))
        for instruction in circuit.instructions:
            amplitudes = self._apply(amplitudes, instruction)
            size = len(amplitudes)
            estimate = _BYTES_PER_ENTRY * size
            stats.observe(size, estimate)
            self._check_budget(estimate, f"after {instruction.name}")
            if self.max_nonzero is not None and size > self.max_nonzero:
                raise SimulationError(
                    f"sparse state grew to {size} nonzero amplitudes (limit {self.max_nonzero})"
                )
        return SparseState(circuit.num_qubits, amplitudes)

    def _apply(self, amplitudes: dict[int, complex], instruction: Instruction) -> dict[int, complex]:
        if instruction.kind == "barrier" or instruction.is_measurement:
            return amplitudes
        if instruction.kind == "reset":
            return self._reset(amplitudes, instruction.qubits[0])
        gate = instruction.gate
        assert gate is not None
        return apply_gate_to_mapping(
            amplitudes, gate.nonzero_entries(atol=self.prune_atol), instruction.qubits, self.prune_atol
        )

    @staticmethod
    def _reset(amplitudes: dict[int, complex], qubit: int) -> dict[int, complex]:
        """Reset a qubit to |0> (keeps the higher-probability branch, then clears the bit)."""
        probability_one = sum(abs(a) ** 2 for index, a in amplitudes.items() if (index >> qubit) & 1)
        keep = 1 if probability_one > 0.5 else 0
        kept = {index: a for index, a in amplitudes.items() if ((index >> qubit) & 1) == keep}
        norm = sum(abs(a) ** 2 for a in kept.values()) ** 0.5
        if norm == 0:
            raise SimulationError("reset projected onto a zero-probability branch")
        result: dict[int, complex] = {}
        for index, amplitude in kept.items():
            result[index & ~(1 << qubit)] = amplitude / norm
        return result

    def peak_rows_estimate(self, circuit: QuantumCircuit) -> int:
        """Upper bound on nonzero amplitudes: ``2**min(branching gates, n)``.

        Useful for capacity planning in the benchmarks without running the
        simulation.
        """
        return 1 << min(circuit.branching_gate_count(), circuit.num_qubits)
