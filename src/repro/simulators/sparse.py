"""Sparse hash-map simulator.

This simulator evolves the same representation the RDBMS stores — a mapping
from basis index to nonzero amplitude — entirely in Python dictionaries.  It
is the in-memory mirror of the SQL pipeline: every gate performs exactly the
join-and-group-by of the generated query, so it doubles as an executable
specification of the translation semantics and as the "how well could the
relational approach do without a database engine" baseline.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Mapping, Sequence

from ..core.circuit import QuantumCircuit
from ..core.instruction import Instruction
from ..errors import SimulationError
from ..output.result import SparseState
from .base import BaseSimulator, EvolutionStats, Executable

#: Estimated bytes per stored amplitude: dict entry overhead + key + complex.
_BYTES_PER_ENTRY = 96

#: Transition table: in_s -> [(out_s, amplitude factor)], the compiled form
#: of a gate's relational rows.
Transitions = dict[int, list[tuple[int, complex]]]


def build_transitions(gate_rows: Sequence[tuple[int, int, float, float]]) -> Transitions:
    """Index a gate's relational rows by input sub-state (the join's build side)."""
    transitions: Transitions = defaultdict(list)
    for in_s, out_s, real, imag in gate_rows:
        transitions[in_s].append((out_s, complex(real, imag)))
    return transitions


def apply_gate_to_mapping(
    amplitudes: Mapping[int, complex],
    gate_rows: Sequence[tuple[int, int, float, float]],
    qubits: Sequence[int],
    prune_atol: float = 1e-12,
) -> dict[int, complex]:
    """Apply a gate (given as relational rows) to a sparse amplitude mapping.

    This mirrors the generated SQL exactly (Fig. 2c of the paper):

    * the join condition matches the state's *local* sub-index
      (``s & mask`` collapsed onto the gate's qubits) against ``in_s``;
    * the new index is the old index with the gate qubits replaced by
      ``out_s``;
    * amplitudes of identical output indices are summed (GROUP BY s).
    """
    return _apply_transitions(amplitudes, build_transitions(gate_rows), qubits, prune_atol)


def _apply_transitions(
    amplitudes: Mapping[int, complex],
    transitions: Transitions,
    qubits: Sequence[int],
    prune_atol: float,
) -> dict[int, complex]:
    result: dict[int, complex] = defaultdict(complex)
    for index, amplitude in amplitudes.items():
        local = 0
        for position, qubit in enumerate(qubits):
            local |= ((index >> qubit) & 1) << position
        rest = index
        for qubit in qubits:
            rest &= ~(1 << qubit)
        for out_s, transition in transitions.get(local, ()):  # rows with matching in_s
            target = rest
            for position, qubit in enumerate(qubits):
                if (out_s >> position) & 1:
                    target |= 1 << qubit
            result[target] += amplitude * transition

    return {index: amplitude for index, amplitude in result.items() if abs(amplitude) > prune_atol}


class SparseSimulator(BaseSimulator):
    """Hash-map simulation storing only nonzero amplitudes."""

    name = "sparse"

    def __init__(
        self,
        max_state_bytes: int | None = None,
        prune_atol: float = 1e-12,
        max_nonzero: int | None = None,
    ) -> None:
        super().__init__(max_state_bytes=max_state_bytes, prune_atol=prune_atol)
        if max_nonzero is not None and max_nonzero < 1:
            raise SimulationError("max_nonzero must be positive when given")
        self.max_nonzero = max_nonzero

    def _compile(self, circuit: QuantumCircuit) -> dict:
        """Precompute the transition tables of every fully bound gate.

        Transition tables are the sparse mirror of the backend's gate
        tables; building them once per executable instead of per execution
        is exactly the reuse the relational plan cache provides.  Gates that
        still carry free parameters are compiled at execute time.
        """
        plans: list[tuple[Transitions, tuple[int, ...]] | None] = []
        for instruction in circuit.instructions:
            if (
                not instruction.is_gate
                or instruction.gate is None
                or instruction.free_parameters
            ):
                plans.append(None)
                continue
            transitions = build_transitions(instruction.gate.nonzero_entries(atol=self.prune_atol))
            plans.append((transitions, tuple(instruction.qubits)))
        return {"gate_plans": plans}

    def _evolve_compiled(
        self,
        executable: Executable,
        circuit: QuantumCircuit,
        initial_state: SparseState | None,
        stats: EvolutionStats,
    ) -> SparseState:
        plans = executable.artifact.get("gate_plans")
        if plans is None or len(plans) != len(circuit.instructions):
            return self._evolve(circuit, initial_state, stats)
        return self._evolve_with_plans(circuit, initial_state, stats, plans)

    def _evolve(
        self,
        circuit: QuantumCircuit,
        initial_state: SparseState | None,
        stats: EvolutionStats,
    ) -> SparseState:
        return self._evolve_with_plans(circuit, initial_state, stats, None)

    def _evolve_with_plans(
        self,
        circuit: QuantumCircuit,
        initial_state: SparseState | None,
        stats: EvolutionStats,
        plans: list | None,
    ) -> SparseState:
        if initial_state is None:
            amplitudes: dict[int, complex] = {0: 1.0 + 0.0j}
        else:
            amplitudes = dict(initial_state.items())

        stats.observe(len(amplitudes), _BYTES_PER_ENTRY * len(amplitudes))
        for position, instruction in enumerate(circuit.instructions):
            plan = plans[position] if plans is not None else None
            if plan is None:
                amplitudes = self._apply(amplitudes, instruction)
            else:
                transitions, qubits = plan
                amplitudes = _apply_transitions(amplitudes, transitions, qubits, self.prune_atol)
            size = len(amplitudes)
            estimate = _BYTES_PER_ENTRY * size
            stats.observe(size, estimate)
            self._check_budget(estimate, f"after {instruction.name}")
            if self.max_nonzero is not None and size > self.max_nonzero:
                raise SimulationError(
                    f"sparse state grew to {size} nonzero amplitudes (limit {self.max_nonzero})"
                )
        return SparseState(circuit.num_qubits, amplitudes)

    def _apply(self, amplitudes: dict[int, complex], instruction: Instruction) -> dict[int, complex]:
        if instruction.kind == "barrier" or instruction.is_measurement:
            return amplitudes
        if instruction.kind == "reset":
            return self._reset(amplitudes, instruction.qubits[0])
        gate = instruction.gate
        assert gate is not None
        return apply_gate_to_mapping(
            amplitudes, gate.nonzero_entries(atol=self.prune_atol), instruction.qubits, self.prune_atol
        )

    @staticmethod
    def _reset(amplitudes: dict[int, complex], qubit: int) -> dict[int, complex]:
        """Reset a qubit to |0> (keeps the higher-probability branch, then clears the bit)."""
        probability_one = sum(abs(a) ** 2 for index, a in amplitudes.items() if (index >> qubit) & 1)
        keep = 1 if probability_one > 0.5 else 0
        kept = {index: a for index, a in amplitudes.items() if ((index >> qubit) & 1) == keep}
        norm = sum(abs(a) ** 2 for a in kept.values()) ** 0.5
        if norm == 0:
            raise SimulationError("reset projected onto a zero-probability branch")
        result: dict[int, complex] = {}
        for index, amplitude in kept.items():
            result[index & ~(1 << qubit)] = amplitude / norm
        return result

    def peak_rows_estimate(self, circuit: QuantumCircuit) -> int:
        """Upper bound on nonzero amplitudes: ``2**min(branching gates, n)``.

        Useful for capacity planning in the benchmarks without running the
        simulation.
        """
        return 1 << min(circuit.branching_gate_count(), circuit.num_qubits)
