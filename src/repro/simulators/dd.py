"""Decision-diagram simulator (QMDD-style).

The paper lists decision-diagram methods (MQT DD / LIMDD) among the
simulation backends it compares against.  This module implements a reduced,
weighted decision diagram over state vectors from scratch:

* a node at level ``q`` branches on qubit ``q`` (low = 0, high = 1) and its
  outgoing edges carry complex weights;
* identical sub-diagrams are shared through a unique table, so structured
  states (GHZ, basis states, products) need only O(n) nodes;
* edge weights are normalized so that the largest child weight has magnitude
  one, keeping the representation canonical up to floating-point rounding.

Circuits are first rewritten into the {single-qubit, CX} basis
(:mod:`repro.core.decompose`); CX gates whose control sits below the target
are rewritten via ``H (CZ) H`` so the controlled recursion always branches on
the higher level first.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.circuit import QuantumCircuit
from ..core.decompose import decompose_circuit
from ..core.gates import standard_gate
from ..core.instruction import Instruction
from ..errors import SimulationError
from ..output.result import SparseState
from .base import BaseSimulator, EvolutionStats, Executable

#: Weights with magnitude below this are treated as exact zeros.
_ZERO_TOL = 1e-14
#: Rounding applied to weights when hashing nodes into the unique table.
_HASH_DIGITS = 12


@dataclass(frozen=True)
class DDNode:
    """A decision-diagram node: branch on one qubit, two weighted children.

    ``low``/``high`` are ``(weight, child)`` pairs where ``child`` is another
    node or ``None`` for the terminal.  Instances are interned via the
    simulator's unique table, so identity comparison doubles as structural
    equality.
    """

    level: int
    low_weight: complex
    low_child: "DDNode | None"
    high_weight: complex
    high_child: "DDNode | None"


Edge = tuple[complex, "DDNode | None"]

_ZERO_EDGE: Edge = (0.0 + 0.0j, None)


class DecisionDiagramSimulator(BaseSimulator):
    """Simulation on reduced, weighted decision diagrams."""

    name = "dd"

    def __init__(
        self,
        max_state_bytes: int | None = None,
        prune_atol: float = 1e-12,
        max_nodes: int | None = None,
        max_extract_qubits: int = 22,
    ) -> None:
        super().__init__(max_state_bytes=max_state_bytes, prune_atol=prune_atol)
        self.max_nodes = max_nodes
        self.max_extract_qubits = int(max_extract_qubits)
        self._unique: dict[tuple, DDNode] = {}

    # ------------------------------------------------------------ node store

    def _make_node(self, level: int, low: Edge, high: Edge) -> Edge:
        """Normalize and intern a node; returns the (weight, node) edge."""
        low_weight, low_child = low
        high_weight, high_child = high
        if abs(low_weight) < _ZERO_TOL:
            low_weight, low_child = 0.0 + 0.0j, None
        if abs(high_weight) < _ZERO_TOL:
            high_weight, high_child = 0.0 + 0.0j, None
        if low_child is None and abs(low_weight) < _ZERO_TOL and high_child is None and abs(high_weight) < _ZERO_TOL:
            return _ZERO_EDGE

        # Normalize: the child edge with the largest magnitude gets weight of
        # magnitude 1; the factor is pushed up to the returned edge.
        if abs(low_weight) >= abs(high_weight):
            factor = low_weight
        else:
            factor = high_weight
        low_weight = low_weight / factor
        high_weight = high_weight / factor

        key = (
            level,
            round(low_weight.real, _HASH_DIGITS),
            round(low_weight.imag, _HASH_DIGITS),
            id(low_child),
            round(high_weight.real, _HASH_DIGITS),
            round(high_weight.imag, _HASH_DIGITS),
            id(high_child),
        )
        node = self._unique.get(key)
        if node is None:
            node = DDNode(level, low_weight, low_child, high_weight, high_child)
            self._unique[key] = node
            if self.max_nodes is not None and len(self._unique) > self.max_nodes:
                raise SimulationError(f"decision diagram exceeded {self.max_nodes} nodes")
        return (factor, node)

    def _child(self, edge: Edge, level: int, branch: int) -> Edge:
        """The ``branch`` child edge of ``edge`` at ``level`` (handles zero edges)."""
        weight, node = edge
        if node is None:
            return _ZERO_EDGE
        if node.level != level:
            raise SimulationError("decision diagram levels out of sync (internal error)")
        if branch == 0:
            return (weight * node.low_weight, node.low_child)
        return (weight * node.high_weight, node.high_child)

    # ------------------------------------------------------------ arithmetic

    def _add(self, first: Edge, second: Edge, level: int) -> Edge:
        """Pointwise sum of two sub-states rooted at ``level``."""
        if first[1] is None and abs(first[0]) < _ZERO_TOL:
            return second
        if second[1] is None and abs(second[0]) < _ZERO_TOL:
            return first
        if level < 0:
            return (first[0] + second[0], None)
        low = self._add(self._child(first, level, 0), self._child(second, level, 0), level - 1)
        high = self._add(self._child(first, level, 1), self._child(second, level, 1), level - 1)
        return self._make_node(level, low, high)

    def _scale(self, edge: Edge, factor: complex) -> Edge:
        if abs(factor) < _ZERO_TOL:
            return _ZERO_EDGE
        return (edge[0] * factor, edge[1])

    # ---------------------------------------------------------- gate applies

    def _apply_single(self, edge: Edge, level: int, target: int, matrix: np.ndarray) -> Edge:
        """Apply a single-qubit gate on ``target`` to the sub-state at ``level``."""
        if edge[1] is None and abs(edge[0]) < _ZERO_TOL:
            return _ZERO_EDGE
        if level < target:
            raise SimulationError("gate target below current level (internal error)")
        low = self._child(edge, level, 0)
        high = self._child(edge, level, 1)
        if level == target:
            new_low = self._add(self._scale(low, complex(matrix[0, 0])), self._scale(high, complex(matrix[0, 1])), level - 1)
            new_high = self._add(self._scale(low, complex(matrix[1, 0])), self._scale(high, complex(matrix[1, 1])), level - 1)
            return self._make_node(level, new_low, new_high)
        return self._make_node(
            level,
            self._apply_single(low, level - 1, target, matrix),
            self._apply_single(high, level - 1, target, matrix),
        )

    def _apply_controlled(self, edge: Edge, level: int, control: int, target: int, matrix: np.ndarray) -> Edge:
        """Apply a controlled single-qubit gate with ``control > target``."""
        if edge[1] is None and abs(edge[0]) < _ZERO_TOL:
            return _ZERO_EDGE
        if control <= target:
            raise SimulationError("controlled recursion requires control above target")
        low = self._child(edge, level, 0)
        high = self._child(edge, level, 1)
        if level == control:
            return self._make_node(level, low, self._apply_single(high, level - 1, target, matrix))
        return self._make_node(
            level,
            self._apply_controlled(low, level - 1, control, target, matrix),
            self._apply_controlled(high, level - 1, control, target, matrix),
        )

    # ---------------------------------------------------------------- evolve

    def _compile(self, circuit: QuantumCircuit) -> dict:
        """Rewrite into the {single-qubit, CX} basis once at compile time.

        Decomposition needs concrete gate matrices, so parameterized
        templates skip the prep and decompose per bind.
        """
        if circuit.is_parameterized:
            return {}
        return {"working": decompose_circuit(circuit)}

    def _evolve_compiled(
        self,
        executable: Executable,
        circuit: QuantumCircuit,
        initial_state: SparseState | None,
        stats: EvolutionStats,
    ) -> SparseState:
        working = None
        if circuit is executable.circuit:
            working = executable.artifact.get("working")
        return self._evolve_working(circuit, initial_state, stats, working)

    def _evolve(
        self,
        circuit: QuantumCircuit,
        initial_state: SparseState | None,
        stats: EvolutionStats,
    ) -> SparseState:
        return self._evolve_working(circuit, initial_state, stats, None)

    def _evolve_working(
        self,
        circuit: QuantumCircuit,
        initial_state: SparseState | None,
        stats: EvolutionStats,
        working: QuantumCircuit | None,
    ) -> SparseState:
        if initial_state is not None:
            raise SimulationError("the decision-diagram simulator only supports the |0...0> initial state")
        num_qubits = circuit.num_qubits
        if num_qubits > self.max_extract_qubits:
            raise SimulationError(
                f"decision-diagram extraction limited to {self.max_extract_qubits} qubits"
            )
        self._unique = {}
        if working is None:
            working = decompose_circuit(circuit)

        # |0...0>: a chain of nodes whose high edges are zero.
        edge: Edge = (1.0 + 0.0j, None)
        for level in range(num_qubits):
            edge = self._make_node(level, edge, _ZERO_EDGE)

        peak_nodes = len(self._unique)
        for instruction in working.instructions:
            edge = self._apply_instruction(edge, instruction, num_qubits)
            peak_nodes = max(peak_nodes, len(self._unique))
            node_bytes = 120 * len(self._unique)  # rough per-node footprint
            stats.observe(len(self._unique), node_bytes)
            self._check_budget(node_bytes, f"after {instruction.name}")

        stats.extras["unique_nodes"] = len(self._unique)
        stats.extras["peak_unique_nodes"] = peak_nodes
        return self._extract_state(edge, num_qubits)

    def _apply_instruction(self, edge: Edge, instruction: Instruction, num_qubits: int) -> Edge:
        if not instruction.is_gate or instruction.gate is None:
            if instruction.kind == "barrier" or instruction.is_measurement:
                return edge
            raise SimulationError(f"decision-diagram simulator does not support {instruction.kind!r}")
        gate = instruction.gate
        top = num_qubits - 1
        if gate.num_qubits == 1:
            return self._apply_single(edge, top, instruction.qubits[0], gate.matrix())
        if gate.name == "cx":
            control, target = instruction.qubits
            x_matrix = np.array([[0, 1], [1, 0]], dtype=np.complex128)
            z_matrix = np.array([[1, 0], [0, -1]], dtype=np.complex128)
            h_matrix = standard_gate("h").matrix()
            if control > target:
                return self._apply_controlled(edge, top, control, target, x_matrix)
            # Control below target: CX = (H on target) CZ (H on target), and CZ
            # is symmetric, so branch on the target (the higher level) instead.
            edge = self._apply_single(edge, top, target, h_matrix)
            edge = self._apply_controlled(edge, top, target, control, z_matrix)
            return self._apply_single(edge, top, target, h_matrix)
        raise SimulationError(
            f"gate {gate.name!r} on {gate.num_qubits} qubits survived decomposition (internal error)"
        )

    # ------------------------------------------------------------ extraction

    def _extract_state(self, edge: Edge, num_qubits: int) -> SparseState:
        amplitudes: dict[int, complex] = {}

        def walk(current: Edge, level: int, prefix: int, weight: complex) -> None:
            edge_weight, node = current
            total = weight * edge_weight
            if abs(total) <= self.prune_atol:
                return
            if node is None:
                if level >= 0:
                    # A structural zero edge cannot carry weight; nothing to record.
                    return
                amplitudes[prefix] = amplitudes.get(prefix, 0.0 + 0.0j) + total
                return
            walk((node.low_weight, node.low_child), level - 1, prefix, total)
            walk((node.high_weight, node.high_child), level - 1, prefix | (1 << node.level), total)

        walk(edge, num_qubits - 1, 0, 1.0 + 0.0j)
        return SparseState(num_qubits, amplitudes)

    def node_count(self, circuit: QuantumCircuit) -> int:
        """Number of unique nodes in the final diagram of ``circuit``."""
        result = self.run(circuit)
        return int(result.metadata.get("unique_nodes", 0))
