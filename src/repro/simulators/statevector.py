"""Dense state-vector simulator.

This is the "conventional simulation method" the paper compares against
(cuQuantum / Qiskit-Aer class): the full ``2**n`` complex amplitude vector is
held in memory and every gate is applied to it.  Memory is Theta(2^n)
regardless of how sparse the state is, which is exactly why the relational
representation wins the sparse-capacity experiment (E3) and why this
simulator wins the dense-workload comparison (E4).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.circuit import QuantumCircuit
from ..core.instruction import Instruction
from ..errors import SimulationError
from ..output.result import SparseState
from .base import BaseSimulator, EvolutionStats

#: Bytes per complex128 amplitude.
_BYTES_PER_AMPLITUDE = 16


def apply_gate_to_vector(vector: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], num_qubits: int) -> np.ndarray:
    """Apply a k-qubit gate to a dense state vector (returns a new vector).

    ``qubits`` are the gate's argument qubits; local bit ``j`` of the matrix
    index corresponds to ``qubits[j]`` (the package-wide convention).
    """
    k = len(qubits)
    if matrix.shape != (1 << k, 1 << k):
        raise SimulationError(f"matrix shape {matrix.shape} does not match {k} qubits")
    mask = 0
    for qubit in qubits:
        if not 0 <= qubit < num_qubits:
            raise SimulationError(f"qubit {qubit} out of range")
        mask |= 1 << qubit

    # Indices of all basis states whose gate qubits are zero.
    rest_count = 1 << (num_qubits - k)
    rest = np.arange(rest_count, dtype=np.int64)
    base = np.zeros(rest_count, dtype=np.int64)
    position = 0
    for qubit in range(num_qubits):
        if not (mask >> qubit) & 1:
            base |= ((rest >> position) & 1) << qubit
            position += 1

    def deposit(local: int) -> int:
        scattered = 0
        for j, qubit in enumerate(qubits):
            if (local >> j) & 1:
                scattered |= 1 << qubit
        return scattered

    offsets = [deposit(local) for local in range(1 << k)]
    gathered = np.stack([vector[base | offset] for offset in offsets])
    transformed = matrix @ gathered
    result = np.empty_like(vector)
    for local, offset in enumerate(offsets):
        result[base | offset] = transformed[local]
    return result


class StatevectorSimulator(BaseSimulator):
    """Dense ``2**n`` state-vector simulation (numpy, complex128)."""

    name = "statevector"

    def __init__(self, max_state_bytes: int | None = None, prune_atol: float = 1e-12, max_qubits: int = 26) -> None:
        super().__init__(max_state_bytes=max_state_bytes, prune_atol=prune_atol)
        if max_qubits < 1:
            raise SimulationError("max_qubits must be positive")
        self.max_qubits = int(max_qubits)

    def required_bytes(self, num_qubits: int) -> int:
        """Memory needed for the dense vector of a ``num_qubits`` state."""
        return _BYTES_PER_AMPLITUDE * (1 << num_qubits)

    def _evolve(
        self,
        circuit: QuantumCircuit,
        initial_state: SparseState | None,
        stats: EvolutionStats,
    ) -> SparseState:
        num_qubits = circuit.num_qubits
        if num_qubits > self.max_qubits:
            raise SimulationError(
                f"statevector simulator limited to {self.max_qubits} qubits (asked for {num_qubits})"
            )
        required = self.required_bytes(num_qubits)
        self._check_budget(required, "dense state vector allocation")
        stats.observe(1 << num_qubits, required)

        if initial_state is None:
            vector = np.zeros(1 << num_qubits, dtype=np.complex128)
            vector[0] = 1.0
        else:
            vector = initial_state.to_dense()

        for instruction in circuit.instructions:
            vector = self._apply(vector, instruction, num_qubits)
        return SparseState.from_dense(vector, atol=self.prune_atol)

    def _apply(self, vector: np.ndarray, instruction: Instruction, num_qubits: int) -> np.ndarray:
        if instruction.kind == "barrier" or instruction.is_measurement:
            return vector
        if instruction.kind == "reset":
            return self._reset(vector, instruction.qubits[0], num_qubits)
        gate = instruction.gate
        assert gate is not None
        return apply_gate_to_vector(vector, gate.matrix(), instruction.qubits, num_qubits)

    @staticmethod
    def _reset(vector: np.ndarray, qubit: int, num_qubits: int) -> np.ndarray:
        """Reset a qubit to |0> along a deterministic measurement trajectory.

        The branch with the larger probability is kept (ties keep 0), then
        mapped onto the qubit's |0> subspace and renormalized.
        """
        indices = np.arange(1 << num_qubits)
        bit = (indices >> qubit) & 1
        probability_one = float(np.sum(np.abs(vector[bit == 1]) ** 2))
        keep = 1 if probability_one > 0.5 else 0
        projected = np.where(bit == keep, vector, 0.0)
        norm = np.linalg.norm(projected)
        if norm == 0:
            raise SimulationError("reset projected onto a zero-probability branch")
        projected = projected / norm
        if keep == 1:
            flipped = np.zeros_like(projected)
            flipped[indices & ~(1 << qubit)] = projected[indices]
            projected = flipped
        return projected

    def statevector(self, circuit: QuantumCircuit) -> np.ndarray:
        """Convenience: the dense final state vector of a circuit."""
        return self.run(circuit).state.to_dense()
