"""Dense state-vector simulator.

This is the "conventional simulation method" the paper compares against
(cuQuantum / Qiskit-Aer class): the full ``2**n`` complex amplitude vector is
held in memory and every gate is applied to it.  Memory is Theta(2^n)
regardless of how sparse the state is, which is exactly why the relational
representation wins the sparse-capacity experiment (E3) and why this
simulator wins the dense-workload comparison (E4).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.circuit import QuantumCircuit
from ..core.instruction import Instruction
from ..errors import SimulationError
from ..output.result import SparseState
from .base import BaseSimulator, EvolutionStats, Executable

#: Bytes per complex128 amplitude.
_BYTES_PER_AMPLITUDE = 16


def gate_scatter(qubits: Sequence[int], num_qubits: int) -> tuple[np.ndarray, list[int]]:
    """Gather/scatter indices of a k-qubit gate application.

    Returns ``(base, offsets)``: ``base`` enumerates every basis state whose
    gate qubits are zero and ``offsets[local]`` deposits the local matrix
    index onto the gate qubits.  Both depend only on the qubit positions —
    not on gate values — so a compiled executable precomputes them once per
    distinct qubit tuple and reuses them for every bind of a sweep.
    """
    k = len(qubits)
    mask = 0
    for qubit in qubits:
        if not 0 <= qubit < num_qubits:
            raise SimulationError(f"qubit {qubit} out of range")
        mask |= 1 << qubit

    # Indices of all basis states whose gate qubits are zero.
    rest_count = 1 << (num_qubits - k)
    rest = np.arange(rest_count, dtype=np.int64)
    base = np.zeros(rest_count, dtype=np.int64)
    position = 0
    for qubit in range(num_qubits):
        if not (mask >> qubit) & 1:
            base |= ((rest >> position) & 1) << qubit
            position += 1

    def deposit(local: int) -> int:
        scattered = 0
        for j, qubit in enumerate(qubits):
            if (local >> j) & 1:
                scattered |= 1 << qubit
        return scattered

    offsets = [deposit(local) for local in range(1 << k)]
    return base, offsets


def _apply_prepared(vector: np.ndarray, matrix: np.ndarray, base: np.ndarray, offsets: Sequence[int]) -> np.ndarray:
    """Apply a gate using precomputed scatter indices (returns a new vector)."""
    if matrix.shape != (len(offsets), len(offsets)):
        raise SimulationError(f"matrix shape {matrix.shape} does not match {len(offsets)} local states")
    gathered = np.stack([vector[base | offset] for offset in offsets])
    transformed = matrix @ gathered
    result = np.empty_like(vector)
    for local, offset in enumerate(offsets):
        result[base | offset] = transformed[local]
    return result


def apply_gate_to_vector(vector: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], num_qubits: int) -> np.ndarray:
    """Apply a k-qubit gate to a dense state vector (returns a new vector).

    ``qubits`` are the gate's argument qubits; local bit ``j`` of the matrix
    index corresponds to ``qubits[j]`` (the package-wide convention).
    """
    k = len(qubits)
    if matrix.shape != (1 << k, 1 << k):
        raise SimulationError(f"matrix shape {matrix.shape} does not match {k} qubits")
    base, offsets = gate_scatter(qubits, num_qubits)
    return _apply_prepared(vector, matrix, base, offsets)


class StatevectorSimulator(BaseSimulator):
    """Dense ``2**n`` state-vector simulation (numpy, complex128)."""

    name = "statevector"

    def __init__(self, max_state_bytes: int | None = None, prune_atol: float = 1e-12, max_qubits: int = 26) -> None:
        super().__init__(max_state_bytes=max_state_bytes, prune_atol=prune_atol)
        if max_qubits < 1:
            raise SimulationError("max_qubits must be positive")
        self.max_qubits = int(max_qubits)

    def required_bytes(self, num_qubits: int) -> int:
        """Memory needed for the dense vector of a ``num_qubits`` state."""
        return _BYTES_PER_AMPLITUDE * (1 << num_qubits)

    def _compile(self, circuit: QuantumCircuit) -> dict:
        """Precompute per-gate scatter indices and matrices of bound gates.

        The scatter indices depend only on qubit positions, so they are
        valid for every bind of a parameterized template; matrices of gates
        that still carry free parameters are computed at execute time.  The
        prep allocates O(2^n) index arrays, so circuits that could never
        execute (over ``max_qubits`` or the byte budget) skip it and fail
        with the usual errors at execute time.
        """
        num_qubits = circuit.num_qubits
        if num_qubits > self.max_qubits:
            return {}
        required = self.required_bytes(num_qubits)
        if self.max_state_bytes is not None and required > self.max_state_bytes:
            return {}
        # The precomputed gather arrays live as long as the executable, so
        # cap their total footprint at one state vector's worth (each 1-qubit
        # entry costs 2^(n-1) int64s = a quarter of the vector); instructions
        # beyond the cap fall back to per-application scatter computation.
        scatter_budget = min(required, self.max_state_bytes) if self.max_state_bytes else required
        scatter_bytes = 0
        scatter_cache: dict[tuple[int, ...], tuple[np.ndarray, list[int]]] = {}
        plans: list[tuple[np.ndarray | None, np.ndarray, list[int]] | None] = []
        for instruction in circuit.instructions:
            if not instruction.is_gate or instruction.gate is None:
                plans.append(None)
                continue
            qubits = tuple(instruction.qubits)
            if qubits not in scatter_cache:
                entry_bytes = 8 * (1 << (num_qubits - len(qubits)))
                if scatter_bytes + entry_bytes > scatter_budget:
                    plans.append(None)
                    continue
                scatter_cache[qubits] = gate_scatter(qubits, num_qubits)
                scatter_bytes += entry_bytes
            base, offsets = scatter_cache[qubits]
            matrix = instruction.gate.matrix() if not instruction.free_parameters else None
            plans.append((matrix, base, offsets))
        return {"gate_plans": plans}

    def _evolve_compiled(
        self,
        executable: Executable,
        circuit: QuantumCircuit,
        initial_state: SparseState | None,
        stats: EvolutionStats,
    ) -> SparseState:
        plans = executable.artifact.get("gate_plans")
        if plans is None or len(plans) != len(circuit.instructions):
            return self._evolve(circuit, initial_state, stats)
        return self._evolve_with_plans(circuit, initial_state, stats, plans)

    def _evolve(
        self,
        circuit: QuantumCircuit,
        initial_state: SparseState | None,
        stats: EvolutionStats,
    ) -> SparseState:
        return self._evolve_with_plans(circuit, initial_state, stats, None)

    def _evolve_with_plans(
        self,
        circuit: QuantumCircuit,
        initial_state: SparseState | None,
        stats: EvolutionStats,
        plans: list | None,
    ) -> SparseState:
        num_qubits = circuit.num_qubits
        if num_qubits > self.max_qubits:
            raise SimulationError(
                f"statevector simulator limited to {self.max_qubits} qubits (asked for {num_qubits})"
            )
        required = self.required_bytes(num_qubits)
        self._check_budget(required, "dense state vector allocation")
        stats.observe(1 << num_qubits, required)

        if initial_state is None:
            vector = np.zeros(1 << num_qubits, dtype=np.complex128)
            vector[0] = 1.0
        else:
            vector = initial_state.to_dense()

        instructions = circuit.instructions
        for position, instruction in enumerate(instructions):
            plan = plans[position] if plans is not None else None
            if plan is None:
                vector = self._apply(vector, instruction, num_qubits)
            else:
                matrix, base, offsets = plan
                if matrix is None:
                    assert instruction.gate is not None
                    matrix = instruction.gate.matrix()
                vector = _apply_prepared(vector, matrix, base, offsets)
        return SparseState.from_dense(vector, atol=self.prune_atol)

    def _apply(self, vector: np.ndarray, instruction: Instruction, num_qubits: int) -> np.ndarray:
        if instruction.kind == "barrier" or instruction.is_measurement:
            return vector
        if instruction.kind == "reset":
            return self._reset(vector, instruction.qubits[0], num_qubits)
        gate = instruction.gate
        assert gate is not None
        return apply_gate_to_vector(vector, gate.matrix(), instruction.qubits, num_qubits)

    @staticmethod
    def _reset(vector: np.ndarray, qubit: int, num_qubits: int) -> np.ndarray:
        """Reset a qubit to |0> along a deterministic measurement trajectory.

        The branch with the larger probability is kept (ties keep 0), then
        mapped onto the qubit's |0> subspace and renormalized.
        """
        indices = np.arange(1 << num_qubits)
        bit = (indices >> qubit) & 1
        probability_one = float(np.sum(np.abs(vector[bit == 1]) ** 2))
        keep = 1 if probability_one > 0.5 else 0
        projected = np.where(bit == keep, vector, 0.0)
        norm = np.linalg.norm(projected)
        if norm == 0:
            raise SimulationError("reset projected onto a zero-probability branch")
        projected = projected / norm
        if keep == 1:
            flipped = np.zeros_like(projected)
            flipped[indices & ~(1 << qubit)] = projected[indices]
            projected = flipped
        return projected

    def statevector(self, circuit: QuantumCircuit) -> np.ndarray:
        """Convenience: the dense final state vector of a circuit."""
        return self.run(circuit).state.to_dense()
