"""Observability substrate: tracing, metrics, sinks, unified stats schema.

Answers the two questions the ad-hoc ``*_stats()`` dicts could not:
"where did this query's milliseconds go?" (span-based tracing,
:mod:`.tracing`) and "what is the service's p99 under mixed traffic?"
(process-wide metrics registry, :mod:`.metrics`).  Finished traces flow to
bounded sinks (:mod:`.sinks`): an in-memory ring, an optional JSON-lines
export, and a threshold-gated slow-query log with EXPLAIN-style plan
snapshots.  :mod:`.schema` defines the unified ``engine_stats()`` document.

Tracing is ablatable: pass ``enable_tracing=True`` to an engine/backend or
set ``REPRO_TRACE=1`` process-wide; the disabled path costs one branch.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, global_registry
from .schema import ENGINE_STATS_SCHEMA_VERSION, flatten_counters, unified_engine_stats
from .sinks import JsonlTraceSink, SlowQueryLog, TraceRingBuffer
from .tracing import (
    Span,
    Tracer,
    annotate_current,
    current_span,
    drain_shared_traces,
    env_tracer,
    maybe_span,
    reset_shared_tracer,
    shared_tracer,
    tracing_env_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "ENGINE_STATS_SCHEMA_VERSION",
    "flatten_counters",
    "unified_engine_stats",
    "JsonlTraceSink",
    "SlowQueryLog",
    "TraceRingBuffer",
    "Span",
    "Tracer",
    "annotate_current",
    "current_span",
    "drain_shared_traces",
    "env_tracer",
    "maybe_span",
    "reset_shared_tracer",
    "shared_tracer",
    "tracing_env_enabled",
]
