"""Observability substrate: tracing, metrics, sinks, unified stats schema.

Answers the two questions the ad-hoc ``*_stats()`` dicts could not:
"where did this query's milliseconds go?" (span-based tracing,
:mod:`.tracing`) and "what is the service's p99 under mixed traffic?"
(process-wide metrics registry, :mod:`.metrics`).  Finished traces flow to
bounded sinks (:mod:`.sinks`): an in-memory ring, an optional JSON-lines
export, a threshold-gated slow-query log with EXPLAIN-style plan
snapshots, and the request-indexed :class:`~.sinks.RequestTraceStore` the
serving tier's ``/v1/traces`` endpoints assemble distributed traces from.
:mod:`.schema` defines the unified ``engine_stats()`` document.

Tracing is ablatable: pass ``enable_tracing=True`` to an engine/backend or
set ``REPRO_TRACE=1`` process-wide; the disabled path costs one branch.
Request-scoped identity (:class:`~.tracing.TraceContext`) is W3C
traceparent compatible and travels across threads and worker processes via
:func:`~.tracing.activate_context`.
"""

from .metrics import (
    PROMETHEUS_CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    prometheus_exposition,
)
from .schema import ENGINE_STATS_SCHEMA_VERSION, flatten_counters, unified_engine_stats
from .sinks import JsonlTraceSink, RequestTraceStore, SlowQueryLog, TraceRingBuffer
from .tracing import (
    Span,
    TraceContext,
    Tracer,
    activate_context,
    annotate_current,
    current_context,
    current_span,
    drain_shared_traces,
    drain_shared_traces_counted,
    env_tracer,
    maybe_span,
    new_trace_id,
    next_span_id,
    reset_shared_tracer,
    shared_tracer,
    span_record,
    tracing_env_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PROMETHEUS_CONTENT_TYPE",
    "global_registry",
    "prometheus_exposition",
    "ENGINE_STATS_SCHEMA_VERSION",
    "flatten_counters",
    "unified_engine_stats",
    "JsonlTraceSink",
    "RequestTraceStore",
    "SlowQueryLog",
    "TraceRingBuffer",
    "Span",
    "TraceContext",
    "Tracer",
    "activate_context",
    "annotate_current",
    "current_context",
    "current_span",
    "drain_shared_traces",
    "drain_shared_traces_counted",
    "env_tracer",
    "maybe_span",
    "new_trace_id",
    "next_span_id",
    "reset_shared_tracer",
    "shared_tracer",
    "span_record",
    "tracing_env_enabled",
]
