"""Trace sinks: where finished query spans go.

Four consumers cover the serving tier's forensic needs:

* :class:`TraceRingBuffer` — the last N finished traces, in memory, for
  interactive inspection (``session.simulations.recent_traces()``) and for
  the process-backed batch tier, which drains each worker process's ring
  and ships the traces back to the parent on chunk join;
* :class:`JsonlTraceSink` — one JSON object per line appended to a file
  (``REPRO_TRACE_JSONL=path``), the bulk-export format offline analysis
  tooling reads;
* :class:`SlowQueryLog` — threshold-gated capture of *whole* slow queries:
  the span tree plus an EXPLAIN-style plan snapshot rendered lazily (the
  plan provider callable only runs when the threshold actually trips, so
  fast queries never pay for plan rendering);
* :class:`RequestTraceStore` — request-indexed span storage for the
  distributed-tracing surface: every span a request produced (ingress
  root, admission, queue wait, job, engine queries — across threads and
  worker processes) lands here keyed by ``trace_id``, and
  ``GET /v1/traces/{job_id}`` assembles them into one connected tree.

All sinks are thread-safe and bounded; a sink failure must never fail the
query that produced the trace (export errors are counted, not raised).
"""

from __future__ import annotations

import copy
import json
import threading
from collections import deque


class TraceRingBuffer:
    """The most recent finished traces, oldest evicted first.

    Entries are finished :class:`~.tracing.Span` objects for local traces
    (the tracer defers dict serialization to read time) or plain dicts for
    traces merged in from worker processes; readers must handle both.
    """

    def __init__(self, maxlen: int = 256) -> None:
        if maxlen < 1:
            raise ValueError("ring buffer needs room for at least one trace")
        self.maxlen = int(maxlen)
        self._traces: deque[dict] = deque(maxlen=self.maxlen)
        self._lock = threading.Lock()
        self.appended = 0

    def append(self, trace: dict) -> None:
        with self._lock:
            self._traces.append(trace)
            self.appended += 1

    def snapshot(self) -> list[dict]:
        """The buffered traces, oldest first (the buffer keeps them)."""
        with self._lock:
            return list(self._traces)

    def drain(self) -> list[dict]:
        """Pop and return every buffered trace (the process-tier join path)."""
        with self._lock:
            traces = list(self._traces)
            self._traces.clear()
            return traces

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


class JsonlTraceSink:
    """Append each trace as one JSON line to a file.

    The file handle is opened lazily and kept open; writes are serialized
    under a lock and flushed per trace (a crashed process loses at most the
    line being written).  Unserializable attribute values degrade to their
    ``repr`` instead of failing the export.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._handle = None
        self._lock = threading.Lock()
        self.written = 0
        self.errors = 0

    def write(self, trace: dict) -> None:
        try:
            line = json.dumps(trace, default=repr, separators=(",", ":"))
            with self._lock:
                if self._handle is None:
                    self._handle = open(self.path, "a", encoding="utf-8")
                self._handle.write(line + "\n")
                self._handle.flush()
                self.written += 1
        except Exception:
            with self._lock:
                self.errors += 1

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def stats(self) -> dict:
        with self._lock:
            return {"path": self.path, "written": self.written, "errors": self.errors}


class SlowQueryLog:
    """Threshold-gated capture of slow queries with their plan snapshots.

    ``offer`` is called with every finished query span; spans at or above
    ``threshold_s`` are captured as ``{sql, seconds, rows, trace, plan}``
    entries in a bounded deque.  The plan snapshot comes from the span's
    lazily attached provider (see :attr:`~.tracing.Span.plan_provider`), so
    rendering cost is only paid for queries that are already slow.
    """

    def __init__(self, threshold_s: float = 0.25, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("slow-query log needs room for at least one entry")
        self.threshold_s = float(threshold_s)
        self.capacity = int(capacity)
        self._entries: deque[dict] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self.captured = 0

    def offer(self, span) -> bool:
        """Capture the span if it is slow enough; returns True when captured."""
        duration = span.duration_s
        if duration < self.threshold_s:
            return False
        plan: list[str] = []
        provider = getattr(span, "plan_provider", None)
        if provider is not None:
            try:
                plan = list(provider())
            except Exception:
                plan = ["<plan snapshot failed>"]
        entry = {
            "sql": span.attrs.get("sql", ""),
            "seconds": duration,
            "rows": span.attrs.get("rows"),
            "cache": span.attrs.get("cache"),
            "trace": span.to_dict(),
            "plan": plan,
        }
        with self._lock:
            self._entries.append(entry)
            self.captured += 1
        return True

    def entries(self) -> list[dict]:
        """Captured slow queries, oldest first."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "threshold_s": self.threshold_s,
                "capacity": self.capacity,
                "captured": self.captured,
                "size": len(self._entries),
            }


class RequestTraceStore:
    """Request-indexed span storage: one entry per trace id, assembled on read.

    Spans arrive flat — synthesized serving-stage dicts from the job
    service, dispatched root trees from tracers, worker-process traces
    merged on chunk join — each carrying ``trace_id`` / ``span_id`` /
    ``parent_span_id``.  :meth:`assemble` stitches them into a single tree
    under the request's root span at read time, so recording stays O(1)
    appends on the serving path.

    Retention is decided at :meth:`seal`: a request is kept when it was
    head-sampled, ended in error, or ran slower than ``slow_threshold_s``
    (the "always sample errors and stragglers" upgrade); everything else is
    discarded so an unsampled steady state costs a short-lived dict entry
    per request.  Sealed slow requests additionally land in a per-tenant
    slow-request log with a queue-wait / admission / execute breakdown.
    """

    def __init__(self, capacity: int = 256, slow_threshold_s: float = 1.0,
                 slow_log_capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("trace store needs room for at least one request")
        self.capacity = int(capacity)
        self.slow_threshold_s = float(slow_threshold_s)
        self._entries: dict[str, dict] = {}
        self._by_job: dict[int, str] = {}
        self._slow: deque[dict] = deque(maxlen=int(slow_log_capacity))
        self._lock = threading.Lock()
        self.recorded = 0
        self.sealed = 0
        self.retained = 0
        self.discarded = 0
        #: Spans that arrived for a trace id the store no longer (or never)
        #: tracked — a cancelled job's engine span landing after its
        #: unsampled entry was discarded, for example.
        self.late_spans = 0

    # ------------------------------------------------------------ recording

    def open(self, context, tenant: str = "default") -> None:
        """Start tracking one request (called at ingress/submit)."""
        with self._lock:
            self._entries[context.trace_id] = {
                "trace_id": context.trace_id,
                "root_span_id": context.span_id,
                "tenant": tenant,
                "sampled": bool(context.sampled),
                "job_id": None,
                "status": "open",
                "duration_s": None,
                "spans": [],
            }
            self._evict_locked()

    def record(self, span: dict) -> None:
        """Add one finished span (a dict carrying ``trace_id``) to its request."""
        trace_id = span.get("trace_id")
        if not trace_id:
            return
        with self._lock:
            entry = self._entries.get(trace_id)
            if entry is None:
                self.late_spans += 1
                return
            entry["spans"].append(span)
            self.recorded += 1

    def bind_job(self, trace_id: str, job_id: int) -> None:
        """Index the request under the job id the service assigned it."""
        with self._lock:
            entry = self._entries.get(trace_id)
            if entry is None:
                return
            entry["job_id"] = job_id
            self._by_job[job_id] = trace_id

    def seal(self, trace_id: str, status: str, duration_s: float) -> bool:
        """Close one request and decide retention; True when it was kept."""
        with self._lock:
            entry = self._entries.get(trace_id)
            if entry is None:
                return False
            entry["status"] = status
            entry["duration_s"] = float(duration_s)
            slow = duration_s >= self.slow_threshold_s
            keep = entry["sampled"] or status in ("error", "rejected") or slow
            self.sealed += 1
            breakdown = self._breakdown_locked(entry)
            if slow:
                self._slow.append(breakdown)
            if not keep:
                del self._entries[trace_id]
                if entry["job_id"] is not None:
                    self._by_job.pop(entry["job_id"], None)
                self.discarded += 1
                return False
            entry["breakdown"] = breakdown
            self.retained += 1
            return True

    def _breakdown_locked(self, entry: dict) -> dict:
        """Per-stage durations for the slow-request log (seconds)."""
        stages = {}
        for span in entry["spans"]:
            name = span.get("name")
            if name in ("admission", "queue_wait", "job", "request"):
                stages[name] = stages.get(name, 0.0) + float(span.get("duration_s", 0.0))
        return {
            "trace_id": entry["trace_id"],
            "job_id": entry["job_id"],
            "tenant": entry["tenant"],
            "status": entry["status"],
            "total_s": entry["duration_s"],
            "admission_s": stages.get("admission", 0.0),
            "queue_wait_s": stages.get("queue_wait", 0.0),
            "execute_s": stages.get("job", 0.0),
        }

    def _evict_locked(self) -> None:
        while len(self._entries) > self.capacity:
            oldest_id = next(iter(self._entries))
            oldest = self._entries.pop(oldest_id)
            if oldest["job_id"] is not None:
                self._by_job.pop(oldest["job_id"], None)

    # -------------------------------------------------------------- queries

    def assemble(self, trace_id: str) -> dict | None:
        """The request's spans stitched into one tree, or None when unknown.

        Every recorded span is a subtree (engine traces arrive with their
        structural children intact); subtree roots attach to whichever
        recorded span their ``parent_span_id`` names.  Spans whose parent
        was never recorded (sampling raced a discard, a worker died mid
        chunk) attach under the root and are marked ``orphan`` rather than
        dropped — a partial trace that admits it is partial beats a clean
        lie.  Sibling order is by start time; worker-process clocks are not
        comparable with the parent's, so cross-process order is cosmetic.
        """
        with self._lock:
            entry = self._entries.get(trace_id)
            if entry is None:
                return None
            spans = copy.deepcopy(entry["spans"])
            root_span_id = entry["root_span_id"]
            summary = {
                "trace_id": entry["trace_id"],
                "job_id": entry["job_id"],
                "tenant": entry["tenant"],
                "status": entry["status"],
                "duration_s": entry["duration_s"],
                "sampled": entry["sampled"],
            }
            if "breakdown" in entry:
                summary["breakdown"] = dict(entry["breakdown"])
        index = {span["span_id"]: span for span in spans if span.get("span_id")}
        root = index.get(root_span_id)
        for span in spans:
            if span is root:
                continue
            parent = index.get(span.get("parent_span_id"))
            if parent is not None and parent is not span:
                parent["children"].append(span)
            elif root is not None:
                span.setdefault("attrs", {})["orphan"] = True
                root["children"].append(span)
        if root is not None:
            pending = [root]
            while pending:
                node = pending.pop()
                node["children"].sort(key=lambda child: child.get("start_s", 0.0))
                pending.extend(node["children"])
        summary["root"] = root
        summary["partial"] = root is None or any(
            span.get("attrs", {}).get("orphan") for span in spans
        )
        return summary

    def for_job(self, job_id: int) -> dict | None:
        """Assembled trace looked up by job id."""
        with self._lock:
            trace_id = self._by_job.get(job_id)
        return self.assemble(trace_id) if trace_id is not None else None

    def trace_id_for_job(self, job_id: int) -> str | None:
        with self._lock:
            return self._by_job.get(job_id)

    def query(self, tenant: str | None = None, slow: bool = False,
              limit: int = 50) -> list[dict]:
        """Summaries of retained requests, newest first."""
        with self._lock:
            entries = list(self._entries.values())
        summaries = []
        for entry in reversed(entries):
            if entry["status"] == "open":
                continue
            if tenant is not None and entry["tenant"] != tenant:
                continue
            if slow and (entry["duration_s"] or 0.0) < self.slow_threshold_s:
                continue
            summary = {
                "trace_id": entry["trace_id"],
                "job_id": entry["job_id"],
                "tenant": entry["tenant"],
                "status": entry["status"],
                "duration_s": entry["duration_s"],
                "sampled": entry["sampled"],
                "spans": len(entry["spans"]),
            }
            if "breakdown" in entry:
                summary["breakdown"] = dict(entry["breakdown"])
            summaries.append(summary)
            if len(summaries) >= limit:
                break
        return summaries

    def slow_requests(self, tenant: str | None = None) -> list[dict]:
        """The per-tenant slow-request log, oldest first, with breakdowns."""
        with self._lock:
            entries = list(self._slow)
        if tenant is not None:
            entries = [entry for entry in entries if entry["tenant"] == tenant]
        return entries

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "slow_threshold_s": self.slow_threshold_s,
                "tracked": len(self._entries),
                "recorded_spans": self.recorded,
                "sealed": self.sealed,
                "retained": self.retained,
                "discarded": self.discarded,
                "late_spans": self.late_spans,
                "slow_logged": len(self._slow),
            }
