"""Trace sinks: where finished query spans go.

Three consumers cover the serving tier's forensic needs:

* :class:`TraceRingBuffer` — the last N finished traces, in memory, for
  interactive inspection (``session.simulations.recent_traces()``) and for
  the process-backed batch tier, which drains each worker process's ring
  and ships the traces back to the parent on chunk join;
* :class:`JsonlTraceSink` — one JSON object per line appended to a file
  (``REPRO_TRACE_JSONL=path``), the bulk-export format offline analysis
  tooling reads;
* :class:`SlowQueryLog` — threshold-gated capture of *whole* slow queries:
  the span tree plus an EXPLAIN-style plan snapshot rendered lazily (the
  plan provider callable only runs when the threshold actually trips, so
  fast queries never pay for plan rendering).

All sinks are thread-safe and bounded; a sink failure must never fail the
query that produced the trace (export errors are counted, not raised).
"""

from __future__ import annotations

import json
import threading
from collections import deque


class TraceRingBuffer:
    """The most recent finished traces, oldest evicted first.

    Entries are finished :class:`~.tracing.Span` objects for local traces
    (the tracer defers dict serialization to read time) or plain dicts for
    traces merged in from worker processes; readers must handle both.
    """

    def __init__(self, maxlen: int = 256) -> None:
        if maxlen < 1:
            raise ValueError("ring buffer needs room for at least one trace")
        self.maxlen = int(maxlen)
        self._traces: deque[dict] = deque(maxlen=self.maxlen)
        self._lock = threading.Lock()
        self.appended = 0

    def append(self, trace: dict) -> None:
        with self._lock:
            self._traces.append(trace)
            self.appended += 1

    def snapshot(self) -> list[dict]:
        """The buffered traces, oldest first (the buffer keeps them)."""
        with self._lock:
            return list(self._traces)

    def drain(self) -> list[dict]:
        """Pop and return every buffered trace (the process-tier join path)."""
        with self._lock:
            traces = list(self._traces)
            self._traces.clear()
            return traces

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


class JsonlTraceSink:
    """Append each trace as one JSON line to a file.

    The file handle is opened lazily and kept open; writes are serialized
    under a lock and flushed per trace (a crashed process loses at most the
    line being written).  Unserializable attribute values degrade to their
    ``repr`` instead of failing the export.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._handle = None
        self._lock = threading.Lock()
        self.written = 0
        self.errors = 0

    def write(self, trace: dict) -> None:
        try:
            line = json.dumps(trace, default=repr, separators=(",", ":"))
            with self._lock:
                if self._handle is None:
                    self._handle = open(self.path, "a", encoding="utf-8")
                self._handle.write(line + "\n")
                self._handle.flush()
                self.written += 1
        except Exception:
            with self._lock:
                self.errors += 1

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def stats(self) -> dict:
        with self._lock:
            return {"path": self.path, "written": self.written, "errors": self.errors}


class SlowQueryLog:
    """Threshold-gated capture of slow queries with their plan snapshots.

    ``offer`` is called with every finished query span; spans at or above
    ``threshold_s`` are captured as ``{sql, seconds, rows, trace, plan}``
    entries in a bounded deque.  The plan snapshot comes from the span's
    lazily attached provider (see :attr:`~.tracing.Span.plan_provider`), so
    rendering cost is only paid for queries that are already slow.
    """

    def __init__(self, threshold_s: float = 0.25, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("slow-query log needs room for at least one entry")
        self.threshold_s = float(threshold_s)
        self.capacity = int(capacity)
        self._entries: deque[dict] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self.captured = 0

    def offer(self, span) -> bool:
        """Capture the span if it is slow enough; returns True when captured."""
        duration = span.duration_s
        if duration < self.threshold_s:
            return False
        plan: list[str] = []
        provider = getattr(span, "plan_provider", None)
        if provider is not None:
            try:
                plan = list(provider())
            except Exception:
                plan = ["<plan snapshot failed>"]
        entry = {
            "sql": span.attrs.get("sql", ""),
            "seconds": duration,
            "rows": span.attrs.get("rows"),
            "cache": span.attrs.get("cache"),
            "trace": span.to_dict(),
            "plan": plan,
        }
        with self._lock:
            self._entries.append(entry)
            self.captured += 1
        return True

    def entries(self) -> list[dict]:
        """Captured slow queries, oldest first."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "threshold_s": self.threshold_s,
                "capacity": self.capacity,
                "captured": self.captured,
                "size": len(self._entries),
            }
