"""Span-based query tracing: where did this query's milliseconds go?

Every traced execution produces a **span tree**: a root ``query`` span with
``parse`` → ``optimize`` → ``plan`` → ``execute`` children on the cold path
(a warm plan-cache hit goes straight to ``execute``), per-block ``block``
spans under execute (one per CTE plus ``main``, carrying the same pre-limit
actual row counts EXPLAIN ANALYZE and the adaptive feedback loop observe),
and per-operator ``operator`` spans (scan / hash-join / filter / aggregate /
fused-join-aggregate) with wall time, output rows and morsel counts.

Design constraints, in priority order:

1. **Near-zero disabled overhead.**  An engine without a tracer takes one
   ``is None`` branch per execution and nothing else; the morsel-count hook
   (:func:`annotate_current`) is a thread-local peek that returns
   immediately when no span is active.
2. **Correct flow across threads.**  The active-span stack is thread-local:
   each job-service worker thread traces its own queries without locking or
   cross-talk.  Worker *processes* trace into their own process-wide ring,
   which the batch tier drains and merges on chunk join
   (:func:`drain_shared_traces`).
3. **Context-manager instrumentation.**  Instrumented code wraps stages in
   ``with tracer.span(...)``; exceptions still finish and record spans, so
   a failing query leaves a truthful partial trace.

Enablement: pass ``enable_tracing=True`` (or a :class:`Tracer`) to
``MemDatabase`` / ``MemDBBackend``, or set ``REPRO_TRACE=1`` to turn the
process-shared tracer on for every engine that does not configure tracing
explicitly (the CI tier-1 trace leg).  ``REPRO_TRACE_SLOW_MS`` moves the
shared slow-query threshold (default 250 ms); ``REPRO_TRACE_JSONL=path``
adds a JSON-lines export sink.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager, nullcontext
from typing import Callable, Iterator, Optional

from .metrics import MetricsRegistry, global_registry
from .sinks import JsonlTraceSink, SlowQueryLog, TraceRingBuffer

#: Environment switch: ``REPRO_TRACE=1`` enables the shared tracer for every
#: engine that does not configure tracing explicitly.
TRACE_ENV_VAR = "REPRO_TRACE"
#: Slow-query threshold for the shared tracer, in milliseconds.
TRACE_SLOW_MS_ENV_VAR = "REPRO_TRACE_SLOW_MS"
#: When set, the shared tracer also exports every root trace to this path.
TRACE_JSONL_ENV_VAR = "REPRO_TRACE_JSONL"

_TRUE_VALUES = frozenset({"1", "true", "yes", "on"})

#: SQL text recorded on spans is truncated to this many characters: a dense
#: initial-state INSERT can carry megabytes of literals, and the ring buffer
#: must stay bounded in bytes, not just in trace count.
SPAN_SQL_MAX_CHARS = 2000


def tracing_env_enabled() -> bool | None:
    """The ``REPRO_TRACE`` setting: True/False, or None when unset."""
    raw = os.environ.get(TRACE_ENV_VAR)
    if raw is None or raw.strip() == "":
        return None
    return raw.strip().lower() in _TRUE_VALUES


# ---------------------------------------------------------------------------
# Trace identity: W3C-traceparent-style ids shared across threads/processes
# ---------------------------------------------------------------------------

#: Span ids are a random per-process prefix plus a cheap counter: unique
#: across the worker processes of one serving tier without an os.urandom
#: syscall per span (ids are minted once per request plus once per root
#: span, but the prefix also keeps replayed/forked id streams disjoint).
_ID_PREFIX = os.urandom(4).hex()
_ID_COUNTER = itertools.count(1)


def next_span_id() -> str:
    """A fresh 16-hex-char span id, unique within and across processes."""
    return f"{_ID_PREFIX}{next(_ID_COUNTER) & 0xFFFFFFFF:08x}"


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id (random, W3C traceparent width)."""
    return os.urandom(16).hex()


class TraceContext:
    """The identity one request carries through the serving stack.

    Minted at HTTP ingress (or at submit for library callers), serialized
    into worker-process chunks, and persisted in the journal so replayed
    jobs keep their lineage.  ``span_id`` names the request's *root* span;
    spans recorded for the request parent to it (directly or transitively).
    ``sampled`` is the head-based sampling decision — serving-layer spans
    are always recorded (they are a handful of dict writes), but engine
    execution only opens spans when the request is sampled.
    """

    __slots__ = ("trace_id", "span_id", "parent_span_id", "sampled", "started_s")

    def __init__(
        self,
        trace_id: str,
        span_id: str | None = None,
        parent_span_id: str | None = None,
        sampled: bool = True,
        started_s: float | None = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id if span_id is not None else next_span_id()
        self.parent_span_id = parent_span_id
        self.sampled = bool(sampled)
        self.started_s = started_s if started_s is not None else time.perf_counter()

    @classmethod
    def generate(cls, sampled: bool = True) -> "TraceContext":
        """A brand-new trace rooted here (no upstream parent)."""
        return cls(new_trace_id(), sampled=sampled)

    @classmethod
    def from_traceparent(cls, header: str) -> "TraceContext | None":
        """Adopt an incoming ``traceparent`` header, or None when malformed.

        The caller becomes a child of the upstream span: the header's span
        id is recorded as ``parent_span_id`` and a fresh local root span id
        is minted.  The upstream sampled flag (bit 0 of the flags byte) is
        honored as this request's head-sampling decision.
        """
        parts = header.strip().split("-")
        if len(parts) != 4:
            return None
        version, trace_id, span_id, flags = parts
        if len(version) != 2 or len(trace_id) != 32 or len(span_id) != 16 or len(flags) != 2:
            return None
        try:
            flag_bits = int(flags, 16)
            int(trace_id, 16)
            int(span_id, 16)
        except ValueError:
            return None
        if version == "ff" or trace_id == "0" * 32 or span_id == "0" * 16:
            return None
        return cls(trace_id, parent_span_id=span_id, sampled=bool(flag_bits & 0x01))

    def to_traceparent(self) -> str:
        """This context rendered as an outgoing ``traceparent`` header."""
        return f"00-{self.trace_id}-{self.span_id}-{'01' if self.sampled else '00'}"

    def child(self) -> "TraceContext":
        """A context for work nested under this one (same trace, new span)."""
        return TraceContext(
            self.trace_id,
            parent_span_id=self.span_id,
            sampled=self.sampled,
            started_s=self.started_s,
        )

    def __repr__(self) -> str:
        return (
            f"TraceContext(trace_id={self.trace_id!r}, span_id={self.span_id!r}, "
            f"sampled={self.sampled})"
        )


def span_record(
    name: str,
    *,
    trace_id: str,
    span_id: str | None = None,
    parent_span_id: str | None = None,
    start_s: float,
    end_s: float | None = None,
    attrs: dict | None = None,
) -> dict:
    """A finished span as a plain dict, for stages timed without a Span.

    The serving tier synthesizes admission / queue-wait / request-root spans
    from timestamps it already holds (the wait happened before any worker
    thread ran); this renders them in exactly the shape
    :meth:`Span.to_dict` produces so trace assembly treats both alike.
    """
    end = end_s if end_s is not None else time.perf_counter()
    return {
        "name": name,
        "start_s": start_s,
        "duration_s": max(0.0, end - start_s),
        "attrs": dict(attrs) if attrs else {},
        "children": [],
        "trace_id": trace_id,
        "span_id": span_id if span_id is not None else next_span_id(),
        "parent_span_id": parent_span_id,
    }


class Span:
    """One timed node of a trace tree.

    ``attrs`` carries whatever the instrumented stage recorded (row counts,
    cache provenance, operator kind, morsel counts); ``plan_provider`` is an
    optional zero-argument callable the slow-query log invokes to render an
    EXPLAIN-style plan snapshot — attached lazily so fast queries never pay
    for plan rendering.
    """

    __slots__ = ("name", "attrs", "children", "start_s", "end_s", "plan_provider",
                 "trace_id", "span_id", "parent_span_id", "_tracer", "_parent")

    def __init__(self, name: str, attrs: dict | None = None, tracer: "Tracer | None" = None) -> None:
        self.name = name
        # The span takes ownership of ``attrs`` (no defensive copy): every
        # caller hands over a fresh kwargs dict, and a traced query creates
        # dozens of spans — the copies were measurable (bench_obs_overhead).
        self.attrs: dict = attrs if attrs is not None else {}
        self.children: list[Span] = []
        self.start_s = time.perf_counter()
        self.end_s: float | None = None
        self.plan_provider: Callable[[], list[str]] | None = None
        #: Distributed-trace identity: set on root spans opened while a
        #: :class:`TraceContext` is active on this thread; nested spans stay
        #: id-less (their position in ``children`` is identity enough).
        self.trace_id: str | None = None
        self.span_id: str | None = None
        self.parent_span_id: str | None = None
        self._tracer = tracer
        self._parent: Span | None = None

    # The span is its own context manager (rather than wrapping it in a
    # separate handle or ``@contextmanager`` generator): a traced query
    # opens dozens of spans, and the extra allocation plus the generator
    # protocol were the difference between the enabled-overhead gate in
    # bench_obs_overhead passing and failing.

    def __enter__(self) -> "Span":
        stack = getattr(_ACTIVE, "spans", None)
        if stack is None:
            stack = _ACTIVE.spans = []
        if stack:
            parent = stack[-1]
            self._parent = parent
            parent.children.append(self)
        else:
            # A root: adopt the thread's active request context (if any) so
            # this tree carries its trace identity — the cross-thread /
            # cross-process link the serving tier assembles request trees by.
            context = getattr(_ACTIVE, "context", None)
            if context is not None:
                self.trace_id = context.trace_id
                self.parent_span_id = context.span_id
                self.span_id = next_span_id()
        stack.append(self)
        self.start_s = time.perf_counter()
        return self

    def __exit__(self, _exc_type, _exc, _tb) -> bool:
        self.end_s = time.perf_counter()
        _ACTIVE.spans.pop()
        is_root = self._parent is None
        # Drop the parent backref: it closes a reference cycle with
        # ``parent.children``, and cyclic trace trees evicted from the ring
        # pile up as gen-2 garbage — bursty GC pauses billed to traced
        # queries.  One-way trees free by refcount the moment they leave.
        self._parent = None
        tracer = self._tracer
        if tracer is not None and (is_root or self.name == "query"):
            tracer._dispatch(self, is_root=is_root)
        return False

    def finish(self) -> None:
        if self.end_s is None:
            self.end_s = time.perf_counter()

    @property
    def duration_s(self) -> float:
        end = self.end_s if self.end_s is not None else time.perf_counter()
        return end - self.start_s

    def set(self, **attrs: object) -> None:
        self.attrs.update(attrs)

    def add(self, key: str, amount: float = 1) -> None:
        """Accumulate a numeric attribute (morsel counts, partition counts)."""
        self.attrs[key] = self.attrs.get(key, 0) + amount

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str, **attrs: object) -> Optional["Span"]:
        """First descendant (or self) matching name and every given attr."""
        for span in self.walk():
            if span.name == name and all(span.attrs.get(k) == v for k, v in attrs.items()):
                return span
        return None

    def find_all(self, name: str) -> list["Span"]:
        return [span for span in self.walk() if span.name == name]

    def to_dict(self) -> dict:
        """A JSON-ready rendering of the subtree (durations in seconds)."""
        rendered = {
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }
        if self.trace_id is not None:
            rendered["trace_id"] = self.trace_id
            rendered["span_id"] = self.span_id
            rendered["parent_span_id"] = self.parent_span_id
        return rendered

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration_s * 1000:.3f}ms, attrs={self.attrs})"


# ---------------------------------------------------------------------------
# The per-thread active-span stack
# ---------------------------------------------------------------------------

_ACTIVE = threading.local()


def current_span() -> Span | None:
    """The innermost active span on this thread, or None."""
    stack = getattr(_ACTIVE, "spans", None)
    return stack[-1] if stack else None


def current_context() -> TraceContext | None:
    """The request context active on this thread, or None."""
    return getattr(_ACTIVE, "context", None)


@contextmanager
def activate_context(context: TraceContext | None):
    """Make ``context`` the thread's active request identity for a block.

    Root spans opened inside the block adopt the context's trace id and
    parent to its root span — this is how a job worker thread (or a spawned
    worker process) joins the trace the HTTP ingress started.  Nesting
    restores the previous context on exit; ``None`` deactivates.
    """
    previous = getattr(_ACTIVE, "context", None)
    _ACTIVE.context = context
    try:
        yield context
    finally:
        _ACTIVE.context = previous


def annotate_current(key: str, amount: float = 1) -> None:
    """Accumulate onto the active span; a cheap no-op when tracing is off.

    This is the hot-path hook the parallel subsystem calls to record morsel
    batch/task counts: with no active span it costs one thread-local lookup
    and a truthiness check.
    """
    stack = getattr(_ACTIVE, "spans", None)
    if stack:
        stack[-1].add(key, amount)


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class Tracer:
    """Creates spans, dispatches finished root traces to sinks and metrics.

    One tracer can serve many engines concurrently: span nesting state is
    thread-local and process-global (so an engine's query spans nest under a
    service-layer job span opened on the same thread, whichever tracer
    created it), while the sinks and counters are owned per tracer.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        ring: TraceRingBuffer | None = None,
        sinks: tuple | list = (),
        slow_log: SlowQueryLog | None = None,
        request_store=None,
    ) -> None:
        self.registry = registry
        self.ring = ring if ring is not None else TraceRingBuffer()
        self.sinks = list(sinks)
        self.slow_log = slow_log
        #: Optional :class:`~.sinks.RequestTraceStore`: root spans that carry
        #: a trace id (i.e. were opened under an active request context) are
        #: also indexed there for ``/v1/traces`` assembly.
        self.request_store = request_store
        self._lock = threading.Lock()
        self.traces = 0
        self.spans = 0
        self.traces_dropped = 0

    # ---------------------------------------------------------------- spans

    def span(self, name: str, **attrs: object) -> Span:
        """A child span nested under the thread's current span (or a root)."""
        return Span(name, attrs, tracer=self)

    def query(self, sql: str, **attrs: object) -> Span:
        """The root-per-query span; always dispatched to metrics + slow log.

        Nested queries (an engine call inside a lifecycle or job span) keep
        their per-query metrics and slow-log eligibility but only the
        outermost root lands in the ring/export sinks, so one logical trace
        is never double-buffered.
        """
        span = Span("query", attrs, tracer=self)
        span.attrs["sql"] = sql[:SPAN_SQL_MAX_CHARS]
        return span

    # ------------------------------------------------------------- dispatch

    def _dispatch(self, span: Span, is_root: bool) -> None:
        """Route one finished span; called once per query, not per span.

        Span totals are counted here by walking the dispatched subtree (the
        per-span hot path touches no tracer state at all); spans nested
        under a query dispatched non-root are counted when their root is.
        """
        if span.name == "query":
            with self._lock:
                self.traces += 1
            if self.registry is not None:
                self.registry.counter("engine.queries").inc()
                self.registry.histogram("engine.query_seconds").observe(span.duration_s)
            if self.slow_log is not None:
                self.slow_log.offer(span)
        if is_root:
            count = 0
            pending = [span]
            while pending:
                node = pending.pop()
                count += 1
                pending.extend(node.children)
            with self._lock:
                self.spans += count
            # The ring stores the Span itself; serialization to dicts is
            # deferred to the readers (recent_traces / the process-tier
            # drain), keeping to_dict off the per-query hot path.
            if self.ring is not None:
                self.ring.append(span)
            if self.sinks:
                trace = span.to_dict()
                for sink in self.sinks:
                    sink.write(trace)
            if self.request_store is not None and span.trace_id is not None:
                self.request_store.record(span.to_dict())

    # ---------------------------------------------------------------- stats

    def recent_traces(self) -> list[dict]:
        """The ring buffer's traces as dicts, oldest first.

        The ring holds live :class:`Span` objects for locally produced
        traces (serialized here, on read) and plain dicts for traces merged
        in from worker processes.
        """
        if self.ring is None:
            return []
        return [
            trace.to_dict() if isinstance(trace, Span) else trace
            for trace in self.ring.snapshot()
        ]

    def slow_queries(self) -> list[dict]:
        """The slow-query log's captured entries, oldest first."""
        return self.slow_log.entries() if self.slow_log is not None else []

    def stats(self) -> dict:
        """Tracer activity counters plus per-sink state."""
        with self._lock:
            traces, spans, dropped = self.traces, self.spans, self.traces_dropped
        stats = {
            "enabled": True,
            "traces": traces,
            "spans": spans,
            "traces_dropped": dropped,
            "ring_size": len(self.ring) if self.ring is not None else 0,
        }
        if self.request_store is not None:
            stats["request_store"] = self.request_store.stats()
        if self.slow_log is not None:
            stats["slow_queries"] = self.slow_log.stats()
        if self.sinks:
            stats["sinks"] = [
                sink.stats() if hasattr(sink, "stats") else repr(sink) for sink in self.sinks
            ]
        return stats


# ---------------------------------------------------------------------------
# The process-shared tracer (what REPRO_TRACE=1 turns on)
# ---------------------------------------------------------------------------

_SHARED_TRACER: Tracer | None = None
_SHARED_TRACER_LOCK = threading.Lock()


def _slow_threshold_s() -> float:
    raw = os.environ.get(TRACE_SLOW_MS_ENV_VAR)
    if raw:
        try:
            return max(0.0, float(raw)) / 1000.0
        except ValueError:
            pass
    return 0.25


def shared_tracer() -> Tracer:
    """The process-wide tracer (created on first use, env-configured sinks)."""
    global _SHARED_TRACER
    with _SHARED_TRACER_LOCK:
        if _SHARED_TRACER is None:
            sinks = []
            jsonl_path = os.environ.get(TRACE_JSONL_ENV_VAR)
            if jsonl_path:
                sinks.append(JsonlTraceSink(jsonl_path))
            _SHARED_TRACER = Tracer(
                registry=global_registry(),
                ring=TraceRingBuffer(256),
                sinks=sinks,
                slow_log=SlowQueryLog(threshold_s=_slow_threshold_s()),
            )
        return _SHARED_TRACER


def env_tracer() -> Tracer | None:
    """The shared tracer when ``REPRO_TRACE`` enables it, else None."""
    return shared_tracer() if tracing_env_enabled() else None


def drain_shared_traces(limit: int | None = None) -> list[dict]:
    """Pop the shared ring's traces (newest ``limit``); [] when never traced.

    The process-backed batch tier calls this inside each worker process so
    chunk results carry the traces produced while executing them; draining
    (not snapshotting) keeps a chunk's traces from being shipped twice.
    Traces beyond ``limit`` are dropped — counted, not silent: see
    :func:`drain_shared_traces_counted` for the count.
    """
    traces, _dropped = drain_shared_traces_counted(limit)
    return traces


def drain_shared_traces_counted(limit: int | None = None) -> tuple[list[dict], int]:
    """Like :func:`drain_shared_traces` but also reports how many traces the
    ``limit`` truncated.

    The dropped count is accumulated on the shared tracer (visible in its
    ``stats()`` as ``traces_dropped``) *and* returned, so a worker process
    can ship it to the parent inside the chunk's observability snapshot.
    """
    with _SHARED_TRACER_LOCK:
        tracer = _SHARED_TRACER
    if tracer is None or tracer.ring is None:
        return [], 0
    traces = tracer.ring.drain()
    dropped = 0
    if limit is not None and len(traces) > limit:
        dropped = len(traces) - limit
        traces = traces[-limit:]
        with tracer._lock:
            tracer.traces_dropped += dropped
    return (
        [trace.to_dict() if isinstance(trace, Span) else trace for trace in traces],
        dropped,
    )


def maybe_span(name: str, **attrs: object):
    """A lifecycle span when tracing is active on this thread, else a no-op.

    Used by code that cannot know which tracer (if any) is configured — the
    simulator compile/execute lifecycle, the job service's per-job wrapper.
    When a span is already active on this thread the new span nests under it
    (whoever opened the root dispatches it); otherwise, if ``REPRO_TRACE``
    is on, the shared tracer opens a fresh root.  With tracing fully off
    this is one thread-local peek plus one environment lookup.
    """
    stack = getattr(_ACTIVE, "spans", None)
    if stack:
        # Nested: attach to the active span; whoever opened the root (and
        # holds the tracer reference) dispatches the whole tree on exit.
        return Span(name, attrs)
    if tracing_env_enabled():
        return shared_tracer().span(name, **attrs)
    return nullcontext(None)


def reset_shared_tracer() -> None:
    """Drop the process-shared tracer (tests re-create it with fresh env)."""
    global _SHARED_TRACER
    with _SHARED_TRACER_LOCK:
        if _SHARED_TRACER is not None:
            for sink in _SHARED_TRACER.sinks:
                close = getattr(sink, "close", None)
                if close is not None:
                    close()
        _SHARED_TRACER = None
