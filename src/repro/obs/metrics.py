"""Process-wide metrics: counters, gauges, bounded histograms.

The engine's self-tuning subsystems (plan cache, optimizer, adaptive
feedback, parallel pool, encoded storage) each keep their own ad-hoc
counters; this module provides the *shared* instrument vocabulary that the
service layer and the tracer record into, and the snapshot format every
stats surface renders.  Three instrument kinds cover the serving tier's
needs:

* :class:`Counter` — monotonically increasing event counts (queries run,
  jobs cancelled, engines created);
* :class:`Gauge` — last-write-wins level measurements (queue depth, jobs
  running right now);
* :class:`Histogram` — bounded-window latency distributions reporting
  count/sum/min/max/mean plus p50/p95/p99 over the most recent
  observations.  The window is bounded (default 1024 samples) so a
  long-running service never accumulates unbounded state; totals
  (``count``/``sum``) remain exact over the full lifetime.

All instruments are thread-safe: the job service's worker threads and the
engine's query threads record concurrently.  A :class:`MetricsRegistry`
names and owns instruments (get-or-create, type-checked); the process-wide
:func:`global_registry` is what the shared tracer records into, mirroring
the process-wide plan cache and worker pool.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Iterator


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge for levels")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A last-write-wins level measurement (also supports inc/dec)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


def _percentile(ordered: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an already sorted, non-empty list."""
    rank = max(0, min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


class Histogram:
    """A bounded-window distribution with exact lifetime totals.

    Percentiles are computed over the most recent ``window`` observations
    (a ring buffer — old samples age out, so p99 tracks *current* latency
    rather than averaging over the process lifetime), while ``count`` /
    ``sum`` / ``min`` / ``max`` stay exact over every observation ever made.
    """

    __slots__ = ("_window", "_values", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(self, window: int = 1024) -> None:
        if window < 1:
            raise ValueError("histogram window must be positive")
        self._window = int(window)
        self._values: deque[float] = deque(maxlen=self._window)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._values.append(value)
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def time(self) -> "_HistogramTimer":
        """Context manager observing the elapsed wall time of its block."""
        return _HistogramTimer(self)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> dict:
        """Totals plus windowed percentiles (empty histograms report zeros)."""
        with self._lock:
            window = sorted(self._values)
            count, total = self._count, self._sum
            minimum, maximum = self._min, self._max
        if not count:
            return {
                "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0,
            }
        return {
            "count": count,
            "sum": total,
            "min": minimum,
            "max": maximum,
            "mean": total / count,
            "p50": _percentile(window, 0.50),
            "p95": _percentile(window, 0.95),
            "p99": _percentile(window, 0.99),
        }


class _HistogramTimer:
    __slots__ = ("_histogram", "_started")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._started = 0.0

    def __enter__(self) -> "_HistogramTimer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *_exc) -> None:
        self._histogram.observe(time.perf_counter() - self._started)


class MetricsRegistry:
    """Named instruments with get-or-create semantics.

    Asking for an existing name returns the same instrument (so concurrent
    recorders share one counter); asking for a name registered as a
    different kind raises — silent kind aliasing would corrupt snapshots.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind: type, factory):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise TypeError(
                    f"metric {name!r} is a {type(instrument).__name__}, not a {kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, Gauge)

    def histogram(self, name: str, window: int = 1024) -> Histogram:
        return self._get_or_create(name, Histogram, lambda: Histogram(window))

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def __iter__(self) -> Iterator[tuple[str, object]]:
        with self._lock:
            items = list(self._instruments.items())
        return iter(items)

    def snapshot(self) -> dict:
        """One nested dict per instrument kind, ready for rendering/export."""
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for name, instrument in self:
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument.value
            else:
                histograms[name] = instrument.snapshot()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}


#: Process-wide registry shared by every tracer/service not given its own —
#: mirrors the shared plan cache and worker pool.
_GLOBAL_REGISTRY = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _GLOBAL_REGISTRY
