"""Process-wide metrics: counters, gauges, bounded histograms.

The engine's self-tuning subsystems (plan cache, optimizer, adaptive
feedback, parallel pool, encoded storage) each keep their own ad-hoc
counters; this module provides the *shared* instrument vocabulary that the
service layer and the tracer record into, and the snapshot format every
stats surface renders.  Three instrument kinds cover the serving tier's
needs:

* :class:`Counter` — monotonically increasing event counts (queries run,
  jobs cancelled, engines created);
* :class:`Gauge` — last-write-wins level measurements (queue depth, jobs
  running right now);
* :class:`Histogram` — bounded-window latency distributions reporting
  count/sum/min/max/mean plus p50/p95/p99 over the most recent
  observations.  The window is bounded (default 1024 samples) so a
  long-running service never accumulates unbounded state; totals
  (``count``/``sum``) remain exact over the full lifetime.

All instruments are thread-safe: the job service's worker threads and the
engine's query threads record concurrently.  A :class:`MetricsRegistry`
names and owns instruments (get-or-create, type-checked); the process-wide
:func:`global_registry` is what the shared tracer records into, mirroring
the process-wide plan cache and worker pool.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Iterator


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge for levels")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A last-write-wins level measurement (also supports inc/dec)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


def _percentile(ordered: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an already sorted, non-empty list."""
    rank = max(0, min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


class Histogram:
    """A bounded-window distribution with exact lifetime totals.

    Percentiles are computed over the most recent ``window`` observations
    (a ring buffer — old samples age out, so p99 tracks *current* latency
    rather than averaging over the process lifetime), while ``count`` /
    ``sum`` / ``min`` / ``max`` stay exact over every observation ever made.
    """

    __slots__ = ("_window", "_values", "_exemplars", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(self, window: int = 1024) -> None:
        if window < 1:
            raise ValueError("histogram window must be positive")
        self._window = int(window)
        self._values: deque[float] = deque(maxlen=self._window)
        #: Parallel to ``_values``: the exemplar dict recorded with each
        #: observation (None for plain observes).  Lazily created on the
        #: first exemplar so exemplar-free histograms pay nothing.
        self._exemplars: deque[dict | None] | None = None
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float, exemplar: dict | None = None) -> None:
        """Record one observation, optionally tagged with an exemplar.

        An exemplar is a small dict (``{"trace_id": ..., "job_id": ...}``)
        linking this latency sample to the trace that produced it; the
        snapshot surfaces the exemplar of the tail (>= p99) window sample so
        a bad p99 on ``/v1/stats`` resolves to an actual request trace.
        """
        value = float(value)
        with self._lock:
            if exemplar is not None and self._exemplars is None:
                # Backfill alignment for the observations already windowed.
                self._exemplars = deque(
                    [None] * len(self._values), maxlen=self._window
                )
            self._values.append(value)
            if self._exemplars is not None:
                self._exemplars.append(exemplar)
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def time(self) -> "_HistogramTimer":
        """Context manager observing the elapsed wall time of its block."""
        return _HistogramTimer(self)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> dict:
        """Totals plus windowed percentiles (empty histograms report zeros).

        When any windowed observation carried an exemplar, the snapshot
        includes an ``exemplar`` key: the most recent exemplar among the
        tail (value >= p99) observations — the trace to read when asking
        "what *is* that p99".
        """
        with self._lock:
            raw = list(self._values)
            exemplars = list(self._exemplars) if self._exemplars is not None else None
            count, total = self._count, self._sum
            minimum, maximum = self._min, self._max
        if not count:
            return {
                "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0,
            }
        window = sorted(raw)
        p99 = _percentile(window, 0.99)
        snapshot = {
            "count": count,
            "sum": total,
            "min": minimum,
            "max": maximum,
            "mean": total / count,
            "p50": _percentile(window, 0.50),
            "p95": _percentile(window, 0.95),
            "p99": p99,
        }
        if exemplars is not None:
            for value, exemplar in zip(reversed(raw), reversed(exemplars)):
                if exemplar is not None and value >= p99:
                    snapshot["exemplar"] = dict(exemplar, value=value)
                    break
        return snapshot


class _HistogramTimer:
    __slots__ = ("_histogram", "_started")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._started = 0.0

    def __enter__(self) -> "_HistogramTimer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *_exc) -> None:
        self._histogram.observe(time.perf_counter() - self._started)


class MetricsRegistry:
    """Named instruments with get-or-create semantics.

    Asking for an existing name returns the same instrument (so concurrent
    recorders share one counter); asking for a name registered as a
    different kind raises — silent kind aliasing would corrupt snapshots.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind: type, factory):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise TypeError(
                    f"metric {name!r} is a {type(instrument).__name__}, not a {kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, Gauge)

    def histogram(self, name: str, window: int = 1024) -> Histogram:
        return self._get_or_create(name, Histogram, lambda: Histogram(window))

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def __iter__(self) -> Iterator[tuple[str, object]]:
        with self._lock:
            items = list(self._instruments.items())
        return iter(items)

    def snapshot(self) -> dict:
        """One nested dict per instrument kind, ready for rendering/export."""
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for name, instrument in self:
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument.value
            else:
                histograms[name] = instrument.snapshot()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}


#: Process-wide registry shared by every tracer/service not given its own —
#: mirrors the shared plan cache and worker pool.
_GLOBAL_REGISTRY = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _GLOBAL_REGISTRY


# ---------------------------------------------------------------------------
# Prometheus text exposition (stdlib-only, classic 0.0.4 format)
# ---------------------------------------------------------------------------

#: The Content-Type ``GET /v1/metrics`` answers with.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_SAFE = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _sanitize_metric_name(name: str) -> str:
    safe = "".join(ch if ch in _NAME_SAFE else "_" for ch in name)
    if safe and safe[0].isdigit():
        safe = "_" + safe
    return safe


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _split_labeled(name: str) -> tuple[str, dict[str, str]]:
    """Fold the repo's flat instrument names into Prometheus labels.

    ``tenant.<t>.<instrument>`` becomes ``tenant_<instrument>{tenant="t"}``
    (matching how :func:`repro.bench.report.tenant_table` parses the same
    names) and ``http.route.<route>.<instrument>`` becomes
    ``http_route_<instrument>{route="<route>"}``; everything else keeps its
    dotted name, sanitized.
    """
    if name.startswith("tenant."):
        middle, _, instrument = name[len("tenant."):].rpartition(".")
        if middle:
            return f"tenant_{instrument}", {"tenant": middle}
    if name.startswith("http.route."):
        middle, _, instrument = name[len("http.route."):].rpartition(".")
        if middle:
            return f"http_route_{instrument}", {"route": middle}
    return name, {}


def _render_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{_escape_label(str(value))}"' for key, value in labels.items())
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value)) if not float(value).is_integer() else str(int(value))


def prometheus_exposition(*snapshots: dict, prefix: str = "repro") -> str:
    """Render metrics snapshots as Prometheus classic text exposition.

    Takes one or more :meth:`MetricsRegistry.snapshot` dicts (later
    snapshots win on name collisions), renders counters with a ``_total``
    suffix, gauges plainly, and histograms as summaries (``quantile``
    labels plus ``_sum`` / ``_count``).  Histogram exemplars — the classic
    text format has no exemplar syntax — are emitted as ``# exemplar``
    comment lines next to their series, so the payload stays parseable by
    any 0.0.4 scraper while still linking p99s to trace ids.
    """
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    for snapshot in snapshots:
        counters.update(snapshot.get("counters", {}))
        gauges.update(snapshot.get("gauges", {}))
        histograms.update(snapshot.get("histograms", {}))

    lines: list[str] = []

    def series_name(kind_suffix: str, raw_name: str) -> tuple[str, dict[str, str]]:
        base, labels = _split_labeled(raw_name)
        return f"{prefix}_{_sanitize_metric_name(base)}{kind_suffix}", labels

    for raw_name in sorted(counters):
        name, labels = series_name("_total", raw_name)
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name}{_render_labels(labels)} {_format_value(counters[raw_name])}")
    for raw_name in sorted(gauges):
        name, labels = series_name("", raw_name)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name}{_render_labels(labels)} {_format_value(gauges[raw_name])}")
    for raw_name in sorted(histograms):
        name, labels = series_name("", raw_name)
        stats = histograms[raw_name]
        lines.append(f"# TYPE {name} summary")
        for quantile, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            q_labels = dict(labels, quantile=quantile)
            lines.append(f"{name}{_render_labels(q_labels)} {_format_value(stats.get(key, 0.0))}")
        lines.append(f"{name}_sum{_render_labels(labels)} {_format_value(stats.get('sum', 0.0))}")
        lines.append(f"{name}_count{_render_labels(labels)} {_format_value(stats.get('count', 0))}")
        exemplar = stats.get("exemplar")
        if exemplar:
            tags = " ".join(
                f"{key}={value}" for key, value in exemplar.items() if key != "value"
            )
            lines.append(
                f"# exemplar {name}{_render_labels(dict(labels, quantile='0.99'))} {tags}"
            )
    return "\n".join(lines) + "\n"
