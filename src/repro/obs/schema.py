"""The unified ``engine_stats()`` schema.

Five subsystems grew five ad-hoc stats dicts with drifting conventions
(``invalidations`` on the plan cache vs ``replans`` in two places vs
``dictionary_rebuilds`` buried three levels deep per column).  This module
is the single place that shape is defined:

* :func:`unified_engine_stats` assembles the subsystem dicts into one
  versioned document — canonical top-level sections ``plan_cache`` /
  ``optimizer`` / ``adaptive`` / ``parallel`` / ``storage`` / ``tracing``
  plus roll-up aggregates (e.g. ``storage["dictionary_rebuilds"]`` summed
  across every column of every table, so callers stop re-deriving it).
  Back-compat aliases are kept *by reference*: ``optimizer["adaptive"]``
  remains the same dict object as the promoted top-level ``adaptive``
  section, so pre-existing readers (``session.adaptive_stats()``) keep
  working without a copy drifting out of sync.
* :func:`flatten_counters` projects the nested document onto flat dotted
  names (``plan_cache.hits``, ``storage.dictionary_rebuilds``) — the
  vocabulary the metrics registry, text renderers and JSONL exports share.
"""

from __future__ import annotations

from numbers import Number

#: Bumped when sections are added/renamed; readers can branch on it.
ENGINE_STATS_SCHEMA_VERSION = 1


def _aggregate_dictionary_rebuilds(storage: dict) -> int:
    """Total dictionary rebuilds across every column of every table."""
    total = 0
    for table_stats in storage.get("tables", {}).values():
        for column_stats in table_stats.get("columns", {}).values():
            total += int(column_stats.get("dictionary_rebuilds", 0))
    return total


def unified_engine_stats(
    plan_cache: dict,
    optimizer: dict,
    parallel: dict,
    storage: dict,
    tracing: dict | None = None,
) -> dict:
    """Assemble subsystem stats into the versioned unified document.

    The inputs are the subsystems' own ``*_stats()`` dicts; they are
    incorporated as-is (no copies) so identity-based back-compat aliases
    hold.  ``tracing`` is the tracer's ``stats()`` (or None when tracing is
    disabled, rendered as ``{"enabled": False}``).
    """
    adaptive = optimizer.get("adaptive", {})
    storage = dict(storage)
    storage["dictionary_rebuilds"] = _aggregate_dictionary_rebuilds(storage)
    return {
        "schema_version": ENGINE_STATS_SCHEMA_VERSION,
        "plan_cache": plan_cache,
        "optimizer": optimizer,
        # Promoted from optimizer["adaptive"] (which stays as an alias to
        # this same object): the feedback loop is a first-class subsystem.
        "adaptive": adaptive,
        "parallel": parallel,
        "storage": storage,
        "tracing": tracing if tracing is not None else {"enabled": False},
    }


#: Sections whose scalar leaves become dotted counters.  Deep sub-documents
#: that are per-entity detail rather than counters (per-table storage,
#: adaptive event lists, statistics-catalog summaries) are skipped.
_FLATTEN_SKIP_KEYS = frozenset({"tables", "events", "statistics", "sinks"})


def flatten_counters(stats: dict, prefix: str = "") -> dict[str, float]:
    """Project the nested stats document onto flat dotted numeric names.

    Booleans flatten to 0/1 (``parallel.enabled``); non-numeric leaves and
    per-entity detail sections are dropped.  The result is ready to diff,
    render as a table, or mirror into a :class:`~.metrics.MetricsRegistry`.
    """
    flat: dict[str, float] = {}
    for key, value in stats.items():
        if key in _FLATTEN_SKIP_KEYS:
            continue
        name = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            flat.update(flatten_counters(value, name))
        elif isinstance(value, bool):
            flat[name] = 1 if value else 0
        elif isinstance(value, Number):
            flat[name] = value
    return flat
