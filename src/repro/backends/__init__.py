"""RDBMS execution backends (the SQL half of the Simulation Layer)."""

from .base import MODE_CTE, MODE_MATERIALIZED, ROW_BYTES, RelationalBackend
from .duckdb_backend import DuckDBBackend, duckdb_available
from .memdb.engine import MemDatabase
from .memdb_backend import MemDBBackend
from .sqlite_backend import SQLiteBackend

__all__ = [
    "MODE_CTE",
    "MODE_MATERIALIZED",
    "ROW_BYTES",
    "RelationalBackend",
    "DuckDBBackend",
    "duckdb_available",
    "MemDatabase",
    "MemDBBackend",
    "SQLiteBackend",
]


def available_backends() -> dict[str, type]:
    """Mapping of backend name to class for every backend usable in this environment."""
    backends: dict[str, type] = {"sqlite": SQLiteBackend, "memdb": MemDBBackend}
    if duckdb_available():
        backends["duckdb"] = DuckDBBackend
    return backends
