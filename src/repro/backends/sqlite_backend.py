"""SQLite execution backend.

SQLite is one of the two engines the paper's Simulation Layer ships with
("It supports SQLite 2.6.0, and DuckDB 1.1" — the Python ``sqlite3`` binding
version; the underlying library here is SQLite 3).  Two storage modes are
supported:

* **in-memory** (default) — fastest, state bounded by RAM;
* **on-disk** — pass a ``database_path`` (or ``out_of_core=True`` for an
  automatic temporary file) and intermediate state tables live on disk, which
  is the paper's "Out-of-Core Simulation" feature: circuits whose
  intermediate states exceed main memory can still be simulated.
"""

from __future__ import annotations

import os
import sqlite3
import tempfile
from pathlib import Path

from ..errors import BackendError
from ..sql.dialect import SQLITE
from .base import MODE_CTE, RelationalBackend


class SQLiteBackend(RelationalBackend):
    """Runs translated circuits on SQLite (in-memory or on-disk)."""

    name = "sqlite"
    dialect = SQLITE

    def __init__(
        self,
        mode: str = MODE_CTE,
        database_path: str | os.PathLike | None = None,
        out_of_core: bool = False,
        cache_size_kib: int | None = None,
        prune_epsilon: float | None = None,
        fuse: bool = False,
        max_fused_qubits: int = 2,
        keep_intermediate: bool = False,
        max_state_bytes: int | None = None,
        prune_atol: float = 1e-12,
    ) -> None:
        super().__init__(
            mode=mode,
            prune_epsilon=prune_epsilon,
            fuse=fuse,
            max_fused_qubits=max_fused_qubits,
            keep_intermediate=keep_intermediate,
            max_state_bytes=max_state_bytes,
            prune_atol=prune_atol,
        )
        if database_path is not None and out_of_core:
            raise BackendError("pass either database_path or out_of_core, not both")
        self.database_path = Path(database_path) if database_path is not None else None
        self.out_of_core = bool(out_of_core)
        self.cache_size_kib = cache_size_kib
        if self.out_of_core or self.database_path is not None:
            self.name = "sqlite-disk"
        self._connection: sqlite3.Connection | None = None
        self._tempdir: tempfile.TemporaryDirectory | None = None

    # ------------------------------------------------------------ connection

    def _connect(self) -> None:
        if self._connection is not None:
            self._disconnect()
        if self.database_path is not None:
            target = str(self.database_path)
        elif self.out_of_core:
            self._tempdir = tempfile.TemporaryDirectory(prefix="qymera_sqlite_")
            target = str(Path(self._tempdir.name) / "state.db")
        else:
            target = ":memory:"
        try:
            self._connection = sqlite3.connect(target)
        except sqlite3.Error as exc:
            raise BackendError(f"could not open SQLite database {target!r}: {exc}") from exc
        cursor = self._connection.cursor()
        cursor.execute("PRAGMA journal_mode = OFF")
        cursor.execute("PRAGMA synchronous = OFF")
        if self.cache_size_kib is not None:
            # Negative cache_size means "KiB" in SQLite; this is how the
            # memory budget of the out-of-core experiments is constrained.
            cursor.execute(f"PRAGMA cache_size = -{int(self.cache_size_kib)}")
        if self.out_of_core or self.database_path is not None:
            cursor.execute("PRAGMA temp_store = FILE")
        cursor.close()

    def _disconnect(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    # --------------------------------------------------------------- execute

    def _require_connection(self) -> sqlite3.Connection:
        if self._connection is None:
            raise BackendError("SQLite backend is not connected")
        return self._connection

    def _execute(self, sql: str) -> None:
        try:
            self._require_connection().execute(sql)
        except sqlite3.Error as exc:
            raise BackendError(f"SQLite error for statement {sql[:120]!r}: {exc}") from exc

    def _fetch(self, sql: str) -> list[tuple]:
        try:
            cursor = self._require_connection().execute(sql)
            return cursor.fetchall()
        except sqlite3.Error as exc:
            raise BackendError(f"SQLite error for query {sql[:120]!r}: {exc}") from exc

    def database_size_bytes(self) -> int | None:
        """Size of the on-disk database file (None for in-memory runs)."""
        if self.database_path is not None and self.database_path.exists():
            return self.database_path.stat().st_size
        return None
