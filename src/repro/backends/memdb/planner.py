"""Physical-plan compiler for the embedded columnar engine.

The interpreter in :mod:`.executor` re-analyzes every statement on every
execution: it re-walks the AST to find aggregates, re-splits join conditions
against runtime frames, and re-dispatches per node.  The paper's hot loop
(one join-aggregate per gate, repeated for every parameter-sweep point)
executes *structurally identical* statements thousands of times, so this
module compiles a parsed statement once into a reusable physical plan:

* ``compile_statement`` turns a ``Select`` / ``WithSelect`` /
  ``CreateTableAs`` AST into a pipeline of operators (scan → hash-join →
  filter → project / hash-aggregate → distinct/order/limit) with all
  per-statement analysis — aggregate detection, join-side splitting,
  projection naming — done at compile time;
* the paper's per-gate shape ``SELECT key AS s, SUM(..) AS r, SUM(..) AS i
  FROM T JOIN G ON .. GROUP BY key`` is detected and compiled into a
  **fused join-aggregate** operator that pushes the grouped SUMs through the
  hash join in one pass, gathering only the columns the aggregate actually
  reads instead of materializing the full joined frame;
* plans hold table *names*, never table data: each execution re-resolves the
  names against the calling database's catalog, so a cached plan can be
  re-bound to fresh gate/state tables (the parameter-sweep reuse path).

Statement kinds the compiler does not cover (INSERT, DELETE, DDL) return
``None`` from ``compile_statement`` and run on the interpreter unchanged.
Every supported SELECT shape is plannable — only the *fused* operator is
conditional, degrading to the generic pipeline — so the interpreter's
``SelectExecutor`` serves as the reference implementation the differential
tests compare against.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from ...errors import SQLExecutionError
from ...obs.tracing import current_span
from .column import encoded_codes
from .ast_nodes import (
    BinaryOp,
    CaseExpression,
    ColumnRef,
    CompoundSelect,
    CreateTableAs,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    Select,
    SelectItem,
    Star,
    Statement,
    UnaryOp,
    WithSelect,
)
from .executor import (
    DEFAULT_RECURSION_LIMIT,
    ExpressionEvaluator,
    Frame,
    apply_filter,
    column_refs,
    grouped_projection,
    hash_join_frames,
    item_output_name,
    join_indices,
    plain_projection,
    postprocess_select,
    run_compound_cte,
    select_has_aggregates,
    split_join_condition,
    validate_window_usage,
    windowed_projection,
)
from .optimizer.cost import CostModel, FusionDecision, ParallelDecision, TopKDecision
from .parallel import (
    WorkerPool,
    parallel_apply_filter,
    parallel_evaluate,
    parallel_fused_aggregate,
    parallel_gather,
    parallel_grouped_projection,
    parallel_hash_join_frames,
    parallel_join_indices,
    parallel_plain_projection,
)
from .table import Table

#: Resolves a table name to a Table (catalog + CTE environment lookup).
Resolver = Callable[[str], Table]


class PlanNotSupported(Exception):
    """Internal signal: this statement shape must run on the interpreter."""


# ---------------------------------------------------------------------------
# Compile-time expression analysis
# ---------------------------------------------------------------------------


def _qualified_refs(expression: Expression) -> list[ColumnRef]:
    """Column refs of an expression, or raise if any is unqualified."""
    refs = column_refs(expression)
    for ref in refs:
        if ref.table is None:
            raise PlanNotSupported("unqualified column reference")
    return refs


def _split_by_binding(
    condition: Expression, left_bindings: Sequence[str], right_binding: str
) -> tuple[Expression, Expression] | None:
    """Compile-time join-condition split using table qualifiers.

    Returns ``None`` when any reference is unqualified, or when the joined
    table reuses a binding already on the left (a self-join like ``FROM t
    JOIN t``) so the qualifier is ambiguous — the runtime splitter decides
    from the actual frames instead.
    """
    if not isinstance(condition, BinaryOp) or condition.operator != "=":
        raise SQLExecutionError("JOIN ... ON only supports a single equality condition")
    if right_binding in left_bindings:
        return None

    def side(expression: Expression) -> str | None:
        refs = column_refs(expression)
        sides = set()
        for ref in refs:
            if ref.table is None:
                raise PlanNotSupported("unqualified join reference")
            if ref.table in left_bindings:
                sides.add("left")
            elif ref.table == right_binding:
                sides.add("right")
            else:
                raise SQLExecutionError(f"JOIN condition references unknown table {ref.table!r}")
        if len(sides) > 1:
            raise SQLExecutionError("JOIN condition must compare one side per table")
        return sides.pop() if sides else None

    try:
        left_side = side(condition.left)
        right_side = side(condition.right)
    except PlanNotSupported:
        return None
    if left_side in ("left", None) and right_side in ("right", None):
        return condition.left, condition.right
    if left_side == "right" and right_side in ("left", None) or left_side is None and right_side == "left":
        return condition.right, condition.left
    raise SQLExecutionError("JOIN condition must compare one side per table")


# ---------------------------------------------------------------------------
# Operators
# ---------------------------------------------------------------------------


class _ScanOp:
    """Resolve one table and expose its columns under a binding.

    ``filter`` holds a predicate the optimizer pushed below the join; it is
    applied to the scanned columns before anything downstream sees them.
    """

    __slots__ = ("name", "binding", "filter")

    def __init__(self, name: str, binding: str, filter: Expression | None = None) -> None:
        self.name = name
        self.binding = binding
        self.filter = filter

    def run(self, resolve: Resolver, pool: WorkerPool | None = None) -> tuple[Frame, int]:
        table = resolve(self.name)
        frame, length = table.frame(self.binding), table.num_rows
        if self.filter is not None:
            if pool is not None:
                frame, length = parallel_apply_filter(frame, length, self.filter, pool)
            else:
                frame, length = apply_filter(frame, length, self.filter)
        return frame, length


class _JoinOp:
    """Inner hash join of the current frame with one scanned table."""

    __slots__ = ("scan", "condition", "left_key", "right_key")

    def __init__(
        self,
        scan: _ScanOp,
        condition: Expression,
        split: tuple[Expression, Expression] | None,
    ) -> None:
        self.scan = scan
        self.condition = condition
        if split is None:
            self.left_key = None
            self.right_key = None
        else:
            self.left_key, self.right_key = split

    def run(
        self, frame: Frame, length: int, resolve: Resolver, pool: WorkerPool | None = None
    ) -> tuple[Frame, int]:
        right_frame, right_length = self.scan.run(resolve, pool)
        left_key, right_key = self.left_key, self.right_key
        if left_key is None:
            left_key, right_key = split_join_condition(self.condition, frame, right_frame)
        if pool is not None:
            return parallel_hash_join_frames(
                frame, length, right_frame, right_length, left_key, right_key, pool
            )
        return hash_join_frames(frame, length, right_frame, right_length, left_key, right_key)


class _FusedJoinAggregateOp:
    """The paper's gate step, join and grouped SUMs fused into one pass.

    ``SELECT key AS s, SUM(e1) AS r, SUM(e2) AS i FROM T JOIN G ON .. GROUP
    BY key`` runs as: evaluate the join keys on the two *base* tables, compute
    the matching row-index pairs, gather only the columns the group key and
    the SUM arguments reference, then aggregate with ``bincount`` over the
    factorized key — the joined relation itself is never materialized.
    """

    __slots__ = ("left_scan", "right_scan", "left_key", "right_key", "key_expr", "outputs", "needed")

    def __init__(
        self,
        left_scan: _ScanOp,
        right_scan: _ScanOp,
        split: tuple[Expression, Expression],
        key_expr: Expression,
        outputs: list[tuple[str, str, Expression | None]],
        needed: list[ColumnRef],
    ) -> None:
        self.left_scan = left_scan
        self.right_scan = right_scan
        self.left_key, self.right_key = split
        self.key_expr = key_expr
        #: (output name, kind in {"key", "sum", "count"}, argument expression).
        self.outputs = outputs
        self.needed = needed

    def run(
        self, resolve: Resolver, pool: WorkerPool | None = None
    ) -> tuple[list[str], dict[str, np.ndarray]]:
        left_frame, left_length = self.left_scan.run(resolve, pool)
        right_frame, right_length = self.right_scan.run(resolve, pool)
        if pool is not None:
            left_keys = parallel_evaluate(left_frame, left_length, self.left_key, pool)
            right_keys = parallel_evaluate(right_frame, right_length, self.right_key, pool)
            left_idx, right_idx = parallel_join_indices(left_keys, right_keys, pool)
        else:
            left_keys = ExpressionEvaluator(left_frame, left_length).evaluate(self.left_key)
            right_keys = ExpressionEvaluator(right_frame, right_length).evaluate(self.right_key)
            left_idx, right_idx = join_indices(left_keys, right_keys)

        joined: Frame = {}
        for ref in self.needed:
            key = ref.key()
            if key in left_frame:
                source, indices = left_frame[key], left_idx
            elif key in right_frame:
                source, indices = right_frame[key], right_idx
            else:
                raise SQLExecutionError(f"unknown column {key!r} in fused join-aggregate")
            joined[key] = (
                parallel_gather(source, indices, pool) if pool is not None else source[indices]
            )
        joined_length = len(left_idx)
        if pool is not None:
            # Partitioned partial-then-merge aggregation; falls back to the
            # serial factorization below when the key cannot be partitioned
            # exactly (NaN/object keys) — results are identical either way.
            aggregated = parallel_fused_aggregate(
                joined, joined_length, self.key_expr, self.outputs, pool
            )
            if aggregated is not None:
                return aggregated
        evaluator = ExpressionEvaluator(joined, joined_length)

        key_values = evaluator.evaluate(self.key_expr)
        if joined_length:
            # Factorize on exact int64 codes (shared with the generic
            # grouped path): int64 keys pass through, floats/text become
            # injective order-preserving codes, all NULL keys form one
            # group sorted first.
            _unique, first_indices, inverse = np.unique(
                encoded_codes(key_values), return_index=True, return_inverse=True
            )
            num_groups = len(first_indices)
        else:
            first_indices = np.empty(0, dtype=np.int64)
            inverse = np.empty(0, dtype=np.int64)
            num_groups = 0

        names: list[str] = []
        columns: dict[str, np.ndarray] = {}
        for name, kind, argument in self.outputs:
            names.append(name)
            if kind == "key":
                # Gather from the evaluated key column so the dtype survives
                # (np.unique on the stacked-float path would widen int64 keys).
                columns[name] = key_values[first_indices]
            elif kind == "count":
                columns[name] = np.bincount(inverse, minlength=num_groups).astype(np.int64)
            else:
                weights = evaluator.evaluate(argument).astype(np.float64)
                columns[name] = np.bincount(inverse, weights=weights, minlength=num_groups)
        return names, columns


# ---------------------------------------------------------------------------
# Compiled statements
# ---------------------------------------------------------------------------


class CompiledQuery:
    """A compiled ``Select``: scans/joins/filter plus a projection strategy.

    When the per-gate join-aggregate shape is *eligible* for fusion, the
    actual choice between the fused operator and the generic pipeline is
    made by the cost model (:meth:`CostModel.fusion_decision`), not by the
    syntactic match alone; the decision is kept on ``self.fusion`` so
    ``EXPLAIN`` can show both estimated costs.  The same applies to
    ``ORDER BY ... LIMIT`` tails: the cost model chooses between the
    bounded top-k selection and full sort-then-slice at compile time
    (``self.topk``), and the compiled plan executes whichever was chosen.
    Serial versus morsel-parallel execution of the block's operators is the
    third costed physical choice (``self.parallel``); the executing engine
    supplies the worker pool, so a cached plan runs serially on engines
    without one.
    """

    __slots__ = (
        "select",
        "source",
        "joins",
        "fused",
        "has_aggregates",
        "grouped",
        "windowed",
        "fusion",
        "topk",
        "parallel",
    )

    def __init__(self, select: Select, cost: CostModel | None = None) -> None:
        self.select = select
        self.has_aggregates = select_has_aggregates(select)
        self.grouped = bool(select.group_by) or self.has_aggregates
        # Raises SQLExecutionError for invalid placements (windows outside
        # the SELECT list, windows mixed with grouping) exactly like the
        # interpreter would.
        self.windowed = validate_window_usage(select, self.has_aggregates)
        self.fusion: FusionDecision | None = None
        model = cost if cost is not None else CostModel()
        self.topk: TopKDecision | None = model.topk_decision(select)
        self.parallel: ParallelDecision = model.parallel_decision(select)
        fused = _compile_fused(select) if self.grouped else None
        if fused is not None:
            self.fusion = model.fusion_decision(select, len(fused.needed))
            if not self.fusion.use_fused:
                fused = None
        self.fused = fused
        if self.fused is not None:
            self.source = None
            self.joins: list[_JoinOp] = []
            return

        self.source = (
            _ScanOp(select.source.name, select.source.binding, select.source.filter)
            if select.source
            else None
        )
        self.joins = []
        bindings = [select.source.binding] if select.source else []
        for join in select.joins:
            if join.kind != "inner":
                raise SQLExecutionError(f"{join.kind.upper()} JOIN is not supported by the embedded engine")
            scan = _ScanOp(join.source.name, join.source.binding, join.source.filter)
            split = _split_by_binding(join.condition, bindings, join.source.binding)
            self.joins.append(_JoinOp(scan, join.condition, split))
            bindings.append(join.source.binding)

    def execute(
        self, resolve: Resolver, observe=None, pool: WorkerPool | None = None, tracer=None
    ) -> tuple[list[str], dict[str, np.ndarray]]:
        """Run the plan against the given name resolver; returns (names, columns).

        ``observe`` receives the block's pre-limit row count (see
        :func:`~.executor.postprocess_select`).  ``pool`` is the executing
        engine's morsel worker pool; it is only used when this block's
        costed :class:`ParallelDecision` chose parallel execution, so plans
        cached by one engine run correctly (serially) on engines without a
        pool.  ``tracer`` (a :class:`repro.obs.Tracer`, or None) records a
        per-operator span tree; the untraced path is byte-for-byte the
        traced path minus the spans, so enabling tracing can never change a
        result.
        """
        select = self.select
        use_topk = None if self.topk is None else self.topk.use_topk
        if pool is not None and not self.parallel.use_parallel:
            pool = None
        if tracer is not None:
            return self._execute_traced(resolve, observe, pool, use_topk, tracer)

        if self.fused is not None:
            names, columns = self.fused.run(resolve, pool)
            return postprocess_select(
                select, names, columns, None, 0, self.has_aggregates,
                use_topk=use_topk, observe=observe,
            )

        if self.source is None:
            frame: Frame = {}
            length = 1
        else:
            frame, length = self.source.run(resolve, pool)
        for join in self.joins:
            frame, length = join.run(frame, length, resolve, pool)

        if select.where is not None:
            if pool is not None:
                frame, length = parallel_apply_filter(frame, length, select.where, pool)
            else:
                mask = ExpressionEvaluator(frame, length).evaluate(select.where).astype(bool)
                frame = {key: values[mask] for key, values in frame.items()}
                length = int(mask.sum())

        if self.grouped:
            names = columns = None
            if pool is not None:
                aggregated = parallel_grouped_projection(select, frame, length, pool)
                if aggregated is not None:
                    names, columns = aggregated
            if names is None:
                names, columns = grouped_projection(select, frame, length)
        elif self.windowed:
            # Window blocks always run serially (their ParallelDecision
            # declines): the sort-once kernels need the whole partition.
            names, columns, frame = windowed_projection(select, frame, length)
        elif pool is not None:
            names, columns = parallel_plain_projection(select.items, frame, length, pool)
        else:
            names, columns = plain_projection(select.items, frame, length)
        return postprocess_select(
            select, names, columns, frame, length, self.has_aggregates,
            use_topk=use_topk, observe=observe,
        )

    def _execute_traced(
        self, resolve: Resolver, observe, pool: WorkerPool | None, use_topk, tracer
    ) -> tuple[list[str], dict[str, np.ndarray]]:
        """The :meth:`execute` pipeline with a span per physical operator.

        Mirrors the untraced branch operator for operator (same kernels,
        same parallel fallbacks); each span records output rows and — via
        :func:`repro.obs.tracing.annotate_current` called from the worker
        pool — the morsel batch/task counts the operator fanned out.

        A fused block *is* a single physical operator, so it annotates the
        enclosing ``block`` span (whose wall time already is the operator's)
        instead of opening a child span: the paper's hot workload is a chain
        of fused gate steps, and one span per step instead of two keeps the
        enabled-mode overhead inside the benchmark gate.
        """
        select = self.select
        parallel = pool is not None
        if self.fused is not None:
            span = current_span()
            if span is not None:
                # Direct attr stores: this runs once per gate step on the
                # paper's hot workload, and the kwargs repack in set() is
                # measurable there.
                attrs = span.attrs
                attrs["op"] = "fused-join-aggregate"
                attrs["table"] = self.fused.left_scan.name
                attrs["join_table"] = self.fused.right_scan.name
            names, columns = self.fused.run(resolve, pool)
            return postprocess_select(
                select, names, columns, None, 0, self.has_aggregates,
                use_topk=use_topk, observe=observe,
            )

        if self.source is None:
            frame: Frame = {}
            length = 1
        else:
            with tracer.span(
                "operator", op="scan", table=self.source.name, parallel=parallel
            ) as span:
                frame, length = self.source.run(resolve, pool)
                span.set(rows=length)
        for join in self.joins:
            with tracer.span(
                "operator", op="hash-join", table=join.scan.name, parallel=parallel
            ) as span:
                frame, length = join.run(frame, length, resolve, pool)
                span.set(rows=length)

        if select.where is not None:
            with tracer.span("operator", op="filter", parallel=parallel) as span:
                if pool is not None:
                    frame, length = parallel_apply_filter(frame, length, select.where, pool)
                else:
                    mask = ExpressionEvaluator(frame, length).evaluate(select.where).astype(bool)
                    frame = {key: values[mask] for key, values in frame.items()}
                    length = int(mask.sum())
                span.set(rows=length)

        if self.grouped:
            with tracer.span("operator", op="aggregate", parallel=parallel) as span:
                names = columns = None
                if pool is not None:
                    aggregated = parallel_grouped_projection(select, frame, length, pool)
                    if aggregated is not None:
                        names, columns = aggregated
                if names is None:
                    names, columns = grouped_projection(select, frame, length)
                span.set(rows=len(columns[names[0]]) if names else 0)
        elif self.windowed:
            with tracer.span("operator", op="window", parallel=False) as span:
                names, columns, frame = windowed_projection(select, frame, length)
                span.set(rows=length)
        else:
            with tracer.span("operator", op="project", parallel=parallel) as span:
                if pool is not None:
                    names, columns = parallel_plain_projection(select.items, frame, length, pool)
                else:
                    names, columns = plain_projection(select.items, frame, length)
                span.set(rows=length)
        return postprocess_select(
            select, names, columns, frame, length, self.has_aggregates,
            use_topk=use_topk, observe=observe,
        )


class CompiledCompoundCTE:
    """A compiled ``UNION [ALL]`` CTE body — the recursive-fixpoint operator.

    Holds one compiled plan per branch: ``base`` runs once, ``step`` runs
    once per fixpoint iteration with the CTE's own name bound to the current
    frontier (see :func:`~.executor.run_compound_cte`, which both the
    interpreter and this operator share).  ``parallel`` is a declined
    decision — iterations are inherently sequential, and each step is
    usually tiny — so :meth:`CompiledScript.uses_parallel` and the block
    spans keep working unchanged.  ``last_iterations`` records the most
    recent execution's fixpoint depth for EXPLAIN ANALYZE.
    """

    __slots__ = ("name", "compound", "recursive", "alias_columns", "base", "step", "parallel", "last_iterations")

    def __init__(
        self,
        name: str,
        compound: CompoundSelect,
        recursive: bool,
        alias_columns: Sequence[str],
        cost: CostModel | None = None,
    ) -> None:
        self.name = name
        self.compound = compound
        self.recursive = recursive
        self.alias_columns = tuple(alias_columns)
        self.base = CompiledQuery(compound.left, cost)
        self.step = CompiledQuery(compound.right, cost)
        self.parallel = ParallelDecision(
            eligible=False,
            use_parallel=False,
            reason="recursive fixpoint iterates serially",
        )
        self.last_iterations = 0

    def execute(
        self,
        resolve: Resolver,
        observe=None,
        pool: WorkerPool | None = None,
        tracer=None,
        recursion_limit: int = DEFAULT_RECURSION_LIMIT,
    ) -> tuple[list[str], dict[str, np.ndarray]]:
        self.last_iterations = 0
        iteration_box = [0]

        def run_base() -> tuple[list[str], dict[str, np.ndarray]]:
            return self.base.execute(resolve, pool=pool, tracer=tracer)

        def run_step(frontier: Table | None) -> tuple[list[str], dict[str, np.ndarray]]:
            if frontier is None:
                step_resolve = resolve
            else:
                def step_resolve(name: str, frontier=frontier) -> Table:
                    return frontier if name == self.name else resolve(name)
            if tracer is not None and frontier is not None:
                iteration_box[0] += 1
                with tracer.span(
                    "operator", op="recursive-step", iteration=iteration_box[0]
                ) as span:
                    names, columns = self.step.execute(step_resolve, pool=pool, tracer=tracer)
                    span.set(rows=len(columns[names[0]]) if names else 0)
                    return names, columns
            return self.step.execute(step_resolve, pool=pool, tracer=tracer)

        def note(iteration: int, _new_rows: int) -> None:
            self.last_iterations = iteration

        names, columns = run_compound_cte(
            self.name,
            self.compound,
            self.recursive,
            self.alias_columns,
            run_base,
            run_step,
            recursion_limit=recursion_limit,
            observe_iteration=note,
        )
        if observe is not None:
            observe(len(columns[names[0]]) if names else 0)
        return names, columns


class CompiledScript:
    """A compiled ``WithSelect``: CTE plans executed in order, then the query."""

    __slots__ = ("ctes", "query")

    def __init__(
        self, ctes: "list[tuple[str, CompiledQuery | CompiledCompoundCTE]]", query: CompiledQuery
    ) -> None:
        self.ctes = ctes
        self.query = query

    def uses_parallel(self) -> bool:
        """True when at least one block's costed decision chose parallel."""
        return any(
            plan.parallel.use_parallel for _name, plan in self.ctes
        ) or self.query.parallel.use_parallel

    def execute(
        self,
        catalog: Mapping[str, Table],
        trace: Callable[[str, int], None] | None = None,
        pool: WorkerPool | None = None,
        tracer=None,
        recursion_limit: int = DEFAULT_RECURSION_LIMIT,
    ) -> tuple[list[str], dict[str, np.ndarray]]:
        """Run CTEs then the main query against a table catalog.

        ``trace`` (EXPLAIN ANALYZE and adaptive feedback) receives
        ``(block label, actual row count)`` for every CTE and finally for
        ``"main"``.  The reported count is the block's *pre-limit*
        cardinality — for blocks without LIMIT that is simply the output
        size, and for limited blocks it is the number the optimizer's
        pre-limit estimate predicts (the output size would mask any
        misestimate behind the cap).  ``tracer`` adds a ``block`` span per
        CTE/main carrying the *same* pre-limit count on its ``rows`` attr —
        a traced span tree and an EXPLAIN ANALYZE of the same execution can
        never disagree, because they read one observation.
        """
        ctes: dict[str, Table] = {}

        def resolve(name: str) -> Table:
            if name in ctes:
                return ctes[name]
            if name in catalog:
                return catalog[name]
            raise SQLExecutionError(f"no such table: {name}")

        observed: list[int] = []
        observe = observed.append if (trace is not None or tracer is not None) else None
        for name, plan in self.ctes:
            extra = (
                {"recursion_limit": recursion_limit}
                if isinstance(plan, CompiledCompoundCTE)
                else {}
            )
            if tracer is not None:
                with tracer.span(
                    "block", block=name, parallel=plan.parallel.use_parallel
                ) as span:
                    names, columns = plan.execute(
                        resolve, observe=observe, pool=pool, tracer=tracer, **extra
                    )
                    ctes[name] = Table(name, {column: columns[column] for column in names})
                    span.attrs["rows"] = observed[-1] if observed else ctes[name].num_rows
                    if isinstance(plan, CompiledCompoundCTE):
                        span.attrs["iterations"] = plan.last_iterations
            else:
                names, columns = plan.execute(resolve, observe=observe, pool=pool, **extra)
                ctes[name] = Table(name, {column: columns[column] for column in names})
            if trace is not None:
                trace(name, observed[-1] if observed else ctes[name].num_rows)
            observed.clear()
        if tracer is not None:
            with tracer.span(
                "block", block="main", parallel=self.query.parallel.use_parallel
            ) as span:
                names, columns = self.query.execute(
                    resolve, observe=observe, pool=pool, tracer=tracer
                )
                output_rows = len(next(iter(columns.values()))) if columns else 0
                span.attrs["rows"] = observed[-1] if observed else output_rows
        else:
            names, columns = self.query.execute(resolve, observe=observe, pool=pool)
        if trace is not None:
            output_rows = len(next(iter(columns.values()))) if columns else 0
            trace("main", observed[-1] if observed else output_rows)
        return names, columns


class CompiledCreateTableAs:
    """A compiled ``CREATE TABLE name AS <select>`` (the materialized-mode step)."""

    __slots__ = ("name", "temporary", "script")

    def __init__(self, name: str, temporary: bool, script: CompiledScript) -> None:
        self.name = name
        self.temporary = temporary
        self.script = script


def _compile_fused(select: Select) -> _FusedJoinAggregateOp | None:
    """Compile the gate-step shape into a fused operator, or None."""
    if (
        select.source is None
        or len(select.joins) != 1
        or select.joins[0].kind != "inner"
        or select.where is not None
        or select.having is not None
        or select.distinct
        or len(select.group_by) != 1
    ):
        return None
    key_expr = select.group_by[0]

    try:
        needed = _qualified_refs(key_expr)
        outputs: list[tuple[str, str, Expression | None]] = []
        for position, item in enumerate(select.items):
            name = item_output_name(item, position)
            expression = item.expression
            if expression == key_expr:
                outputs.append((name, "key", None))
                continue
            if not isinstance(expression, FunctionCall) or expression.distinct:
                return None
            if expression.name == "count" and (expression.is_star or not expression.arguments):
                outputs.append((name, "count", None))
                continue
            if expression.name != "sum" or len(expression.arguments) != 1:
                return None
            argument = expression.arguments[0]
            needed.extend(_qualified_refs(argument))
            outputs.append((name, "sum", argument))

        bindings = [select.source.binding]
        split = _split_by_binding(select.joins[0].condition, bindings, select.joins[0].source.binding)
        if split is None:
            return None
    except PlanNotSupported:
        return None

    # Deduplicate gathered columns while keeping a stable order.
    unique: dict[str, ColumnRef] = {}
    for ref in needed:
        unique.setdefault(ref.key(), ref)

    return _FusedJoinAggregateOp(
        left_scan=_ScanOp(select.source.name, select.source.binding, select.source.filter),
        right_scan=_ScanOp(
            select.joins[0].source.name,
            select.joins[0].source.binding,
            select.joins[0].source.filter,
        ),
        split=split,
        key_expr=key_expr,
        outputs=outputs,
        needed=list(unique.values()),
    )


def _compile_select(select: Select, cost: CostModel | None = None) -> CompiledQuery:
    return CompiledQuery(select, cost)


def _compile_script(query: Select | WithSelect, cost: CostModel | None = None) -> CompiledScript:
    """Compile a query (with any CTEs) into one executable script."""
    if isinstance(query, WithSelect):
        ctes: list[tuple[str, CompiledQuery | CompiledCompoundCTE]] = []
        for cte in query.ctes:
            if isinstance(cte.query, CompoundSelect):
                ctes.append(
                    (
                        cte.name,
                        CompiledCompoundCTE(
                            cte.name, cte.query, query.recursive, cte.columns, cost
                        ),
                    )
                )
            elif cte.columns:
                # The interpreter handles the output-column rename; rare
                # enough that a compiled fast path is not worth mirroring.
                raise PlanNotSupported("CTE column alias list")
            else:
                ctes.append((cte.name, _compile_select(cte.query, cost)))
        return CompiledScript(ctes, _compile_select(query.query, cost))
    return CompiledScript([], _compile_select(query, cost))


def compile_statement(
    statement: Statement, cost: CostModel | None = None
) -> CompiledScript | CompiledCreateTableAs | None:
    """Compile one parsed statement into a physical plan.

    ``cost`` is the optimizer's cost model for physical operator choices
    (fused join-aggregate vs generic pipeline); when omitted, a default
    model with no statistics is used, so the choice is still cost-based but
    falls back to conservative estimates.

    Returns ``None`` for statement kinds the planner does not cover (INSERT,
    DELETE, DDL, ...), which the engine then routes to the interpreter.
    Statement shapes that are outright invalid (e.g. LEFT JOIN) raise
    :class:`SQLExecutionError` exactly like the interpreter would.
    """
    try:
        if isinstance(statement, (Select, WithSelect)):
            return _compile_script(statement, cost)
        if isinstance(statement, CreateTableAs):
            return CompiledCreateTableAs(
                statement.name, statement.temporary, _compile_script(statement.query, cost)
            )
    except PlanNotSupported:
        return None
    return None
