"""Morsel-parallel operator variants, byte-identical to the serial executor.

Every function here reproduces one serial operator from :mod:`..executor`
(or the fused join-aggregate from :mod:`..planner`) with the work split
across a :class:`~.pool.WorkerPool`, under the merge disciplines that make
the output *bit-for-bit* equal to the serial result:

* **Row-parallel operators** (expression evaluation, scan filters, the
  hash-join probe) split the input into contiguous morsels and concatenate
  per-morsel results in morsel order.  All expression kernels are
  elementwise and the probe's ``searchsorted`` is a pure function of the
  (serially built) sorted build side, so concatenation *is* the serial
  answer.
* **Partitioned aggregation** splits rows by a hash of the *group key* —
  never by row range — so every group's rows land in exactly one partition,
  in input order.  Per-group accumulation (``np.bincount`` is a sequential
  C loop) therefore adds the same floats in the same order as the serial
  single-pass aggregate, which keeps even non-associative float sums
  identical.  The merge scatters each partition's groups into the globally
  key-sorted output (partitions are disjoint in key space, so the sorted
  concatenation of their unique keys equals the serial ``np.unique`` order).

Shapes the disciplines cannot cover exactly fall back to the serial
operator by returning ``None`` (NaN group keys, whose partitioning would
have to reproduce ``np.unique``'s NaN handling; object-dtype keys; nested
aggregate expressions): the caller runs the serial code, so the fallback is
invisible except in the pool counters.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..ast_nodes import Expression, FunctionCall, Select, SelectItem, Star
from ..executor import (
    ExpressionEvaluator,
    Frame,
    apply_filter,
    contains_aggregate,
    hash_join_frames,
    item_output_name,
    join_indices,
    plain_projection,
)
from .morsel import morsel_ranges
from .pool import WorkerPool


def _slice_frame(frame: Frame, length: int, start: int, stop: int) -> Frame:
    """A morsel view of a frame (row-aligned columns sliced, others passed)."""
    return {
        key: values[start:stop] if len(values) == length else values
        for key, values in frame.items()
    }


def _aligned(frame: Frame, length: int) -> bool:
    return all(len(values) == length for values in frame.values())


# ---------------------------------------------------------------------------
# Row-parallel operators
# ---------------------------------------------------------------------------


def parallel_evaluate(
    frame: Frame, length: int, expression: Expression, pool: WorkerPool
) -> np.ndarray:
    """Evaluate an expression morsel-wise; identical to the serial evaluator.

    Every expression kernel in :class:`ExpressionEvaluator` is elementwise,
    so concatenating per-morsel results in morsel order reproduces the
    whole-column evaluation exactly.
    """
    ranges = morsel_ranges(length, pool.workers)
    if len(ranges) <= 1:
        return ExpressionEvaluator(frame, length).evaluate(expression)

    def evaluate(bounds: tuple[int, int]) -> np.ndarray:
        start, stop = bounds
        morsel = _slice_frame(frame, length, start, stop)
        return ExpressionEvaluator(morsel, stop - start).evaluate(expression)

    return np.concatenate(pool.map(evaluate, ranges))


def parallel_apply_filter(
    frame: Frame, length: int, predicate: Expression, pool: WorkerPool
) -> tuple[Frame, int]:
    """Filter a frame by a predicate, mask and gather both morsel-parallel."""
    ranges = morsel_ranges(length, pool.workers)
    if len(ranges) <= 1 or not _aligned(frame, length):
        return apply_filter(frame, length, predicate)

    keys = list(frame.keys())

    def filter_morsel(bounds: tuple[int, int]) -> tuple[list[np.ndarray], int]:
        start, stop = bounds
        morsel = _slice_frame(frame, length, start, stop)
        mask = ExpressionEvaluator(morsel, stop - start).evaluate(predicate).astype(bool)
        return [morsel[key][mask] for key in keys], int(mask.sum())

    pieces = pool.map(filter_morsel, ranges)
    filtered = {
        key: np.concatenate([piece[0][position] for piece in pieces])
        for position, key in enumerate(keys)
    }
    return filtered, int(sum(piece[1] for piece in pieces))


def parallel_join_indices(
    left_keys: np.ndarray, right_keys: np.ndarray, pool: WorkerPool
) -> tuple[np.ndarray, np.ndarray]:
    """Morsel-parallel probe of the sort-based equi-join (exact replica).

    The build side (sort of the right keys) stays serial — it is one stable
    ``argsort`` — while the probe side is split into morsels: each morsel's
    ``searchsorted`` bounds, match counts and within-row offsets are pure
    per-row functions, so the concatenation equals the serial
    :func:`~..executor.join_indices` output including tie order.
    """
    left = np.asarray(left_keys)
    right = np.asarray(right_keys)
    if left.dtype == object or right.dtype == object:
        return join_indices(left, right)  # dict-bucket path stays serial

    left_map = right_map = None
    if left.dtype.kind == "f":
        keep = ~np.isnan(left)
        if not keep.all():
            left_map = np.flatnonzero(keep)
            left = left[left_map]
    if right.dtype.kind == "f":
        keep = ~np.isnan(right)
        if not keep.all():
            right_map = np.flatnonzero(keep)
            right = right[right_map]

    order = np.argsort(right, kind="stable")
    sorted_right = right[order]

    ranges = morsel_ranges(int(left.size), pool.workers)

    def probe(bounds: tuple[int, int]) -> tuple[np.ndarray, np.ndarray]:
        start, stop = bounds
        segment = left[start:stop]
        lo = np.searchsorted(sorted_right, segment, side="left")
        hi = np.searchsorted(sorted_right, segment, side="right")
        counts = hi - lo
        total = int(counts.sum())
        left_idx = np.repeat(np.arange(start, stop, dtype=np.int64), counts)
        starts = np.repeat(lo, counts)
        within = np.arange(total, dtype=np.int64) - np.repeat(np.cumsum(counts) - counts, counts)
        return left_idx, order[starts + within]

    if len(ranges) <= 1:
        pieces = [probe(bounds) for bounds in ranges] if ranges else []
    else:
        pieces = pool.map(probe, ranges)
    if pieces:
        left_idx = np.concatenate([piece[0] for piece in pieces])
        right_idx = np.concatenate([piece[1] for piece in pieces])
    else:
        left_idx = np.empty(0, dtype=np.int64)
        right_idx = np.empty(0, dtype=np.int64)
    if left_map is not None:
        left_idx = left_map[left_idx]
    if right_map is not None:
        right_idx = right_map[right_idx]
    return left_idx, right_idx


def parallel_gather(values: np.ndarray, indices: np.ndarray, pool: WorkerPool) -> np.ndarray:
    """``values[indices]`` with the gather split into morsels of ``indices``."""
    ranges = morsel_ranges(int(indices.size), pool.workers)
    if len(ranges) <= 1:
        return values[indices]
    pieces = pool.map(lambda bounds: np.take(values, indices[bounds[0]:bounds[1]]), ranges)
    return np.concatenate(pieces)


def parallel_hash_join_frames(
    left_frame: Frame,
    left_length: int,
    right_frame: Frame,
    right_length: int,
    left_key_expr: Expression,
    right_key_expr: Expression,
    pool: WorkerPool,
) -> tuple[Frame, int]:
    """:func:`~..executor.hash_join_frames` with pool-backed kernels.

    The column-merge body lives in the serial function — only the evaluate,
    probe and gather strategies are swapped — so the two paths share one
    implementation of the merge rules.
    """
    return hash_join_frames(
        left_frame,
        left_length,
        right_frame,
        right_length,
        left_key_expr,
        right_key_expr,
        evaluate=lambda frame, length, expr: parallel_evaluate(frame, length, expr, pool),
        join=lambda left, right: parallel_join_indices(left, right, pool),
        gather=lambda values, indices: parallel_gather(values, indices, pool),
    )


# ---------------------------------------------------------------------------
# Partitioned aggregation
# ---------------------------------------------------------------------------


def _partition_ids(keys: np.ndarray, partitions: int) -> np.ndarray | None:
    """Partition id per row (same key value -> same partition), or None.

    Float keys are normalized with ``+ 0.0`` so ``-0.0`` and ``0.0`` — equal
    as group keys — share a bit pattern before hashing.  NaN keys return
    ``None``: partitioning them correctly would have to reproduce
    ``np.unique``'s NaN collapsing, so those (rare, NULL-keyed) groupings
    stay serial.
    """
    if keys.dtype.kind in "iub":
        return keys.astype(np.int64) % partitions
    if keys.dtype.kind == "f":
        if np.isnan(keys).any():
            return None
        bits = (keys.astype(np.float64) + 0.0).view(np.int64)
        return bits % partitions
    return None


class _PartitionedGroups:
    """Group structure from a key-hash partitioning, merged in key order.

    Exposes exactly what the serial aggregates consume — globally sorted
    unique keys, first-occurrence indices, the per-row inverse — plus
    per-partition machinery so each aggregate accumulates a group's rows in
    input order (the serial ``bincount`` order).
    """

    __slots__ = ("unique_values", "first_indices", "inverse", "num_groups", "_parts")

    def __init__(self, keys: np.ndarray, pool: WorkerPool) -> None:
        partitions = max(2, pool.workers)
        part_ids = _partition_ids(keys, partitions)
        if part_ids is None:
            raise ValueError("keys cannot be partitioned exactly")
        buckets = [np.flatnonzero(part_ids == p) for p in range(partitions)]
        buckets = [rows for rows in buckets if len(rows)]

        def factorize(rows: np.ndarray):
            sub = keys[rows]
            unique, first, inverse = np.unique(sub, return_index=True, return_inverse=True)
            return rows, unique, rows[first], inverse.ravel()

        parts = pool.map(factorize, buckets)

        all_unique = (
            np.concatenate([part[1] for part in parts]) if parts else keys[:0]
        )
        order = np.argsort(all_unique, kind="stable")
        self.unique_values = all_unique[order]
        self.num_groups = int(len(order))
        all_first = (
            np.concatenate([part[2] for part in parts])
            if parts
            else np.empty(0, dtype=np.int64)
        )
        self.first_indices = all_first[order]
        # Local group slot -> global (key-sorted) group id.
        global_of = np.empty(self.num_groups, dtype=np.int64)
        global_of[order] = np.arange(self.num_groups, dtype=np.int64)
        self.inverse = np.empty(len(keys), dtype=np.int64)
        self._parts: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        base = 0
        for rows, unique, _first, inverse in parts:
            ids = global_of[base : base + len(unique)]
            self.inverse[rows] = ids[inverse]
            self._parts.append((rows, inverse, ids))
            base += len(unique)

    # ------------------------------------------------------------- aggregates

    def counts(self) -> np.ndarray:
        """Per-group row counts (identical to ``np.bincount(inverse)``)."""
        result = np.zeros(self.num_groups, dtype=np.int64)
        for rows, inverse, ids in self._parts:
            result[ids] = np.bincount(inverse, minlength=len(ids))
        return result

    def sums(self, weights: np.ndarray, pool: WorkerPool) -> np.ndarray:
        """Per-group float sums, each group accumulated in input order.

        A group's rows all live in one partition with ascending row indices,
        and ``np.bincount`` adds them sequentially — the same float-addition
        order as the serial single-pass ``bincount``, hence identical bits.
        """
        result = np.zeros(self.num_groups, dtype=np.float64)

        def partial(part: tuple[np.ndarray, np.ndarray, np.ndarray]):
            rows, inverse, ids = part
            return ids, np.bincount(inverse, weights=weights[rows], minlength=len(ids))

        for ids, sums in pool.map(partial, self._parts):
            result[ids] = sums
        return result

    def reduce_minmax(self, values: np.ndarray, minimum: bool, pool: WorkerPool) -> np.ndarray:
        """Per-group MIN/MAX via the serial ``reduceat`` discipline per partition."""
        result = np.full(self.num_groups, np.nan)
        reducer = np.minimum if minimum else np.maximum

        def partial(part: tuple[np.ndarray, np.ndarray, np.ndarray]):
            rows, inverse, ids = part
            sub = values[rows]
            order = np.argsort(inverse, kind="stable")
            sorted_inverse = inverse[order]
            sorted_values = sub[order]
            boundaries = np.concatenate(([0], np.flatnonzero(np.diff(sorted_inverse)) + 1))
            return ids[sorted_inverse[boundaries]], reducer.reduceat(sorted_values, boundaries)

        for ids, reduced in pool.map(partial, [p for p in self._parts if len(p[0])]):
            result[ids] = reduced
        return result


def partitioned_groups(keys: np.ndarray, pool: WorkerPool) -> _PartitionedGroups | None:
    """Build the partitioned group structure, or ``None`` when not exact."""
    try:
        return _PartitionedGroups(keys, pool)
    except ValueError:
        return None


# ---------------------------------------------------------------------------
# Projection-level operators
# ---------------------------------------------------------------------------


def parallel_plain_projection(
    items: Sequence[SelectItem], frame: Frame, length: int, pool: WorkerPool
) -> tuple[list[str], dict[str, np.ndarray]]:
    """:func:`~..executor.plain_projection` with the pool-backed evaluator."""
    return plain_projection(
        items,
        frame,
        length,
        evaluate=lambda expression: parallel_evaluate(frame, length, expression, pool),
    )


#: Aggregate calls the partitioned merge reproduces exactly.
_PARTITIONED_AGGREGATES = frozenset({"count", "sum", "total", "avg", "min", "max"})


def parallel_grouped_projection(
    select: Select, frame: Frame, length: int, pool: WorkerPool
) -> tuple[list[str], dict[str, np.ndarray]] | None:
    """Partitioned replica of :func:`~..executor.grouped_projection`.

    Covers the partitionable shape — exactly one GROUP BY key, no HAVING, no
    DISTINCT aggregates, and top-level aggregate calls (or aggregate-free
    expressions, which take each group's first row like the serial path).
    Anything else returns ``None`` and runs serially.
    """
    if (
        len(select.group_by) != 1
        or select.having is not None
        or length == 0
        or any(isinstance(item.expression, Star) for item in select.items)
    ):
        return None
    for item in select.items:
        expression = item.expression
        if not contains_aggregate(expression):
            continue
        if (
            not isinstance(expression, FunctionCall)
            or expression.name not in _PARTITIONED_AGGREGATES
            or expression.distinct
            or len(expression.arguments) > 1
            or any(contains_aggregate(argument) for argument in expression.arguments)
        ):
            return None
        if (expression.is_star or not expression.arguments) and expression.name != "count":
            # SUM(*)/AVG(*)/... are errors; the serial path raises them.
            return None

    # The serial path casts group keys to float64 before factorizing; the
    # partitioning must hash the *cast* values to land in the same groups.
    key_values = parallel_evaluate(frame, length, select.group_by[0], pool).astype(np.float64)
    groups = partitioned_groups(key_values, pool)
    if groups is None:
        return None

    counts = groups.counts()
    names: list[str] = []
    columns: dict[str, np.ndarray] = {}
    for position, item in enumerate(select.items):
        name = item_output_name(item, position)
        names.append(name)
        expression = item.expression
        if not contains_aggregate(expression):
            full = parallel_evaluate(frame, length, expression, pool)
            columns[name] = full[groups.first_indices]
            continue
        call = expression
        assert isinstance(call, FunctionCall)
        if call.is_star or not call.arguments:
            columns[name] = counts.copy()
            continue
        values = parallel_evaluate(frame, length, call.arguments[0], pool).astype(np.float64)
        if call.name == "count":
            columns[name] = counts.copy()
        elif call.name in ("sum", "total"):
            sums = groups.sums(values, pool)
            columns[name] = np.where(counts == 0, np.nan, sums) if call.name == "sum" else sums
        elif call.name == "avg":
            sums = groups.sums(values, pool)
            columns[name] = np.where(counts == 0, np.nan, sums / np.maximum(counts, 1))
        else:
            columns[name] = groups.reduce_minmax(values, minimum=call.name == "min", pool=pool)
    return names, columns


def parallel_fused_aggregate(
    joined: Frame,
    joined_length: int,
    key_expr: Expression,
    outputs: Sequence[tuple[str, str, Expression | None]],
    pool: WorkerPool,
) -> tuple[list[str], dict[str, np.ndarray]] | None:
    """Partitioned replica of the fused join-aggregate's grouping stage.

    ``outputs`` is the fused operator's (name, kind, argument) list.  The
    group key keeps its native dtype here (the fused path never casts), so
    integer state indices — the paper's hot key — partition exactly.
    """
    if joined_length == 0:
        return None
    key_values = parallel_evaluate(joined, joined_length, key_expr, pool)
    groups = partitioned_groups(key_values, pool)
    if groups is None:
        return None
    names: list[str] = []
    columns: dict[str, np.ndarray] = {}
    for name, kind, argument in outputs:
        names.append(name)
        if kind == "key":
            columns[name] = key_values[groups.first_indices]
        elif kind == "count":
            columns[name] = groups.counts()
        else:
            weights = parallel_evaluate(joined, joined_length, argument, pool).astype(np.float64)
            columns[name] = groups.sums(weights, pool)
    return names, columns
