"""Morsel-parallel operator variants, byte-identical to the serial executor.

Every function here reproduces one serial operator from :mod:`..executor`
(or the fused join-aggregate from :mod:`..planner`) with the work split
across a :class:`~.pool.WorkerPool`, under the merge disciplines that make
the output *bit-for-bit* equal to the serial result:

* **Row-parallel operators** (expression evaluation, scan filters, the
  hash-join probe) split the input into contiguous morsels and concatenate
  per-morsel results in morsel order.  All expression kernels are
  elementwise and the probe's ``searchsorted`` is a pure function of the
  (serially built) sorted build side, so concatenation *is* the serial
  answer.  Dictionary-encoded text survives the round trip: morsels sliced
  from one :class:`~..column.DictArray` share its dictionary, and
  :func:`~..column.concat_values` concatenates their codes.
* **Partitioned aggregation** splits rows by a hash of the *group key* —
  never by row range — so every group's rows land in exactly one partition,
  in input order.  Per-group accumulation (``np.bincount`` is a sequential
  C loop) therefore adds the same floats in the same order as the serial
  single-pass aggregate, which keeps even non-associative float sums
  identical.  The merge scatters each partition's groups into the globally
  key-sorted output (partitions are disjoint in key space, so the sorted
  concatenation of their unique keys equals the serial ``np.unique`` order).

Group keys are partitioned on the *exact int64 codes* the serial executor
groups on (:func:`~..column.encoded_codes`): integers pass through, floats
go through the monotone bit transform with NaN canonicalized, text becomes
dictionary codes, and all NULL keys share one code.  Every key shape —
NULL-heavy floats, object strings, multi-key GROUP BY — therefore
partitions exactly; the old serial fallbacks for NaN and object keys are
gone.  The remaining serial declines (``None`` returns) are semantic:
HAVING clauses, DISTINCT aggregates and nested aggregate expressions run
through the serial :class:`~..executor.GroupedEvaluator`, and malformed
``SUM(*)``-style calls fall through so the serial path raises its error.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..ast_nodes import Expression, FunctionCall, Select, SelectItem, Star
from ..column import (
    DictArray,
    concat_values,
    encoded_codes,
    gather_values,
    join_key_codes,
    null_mask,
    text_codes,
)
from ..executor import (
    ExpressionEvaluator,
    Frame,
    apply_filter,
    contains_aggregate,
    hash_join_frames,
    item_output_name,
    plain_projection,
)
from ....obs.tracing import annotate_current
from .morsel import morsel_ranges
from .pool import WorkerPool


def _slice_frame(frame: Frame, length: int, start: int, stop: int) -> Frame:
    """A morsel view of a frame (row-aligned columns sliced, others passed)."""
    return {
        key: values[start:stop] if len(values) == length else values
        for key, values in frame.items()
    }


def _aligned(frame: Frame, length: int) -> bool:
    return all(len(values) == length for values in frame.values())


# ---------------------------------------------------------------------------
# Row-parallel operators
# ---------------------------------------------------------------------------


def parallel_evaluate(
    frame: Frame, length: int, expression: Expression, pool: WorkerPool
) -> np.ndarray:
    """Evaluate an expression morsel-wise; identical to the serial evaluator.

    Every expression kernel in :class:`ExpressionEvaluator` is elementwise,
    so concatenating per-morsel results in morsel order reproduces the
    whole-column evaluation exactly.  Dictionary-encoded results stay
    encoded: morsels of one column share its dictionary object, which
    :func:`~..column.concat_values` recognizes and concatenates as codes.
    """
    ranges = morsel_ranges(length, pool.workers)
    if len(ranges) <= 1:
        return ExpressionEvaluator(frame, length).evaluate(expression)

    def evaluate(bounds: tuple[int, int]) -> np.ndarray:
        start, stop = bounds
        morsel = _slice_frame(frame, length, start, stop)
        return ExpressionEvaluator(morsel, stop - start).evaluate(expression)

    return concat_values(pool.map(evaluate, ranges))


def parallel_apply_filter(
    frame: Frame, length: int, predicate: Expression, pool: WorkerPool
) -> tuple[Frame, int]:
    """Filter a frame by a predicate, mask and gather both morsel-parallel."""
    ranges = morsel_ranges(length, pool.workers)
    if len(ranges) <= 1 or not _aligned(frame, length):
        return apply_filter(frame, length, predicate)

    keys = list(frame.keys())

    def filter_morsel(bounds: tuple[int, int]) -> tuple[list[np.ndarray], int]:
        start, stop = bounds
        morsel = _slice_frame(frame, length, start, stop)
        mask = ExpressionEvaluator(morsel, stop - start).evaluate(predicate).astype(bool)
        return [morsel[key][mask] for key in keys], int(mask.sum())

    pieces = pool.map(filter_morsel, ranges)
    filtered = {
        key: concat_values([piece[0][position] for piece in pieces])
        for position, key in enumerate(keys)
    }
    return filtered, int(sum(piece[1] for piece in pieces))


def parallel_join_indices(
    left_keys, right_keys, pool: WorkerPool
) -> tuple[np.ndarray, np.ndarray]:
    """Morsel-parallel probe of the code-based equi-join (exact replica).

    Both key columns are first translated into the shared exact ``int64``
    code space (:func:`~..column.join_key_codes` — dictionary codes unioned
    for text, the monotone bit transform for floats, NULLs flagged
    invalid), exactly as the serial :func:`~..executor.join_indices` does.
    The build side (sort of the right codes) stays serial — it is one
    stable ``argsort`` — while the probe side is split into morsels: each
    morsel's ``searchsorted`` bounds, match counts and within-row offsets
    are pure per-row functions, so the concatenation equals the serial
    output including tie order.
    """
    left, right, left_valid, right_valid = join_key_codes(left_keys, right_keys)

    left_map = right_map = None
    if not left_valid.all():
        left_map = np.flatnonzero(left_valid)
        left = left[left_map]
    if not right_valid.all():
        right_map = np.flatnonzero(right_valid)
        right = right[right_map]

    order = np.argsort(right, kind="stable")
    sorted_right = right[order]

    ranges = morsel_ranges(int(left.size), pool.workers)

    def probe(bounds: tuple[int, int]) -> tuple[np.ndarray, np.ndarray]:
        start, stop = bounds
        segment = left[start:stop]
        lo = np.searchsorted(sorted_right, segment, side="left")
        hi = np.searchsorted(sorted_right, segment, side="right")
        counts = hi - lo
        total = int(counts.sum())
        left_idx = np.repeat(np.arange(start, stop, dtype=np.int64), counts)
        starts = np.repeat(lo, counts)
        within = np.arange(total, dtype=np.int64) - np.repeat(np.cumsum(counts) - counts, counts)
        return left_idx, order[starts + within]

    if len(ranges) <= 1:
        pieces = [probe(bounds) for bounds in ranges] if ranges else []
    else:
        annotate_current("probe_morsels", len(ranges))
        pieces = pool.map(probe, ranges)
    if pieces:
        left_idx = np.concatenate([piece[0] for piece in pieces])
        right_idx = np.concatenate([piece[1] for piece in pieces])
    else:
        left_idx = np.empty(0, dtype=np.int64)
        right_idx = np.empty(0, dtype=np.int64)
    if left_map is not None:
        left_idx = left_map[left_idx]
    if right_map is not None:
        right_idx = right_map[right_idx]
    return left_idx, right_idx


def parallel_gather(values, indices: np.ndarray, pool: WorkerPool):
    """``values[indices]`` with the gather split into morsels of ``indices``.

    Dictionary-encoded columns gather their codes (no decode); the morsel
    pieces share the source dictionary, so the concatenation stays encoded.
    """
    ranges = morsel_ranges(int(indices.size), pool.workers)
    if len(ranges) <= 1:
        return gather_values(values, indices)
    pieces = pool.map(
        lambda bounds: gather_values(values, indices[bounds[0]:bounds[1]]), ranges
    )
    return concat_values(pieces)


def parallel_hash_join_frames(
    left_frame: Frame,
    left_length: int,
    right_frame: Frame,
    right_length: int,
    left_key_expr: Expression,
    right_key_expr: Expression,
    pool: WorkerPool,
) -> tuple[Frame, int]:
    """:func:`~..executor.hash_join_frames` with pool-backed kernels.

    The column-merge body lives in the serial function — only the evaluate,
    probe and gather strategies are swapped — so the two paths share one
    implementation of the merge rules.
    """
    return hash_join_frames(
        left_frame,
        left_length,
        right_frame,
        right_length,
        left_key_expr,
        right_key_expr,
        evaluate=lambda frame, length, expr: parallel_evaluate(frame, length, expr, pool),
        join=lambda left, right: parallel_join_indices(left, right, pool),
        gather=lambda values, indices: parallel_gather(values, indices, pool),
    )


# ---------------------------------------------------------------------------
# Partitioned aggregation
# ---------------------------------------------------------------------------


def _partition_ids(code_columns: Sequence[np.ndarray], partitions: int) -> np.ndarray:
    """Partition id per row (equal key rows -> equal partition).

    Keys arrive as exact ``int64`` codes, so a deterministic integer mix
    over the code columns partitions every key shape exactly — floats,
    NULLs, text and multi-key tuples included.  Collisions only cost
    balance, never correctness: a partition owning two key values still
    factorizes them into separate groups.
    """
    mixed = code_columns[0].astype(np.int64, copy=True)
    for column in code_columns[1:]:
        # FNV-style odd multiplier; int64 wraparound is deterministic.
        mixed *= np.int64(0x100000001B3)
        mixed += column
    return mixed % partitions


class _PartitionedGroups:
    """Group structure from a key-hash partitioning, merged in key order.

    Exposes exactly what the serial aggregates consume — first-occurrence
    indices in global key-sorted order, the per-row inverse — plus
    per-partition machinery so each aggregate accumulates a group's rows in
    input order (the serial ``bincount`` order).  Accepts one or more
    ``int64`` code columns; multiple columns reproduce the serial
    ``np.unique(..., axis=0)`` multi-key grouping (lexicographic order,
    first key most significant).
    """

    __slots__ = ("first_indices", "inverse", "num_groups", "_parts")

    def __init__(self, code_columns: Sequence[np.ndarray], pool: WorkerPool) -> None:
        length = len(code_columns[0])
        partitions = max(2, pool.workers)
        part_ids = _partition_ids(code_columns, partitions)
        buckets = [np.flatnonzero(part_ids == p) for p in range(partitions)]
        buckets = [rows for rows in buckets if len(rows)]
        annotate_current("group_partitions", len(buckets))
        multi = len(code_columns) > 1

        def factorize(rows: np.ndarray):
            if multi:
                sub = np.stack([column[rows] for column in code_columns], axis=1)
                unique, first, inverse = np.unique(
                    sub, axis=0, return_index=True, return_inverse=True
                )
            else:
                unique, first, inverse = np.unique(
                    code_columns[0][rows], return_index=True, return_inverse=True
                )
            return rows, unique, rows[first], inverse.ravel()

        parts = pool.map(factorize, buckets)

        if parts:
            all_unique = np.concatenate([part[1] for part in parts], axis=0)
            all_first = np.concatenate([part[2] for part in parts])
        else:
            shape = (0, len(code_columns)) if multi else 0
            all_unique = np.empty(shape, dtype=np.int64)
            all_first = np.empty(0, dtype=np.int64)
        if multi:
            # np.unique(axis=0) sorts rows lexicographically with the first
            # column most significant; np.lexsort's *last* key is primary.
            order = np.lexsort(
                tuple(all_unique[:, i] for i in reversed(range(all_unique.shape[1])))
            )
        else:
            order = np.argsort(all_unique, kind="stable")
        self.num_groups = int(len(order))
        self.first_indices = all_first[order]
        # Local group slot -> global (key-sorted) group id.
        global_of = np.empty(self.num_groups, dtype=np.int64)
        global_of[order] = np.arange(self.num_groups, dtype=np.int64)
        self.inverse = np.empty(length, dtype=np.int64)
        self._parts: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        base = 0
        for rows, unique, _first, inverse in parts:
            count = len(unique)
            ids = global_of[base : base + count]
            self.inverse[rows] = ids[inverse]
            self._parts.append((rows, inverse, ids))
            base += count

    # ------------------------------------------------------------- aggregates

    def counts(self) -> np.ndarray:
        """Per-group row counts (identical to ``np.bincount(inverse)``)."""
        result = np.zeros(self.num_groups, dtype=np.int64)
        for rows, inverse, ids in self._parts:
            result[ids] = np.bincount(inverse, minlength=len(ids))
        return result

    def masked_counts(self, mask: np.ndarray) -> np.ndarray:
        """Counts of mask-selected rows — ``COUNT(col)``'s NULL skipping."""
        result = np.zeros(self.num_groups, dtype=np.int64)
        for rows, inverse, ids in self._parts:
            result[ids] = np.bincount(inverse[mask[rows]], minlength=len(ids))
        return result

    def sums(
        self, weights: np.ndarray, pool: WorkerPool, mask: np.ndarray | None = None
    ) -> np.ndarray:
        """Per-group float sums, each group accumulated in input order.

        A group's rows all live in one partition with ascending row indices,
        and ``np.bincount`` adds them sequentially — the same float-addition
        order as the serial single-pass ``bincount``, hence identical bits.
        ``mask`` drops NULL rows first, exactly like the serial aggregate.
        """
        result = np.zeros(self.num_groups, dtype=np.float64)

        def partial(part: tuple[np.ndarray, np.ndarray, np.ndarray]):
            rows, inverse, ids = part
            if mask is None:
                return ids, np.bincount(inverse, weights=weights[rows], minlength=len(ids))
            keep = mask[rows]
            return ids, np.bincount(
                inverse[keep], weights=weights[rows][keep], minlength=len(ids)
            )

        for ids, sums in pool.map(partial, self._parts):
            result[ids] = sums
        return result

    def reduce_minmax(
        self,
        values: np.ndarray,
        minimum: bool,
        pool: WorkerPool,
        mask: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-group MIN/MAX via the serial ``reduceat`` discipline.

        Returns ``(group ids, reduced values)`` covering only groups with at
        least one mask-selected row; the caller scatters into its NULL-filled
        result, mirroring the serial all-NULL-group handling.
        """
        reducer = np.minimum if minimum else np.maximum

        def partial(part: tuple[np.ndarray, np.ndarray, np.ndarray]):
            rows, inverse, ids = part
            sub_values = values[rows]
            sub_inverse = inverse
            if mask is not None:
                keep = mask[rows]
                sub_values = sub_values[keep]
                sub_inverse = inverse[keep]
            if not len(sub_values):
                return ids[:0], sub_values
            order = np.argsort(sub_inverse, kind="stable")
            sorted_inverse = sub_inverse[order]
            sorted_values = sub_values[order]
            boundaries = np.concatenate(([0], np.flatnonzero(np.diff(sorted_inverse)) + 1))
            return ids[sorted_inverse[boundaries]], reducer.reduceat(sorted_values, boundaries)

        pieces = [piece for piece in pool.map(partial, self._parts) if len(piece[0])]
        if not pieces:
            return np.empty(0, dtype=np.int64), values[:0]
        return (
            np.concatenate([piece[0] for piece in pieces]),
            np.concatenate([piece[1] for piece in pieces]),
        )


def partitioned_groups(
    code_columns: Sequence[np.ndarray], pool: WorkerPool
) -> _PartitionedGroups:
    """Build the partitioned group structure over exact int64 code columns."""
    return _PartitionedGroups(code_columns, pool)


# ---------------------------------------------------------------------------
# Projection-level operators
# ---------------------------------------------------------------------------


def parallel_plain_projection(
    items: Sequence[SelectItem], frame: Frame, length: int, pool: WorkerPool
) -> tuple[list[str], dict[str, np.ndarray]]:
    """:func:`~..executor.plain_projection` with the pool-backed evaluator."""
    return plain_projection(
        items,
        frame,
        length,
        evaluate=lambda expression: parallel_evaluate(frame, length, expression, pool),
    )


#: Aggregate calls the partitioned merge reproduces exactly.
_PARTITIONED_AGGREGATES = frozenset({"count", "sum", "total", "avg", "min", "max"})


def parallel_grouped_projection(
    select: Select, frame: Frame, length: int, pool: WorkerPool
) -> tuple[list[str], dict[str, np.ndarray]] | None:
    """Partitioned replica of :func:`~..executor.grouped_projection`.

    Covers GROUP BY over any number of keys — partitioned on the exact
    ``int64`` codes the serial path factorizes on — with top-level
    COUNT/SUM/TOTAL/AVG/MIN/MAX aggregates, NULL skipping and text MIN/MAX
    included.  HAVING, DISTINCT aggregates, nested aggregate expressions
    and malformed ``SUM(*)``-style calls return ``None`` and run serially
    (the last so the serial path raises its error).
    """
    if (
        not select.group_by
        or select.having is not None
        or length == 0
        or any(isinstance(item.expression, Star) for item in select.items)
    ):
        return None
    for item in select.items:
        expression = item.expression
        if not contains_aggregate(expression):
            continue
        if (
            not isinstance(expression, FunctionCall)
            or expression.name not in _PARTITIONED_AGGREGATES
            or expression.distinct
            or len(expression.arguments) > 1
            or any(contains_aggregate(argument) for argument in expression.arguments)
        ):
            return None
        if (expression.is_star or not expression.arguments) and expression.name != "count":
            # SUM(*)/AVG(*)/... are errors; the serial path raises them.
            return None

    # Factorize on the same exact int64 codes as the serial grouped path:
    # equal keys share a code, all NULL keys share one code, and the global
    # key-sorted merge order equals the serial np.unique order.
    code_columns = [
        encoded_codes(parallel_evaluate(frame, length, expression, pool))
        for expression in select.group_by
    ]
    groups = partitioned_groups(code_columns, pool)

    star_counts = groups.counts()
    names: list[str] = []
    columns: dict[str, np.ndarray] = {}
    for position, item in enumerate(select.items):
        name = item_output_name(item, position)
        names.append(name)
        expression = item.expression
        if not contains_aggregate(expression):
            full = parallel_evaluate(frame, length, expression, pool)
            columns[name] = full[groups.first_indices]
            continue
        call = expression
        assert isinstance(call, FunctionCall)
        if call.is_star or not call.arguments:
            columns[name] = star_counts.copy()
            continue
        raw = parallel_evaluate(frame, length, call.arguments[0], pool)
        is_text = isinstance(raw, DictArray) or raw.dtype.kind in ("O", "U")
        mask = ~null_mask(raw)
        counts = groups.masked_counts(mask)
        if call.name == "count":
            columns[name] = counts
        elif is_text:
            if call.name not in ("min", "max"):
                return None  # serial path raises the text-aggregate error
            all_codes, vocabulary = text_codes(raw)
            ids, reduced = groups.reduce_minmax(
                all_codes, minimum=call.name == "min", pool=pool, mask=mask
            )
            result = np.empty(groups.num_groups, dtype=object)
            result[:] = None
            if len(ids):
                decoded = vocabulary[reduced]
                for group, value in zip(ids.tolist(), decoded.tolist()):
                    result[group] = value
            columns[name] = result
        else:
            values = raw.astype(np.float64)
            if call.name in ("sum", "total"):
                sums = groups.sums(values, pool, mask=mask)
                columns[name] = np.where(counts == 0, np.nan, sums) if call.name == "sum" else sums
            elif call.name == "avg":
                sums = groups.sums(values, pool, mask=mask)
                columns[name] = np.where(counts == 0, np.nan, sums / np.maximum(counts, 1))
            else:
                result = np.full(groups.num_groups, np.nan)
                ids, reduced = groups.reduce_minmax(
                    values, minimum=call.name == "min", pool=pool, mask=mask
                )
                result[ids] = reduced
                columns[name] = result
    return names, columns


def parallel_fused_aggregate(
    joined: Frame,
    joined_length: int,
    key_expr: Expression,
    outputs: Sequence[tuple[str, str, Expression | None]],
    pool: WorkerPool,
) -> tuple[list[str], dict[str, np.ndarray]] | None:
    """Partitioned replica of the fused join-aggregate's grouping stage.

    ``outputs`` is the fused operator's (name, kind, argument) list.  The
    key is factorized on its exact int64 codes (the fused serial path uses
    the same :func:`~..column.encoded_codes`), so integer state indices —
    the paper's hot key — as well as float and dictionary-encoded keys
    partition exactly; the key output gathers from the evaluated column so
    its dtype (or dictionary encoding) survives.
    """
    if joined_length == 0:
        return None
    key_values = parallel_evaluate(joined, joined_length, key_expr, pool)
    groups = partitioned_groups([encoded_codes(key_values)], pool)
    names: list[str] = []
    columns: dict[str, np.ndarray] = {}
    for name, kind, argument in outputs:
        names.append(name)
        if kind == "key":
            columns[name] = key_values[groups.first_indices]
        elif kind == "count":
            columns[name] = groups.counts()
        else:
            weights = parallel_evaluate(joined, joined_length, argument, pool).astype(np.float64)
            columns[name] = groups.sums(weights, pool)
    return names, columns
