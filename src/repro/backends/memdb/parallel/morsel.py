"""Morsel partitioning: contiguous row ranges for parallel operators.

A *morsel* is a contiguous ``[start, stop)`` row range of a column frame.
Contiguity is what makes the order-restoring merge trivial — concatenating
per-morsel results in morsel order reproduces the serial operator's output
exactly — and it keeps every worker streaming through adjacent memory.
"""

from __future__ import annotations

#: Target rows per morsel.  Large enough that numpy kernels dominate the
#: per-task dispatch overhead, small enough that a typical large input splits
#: into several morsels per worker (work stealing via the pool's queue).
DEFAULT_MORSEL_ROWS = 65_536

#: Never split below this many rows per morsel: tiny morsels pay more in
#: scheduling than they can win back in parallel kernel time.
MIN_MORSEL_ROWS = 2_048


def morsel_ranges(
    length: int,
    workers: int,
    target_rows: int = DEFAULT_MORSEL_ROWS,
    min_rows: int = MIN_MORSEL_ROWS,
) -> list[tuple[int, int]]:
    """Split ``length`` rows into contiguous ``(start, stop)`` morsels.

    The split aims for ``target_rows`` per morsel but always produces at
    least one morsel per worker when the input is large enough to keep every
    morsel above ``min_rows`` — otherwise fewer (down to a single morsel,
    which callers treat as "run serial").
    """
    if length <= 0:
        return []
    workers = max(1, int(workers))
    count = max(1, -(-length // max(1, int(target_rows))))
    if count < workers:
        count = workers
    count = min(count, max(1, length // max(1, int(min_rows))))
    base, extra = divmod(length, count)
    ranges: list[tuple[int, int]] = []
    start = 0
    for index in range(count):
        stop = start + base + (1 if index < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges
