"""Morsel-driven parallel execution for the embedded columnar engine.

The subsystem splits column arrays into contiguous *morsels* (fixed-size row
ranges) and executes the engine's vectorized operators — scan filters,
expression evaluation, hash-join probes, and partitioned group aggregation —
across a shared worker pool.  The executor's numpy kernels release the GIL on
large buffers, so plain threads scale the hot loops across cores without any
serialization cost.

Two design rules govern every operator in this package:

* **Order-restoring merges.**  Each morsel's result is merged back in morsel
  order (concatenation for row-parallel operators, key-ordered scatter for
  partitioned aggregation), so a parallel execution produces *byte-identical*
  results to the serial operators in :mod:`..executor` — the serial
  interpreter remains the reference implementation the differential tests
  compare against, and parallelism is purely a physical choice.
* **Cost-gated dispatch.**  Whether a query block runs parallel is a costed
  plan decision (:class:`~..optimizer.cost.ParallelDecision`), not a global
  switch: the planner compares estimated rows x operator cost against the
  pool's scheduling overhead, and small inputs stay serial.
"""

from __future__ import annotations

from .morsel import DEFAULT_MORSEL_ROWS, morsel_ranges
from .pool import WorkerPool, parallel_env_enabled, shared_worker_pool
from .operators import (
    parallel_apply_filter,
    parallel_evaluate,
    parallel_fused_aggregate,
    parallel_gather,
    parallel_grouped_projection,
    parallel_hash_join_frames,
    parallel_join_indices,
    parallel_plain_projection,
)

__all__ = [
    "DEFAULT_MORSEL_ROWS",
    "WorkerPool",
    "morsel_ranges",
    "parallel_apply_filter",
    "parallel_env_enabled",
    "parallel_evaluate",
    "parallel_fused_aggregate",
    "parallel_gather",
    "parallel_grouped_projection",
    "parallel_hash_join_frames",
    "parallel_join_indices",
    "parallel_plain_projection",
    "shared_worker_pool",
]
