"""The shared worker pool behind morsel-driven execution.

:class:`WorkerPool` wraps a lazily created :class:`ThreadPoolExecutor`.
Threads (not processes) are the right vehicle *inside* the engine: the
operators hand whole numpy buffers to kernels that release the GIL, and the
column arrays are shared read-only, so there is nothing to serialize.
Process-level parallelism lives one layer up, in the job service's
process-backed batch tier (see :mod:`repro.service.jobs`).

The pool is deliberately forgiving around lifecycle races: after
:meth:`shutdown` (or when an input is too small to split) ``map`` runs the
tasks inline on the calling thread, so an engine holding a reference to a
closed pool degrades to serial execution instead of failing mid-query.
Exceptions raised by a morsel task propagate to the caller unchanged, with
the remaining tasks cancelled best-effort.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

from ....obs.tracing import annotate_current

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Environment switch: ``REPRO_MEMDB_PARALLEL=1`` turns the parallel path on
#: for every engine that does not configure it explicitly (used by CI to run
#: the whole tier-1 suite over the parallel operators).
PARALLEL_ENV_VAR = "REPRO_MEMDB_PARALLEL"
#: Optional worker-count override for env-enabled runs.
PARALLEL_WORKERS_ENV_VAR = "REPRO_MEMDB_PARALLEL_WORKERS"

_TRUE_VALUES = frozenset({"1", "true", "yes", "on"})


def parallel_env_enabled() -> bool | None:
    """The ``REPRO_MEMDB_PARALLEL`` setting: True/False, or None when unset."""
    raw = os.environ.get(PARALLEL_ENV_VAR)
    if raw is None or raw.strip() == "":
        return None
    return raw.strip().lower() in _TRUE_VALUES


def default_worker_count() -> int:
    """Worker count when none is configured.

    At least 2 — an explicitly enabled parallel engine must exercise the
    morsel/merge machinery even on a single-core host — and at most 8
    (beyond that the memory bandwidth of columnar scans is the limit).
    """
    override = os.environ.get(PARALLEL_WORKERS_ENV_VAR)
    if override:
        try:
            return max(1, int(override))
        except ValueError:
            pass
    return max(2, min(8, os.cpu_count() or 1))


class WorkerPool:
    """A lazily started thread pool with ordered map and usage counters."""

    def __init__(self, workers: int | None = None) -> None:
        self.workers = int(workers) if workers else default_worker_count()
        if self.workers < 1:
            raise ValueError("WorkerPool needs at least one worker")
        self._executor: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        self._closed = False
        self.batches = 0
        self.tasks = 0
        self.inline_batches = 0
        self.errors = 0

    # ---------------------------------------------------------------- running

    def map(self, fn: Callable[[_T], _R], items: Sequence[_T]) -> list[_R]:
        """Run ``fn`` over ``items``, returning results in input order.

        Single-item batches, a closed pool, and a single-worker pool run
        inline on the calling thread (counted separately).  The first task
        exception is re-raised; remaining tasks are cancelled best-effort.
        """
        items = list(items)
        executor = self._acquire_executor() if len(items) > 1 else None
        if executor is None:
            with self._lock:
                self.inline_batches += 1
                self.tasks += len(items)
            # Tracing hook: a no-op thread-local peek unless a span is open
            # on the calling thread (the operator span of a traced query).
            annotate_current("morsel_inline_batches")
            annotate_current("morsel_tasks", len(items))
            return [fn(item) for item in items]
        with self._lock:
            self.batches += 1
            self.tasks += len(items)
        annotate_current("morsel_batches")
        annotate_current("morsel_tasks", len(items))
        futures = [executor.submit(fn, item) for item in items]
        results: list[_R] = []
        error: BaseException | None = None
        for future in futures:
            if error is not None:
                future.cancel()
                continue
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                error = exc
        if error is not None:
            with self._lock:
                self.errors += 1
            raise error
        return results

    def run(self, thunks: Sequence[Callable[[], _R]]) -> list[_R]:
        """Run independent zero-argument tasks, results in input order."""
        return self.map(lambda thunk: thunk(), thunks)

    def _acquire_executor(self) -> ThreadPoolExecutor | None:
        if self.workers < 2:
            return None
        with self._lock:
            if self._closed:
                return None
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="memdb-morsel"
                )
            return self._executor

    # -------------------------------------------------------------- lifecycle

    @property
    def active(self) -> bool:
        """True while the pool accepts parallel work (not shut down)."""
        with self._lock:
            return not self._closed

    def shutdown(self, wait: bool = True) -> None:
        """Stop the pool; later ``map`` calls run inline.  Idempotent."""
        with self._lock:
            executor = self._executor
            self._executor = None
            self._closed = True
        if executor is not None:
            executor.shutdown(wait=wait)

    # ------------------------------------------------------------------ stats

    def stats(self) -> dict:
        """Usage counters plus the configured worker count."""
        with self._lock:
            return {
                "workers": self.workers,
                "batches": self.batches,
                "tasks": self.tasks,
                "inline_batches": self.inline_batches,
                "errors": self.errors,
                "active": not self._closed,
            }

    def __repr__(self) -> str:
        return f"WorkerPool(workers={self.workers}, active={self.active})"


#: Process-wide pool shared by every engine that is not given its own —
#: mirrors the shared plan cache: sweeps tearing down a database per point
#: keep reusing warm threads.
_SHARED_POOL: WorkerPool | None = None
_SHARED_POOL_LOCK = threading.Lock()


def shared_worker_pool() -> WorkerPool:
    """The process-wide morsel worker pool (created on first use)."""
    global _SHARED_POOL
    with _SHARED_POOL_LOCK:
        if _SHARED_POOL is None or not _SHARED_POOL.active:
            _SHARED_POOL = WorkerPool()
        return _SHARED_POOL
