"""Abstract syntax tree nodes for the embedded columnar engine.

The node classes are small frozen dataclasses; the parser builds them and the
executor pattern-matches on their types.  Expressions and statements are kept
deliberately close to the SQL grammar so the executor's behaviour is easy to
audit against the statements the translator generates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expression:
    """Marker base class for expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expression):
    """A numeric, string or NULL literal."""

    value: object


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A column reference, optionally qualified with a table name/alias."""

    name: str
    table: Optional[str] = None

    def key(self) -> str:
        """The lookup key used by the executor's frames."""
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(Expression):
    """The ``*`` projection (optionally ``table.*``)."""

    table: Optional[str] = None


@dataclass(frozen=True)
class UnaryOp(Expression):
    """Unary operator: ``-x``, ``+x``, ``~x``, ``NOT x``."""

    operator: str
    operand: Expression


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Binary operator over two sub-expressions."""

    operator: str
    left: Expression
    right: Expression


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A function or aggregate call, e.g. ``SUM(expr)`` or ``COUNT(*)``."""

    name: str
    arguments: tuple[Expression, ...]
    is_star: bool = False
    distinct: bool = False


@dataclass(frozen=True)
class CaseExpression(Expression):
    """``CASE WHEN cond THEN value [...] ELSE default END``."""

    conditions: tuple[Expression, ...]
    results: tuple[Expression, ...]
    default: Optional[Expression] = None


@dataclass(frozen=True)
class FrameBound:
    """One endpoint of a ROWS frame.

    ``kind`` is one of ``unbounded_preceding``, ``preceding``, ``current``,
    ``following`` or ``unbounded_following``; ``offset`` is set only for the
    bounded ``preceding`` / ``following`` kinds.
    """

    kind: str
    offset: Optional[int] = None


@dataclass(frozen=True)
class WindowSpec:
    """The ``OVER (...)`` clause of a window function.

    ``frame`` is None for the SQL default frame (with ORDER BY: RANGE
    UNBOUNDED PRECEDING .. CURRENT ROW including peers; without: the whole
    partition).
    """

    partition_by: tuple[Expression, ...] = ()
    order_by: tuple["OrderItem", ...] = ()
    frame: Optional[tuple[FrameBound, FrameBound]] = None


@dataclass(frozen=True)
class WindowFunction(Expression):
    """``fn(args) OVER (PARTITION BY ... ORDER BY ... [ROWS ...])``.

    Deliberately distinct from :class:`FunctionCall` so aggregate detection
    and rewrite rules never mistake a window call for a plain aggregate.
    """

    name: str
    arguments: tuple[Expression, ...]
    spec: WindowSpec
    is_star: bool = False


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False


@dataclass(frozen=True)
class InList(Expression):
    """``expr [NOT] IN (literal, ...)``."""

    operand: Expression
    values: tuple[Expression, ...]
    negated: bool = False


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    """One projection item: an expression plus an optional alias."""

    expression: Expression
    alias: Optional[str] = None


@dataclass(frozen=True)
class TableSource:
    """A table (or CTE) appearing in FROM/JOIN, with an optional alias.

    ``filter`` is never produced by the parser: the optimizer's predicate
    pushdown installs it, and both the interpreter and the planner apply it
    to the scanned rows *before* any join — the relational identity
    ``sigma_p(A) JOIN B = sigma_p(A JOIN B)`` for inner joins.
    """

    name: str
    alias: Optional[str] = None
    filter: Optional[Expression] = None

    @property
    def binding(self) -> str:
        """Name under which the table's columns are visible."""
        return self.alias or self.name


@dataclass(frozen=True)
class Join:
    """An INNER/LEFT join with its ON condition."""

    source: TableSource
    condition: Expression
    kind: str = "inner"


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    expression: Expression
    descending: bool = False


@dataclass(frozen=True)
class Select:
    """A SELECT statement (possibly a CTE body).

    ``limit`` / ``offset`` follow SQLite semantics: a negative LIMIT means
    "no limit" and a negative OFFSET is treated as 0.
    """

    items: tuple[SelectItem, ...]
    source: Optional[TableSource] = None
    joins: tuple[Join, ...] = ()
    where: Optional[Expression] = None
    group_by: tuple[Expression, ...] = ()
    having: Optional[Expression] = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False


@dataclass(frozen=True)
class CompoundSelect:
    """``select UNION [ALL] select`` — only valid as a CTE body.

    In a ``WITH RECURSIVE`` entry, ``left`` is the base term and ``right``
    the recursive term; in a plain CTE the two branches are simply
    concatenated (with duplicate elimination for ``UNION``).
    """

    left: Select
    right: Select
    all: bool = False


@dataclass(frozen=True)
class CommonTableExpression:
    """One ``name [(col, ...)] AS (SELECT ...)`` entry of a WITH clause."""

    name: str
    query: Select | CompoundSelect
    columns: tuple[str, ...] = ()


@dataclass(frozen=True)
class WithSelect:
    """``WITH [RECURSIVE] cte [, cte ...] SELECT ...``."""

    ctes: tuple[CommonTableExpression, ...]
    query: Select
    recursive: bool = False


@dataclass(frozen=True)
class ColumnDefinition:
    """One column of a CREATE TABLE statement."""

    name: str
    type_name: str
    not_null: bool = False


@dataclass(frozen=True)
class CreateTable:
    """``CREATE [TEMP] TABLE name (col type [NOT NULL], ...)``."""

    name: str
    columns: tuple[ColumnDefinition, ...]
    temporary: bool = False


@dataclass(frozen=True)
class CreateTableAs:
    """``CREATE [TEMP] TABLE name AS <select>``."""

    name: str
    query: Select | WithSelect
    temporary: bool = False


@dataclass(frozen=True)
class Insert:
    """``INSERT INTO name (cols) VALUES (...), (...)``."""

    table: str
    columns: tuple[str, ...]
    rows: tuple[tuple[Expression, ...], ...]


@dataclass(frozen=True)
class Delete:
    """``DELETE FROM name [WHERE expr]``."""

    table: str
    where: Optional[Expression] = None


@dataclass(frozen=True)
class DropTable:
    """``DROP TABLE [IF EXISTS] name``."""

    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class Analyze:
    """``ANALYZE [table]`` — refresh the optimizer's statistics catalog."""

    table: Optional[str] = None


@dataclass(frozen=True)
class Explain:
    """``EXPLAIN [ANALYZE] <statement>``.

    ``inner_sql`` is the raw text of the explained statement (used for
    plan-cache provenance lookups without re-rendering the AST).
    """

    statement: "Statement"
    analyze: bool = False
    inner_sql: str = ""


Statement = (
    Select
    | WithSelect
    | CreateTable
    | CreateTableAs
    | Insert
    | Delete
    | DropTable
    | Analyze
    | Explain
)
