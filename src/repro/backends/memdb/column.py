"""Encoded columnar storage: dictionary codes, validity bitmaps, chunks.

This module is the v2 storage representation underneath
:class:`~repro.backends.memdb.table.Table`:

* **Dictionary encoding** — TEXT columns store ``int32`` codes into a
  *sorted* value dictionary (``<U*`` numpy array).  Because the dictionary
  is sorted, code order equals code-point order, so comparisons, joins,
  GROUP BY, ORDER BY and the top-k reverse collation all run on the codes
  and decode only at materialization.  ``-1`` is the NULL code; it sorts
  below every real code, which gives SQLite's NULLS-FIRST ascending
  placement for free.
* **Validity bitmaps** — every column chunk carries a packed validity
  bitmap (``None`` meaning "all valid"), so NULL is a storage-layer fact
  instead of a NaN sentinel.  Compute frames still use the historical
  sentinels (NaN for floats, ``None`` for objects, ``-1`` codes for
  dictionaries) because SQL-visible semantics cannot distinguish NaN from
  NULL in a float column, but the bitmap is authoritative for statistics
  and storage accounting.
* **Chunked layout** — column data is stored in fixed-size chunks
  (:data:`CHUNK_ROWS`) as preparation for out-of-core spill; a contiguous
  materialization is cached per column and invalidated by DML.

The second half of the module provides the *exact total-order encodings*
shared by every consumer: :func:`encoded_codes` maps any column vector to
``int64`` keys that are injective on non-NULL values and monotone in SQL
ordering (NULL strictly first), which makes grouping, DISTINCT, ORDER BY,
partitioning and join hashing exact — no more lossy ``astype(float64)``.
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

import numpy as np

from ...errors import SQLExecutionError

#: Rows per storage chunk.  65536 keeps chunk bitmaps at 8 KiB and matches
#: the morsel granularity of the parallel operators.
CHUNK_ROWS = 65536

#: Dictionary code reserved for NULL.  It is negative so it sorts below
#: every valid code (SQLite: NULLs first in ascending order).
NULL_CODE = -1

#: Canonical NaN bit pattern (negative quiet NaN).  Under the monotone
#: float64 -> int64 bit transform this pattern maps *below* the key of
#: ``-inf``, so NULL floats sort strictly first, like SQLite NULLs.
_CANONICAL_NAN_BITS = np.uint64(0xFFF8000000000000)
_SIGN_BIT = np.uint64(0x8000000000000000)
_FULL_MASK = np.uint64(0xFFFFFFFFFFFFFFFF)


def dict_encoding_default() -> bool:
    """Process-wide default for dictionary encoding (``REPRO_MEMDB_DICT``).

    Any value other than ``"0"`` (including unset) enables encoding; the CI
    ablation leg exports ``REPRO_MEMDB_DICT=0`` to exercise the v1 object
    representation end to end.
    """
    return os.environ.get("REPRO_MEMDB_DICT", "1") != "0"


def _is_none_mask(values: np.ndarray) -> np.ndarray:
    """Elementwise ``v is None`` over an object array."""
    out = np.empty(len(values), dtype=bool)
    for index, value in enumerate(values.tolist() if values.dtype == object else values):
        out[index] = value is None or (isinstance(value, float) and value != value)
    return out


def _as_text_array(values: np.ndarray, valid: np.ndarray) -> np.ndarray:
    """Non-null entries of an object/str vector as a ``<U*`` array.

    Invalid slots are filled with ``""`` — callers must mask them out via
    ``valid`` before trusting the contents.
    """
    if values.dtype.kind == "U":
        return values
    filled = values.copy() if values.dtype == object else np.asarray(values, dtype=object)
    if not valid.all():
        filled = filled.copy() if filled is values else filled
        filled[~valid] = ""
    try:
        return filled.astype(str)
    except (TypeError, ValueError) as exc:  # pragma: no cover - defensive
        raise SQLExecutionError(f"cannot encode non-text value in text column: {exc}") from None


class DictArray:
    """A dictionary-encoded string vector flowing through compute frames.

    ``codes`` is an ``int32`` array of indices into the *sorted* string
    ``dictionary`` (``<U*`` dtype); ``-1`` encodes NULL.  The class is
    deliberately **not** an ndarray subclass — every consumer kernel was
    audited and either operates on the codes directly or receives the
    decoded object array via :meth:`decode` / ``__array__``.
    """

    __slots__ = ("codes", "dictionary", "_decoded")

    def __init__(self, codes: np.ndarray, dictionary: np.ndarray) -> None:
        self.codes = np.asarray(codes, dtype=np.int32)
        self.dictionary = dictionary
        self._decoded: np.ndarray | None = None

    # ------------------------------------------------------------- factories

    @classmethod
    def from_values(cls, values: Sequence[object] | np.ndarray) -> "DictArray":
        """Encode an object/str vector (``None``/NaN entries become NULL)."""
        array = np.asarray(values, dtype=object) if not isinstance(values, np.ndarray) else values
        if array.dtype.kind == "U":
            valid = np.ones(len(array), dtype=bool)
            text = array
        else:
            array = array if array.dtype == object else array.astype(object)
            valid = ~_is_none_mask(array)
            text = _as_text_array(array, valid)
        if valid.any():
            # Vocabulary from the *valid* slots only: the "" filler that
            # _as_text_array leaves at NULL positions must not become an
            # (unreferenced) dictionary entry.
            dictionary = np.unique(text[valid]) if not valid.all() else np.unique(text)
            codes = np.searchsorted(dictionary, text).astype(np.int32)
            codes[~valid] = NULL_CODE
        else:
            dictionary = np.empty(0, dtype="<U1")
            codes = np.full(len(array), NULL_CODE, dtype=np.int32)
        return cls(codes, dictionary)

    # ------------------------------------------------------------ properties

    @property
    def dtype(self) -> np.dtype:
        # Logical dtype: consumers (and tests) see an object column.
        return np.dtype(object)

    @property
    def ndim(self) -> int:
        return 1

    @property
    def shape(self) -> tuple[int]:
        return (len(self.codes),)

    @property
    def size(self) -> int:
        return int(self.codes.size)

    @property
    def nbytes(self) -> int:
        return int(self.codes.nbytes + self.dictionary.nbytes)

    def __len__(self) -> int:
        return len(self.codes)

    def __repr__(self) -> str:
        return f"DictArray(len={len(self)}, dict_size={len(self.dictionary)})"

    # ------------------------------------------------------------- accessors

    def __getitem__(self, item):
        if isinstance(item, (int, np.integer)):
            code = int(self.codes[item])
            return None if code < 0 else str(self.dictionary[code])
        return DictArray(self.codes[item], self.dictionary)

    def take(self, indices: np.ndarray) -> "DictArray":
        """Gather rows (join/build side materialization)."""
        return DictArray(self.codes.take(indices), self.dictionary)

    def copy(self) -> "DictArray":
        return DictArray(self.codes.copy(), self.dictionary)

    def decode(self) -> np.ndarray:
        """The object array this vector encodes (``None`` at NULL slots)."""
        if self._decoded is None:
            out = np.empty(len(self.codes), dtype=object)
            valid = self.codes >= 0
            if valid.any():
                out[valid] = self.dictionary[self.codes[valid]]
            if not valid.all():
                out[~valid] = None
            self._decoded = out
        return self._decoded

    def __array__(self, dtype=None, copy=None):
        decoded = self.decode()
        if dtype is not None and np.dtype(dtype) != np.dtype(object):
            return decoded.astype(dtype)
        return decoded.copy() if copy else decoded

    def __iter__(self):
        return iter(self.decode())

    def tolist(self) -> list:
        return self.decode().tolist()

    def astype(self, dtype) -> np.ndarray:
        return self.decode().astype(dtype)

    def is_null(self) -> np.ndarray:
        return self.codes < 0

    # ----------------------------------------------------------- comparisons

    def _rank_other(self, other) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Rank ``other`` values in this dictionary's order.

        Returns ``(rank, exact, valid)``: for each right-hand value its
        insertion point in the sorted dictionary, whether it is an exact
        dictionary member, and whether it is non-NULL.  With these, every
        comparison reduces to integer compares against the codes:
        ``a < b  <=>  code(a) < rank(b)`` and
        ``a == b <=>  exact(b) and code(a) == rank(b)``.
        """
        if isinstance(other, DictArray):
            if len(other.dictionary) == 0:
                length = len(other.codes)
                return (
                    np.zeros(length, dtype=np.int64),
                    np.zeros(length, dtype=bool),
                    other.codes >= 0,
                )
            mapping = np.searchsorted(self.dictionary, other.dictionary)
            hit = mapping < len(self.dictionary)
            member = np.zeros(len(other.dictionary), dtype=bool)
            if hit.any():
                member[hit] = self.dictionary[mapping[hit]] == other.dictionary[hit]
            valid = other.codes >= 0
            safe = np.where(valid, other.codes, 0)
            return mapping[safe], member[safe], valid
        if isinstance(other, str):
            rank = int(np.searchsorted(self.dictionary, other))
            exact = rank < len(self.dictionary) and str(self.dictionary[rank]) == other
            length = len(self.codes)
            return (
                np.full(length, rank, dtype=np.int64),
                np.full(length, exact, dtype=bool),
                np.ones(length, dtype=bool),
            )
        array = np.asarray(other)
        if array.dtype.kind not in ("U", "O"):
            # Comparing text to numbers: SQLite's type ordering never makes
            # them equal; mirror the object-array behavior (always unequal).
            length = len(self.codes)
            return (
                np.full(length, -1, dtype=np.int64),
                np.zeros(length, dtype=bool),
                np.ones(length, dtype=bool),
            )
        valid = ~_is_none_mask(array) if array.dtype == object else np.ones(len(array), dtype=bool)
        text = _as_text_array(array, valid)
        rank = np.searchsorted(self.dictionary, text)
        hit = rank < len(self.dictionary)
        exact = np.zeros(len(array), dtype=bool)
        if hit.any():
            exact[hit] = self.dictionary[rank[hit]] == text[hit]
        return rank, exact, valid

    def _compare(self, op: str, other) -> np.ndarray:
        rank, exact, other_valid = self._rank_other(other)
        codes = self.codes.astype(np.int64)
        if op == "==":
            result = exact & (codes == rank)
        elif op == "!=":
            result = ~(exact & (codes == rank))
        elif op == "<":
            result = codes < rank
        elif op == "<=":
            result = (codes < rank) | (exact & (codes == rank))
        elif op == ">":
            result = (codes > rank) | (~exact & (codes == rank))
        else:  # >=
            result = codes >= rank
        # NULL on either side compares unknown -> False for every operator.
        result &= (self.codes >= 0) & other_valid
        return result

    def __eq__(self, other):  # type: ignore[override]
        return self._compare("==", other)

    def __ne__(self, other):  # type: ignore[override]
        return self._compare("!=", other)

    def __lt__(self, other):
        return self._compare("<", other)

    def __le__(self, other):
        return self._compare("<=", other)

    def __gt__(self, other):
        return self._compare(">", other)

    def __ge__(self, other):
        return self._compare(">=", other)

    __hash__ = None  # type: ignore[assignment]


# ---------------------------------------------------------------------------
# Vector helpers shared by the executor and parallel operators
# ---------------------------------------------------------------------------


def null_mask(values) -> np.ndarray:
    """True where a compute-frame vector is NULL under SQL semantics."""
    if isinstance(values, DictArray):
        return values.is_null()
    array = np.asarray(values)
    if array.dtype.kind == "f":
        return np.isnan(array)
    if array.dtype == object:
        return _is_none_mask(array)
    return np.zeros(len(array), dtype=bool)


def encoded_codes(values) -> np.ndarray:
    """Exact ``int64`` total-order keys for one column vector.

    Properties relied on throughout the engine:

    * **injective** on non-NULL values (no float64 rounding of wide ints,
      no NaN ambiguity), so equality of keys is equality of values;
    * **monotone** in SQL ordering, so sorting keys sorts values;
    * all NULLs map to a single key that is **strictly smaller** than any
      non-NULL key (SQLite: one NULL group, NULLs first ascending).

    Integers pass through; floats go through a monotone bit transform with
    NaN canonicalized to a negative-NaN pattern below ``-inf``; dictionary
    codes are already exact; plain object/str vectors are encoded on the
    fly against a local sorted vocabulary.
    """
    if isinstance(values, DictArray):
        return values.codes.astype(np.int64)
    array = np.asarray(values)
    kind = array.dtype.kind
    if kind in "iub":
        return array.astype(np.int64)
    if kind == "f":
        return _float_order_keys(array.astype(np.float64))
    return text_codes(values)[0]


def text_codes(values) -> tuple[np.ndarray, np.ndarray]:
    """``(int64 codes, sorted vocabulary)`` for a text vector.

    NULL rows carry :data:`NULL_CODE`; valid codes index the vocabulary.
    DictArray inputs return their own dictionary; plain object/str vectors
    are encoded on the fly.
    """
    if isinstance(values, DictArray):
        return values.codes.astype(np.int64), values.dictionary
    array = np.asarray(values)
    valid = ~_is_none_mask(array) if array.dtype == object else np.ones(len(array), dtype=bool)
    text = _as_text_array(array, valid)
    if valid.any():
        vocabulary = np.unique(text[valid]) if not valid.all() else np.unique(text)
        codes = np.searchsorted(vocabulary, text).astype(np.int64)
    else:
        vocabulary = np.empty(0, dtype="<U1")
        codes = np.zeros(len(array), dtype=np.int64)
    codes[~valid] = NULL_CODE
    return codes, vocabulary


def _float_order_keys(values: np.ndarray) -> np.ndarray:
    """Monotone float64 -> int64 keys; all NaNs collapse below ``-inf``.

    The transform flips the sign bit of non-negative patterns and all bits
    of negative ones, producing an unsigned total order, then flips the top
    bit once more to land in signed-int64 order.  Negating the keys for
    DESC is safe: the only pattern whose key is ``int64.min`` is the
    all-ones negative NaN payload, which canonicalization eliminates.
    """
    bits = values.view(np.uint64).copy()
    bits[np.isnan(values)] = _CANONICAL_NAN_BITS
    # -0.0 and +0.0 are equal in SQL; collapse to one bit pattern so the
    # keys stay injective on *values*, not representations.
    bits[bits == _SIGN_BIT] = np.uint64(0)
    negative = (bits & _SIGN_BIT) != 0
    key_u = np.where(negative, bits ^ _FULL_MASK, bits | _SIGN_BIT)
    return (key_u ^ _SIGN_BIT).view(np.int64)


def sort_keys(values, descending: bool = False) -> np.ndarray:
    """Exact ORDER BY keys: NULLs first ascending, last descending."""
    keys = encoded_codes(values)
    return -keys if descending else keys


def concat_values(parts: Sequence) -> np.ndarray | DictArray:
    """Concatenate morsel results, preserving dictionary encoding.

    All-:class:`DictArray` inputs sharing one dictionary object (the common
    case: morsels sliced from one column) concatenate as codes; mixed
    dictionaries are unioned; anything else falls back to ndarray
    concatenation of the decoded values.
    """
    parts = list(parts)
    if not parts:
        return np.empty(0, dtype=object)
    if all(isinstance(part, DictArray) for part in parts):
        first_dict = parts[0].dictionary
        if all(part.dictionary is first_dict for part in parts[1:]):
            return DictArray(np.concatenate([part.codes for part in parts]), first_dict)
        union = np.unique(np.concatenate([part.dictionary for part in parts]))
        remapped = []
        for part in parts:
            mapping = np.searchsorted(union, part.dictionary).astype(np.int32)
            codes = np.where(part.codes >= 0, mapping[np.clip(part.codes, 0, None)], NULL_CODE)
            remapped.append(codes.astype(np.int32))
        return DictArray(np.concatenate(remapped), union)
    arrays = [part.decode() if isinstance(part, DictArray) else np.asarray(part) for part in parts]
    return np.concatenate(arrays)


def gather_values(values, indices: np.ndarray):
    """Row gather that keeps dictionary encoding intact."""
    if isinstance(values, DictArray):
        return values.take(indices)
    return np.asarray(values).take(indices)


def to_pylist(values) -> list:
    """Materialize a compute vector as Python objects (``None`` for NULL)."""
    if isinstance(values, DictArray):
        return values.tolist()
    return np.asarray(values).tolist()


def join_key_codes(left, right) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Exact shared-space join keys for two key vectors.

    Returns ``(left_codes, right_codes, left_valid, right_valid)`` where
    the codes are ``int64``, equal codes mean equal values **across both
    sides**, and NULL rows are flagged invalid (joins never match NULLs).
    Text sides are translated into a union dictionary; numeric sides use
    the monotone bit transform (both cast to float64 when either side is
    float, mirroring the engine's historical numeric-compare semantics).
    """
    left_text = isinstance(left, DictArray) or np.asarray(left).dtype.kind in ("O", "U")
    right_text = isinstance(right, DictArray) or np.asarray(right).dtype.kind in ("O", "U")
    left_valid = ~null_mask(left)
    right_valid = ~null_mask(right)
    if left_text != right_text:
        # Text never equals a number: no matches at all.
        return (
            np.zeros(_vec_len(left), dtype=np.int64),
            np.ones(_vec_len(right), dtype=np.int64),
            np.zeros(_vec_len(left), dtype=bool),
            np.zeros(_vec_len(right), dtype=bool),
        )
    if left_text:
        left_dict, left_codes = _side_codes(left, left_valid)
        right_dict, right_codes = _side_codes(right, right_valid)
        union = np.unique(np.concatenate([left_dict, right_dict]))
        left_codes = _translate(left_codes, left_dict, union)
        right_codes = _translate(right_codes, right_dict, union)
        return left_codes, right_codes, left_valid, right_valid
    left_array = np.asarray(left)
    right_array = np.asarray(right)
    if left_array.dtype.kind == "f" or right_array.dtype.kind == "f":
        return (
            _float_order_keys(left_array.astype(np.float64)),
            _float_order_keys(right_array.astype(np.float64)),
            left_valid,
            right_valid,
        )
    return left_array.astype(np.int64), right_array.astype(np.int64), left_valid, right_valid


def _vec_len(values) -> int:
    return len(values)


def _side_codes(values, valid: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    if isinstance(values, DictArray):
        return values.dictionary, values.codes.astype(np.int64)
    array = np.asarray(values)
    text = _as_text_array(array, valid)
    if valid.any():
        vocabulary = np.unique(text[valid]) if not valid.all() else np.unique(text)
        codes = np.searchsorted(vocabulary, text).astype(np.int64)
    else:
        vocabulary = np.empty(0, dtype="<U1")
        codes = np.zeros(len(array), dtype=np.int64)
    codes[~valid] = NULL_CODE
    return vocabulary, codes


def _translate(codes: np.ndarray, vocabulary: np.ndarray, union: np.ndarray) -> np.ndarray:
    if len(vocabulary) == 0:
        return codes.astype(np.int64)
    mapping = np.searchsorted(union, vocabulary).astype(np.int64)
    return np.where(codes >= 0, mapping[np.clip(codes, 0, None)], np.int64(NULL_CODE))


def compare_values(operator: str, left, right) -> np.ndarray:
    """SQL comparison with three-valued logic collapsed to filter semantics.

    NULL on either side yields ``False`` for **every** operator — including
    ``!=``, which plain numpy gets wrong (``NaN != x`` is True) and which
    the old object path got wrong for ``None != None``.
    """
    if isinstance(left, DictArray):
        return left._compare(_DICT_OPS[operator], right)
    if isinstance(right, DictArray):
        return right._compare(_DICT_OPS[_SWAPPED[operator]], left)
    left_array = np.asarray(left)
    right_array = np.asarray(right)
    left_text = left_array.dtype.kind in ("O", "U")
    right_text = right_array.dtype.kind in ("O", "U")
    if left_text or right_text:
        # Encode the text side(s) and compare through a DictArray so NULL
        # masking and cross-type rules live in exactly one place.
        anchor = left_array if left_text else right_array
        encoded = DictArray.from_values(anchor)
        if left_text:
            return encoded._compare(_DICT_OPS[operator], right)
        return encoded._compare(_DICT_OPS[_SWAPPED[operator]], left)
    with np.errstate(invalid="ignore"):
        if operator == "=":
            result = left_array == right_array
        elif operator == "!=":
            result = left_array != right_array
            invalid = null_mask(left_array) | null_mask(right_array)
            if invalid.any():
                result = result & ~invalid
        elif operator == "<":
            result = left_array < right_array
        elif operator == "<=":
            result = left_array <= right_array
        elif operator == ">":
            result = left_array > right_array
        else:
            result = left_array >= right_array
    return np.asarray(result, dtype=bool)


_DICT_OPS = {"=": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}
_SWAPPED = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


# ---------------------------------------------------------------------------
# Chunked encoded column storage
# ---------------------------------------------------------------------------


def _pack_validity(valid: np.ndarray) -> np.ndarray | None:
    """Packed bitmap for one chunk; ``None`` when every row is valid."""
    if valid.all():
        return None
    return np.packbits(valid)


def _chunk_spans(length: int) -> Iterable[tuple[int, int]]:
    for start in range(0, length, CHUNK_ROWS):
        yield start, min(start + CHUNK_ROWS, length)


class EncodedColumn:
    """One table column stored as fixed-size chunks plus validity bitmaps.

    ``kind`` is one of ``"numeric"`` (int64/float64 data chunks),
    ``"dict"`` (int32 code chunks sharing one sorted dictionary) or
    ``"object"`` (raw object chunks, the ``REPRO_MEMDB_DICT=0`` ablation).
    """

    __slots__ = ("kind", "_dtype", "_chunks", "_validity", "_dictionary", "_cache", "dictionary_rebuilds")

    def __init__(self, kind: str, dtype: np.dtype, dictionary: np.ndarray | None = None) -> None:
        self.kind = kind
        self._dtype = dtype
        self._chunks: list[np.ndarray] = []
        self._validity: list[np.ndarray | None] = []
        self._dictionary = dictionary if dictionary is not None else np.empty(0, dtype="<U1")
        self._cache: np.ndarray | DictArray | None = None
        self.dictionary_rebuilds = 0

    # ------------------------------------------------------------- factories

    @classmethod
    def from_array(cls, values, dict_encode: bool | None = None) -> "EncodedColumn":
        """Wrap a column vector, choosing the storage kind.

        ``dict_encode=None`` is representation-preserving: a
        :class:`DictArray` stays dictionary-encoded and a plain object
        array stays object, so CTE materialization inside an ablated
        engine can never smuggle the encoded representation back in.
        """
        if isinstance(values, DictArray):
            if dict_encode is False:
                return cls.from_array(values.decode(), dict_encode=False)
            column = cls("dict", np.dtype(object), values.dictionary)
            column._append_codes(values.codes)
            return column
        array = np.asarray(values)
        if array.dtype.kind in ("O", "U"):
            if array.dtype.kind == "U":
                array = array.astype(object)
            if dict_encode is None:
                dict_encode = False if array.dtype == object else True
            if dict_encode:
                return cls.from_array(DictArray.from_values(array))
            column = cls("object", np.dtype(object))
            column._append_object(array)
            return column
        column = cls("numeric", array.dtype)
        column._append_numeric(array)
        return column

    @classmethod
    def empty(cls, dtype, dict_encode: bool) -> "EncodedColumn":
        dtype = np.dtype(dtype) if dtype != object else np.dtype(object)
        if dtype == object:
            return cls("dict" if dict_encode else "object", np.dtype(object))
        return cls("numeric", dtype)

    # ------------------------------------------------------------ properties

    @property
    def num_rows(self) -> int:
        return sum(len(chunk) for chunk in self._chunks)

    @property
    def dtype(self) -> np.dtype:
        """Logical dtype (``object`` for text regardless of encoding)."""
        return self._dtype

    @property
    def num_chunks(self) -> int:
        return len(self._chunks)

    @property
    def dictionary_size(self) -> int:
        return len(self._dictionary) if self.kind == "dict" else 0

    # ----------------------------------------------------------- ingest path

    def _append_codes(self, codes: np.ndarray) -> None:
        for start, stop in _chunk_spans(len(codes)):
            chunk = np.ascontiguousarray(codes[start:stop], dtype=np.int32)
            self._chunks.append(chunk)
            self._validity.append(_pack_validity(chunk >= 0))
        self._cache = None

    def _append_numeric(self, values: np.ndarray) -> None:
        for start, stop in _chunk_spans(len(values)):
            chunk = np.ascontiguousarray(values[start:stop])
            self._chunks.append(chunk)
            if chunk.dtype.kind == "f":
                self._validity.append(_pack_validity(~np.isnan(chunk)))
            else:
                self._validity.append(None)
        self._cache = None

    def _append_object(self, values: np.ndarray) -> None:
        for start, stop in _chunk_spans(len(values)):
            chunk = values[start:stop].copy()
            self._chunks.append(chunk)
            self._validity.append(_pack_validity(~_is_none_mask(chunk)))
        self._cache = None

    def append(self, values) -> None:
        """Append a coerced vector (INSERT path); grows the dictionary."""
        if self.kind == "numeric":
            self._append_numeric(np.asarray(values, dtype=self._dtype))
            return
        if self.kind == "object":
            array = np.asarray(values, dtype=object)
            self._append_object(array)
            return
        encoded = values if isinstance(values, DictArray) else DictArray.from_values(np.asarray(values, dtype=object))
        new_entries = np.setdiff1d(encoded.dictionary, self._dictionary, assume_unique=False)
        if len(new_entries):
            merged = np.unique(np.concatenate([self._dictionary, encoded.dictionary])) if len(self._dictionary) else np.unique(encoded.dictionary)
            self._remap_dictionary(merged)
        codes = _translate(encoded.codes.astype(np.int64), encoded.dictionary, self._dictionary).astype(np.int32)
        self._append_codes(codes)

    def _remap_dictionary(self, merged: np.ndarray) -> None:
        """Re-point every stored code chunk at a grown sorted dictionary."""
        if len(self._dictionary):
            mapping = np.searchsorted(merged, self._dictionary).astype(np.int32)
            for index, chunk in enumerate(self._chunks):
                self._chunks[index] = np.where(
                    chunk >= 0, mapping[np.clip(chunk, 0, None)], np.int32(NULL_CODE)
                ).astype(np.int32)
        self._dictionary = merged
        self.dictionary_rebuilds += 1
        self._cache = None

    def delete_where(self, keep: np.ndarray) -> None:
        """Keep only the rows flagged true; data is re-chunked."""
        if self.kind == "dict":
            codes = self._all_codes()[keep]
            self._chunks = []
            self._validity = []
            self._append_codes(codes)
        elif self.kind == "numeric":
            values = self._all_numeric()[keep]
            self._chunks = []
            self._validity = []
            self._append_numeric(values)
        else:
            values = self._all_object()[keep]
            self._chunks = []
            self._validity = []
            self._append_object(values)

    # -------------------------------------------------------- materialization

    def _all_codes(self) -> np.ndarray:
        if not self._chunks:
            return np.empty(0, dtype=np.int32)
        return self._chunks[0] if len(self._chunks) == 1 else np.concatenate(self._chunks)

    def _all_numeric(self) -> np.ndarray:
        if not self._chunks:
            return np.empty(0, dtype=self._dtype)
        return self._chunks[0] if len(self._chunks) == 1 else np.concatenate(self._chunks)

    def _all_object(self) -> np.ndarray:
        if not self._chunks:
            return np.empty(0, dtype=object)
        return self._chunks[0] if len(self._chunks) == 1 else np.concatenate(self._chunks)

    def materialize(self) -> np.ndarray | DictArray:
        """Contiguous column vector for the compute layer (cached)."""
        if self._cache is None:
            if self.kind == "dict":
                self._cache = DictArray(self._all_codes(), self._dictionary)
            elif self.kind == "numeric":
                self._cache = self._all_numeric()
            else:
                self._cache = self._all_object()
        return self._cache

    def null_count(self) -> int:
        """NULL rows according to the validity bitmaps."""
        total = 0
        for chunk, bitmap in zip(self._chunks, self._validity):
            if bitmap is None:
                continue
            valid = np.unpackbits(bitmap, count=len(chunk))
            total += int(len(chunk) - valid.sum())
        return total

    def nbytes(self) -> int:
        data = sum(int(chunk.nbytes) for chunk in self._chunks)
        bitmaps = sum(int(bitmap.nbytes) for bitmap in self._validity if bitmap is not None)
        dictionary = int(self._dictionary.nbytes) if self.kind == "dict" else 0
        return data + bitmaps + dictionary

    def storage_stats(self) -> dict:
        """Per-column storage accounting (codes + dictionary + bitmap)."""
        data = sum(int(chunk.nbytes) for chunk in self._chunks)
        bitmaps = sum(int(bitmap.nbytes) for bitmap in self._validity if bitmap is not None)
        return {
            "kind": self.kind,
            "rows": self.num_rows,
            "chunks": len(self._chunks),
            "data_bytes": data,
            "validity_bytes": bitmaps,
            "dictionary_bytes": int(self._dictionary.nbytes) if self.kind == "dict" else 0,
            "dictionary_size": self.dictionary_size,
            "dictionary_rebuilds": self.dictionary_rebuilds,
            "null_count": self.null_count(),
        }

    def copy(self) -> "EncodedColumn":
        clone = EncodedColumn(self.kind, self._dtype, self._dictionary)
        clone._chunks = [chunk.copy() for chunk in self._chunks]
        clone._validity = [bitmap.copy() if bitmap is not None else None for bitmap in self._validity]
        clone.dictionary_rebuilds = self.dictionary_rebuilds
        return clone

    #: Cost-model width weight: dictionary codes and numerics move 8-byte
    #: (or narrower) machine words; object columns move pointers plus
    #: interned python strings, roughly 4x the touch cost.
    def width_weight(self) -> int:
        return 4 if self.kind == "object" else 1
