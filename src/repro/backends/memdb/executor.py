"""Vectorized query executor for the embedded columnar engine.

The executor evaluates parsed statements against :class:`~.table.Table`
objects.  SELECT execution follows the textbook pipeline — FROM, JOIN
(vectorized hash join), WHERE, GROUP BY (vectorized hash aggregation via
``np.unique``), HAVING, projection, DISTINCT, ORDER BY, LIMIT — operating on
whole numpy columns throughout, which is the "columnar, vectorized execution"
behaviour the engine substitutes for DuckDB.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ...errors import SQLExecutionError
from .ast_nodes import (
    BinaryOp,
    CaseExpression,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Join,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    Star,
    UnaryOp,
    WithSelect,
)
from .parser import AGGREGATE_FUNCTIONS
from .table import Table

Frame = dict[str, np.ndarray]

#: Scalar functions available in expressions.
_SCALAR_FUNCTIONS = {
    "abs": np.abs,
    "round": np.round,
    "floor": np.floor,
    "ceil": np.ceil,
    "ceiling": np.ceil,
    "sqrt": np.sqrt,
    "exp": np.exp,
    "ln": np.log,
    "log": np.log,
    "sin": np.sin,
    "cos": np.cos,
    "power": None,  # handled specially (two arguments)
    "pow": None,
    "coalesce": None,
    "min2": None,
    "max2": None,
}


def _frame_length(frame: Frame) -> int:
    for values in frame.values():
        return int(len(values))
    return 0


def _broadcast(value, length: int) -> np.ndarray:
    if isinstance(value, np.ndarray) and value.ndim == 1 and len(value) == length:
        return value
    return np.full(length, value)


class ExpressionEvaluator:
    """Evaluates scalar (non-aggregate) expressions over a column frame."""

    def __init__(self, frame: Frame, length: int) -> None:
        self._frame = frame
        self._length = length

    def evaluate(self, expression: Expression) -> np.ndarray:
        """Evaluate ``expression`` to a column of ``length`` values."""
        result = self._eval(expression)
        return _broadcast(result, self._length)

    # ------------------------------------------------------------ dispatch

    def _eval(self, expression: Expression):
        if isinstance(expression, Literal):
            return self._literal(expression.value)
        if isinstance(expression, ColumnRef):
            return self._column(expression)
        if isinstance(expression, UnaryOp):
            return self._unary(expression)
        if isinstance(expression, BinaryOp):
            return self._binary(expression)
        if isinstance(expression, FunctionCall):
            return self._function(expression)
        if isinstance(expression, CaseExpression):
            return self._case(expression)
        if isinstance(expression, IsNull):
            operand = self.evaluate(expression.operand)
            nulls = np.isnan(operand) if operand.dtype.kind == "f" else np.zeros(self._length, dtype=bool)
            return ~nulls if expression.negated else nulls
        if isinstance(expression, InList):
            operand = self.evaluate(expression.operand)
            mask = np.zeros(self._length, dtype=bool)
            for value in expression.values:
                mask |= operand == self.evaluate(value)
            return ~mask if expression.negated else mask
        if isinstance(expression, Star):
            raise SQLExecutionError("'*' is only allowed as a projection or inside COUNT(*)")
        raise SQLExecutionError(f"unsupported expression node {type(expression).__name__}")

    def _literal(self, value):
        if value is None:
            return np.full(self._length, np.nan)
        return value

    def _column(self, ref: ColumnRef) -> np.ndarray:
        key = ref.key()
        if key in self._frame:
            return self._frame[key]
        if ref.table is None and ref.name in self._frame:
            return self._frame[ref.name]
        available = sorted(k for k in self._frame if "." not in k)
        raise SQLExecutionError(f"unknown column {key!r}; available columns: {available}")

    def _unary(self, node: UnaryOp):
        operand = self.evaluate(node.operand)
        if node.operator == "-":
            return -operand
        if node.operator == "+":
            return operand
        if node.operator == "~":
            return ~operand.astype(np.int64)
        if node.operator == "not":
            return ~operand.astype(bool)
        raise SQLExecutionError(f"unsupported unary operator {node.operator!r}")

    def _binary(self, node: BinaryOp):
        left = self.evaluate(node.left)
        right = self.evaluate(node.right)
        operator = node.operator
        if operator in ("&", "|", "<<", ">>"):
            left_int = left.astype(np.int64)
            right_int = right.astype(np.int64)
            if operator == "&":
                return left_int & right_int
            if operator == "|":
                return left_int | right_int
            if operator == "<<":
                return left_int << right_int
            return left_int >> right_int
        if operator == "+":
            return left + right
        if operator == "-":
            return left - right
        if operator == "*":
            return left * right
        if operator == "/":
            # SQL semantics: integer / integer stays integral in SQLite, but the
            # translation layer never relies on that; use true division and
            # preserve integer dtype only when both sides are integral.
            if left.dtype.kind in "iu" and right.dtype.kind in "iu":
                with np.errstate(divide="ignore"):
                    return left // np.where(right == 0, 1, right)
            return left / right
        if operator == "%":
            return left % right
        if operator == "=":
            return left == right
        if operator == "!=":
            return left != right
        if operator == "<":
            return left < right
        if operator == "<=":
            return left <= right
        if operator == ">":
            return left > right
        if operator == ">=":
            return left >= right
        if operator == "and":
            return left.astype(bool) & right.astype(bool)
        if operator == "or":
            return left.astype(bool) | right.astype(bool)
        if operator == "||":
            return np.char.add(left.astype(str), right.astype(str))
        raise SQLExecutionError(f"unsupported binary operator {operator!r}")

    def _function(self, node: FunctionCall):
        name = node.name
        if name in AGGREGATE_FUNCTIONS:
            raise SQLExecutionError(
                f"aggregate {name.upper()}() used outside of an aggregating SELECT"
            )
        if name in ("power", "pow"):
            if len(node.arguments) != 2:
                raise SQLExecutionError(f"{name}() takes two arguments")
            return np.power(self.evaluate(node.arguments[0]), self.evaluate(node.arguments[1]))
        if name == "coalesce":
            if not node.arguments:
                raise SQLExecutionError("coalesce() needs at least one argument")
            result = self.evaluate(node.arguments[0]).astype(float)
            for argument in node.arguments[1:]:
                candidate = self.evaluate(argument)
                result = np.where(np.isnan(result), candidate, result)
            return result
        if name in _SCALAR_FUNCTIONS and _SCALAR_FUNCTIONS[name] is not None:
            if len(node.arguments) != 1:
                raise SQLExecutionError(f"{name}() takes exactly one argument")
            return _SCALAR_FUNCTIONS[name](self.evaluate(node.arguments[0]))
        raise SQLExecutionError(f"unknown function {name!r}")

    def _case(self, node: CaseExpression):
        result = None
        decided = np.zeros(self._length, dtype=bool)
        for condition, branch in zip(node.conditions, node.results):
            mask = self.evaluate(condition).astype(bool) & ~decided
            value = self.evaluate(branch)
            if result is None:
                result = np.where(mask, value, np.nan)
            else:
                result = np.where(mask, value, result)
            decided |= mask
        default = self.evaluate(node.default) if node.default is not None else np.full(self._length, np.nan)
        result = np.where(decided, result, default)
        return result


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


def _contains_aggregate(expression: Expression) -> bool:
    if isinstance(expression, FunctionCall):
        if expression.name in AGGREGATE_FUNCTIONS:
            return True
        return any(_contains_aggregate(argument) for argument in expression.arguments)
    if isinstance(expression, BinaryOp):
        return _contains_aggregate(expression.left) or _contains_aggregate(expression.right)
    if isinstance(expression, UnaryOp):
        return _contains_aggregate(expression.operand)
    if isinstance(expression, CaseExpression):
        children = list(expression.conditions) + list(expression.results)
        if expression.default is not None:
            children.append(expression.default)
        return any(_contains_aggregate(child) for child in children)
    if isinstance(expression, (IsNull, InList)):
        return _contains_aggregate(expression.operand)
    return False


class GroupedEvaluator:
    """Evaluates expressions (possibly containing aggregates) per group."""

    def __init__(
        self,
        frame: Frame,
        length: int,
        inverse: np.ndarray,
        num_groups: int,
        first_indices: np.ndarray,
    ) -> None:
        self._scalar = ExpressionEvaluator(frame, length)
        self._length = length
        self._inverse = inverse
        self._num_groups = num_groups
        self._first_indices = first_indices

    def evaluate(self, expression: Expression) -> np.ndarray:
        """Evaluate ``expression`` to one value per group."""
        result = self._eval(expression)
        return _broadcast(result, self._num_groups)

    def _eval(self, expression: Expression):
        if isinstance(expression, FunctionCall) and expression.name in AGGREGATE_FUNCTIONS:
            return self._aggregate(expression)
        if isinstance(expression, BinaryOp):
            left = self.evaluate(expression.left)
            right = self.evaluate(expression.right)
            surrogate = BinaryOp(expression.operator, Literal(0), Literal(0))
            return self._combine_binary(surrogate.operator, left, right)
        if isinstance(expression, UnaryOp):
            operand = self.evaluate(expression.operand)
            if expression.operator == "-":
                return -operand
            if expression.operator == "+":
                return operand
            if expression.operator == "~":
                return ~operand.astype(np.int64)
            if expression.operator == "not":
                return ~operand.astype(bool)
            raise SQLExecutionError(f"unsupported unary operator {expression.operator!r}")
        # No aggregate inside: evaluate on the full frame and take each group's
        # first row (legal because grouped non-aggregate expressions must be
        # functions of the grouping key in the supported SQL subset).
        full = self._scalar.evaluate(expression)
        return full[self._first_indices]

    def _combine_binary(self, operator: str, left: np.ndarray, right: np.ndarray):
        evaluator = ExpressionEvaluator({"__left": left, "__right": right}, self._num_groups)
        surrogate = BinaryOp(operator, ColumnRef("__left"), ColumnRef("__right"))
        return evaluator.evaluate(surrogate)

    def _aggregate(self, call: FunctionCall) -> np.ndarray:
        name = call.name
        if call.is_star or not call.arguments:
            if name != "count":
                raise SQLExecutionError(f"{name.upper()}(*) is not a valid aggregate")
            return np.bincount(self._inverse, minlength=self._num_groups).astype(np.int64)

        values = self._scalar.evaluate(call.arguments[0]).astype(np.float64)
        if call.distinct:
            # Deduplicate (group, value) pairs before aggregating.
            keys = np.stack([self._inverse.astype(np.float64), values], axis=1)
            _unique, unique_indices = np.unique(keys, axis=0, return_index=True)
            mask = np.zeros(self._length, dtype=bool)
            mask[unique_indices] = True
        else:
            mask = np.ones(self._length, dtype=bool)

        inverse = self._inverse[mask]
        values = values[mask]
        counts = np.bincount(inverse, minlength=self._num_groups)

        if name == "count":
            return counts.astype(np.int64)
        if name in ("sum", "total"):
            sums = np.bincount(inverse, weights=values, minlength=self._num_groups)
            if name == "sum":
                sums = np.where(counts == 0, np.nan, sums)
            return sums
        if name == "avg":
            sums = np.bincount(inverse, weights=values, minlength=self._num_groups)
            return np.where(counts == 0, np.nan, sums / np.maximum(counts, 1))
        if name in ("min", "max"):
            result = np.full(self._num_groups, np.nan)
            if len(values):
                order = np.argsort(inverse, kind="stable")
                sorted_inverse = inverse[order]
                sorted_values = values[order]
                boundaries = np.concatenate(([0], np.flatnonzero(np.diff(sorted_inverse)) + 1))
                reducer = np.minimum if name == "min" else np.maximum
                reduced = reducer.reduceat(sorted_values, boundaries)
                result[sorted_inverse[boundaries]] = reduced
            return result
        raise SQLExecutionError(f"unsupported aggregate {name!r}")


# ---------------------------------------------------------------------------
# SELECT execution
# ---------------------------------------------------------------------------


class QueryResult:
    """Column names plus materialized rows returned by the engine."""

    __slots__ = ("columns", "rows", "rowcount")

    def __init__(self, columns: list[str], rows: list[tuple], rowcount: int | None = None) -> None:
        self.columns = columns
        self.rows = rows
        self.rowcount = len(rows) if rowcount is None else rowcount

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"QueryResult(columns={self.columns}, rows={len(self.rows)})"


class SelectExecutor:
    """Executes SELECT / WITH-SELECT statements against a table catalog."""

    def __init__(self, catalog: Mapping[str, Table]) -> None:
        self._catalog = catalog

    # ------------------------------------------------------------- plumbing

    def _resolve(self, name: str, ctes: Mapping[str, Table]) -> Table:
        if name in ctes:
            return ctes[name]
        if name in self._catalog:
            return self._catalog[name]
        raise SQLExecutionError(f"no such table: {name}")

    def execute(self, statement: Select | WithSelect) -> tuple[list[str], dict[str, np.ndarray]]:
        """Run a query; returns (column names, column arrays)."""
        if isinstance(statement, WithSelect):
            ctes: dict[str, Table] = {}
            for cte in statement.ctes:
                names, columns = self._execute_select(cte.query, ctes)
                ctes[cte.name] = Table(cte.name, {name: columns[name] for name in names})
            return self._execute_select(statement.query, ctes)
        return self._execute_select(statement, {})

    # -------------------------------------------------------------- pipeline

    def _execute_select(self, select: Select, ctes: Mapping[str, Table]) -> tuple[list[str], dict[str, np.ndarray]]:
        frame, length, bindings = self._build_frame(select, ctes)

        if select.where is not None:
            mask = ExpressionEvaluator(frame, length).evaluate(select.where).astype(bool)
            frame = {key: values[mask] for key, values in frame.items()}
            length = int(mask.sum())

        has_aggregates = any(_contains_aggregate(item.expression) for item in select.items) or (
            select.having is not None and _contains_aggregate(select.having)
        )

        if select.group_by or has_aggregates:
            names, columns = self._grouped_projection(select, frame, length)
        else:
            names, columns = self._plain_projection(select, frame, length, bindings)

        result_length = len(next(iter(columns.values()))) if columns else 0

        if select.having is not None and not (select.group_by or has_aggregates):
            raise SQLExecutionError("HAVING requires GROUP BY or aggregates")

        if select.distinct and result_length:
            stacked = np.stack([columns[name].astype(np.float64) for name in names], axis=1)
            _unique, indices = np.unique(stacked, axis=0, return_index=True)
            keep = np.sort(indices)
            columns = {name: columns[name][keep] for name in names}
            result_length = len(keep)

        if select.order_by and result_length:
            # ORDER BY may reference source columns (SQLite semantics) as long as
            # the output rows are still aligned 1:1 with the input rows.
            aligned = not (select.group_by or has_aggregates or select.distinct) and result_length == length
            order_frame: Frame = dict(frame) if aligned else {}
            order_frame.update(columns)
            columns = self._order(columns, names, select.order_by, result_length, order_frame)

        if select.limit is not None:
            columns = {name: values[: select.limit] for name, values in columns.items()}

        return names, columns

    def _build_frame(self, select: Select, ctes: Mapping[str, Table]) -> tuple[Frame, int, list[str]]:
        if select.source is None:
            # SELECT without FROM: a single synthetic row.
            return {}, 1, []
        base_table = self._resolve(select.source.name, ctes)
        frame = base_table.frame(select.source.binding)
        length = base_table.num_rows
        bindings = [select.source.binding]

        for join in select.joins:
            frame, length = self._hash_join(frame, length, bindings, join, ctes)
            bindings.append(join.source.binding)
        return frame, length, bindings

    def _hash_join(
        self,
        left_frame: Frame,
        left_length: int,
        left_bindings: list[str],
        join: Join,
        ctes: Mapping[str, Table],
    ) -> tuple[Frame, int]:
        if join.kind != "inner":
            raise SQLExecutionError(f"{join.kind.upper()} JOIN is not supported by the embedded engine")
        right_table = self._resolve(join.source.name, ctes)
        right_binding = join.source.binding
        right_frame = right_table.frame(right_binding)
        right_length = right_table.num_rows

        left_key_expr, right_key_expr = self._split_join_condition(join.condition, left_frame, right_frame)
        left_keys = ExpressionEvaluator(left_frame, left_length).evaluate(left_key_expr)
        right_keys = ExpressionEvaluator(right_frame, right_length).evaluate(right_key_expr)

        # Vectorized hash join: build on the right side, probe with the left.
        buckets: dict[object, list[int]] = {}
        for index, key in enumerate(right_keys.tolist()):
            buckets.setdefault(key, []).append(index)
        left_indices: list[int] = []
        right_indices: list[int] = []
        for index, key in enumerate(left_keys.tolist()):
            for match in buckets.get(key, ()):  # inner join: unmatched rows vanish
                left_indices.append(index)
                right_indices.append(match)
        left_idx = np.asarray(left_indices, dtype=np.int64)
        right_idx = np.asarray(right_indices, dtype=np.int64)

        merged: Frame = {}
        for key, values in left_frame.items():
            merged[key] = values[left_idx] if len(values) == left_length else values
        for key, values in right_frame.items():
            gathered = values[right_idx] if len(values) == right_length else values
            if key in merged and "." not in key:
                # Ambiguous bare column name: keep only the qualified forms.
                del merged[key]
                continue
            merged[key] = gathered
        return merged, len(left_idx)

    def _split_join_condition(
        self, condition: Expression, left_frame: Frame, right_frame: Frame
    ) -> tuple[Expression, Expression]:
        if not isinstance(condition, BinaryOp) or condition.operator != "=":
            raise SQLExecutionError("JOIN ... ON only supports a single equality condition")

        def references(expression: Expression, frame: Frame) -> bool:
            if isinstance(expression, ColumnRef):
                return expression.key() in frame or expression.name in frame
            if isinstance(expression, BinaryOp):
                return references(expression.left, frame) and references(expression.right, frame)
            if isinstance(expression, UnaryOp):
                return references(expression.operand, frame)
            if isinstance(expression, Literal):
                return True
            if isinstance(expression, FunctionCall):
                return all(references(argument, frame) for argument in expression.arguments)
            return False

        left_expr, right_expr = condition.left, condition.right
        if references(left_expr, left_frame) and references(right_expr, right_frame):
            return left_expr, right_expr
        if references(right_expr, left_frame) and references(left_expr, right_frame):
            return right_expr, left_expr
        raise SQLExecutionError("JOIN condition must compare one side per table")

    # ------------------------------------------------------------ projection

    def _item_name(self, item: SelectItem, position: int) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expression, ColumnRef):
            return item.expression.name
        return f"col{position}"

    def _plain_projection(
        self, select: Select, frame: Frame, length: int, bindings: list[str]
    ) -> tuple[list[str], dict[str, np.ndarray]]:
        names: list[str] = []
        columns: dict[str, np.ndarray] = {}
        evaluator = ExpressionEvaluator(frame, length)
        for position, item in enumerate(select.items):
            if isinstance(item.expression, Star):
                for key, values in frame.items():
                    if "." in key:
                        binding, column = key.split(".", 1)
                        if item.expression.table and binding != item.expression.table:
                            continue
                        if column not in columns:
                            names.append(column)
                            columns[column] = values
                continue
            name = self._item_name(item, position)
            names.append(name)
            columns[name] = evaluator.evaluate(item.expression)
        return names, columns

    def _grouped_projection(self, select: Select, frame: Frame, length: int) -> tuple[list[str], dict[str, np.ndarray]]:
        evaluator = ExpressionEvaluator(frame, length)
        if select.group_by:
            key_columns = [evaluator.evaluate(expression).astype(np.float64) for expression in select.group_by]
            stacked = np.stack(key_columns, axis=1) if key_columns else np.zeros((length, 1))
            if length:
                _unique, first_indices, inverse = np.unique(
                    stacked, axis=0, return_index=True, return_inverse=True
                )
                inverse = inverse.ravel()
                num_groups = len(first_indices)
            else:
                first_indices = np.empty(0, dtype=np.int64)
                inverse = np.empty(0, dtype=np.int64)
                num_groups = 0
        else:
            # Aggregates without GROUP BY: everything is one group.
            num_groups = 1
            inverse = np.zeros(length, dtype=np.int64)
            first_indices = np.zeros(1 if length else 1, dtype=np.int64)
            if length == 0:
                first_indices = np.zeros(1, dtype=np.int64)

        grouped = GroupedEvaluator(frame, length, inverse, num_groups, first_indices)

        names: list[str] = []
        columns: dict[str, np.ndarray] = {}
        for position, item in enumerate(select.items):
            if isinstance(item.expression, Star):
                raise SQLExecutionError("'*' projection cannot be combined with GROUP BY / aggregates")
            name = self._item_name(item, position)
            names.append(name)
            if length == 0 and not select.group_by:
                # Aggregates over an empty input: COUNT -> 0, SUM/MIN/MAX -> NULL.
                columns[name] = self._empty_aggregate_value(item.expression)
            else:
                columns[name] = grouped.evaluate(item.expression)

        if select.having is not None:
            having_values = grouped.evaluate(select.having).astype(bool)
            columns = {name: values[having_values] for name, values in columns.items()}
        return names, columns

    @staticmethod
    def _empty_aggregate_value(expression: Expression) -> np.ndarray:
        if isinstance(expression, FunctionCall) and expression.name == "count":
            return np.zeros(1, dtype=np.int64)
        return np.full(1, np.nan)

    # --------------------------------------------------------------- ordering

    def _order(
        self,
        columns: dict[str, np.ndarray],
        names: list[str],
        order_by: tuple[OrderItem, ...],
        length: int,
        order_frame: Frame | None = None,
    ) -> dict[str, np.ndarray]:
        output_frame: Frame = dict(order_frame) if order_frame else dict(columns)
        evaluator = ExpressionEvaluator(output_frame, length)
        keys: list[np.ndarray] = []
        for item in reversed(order_by):
            values = evaluator.evaluate(item.expression)
            sortable = values.astype(np.float64) if values.dtype.kind in "biuf" else values.astype(str)
            if item.descending:
                if sortable.dtype.kind == "f":
                    sortable = -sortable
                else:
                    raise SQLExecutionError("DESC ordering on text columns is not supported")
            keys.append(sortable)
        order = np.lexsort(keys)
        return {name: columns[name][order] for name in names}
